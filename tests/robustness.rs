//! Robustness and failure-injection tests: awkward sizes, violated
//! promises, oversized payloads, and abort paths.

use qcc::algo::{
    compute_pairs, find_edges, promise_violation, reference_find_edges, ApspError, PairSet, Params,
    SearchBackend,
};
use qcc::congest::{Clique, CongestError, Envelope, NodeId, RawBits};
use qcc::graph::{book_graph, generators, UGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn non_fourth_power_sizes_still_work() {
    // n = 17, 23, 50: partitions round up, labelings overload nodes
    for &n in &[17usize, 23, 50] {
        let mut rng = StdRng::seed_from_u64(401 + n as u64);
        let g = generators::random_ugraph(n, 0.3, 4, &mut rng);
        let s = PairSet::all_pairs(n);
        let mut net = Clique::new(n).unwrap();
        let report = compute_pairs(
            &g,
            &s,
            Params::paper(),
            SearchBackend::Classical,
            &mut net,
            &mut rng,
        )
        .unwrap();
        assert_eq!(report.found, reference_find_edges(&g, &s), "n = {n}");
    }
}

#[test]
fn violated_promise_degrades_gracefully() {
    // Γ(0,1) = 13 but we force the promise bound below it: the algorithm
    // must not panic, and anything it reports must be a true positive.
    let g = book_graph(16, 13);
    let s = PairSet::all_pairs(16);
    let mut params = Params::paper();
    params.promise_factor = 0.1;
    assert!(promise_violation(&g, &s, params.promise_bound(16)).is_some());
    let mut net = Clique::new(16).unwrap();
    let mut rng = StdRng::seed_from_u64(402);
    let report = compute_pairs(&g, &s, params, SearchBackend::Quantum, &mut net, &mut rng).unwrap();
    let truth = reference_find_edges(&g, &s);
    for (u, v) in report.found.iter() {
        assert!(truth.contains(u, v), "no false positives even off-promise");
    }
}

#[test]
fn find_edges_handles_dense_all_negative_graphs() {
    // every pair is in a negative triangle: the heaviest possible Γ load
    let n = 16;
    let mut g = UGraph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u, v, -1);
        }
    }
    let s = PairSet::all_pairs(n);
    let mut net = Clique::new(n).unwrap();
    let mut rng = StdRng::seed_from_u64(403);
    let report = find_edges(
        &g,
        &s,
        Params::paper(),
        SearchBackend::Quantum,
        &mut net,
        &mut rng,
    )
    .unwrap();
    assert_eq!(report.found.len(), n * (n - 1) / 2);
}

#[test]
fn oversized_payloads_fragment_through_routing() {
    let n = 8;
    let mut net = Clique::with_bandwidth(n, 8).unwrap();
    // each payload needs 5 fragments; loads stay under n units per node
    let sends: Vec<Envelope<RawBits>> = (1..n)
        .map(|v| Envelope::new(NodeId::new(0), NodeId::new(v), RawBits::new(v as u64, 40)))
        .collect();
    let inboxes = net.route(sends).unwrap();
    // 7 dests × 5 units = 35 units from node 0 -> 2·ceil(35/8) = 10 rounds
    assert_eq!(net.rounds(), 10);
    for v in 1..n {
        assert_eq!(inboxes.of(NodeId::new(v)).len(), 1);
    }
}

#[test]
fn stage_abort_errors_are_reported_not_panicked() {
    let g = book_graph(16, 3);
    let s = PairSet::all_pairs(16);
    let mut params = Params::paper();
    params.balance_factor = 0.0001; // every draw is unbalanced
    let mut net = Clique::new(16).unwrap();
    let mut rng = StdRng::seed_from_u64(404);
    let err =
        compute_pairs(&g, &s, params, SearchBackend::Quantum, &mut net, &mut rng).unwrap_err();
    assert!(matches!(
        err,
        ApspError::StageAborted {
            stage: "lambda-cover",
            ..
        }
    ));
}

#[test]
fn network_addressing_errors_surface() {
    let mut net = Clique::new(4).unwrap();
    let bad = vec![Envelope::new(NodeId::new(0), NodeId::new(9), 1u64)];
    assert!(matches!(
        net.route(bad),
        Err(CongestError::UnknownNode { .. })
    ));
}

#[test]
fn empty_pair_set_and_empty_graph_compose() {
    let g = UGraph::new(16);
    let s = PairSet::new();
    let mut net = Clique::new(16).unwrap();
    let mut rng = StdRng::seed_from_u64(405);
    let report = compute_pairs(
        &g,
        &s,
        Params::paper(),
        SearchBackend::Quantum,
        &mut net,
        &mut rng,
    )
    .unwrap();
    assert!(report.found.is_empty());
}

#[test]
fn weights_at_the_representational_edge() {
    // ±(2^31)-scale weights exercise the wide wire formats end to end
    let n = 12;
    let big = 1_i64 << 31;
    let mut g = UGraph::new(n);
    g.add_edge(0, 1, -big);
    g.add_edge(0, 2, big / 4);
    g.add_edge(1, 2, big / 4);
    g.add_edge(3, 4, big);
    let s = PairSet::all_pairs(n);
    let mut net = Clique::new(n).unwrap();
    let mut rng = StdRng::seed_from_u64(406);
    let report = compute_pairs(
        &g,
        &s,
        Params::paper(),
        SearchBackend::Classical,
        &mut net,
        &mut rng,
    )
    .unwrap();
    assert_eq!(report.found, reference_find_edges(&g, &s));
}
