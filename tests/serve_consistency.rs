//! Query/witness consistency for the serving engine: every `dist`/`path`
//! answer served from cache — including after LRU eviction plus row
//! recompute, and after delta updates — must equal a fresh
//! `apsp_with_paths` recompute on the mutated graph, across a seeded
//! weight-perturbation grid.

use qcc::algo::serve::{EdgeChange, QueryEngine, UpdateMethod};
use qcc::graph::{
    floyd_warshall, path_weight, random_reweighted_digraph, DiGraph, ExtWeight, PathOracle,
    WeightMatrix,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Asserts that `engine` answers exactly like a fresh sequential APSP +
/// path oracle built on `g`'s current adjacency, for every pair.
fn assert_matches_fresh(engine: &mut QueryEngine, g: &DiGraph, label: &str) {
    let adj = g.adjacency_matrix();
    let fresh = floyd_warshall(&adj).expect("workload stays cycle-free");
    let oracle = PathOracle::build(&adj);
    assert_eq!(oracle.distances(), &fresh, "{label}: oracle != FW");
    let n = g.n();
    for u in 0..n {
        for v in 0..n {
            let d = engine.dist(u, v).expect("in range");
            assert_eq!(d, fresh[(u, v)], "{label}: dist({u},{v})");
            match engine.path(u, v).expect("in range") {
                Some((pd, p)) => {
                    assert_eq!(pd, d, "{label}: path dist({u},{v})");
                    assert!(d.is_finite(), "{label}: path for unreachable ({u},{v})");
                    assert_eq!(p.first(), Some(&u), "{label}: path start ({u},{v})");
                    assert_eq!(p.last(), Some(&v), "{label}: path end ({u},{v})");
                    if u != v {
                        let w = path_weight(g, &p).expect("hops are real arcs");
                        assert_eq!(ExtWeight::Finite(w), d, "{label}: path weight ({u},{v})");
                    }
                }
                None => {
                    assert!(!d.is_finite(), "{label}: no path but finite dist ({u},{v})")
                }
            }
        }
    }
}

/// An arc whose one-step decrease cannot close a negative cycle.
fn safe_decrease(g: &DiGraph, dist: &WeightMatrix) -> Option<(usize, usize, i64)> {
    g.arcs().find(|&(u, v, w)| match dist[(v, u)] {
        ExtWeight::Finite(back) => w - 1 + back >= 0,
        _ => true,
    })
}

/// The perturbation sequence applied to every seed of the grid: decrease
/// an arc (delta-repair path in dense mode), increase one (recompute),
/// remove one (recompute), add a brand-new one (repair). After each step
/// every served answer must match a fresh recompute.
fn perturbation_grid(row_cache: Option<usize>) {
    for seed in [3u64, 11, 29] {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_reweighted_digraph(10, 0.5, 8, &mut rng);
        let adj = g.adjacency_matrix();
        let oracle = PathOracle::build(&adj);
        let mut engine = QueryEngine::from_tables(g, oracle, row_cache);
        let label = format!("seed {seed}, row_cache {row_cache:?}");
        let g_now = engine.graph().clone();
        assert_matches_fresh(&mut engine, &g_now, &format!("{label}, initial"));

        // 1. Decrease an existing arc by one.
        let dist = floyd_warshall(&engine.graph().adjacency_matrix()).unwrap();
        let (u, v, w) = safe_decrease(engine.graph(), &dist).expect("a safely decreasable arc");
        let method = engine
            .update(&[EdgeChange {
                u,
                v,
                weight: Some(w - 1),
            }])
            .expect("decrease applies");
        if row_cache.is_none() {
            assert_eq!(
                method,
                UpdateMethod::DeltaRepair,
                "{label}: dense single-edge decrease must delta-repair"
            );
        }
        let g_now = engine.graph().clone();
        assert_matches_fresh(&mut engine, &g_now, &format!("{label}, decrease"));

        // 2. Increase an arc: repair is unsound for increases, so this
        // must take the recompute path.
        let (u, v, w) = engine.graph().arcs().next().expect("an arc");
        let method = engine
            .update(&[EdgeChange {
                u,
                v,
                weight: Some(w + 3),
            }])
            .expect("increase applies");
        assert_eq!(method, UpdateMethod::Recompute, "{label}: increase");
        let g_now = engine.graph().clone();
        assert_matches_fresh(&mut engine, &g_now, &format!("{label}, increase"));

        // 3. Remove an arc entirely.
        let (u, v, _) = engine.graph().arcs().nth(1).expect("a second arc");
        let method = engine
            .update(&[EdgeChange { u, v, weight: None }])
            .expect("removal applies");
        assert_eq!(method, UpdateMethod::Recompute, "{label}: removal");
        let g_now = engine.graph().clone();
        assert_matches_fresh(&mut engine, &g_now, &format!("{label}, removal"));

        // 4. Add a brand-new arc (PosInf → finite is a decrease).
        let g_now = engine.graph().clone();
        let missing = (0..10)
            .flat_map(|a| (0..10).map(move |b| (a, b)))
            .find(|&(a, b)| a != b && !g_now.weight(a, b).is_finite())
            .expect("a missing arc at density 0.5");
        let method = engine
            .update(&[EdgeChange {
                u: missing.0,
                v: missing.1,
                weight: Some(7),
            }])
            .expect("insertion applies");
        if row_cache.is_none() {
            assert_eq!(
                method,
                UpdateMethod::DeltaRepair,
                "{label}: nonnegative insertion must delta-repair"
            );
        }
        let g_now = engine.graph().clone();
        assert_matches_fresh(&mut engine, &g_now, &format!("{label}, insert"));
    }
}

#[test]
fn dense_engine_tracks_fresh_recompute_across_perturbations() {
    perturbation_grid(None);
}

#[test]
fn row_cache_engine_tracks_fresh_recompute_across_perturbations() {
    // A 2-row budget on a 10-vertex sweep forces eviction + recompute on
    // nearly every source.
    perturbation_grid(Some(2));
}

#[test]
fn negative_cycle_update_is_rejected_and_answers_survive() {
    let mut rng = StdRng::seed_from_u64(17);
    let g = random_reweighted_digraph(9, 0.5, 8, &mut rng);
    let adj = g.adjacency_matrix();
    let fw = floyd_warshall(&adj).unwrap();
    let oracle = PathOracle::build(&adj);
    let mut engine = QueryEngine::from_tables(g.clone(), oracle, None);
    let (u, v) = fw
        .entries()
        .find(|&(i, j, &x)| i != j && x.is_finite())
        .map(|(i, j, _)| (i, j))
        .expect("a reachable pair");
    // Closing the cycle v → u with weight < -dist(u, v) makes it negative.
    let bad = match fw[(u, v)] {
        ExtWeight::Finite(x) => -x - 1,
        _ => unreachable!(),
    };
    let err = engine
        .update(&[EdgeChange {
            u: v,
            v: u,
            weight: Some(bad),
        }])
        .expect_err("negative cycle must be rejected");
    assert!(err.contains("negative cycle"), "{err}");
    // The rejected update must leave graph and tables exactly as before.
    assert_matches_fresh(&mut engine, &g, "post-rejection");
    assert_eq!(engine.graph(), &g, "graph must be reverted");
}

#[test]
fn rendered_ndjson_matches_typed_answers() {
    use qcc::algo::serve::{parse_request, ServeRequest};
    let mut rng = StdRng::seed_from_u64(23);
    let g = random_reweighted_digraph(8, 0.5, 8, &mut rng);
    let adj = g.adjacency_matrix();
    let fw = floyd_warshall(&adj).unwrap();
    let oracle = PathOracle::build(&adj);
    let mut engine = QueryEngine::from_tables(g, oracle, None);

    let reqs: Vec<Result<ServeRequest, String>> = vec![
        parse_request("{\"op\":\"dist\",\"id\":1,\"u\":0,\"v\":5}"),
        parse_request("{\"op\":\"dist\",\"id\":2,\"u\":0,\"v\":99}"),
        parse_request("{not json"),
    ];
    let out = engine.answer_batch(&reqs);
    let expect = match fw[(0, 5)] {
        ExtWeight::Finite(x) => format!("\"dist\":{x}"),
        _ => "\"dist\":null".to_string(),
    };
    assert!(out.responses[0].contains(&expect), "{}", out.responses[0]);
    assert!(
        out.responses[1].starts_with("{\"ok\":false"),
        "out-of-range must be an error response: {}",
        out.responses[1]
    );
    assert!(
        out.responses[2].starts_with("{\"ok\":false"),
        "malformed line must be an error response: {}",
        out.responses[2]
    );
}
