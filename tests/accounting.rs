//! Round-accounting invariants: the simulator's bookkeeping must be
//! internally consistent and deterministic, or every measured table in
//! `EXPERIMENTS.md` is meaningless.

use qcc::algo::{
    apsp, compute_pairs, find_edges, ApspAlgorithm, PairSet, Params, RoundBreakdown, SearchBackend,
};
use qcc::congest::{Clique, Envelope, NodeId, RawBits};
use qcc::graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The E1 benchmark workload at n = 27, pinned to its exact charged round
/// count. The full quantum pipeline — gather, Λ-cover, IdentifyClass,
/// Grover-driven Step 3, distance products — must charge bit-for-bit the
/// same rounds on every host and after every optimization; this is the
/// end-to-end seal on the batched execution model (the bulk-charged
/// evaluator and the arena delivery engine must be invisible in rounds).
#[test]
fn e1_workload_round_count_is_pinned_at_n27() {
    let mut rng = StdRng::seed_from_u64(0xE1);
    let g = generators::random_reweighted_digraph(27, 0.5, 8, &mut rng);
    let report = apsp(
        &g,
        Params::scaled(),
        ApspAlgorithm::QuantumTriangle,
        &mut rng,
    )
    .expect("E1 pipeline succeeds");
    assert_eq!(
        report.rounds, 1_146_420,
        "charged rounds moved on E1 (n=27)"
    );
}

#[test]
fn total_rounds_equal_the_sum_of_phase_rounds() {
    let mut rng = StdRng::seed_from_u64(1001);
    let g = generators::random_ugraph(16, 0.5, 4, &mut rng);
    let s = PairSet::all_pairs(16);
    let mut net = Clique::new(16).unwrap();
    compute_pairs(
        &g,
        &s,
        Params::paper(),
        SearchBackend::Quantum,
        &mut net,
        &mut rng,
    )
    .unwrap();
    let phase_sum: u64 = net.metrics().phases().iter().map(|p| p.rounds).sum();
    assert_eq!(net.rounds(), phase_sum);
    let breakdown = RoundBreakdown::from_metrics(net.metrics());
    let group_sum: u64 = breakdown.iter().map(|(_, g)| g.rounds).sum();
    assert_eq!(net.rounds(), group_sum);
}

#[test]
fn identical_seeds_give_identical_runs() {
    let g = generators::book_graph(16, 5);
    let s = PairSet::all_pairs(16);
    let mut results = Vec::new();
    for _ in 0..2 {
        let mut rng = StdRng::seed_from_u64(1002);
        let mut net = Clique::new(16).unwrap();
        let report = find_edges(
            &g,
            &s,
            Params::scaled(),
            SearchBackend::Quantum,
            &mut net,
            &mut rng,
        )
        .unwrap();
        results.push((
            report.found.clone(),
            report.rounds,
            net.metrics().total_bits(),
        ));
    }
    assert_eq!(
        results[0], results[1],
        "same seed must reproduce bit-for-bit"
    );
}

#[test]
fn rounds_are_monotone_in_message_volume() {
    // sending strictly more bits on the same link can never cost fewer rounds
    let mut low = Clique::with_bandwidth(4, 32).unwrap();
    let mut high = Clique::with_bandwidth(4, 32).unwrap();
    let small: Vec<Envelope<RawBits>> = (0..3)
        .map(|i| Envelope::new(NodeId::new(0), NodeId::new(1), RawBits::new(i, 32)))
        .collect();
    let mut large = small.clone();
    large.push(Envelope::new(
        NodeId::new(0),
        NodeId::new(1),
        RawBits::new(9, 32),
    ));
    low.exchange(small).unwrap();
    high.exchange(large).unwrap();
    assert!(high.rounds() >= low.rounds());
}

#[test]
fn bandwidth_increase_never_hurts() {
    let sends: Vec<Envelope<RawBits>> = (0..20)
        .map(|i| {
            Envelope::new(
                NodeId::new(i % 6),
                NodeId::new((i + 1) % 6),
                RawBits::new(0, 48),
            )
        })
        .collect();
    let mut narrow = Clique::with_bandwidth(6, 16).unwrap();
    let mut wide = Clique::with_bandwidth(6, 64).unwrap();
    narrow.exchange(sends.clone()).unwrap();
    wide.exchange(sends).unwrap();
    assert!(wide.rounds() <= narrow.rounds());
}

#[test]
fn routing_never_beats_the_bisection_lower_bound() {
    // Δ units per node cannot be delivered in fewer than ceil(Δ/n) rounds
    // even by a perfect schedule; Lemma 1 pays exactly 2·ceil(Δ/n).
    let n = 8;
    let mut net = Clique::with_bandwidth(n, 16).unwrap();
    let sends: Vec<Envelope<RawBits>> = (0..5 * n)
        .map(|i| {
            Envelope::new(
                NodeId::new(0),
                NodeId::new(1 + (i % (n - 1))),
                RawBits::new(0, 16),
            )
        })
        .collect();
    net.route(sends).unwrap();
    let delta = (5 * n) as u64;
    assert!(net.rounds() >= delta.div_ceil(n as u64));
    assert_eq!(net.rounds(), 2 * delta.div_ceil(n as u64));
}

#[test]
fn bits_and_messages_accumulate_across_phases() {
    let mut net = Clique::new(4).unwrap();
    net.begin_phase("a");
    net.exchange(vec![Envelope::new(NodeId::new(0), NodeId::new(1), 7u64)])
        .unwrap();
    net.begin_phase("b");
    net.exchange(vec![
        Envelope::new(NodeId::new(1), NodeId::new(2), 7u64),
        Envelope::new(NodeId::new(2), NodeId::new(3), 7u64),
    ])
    .unwrap();
    assert_eq!(net.metrics().total_messages(), 3);
    assert_eq!(net.metrics().total_bits(), 3 * 64);
    assert_eq!(net.metrics().phases().len(), 2);
}

#[test]
fn reported_rounds_match_network_deltas_across_nested_calls() {
    let mut rng = StdRng::seed_from_u64(1003);
    let g = generators::random_ugraph(16, 0.4, 4, &mut rng);
    let s = PairSet::all_pairs(16);
    let mut net = Clique::new(16).unwrap();
    let before = net.rounds();
    let r1 = compute_pairs(
        &g,
        &s,
        Params::paper(),
        SearchBackend::Classical,
        &mut net,
        &mut rng,
    )
    .unwrap();
    let mid = net.rounds();
    assert_eq!(r1.rounds, mid - before);
    let r2 = find_edges(
        &g,
        &s,
        Params::paper(),
        SearchBackend::Classical,
        &mut net,
        &mut rng,
    )
    .unwrap();
    assert_eq!(r2.rounds, net.rounds() - mid);
}
