//! End-to-end integration tests spanning every crate: graph workloads →
//! network simulation → quantum search → the full APSP reduction chain.

use qcc::algo::{
    apsp, compute_pairs, distributed_distance_product, find_edges, reference_find_edges,
    ApspAlgorithm, PairSet, Params, SearchBackend,
};
use qcc::congest::Clique;
use qcc::graph::{distance_product, floyd_warshall, generators, johnson, ExtWeight, WeightMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn theorem1_quantum_apsp_equals_three_oracles() {
    let mut rng = StdRng::seed_from_u64(201);
    let g = generators::random_reweighted_digraph(8, 0.55, 5, &mut rng);
    let report = apsp(
        &g,
        Params::paper(),
        ApspAlgorithm::QuantumTriangle,
        &mut rng,
    )
    .unwrap();
    let fw = floyd_warshall(&g.adjacency_matrix()).unwrap();
    let jo = johnson(&g).unwrap();
    assert_eq!(report.distances, fw);
    assert_eq!(report.distances, jo);
}

#[test]
fn all_four_apsp_algorithms_agree() {
    let mut rng = StdRng::seed_from_u64(202);
    let g = generators::random_reweighted_digraph(8, 0.5, 4, &mut rng);
    let oracle = floyd_warshall(&g.adjacency_matrix()).unwrap();
    for algorithm in [
        ApspAlgorithm::QuantumTriangle,
        ApspAlgorithm::ClassicalTriangle,
        ApspAlgorithm::NaiveBroadcast,
        ApspAlgorithm::SemiringSquaring,
    ] {
        let report = apsp(&g, Params::paper(), algorithm, &mut rng).unwrap();
        assert_eq!(report.distances, oracle, "{algorithm:?}");
    }
}

#[test]
fn proposition2_distance_product_through_the_network() {
    let mut rng = StdRng::seed_from_u64(203);
    let a = WeightMatrix::from_fn(5, |_, _| {
        if rng.gen_bool(0.85) {
            ExtWeight::from(rng.gen_range(-7..=7))
        } else {
            ExtWeight::PosInf
        }
    });
    let b = WeightMatrix::from_fn(5, |_, _| ExtWeight::from(rng.gen_range(-7..=7)));
    let report =
        distributed_distance_product(&a, &b, Params::paper(), SearchBackend::Quantum, &mut rng)
            .unwrap();
    assert_eq!(report.product, distance_product(&a, &b));
    assert!(report.find_edges_calls > 0);
    assert_eq!(report.simulation_factor, 9);
}

#[test]
fn theorem2_find_edges_with_promise_on_exact_partition_sizes() {
    // n = 16 = 2^4: partitions are exact (coarse 2 blocks, fine 4 blocks)
    let mut rng = StdRng::seed_from_u64(204);
    let (g, triangles) = generators::planted_disjoint_triangles(16, 4, 0.3, &mut rng);
    let s = PairSet::all_pairs(16);
    let mut net = Clique::new(16).unwrap();
    let report = compute_pairs(
        &g,
        &s,
        Params::paper(),
        SearchBackend::Quantum,
        &mut net,
        &mut rng,
    )
    .unwrap();
    for &(a, b, c) in &triangles {
        assert!(report.found.contains(a, b));
        assert!(report.found.contains(a, c));
        assert!(report.found.contains(b, c));
    }
    assert_eq!(report.found, reference_find_edges(&g, &s));
}

#[test]
fn proposition1_loop_handles_promise_breaking_instances() {
    // the spine pair sits in 12 negative triangles: Γ = 12 > scaled promise
    let g = generators::book_graph(16, 12);
    let s = PairSet::all_pairs(16);
    let mut net = Clique::new(16).unwrap();
    let mut rng = StdRng::seed_from_u64(205);
    let report = find_edges(
        &g,
        &s,
        Params::scaled(),
        SearchBackend::Quantum,
        &mut net,
        &mut rng,
    )
    .unwrap();
    let expected = reference_find_edges(&g, &s);
    // the sampling loop plus final call must recover everything
    assert_eq!(report.found, expected);
    assert!(
        report.invocations >= 2,
        "scaled params run the sampling loop"
    );
}

#[test]
fn quantum_step3_beats_classical_step3_in_probe_depth() {
    // E2's shape at one size: per-search sequential probes (iterations)
    // are far fewer for the quantum backend than the classical full scan
    // of the √n fine blocks.
    let mut rng = StdRng::seed_from_u64(206);
    let g = generators::random_ugraph(81, 0.25, 4, &mut rng);
    let s = PairSet::all_pairs(81);

    let mut params = Params::paper();
    params.search_repetitions = Some(8);
    let mut net_q = Clique::new(81).unwrap();
    let q = compute_pairs(&g, &s, params, SearchBackend::Quantum, &mut net_q, &mut rng).unwrap();

    let mut net_c = Clique::new(81).unwrap();
    let c = compute_pairs(
        &g,
        &s,
        Params::paper(),
        SearchBackend::Classical,
        &mut net_c,
        &mut rng,
    )
    .unwrap();

    assert_eq!(q.found, c.found, "both backends are exact");
    assert_eq!(
        c.stats.iterations, 9,
        "classical scans all √n = 9 fine blocks"
    );
}

#[test]
fn weights_spanning_the_full_range_round_trip() {
    // stress the wire formats: weights up to ±1000 (log W > log n)
    let mut rng = StdRng::seed_from_u64(207);
    let g = generators::random_reweighted_digraph(6, 0.6, 1000, &mut rng);
    let report = apsp(
        &g,
        Params::paper(),
        ApspAlgorithm::ClassicalTriangle,
        &mut rng,
    )
    .unwrap();
    assert_eq!(
        report.distances,
        floyd_warshall(&g.adjacency_matrix()).unwrap()
    );
}

#[test]
fn single_node_network_is_a_degenerate_but_legal_instance() {
    let g = qcc::graph::DiGraph::new(1);
    let mut rng = StdRng::seed_from_u64(208);
    let report = apsp(&g, Params::paper(), ApspAlgorithm::NaiveBroadcast, &mut rng).unwrap();
    assert_eq!(report.distances[(0, 0)], ExtWeight::ZERO);
}

#[test]
fn structured_graphs_have_textbook_distances() {
    let mut rng = StdRng::seed_from_u64(209);
    // directed path: dist(i, j) = j - i forward
    let path = qcc::graph::path_digraph(7);
    let r = apsp(
        &path,
        Params::paper(),
        ApspAlgorithm::ClassicalTriangle,
        &mut rng,
    )
    .unwrap();
    assert_eq!(r.distances[(0, 6)], ExtWeight::from(6));
    assert_eq!(r.distances[(6, 0)], ExtWeight::PosInf);
    // directed cycle: dist(i, j) = (j - i) mod n
    let cycle = qcc::graph::cycle_digraph(6);
    let r = apsp(
        &cycle,
        Params::paper(),
        ApspAlgorithm::SemiringSquaring,
        &mut rng,
    )
    .unwrap();
    assert_eq!(r.distances[(4, 1)], ExtWeight::from(3));
    // complete graph with metric weights: every distance is the direct arc
    let complete = qcc::graph::complete_digraph(6, 2);
    let r = apsp(
        &complete,
        Params::paper(),
        ApspAlgorithm::NaiveBroadcast,
        &mut rng,
    )
    .unwrap();
    assert_eq!(r.distances[(0, 5)], ExtWeight::from(7));
}

#[test]
fn compute_pairs_witness_blocks_hold_real_apexes() {
    let mut rng = StdRng::seed_from_u64(210);
    let (g, _) = generators::planted_disjoint_triangles(16, 4, 0.3, &mut rng);
    let s = PairSet::all_pairs(16);
    let mut net = Clique::new(16).unwrap();
    let report = compute_pairs(
        &g,
        &s,
        Params::paper(),
        SearchBackend::Quantum,
        &mut net,
        &mut rng,
    )
    .unwrap();
    assert!(!report.witnesses.is_empty());
    let parts = qcc::graph::PaperPartitions::new(16);
    for w in &report.witnesses {
        assert!(
            report.found.contains(w.u, w.v),
            "witness for unreported pair"
        );
        let has_apex = parts
            .fine
            .block(w.block)
            .any(|apex| g.is_negative_triangle(w.u, w.v, apex));
        assert!(
            has_apex,
            "block {} holds no apex for ({}, {})",
            w.block, w.u, w.v
        );
    }
    // every found pair carries at least one witness
    for (u, v) in report.found.iter() {
        assert!(report.witnesses.iter().any(|w| (w.u, w.v) == (u, v)));
    }
}
