//! Statistical tests of the paper's probabilistic claims (Lemmas 2–4,
//! Proposition 5, Theorem 3) — the reproduction's "theorem checks".
//!
//! Each test runs the relevant randomized construction many times and
//! verifies the claimed event frequencies. Bounds are checked with the
//! *paper* constants where they bind, and with generic forms otherwise
//! (see `DESIGN.md`, "Parameters").

use qcc::algo::{Instance, PairSet, Params};
use qcc::congest::Clique;
use qcc::graph::{congestion_hotspot, generators, PaperPartitions};
use qcc::quantum::TypicalityBounds;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Lemma 2: the Λ coverings are well-balanced and complete with
/// probability ≥ 1 − 2/n (paper constants; at testable n the sampling
/// clamps to p = 1 so both properties must hold deterministically).
#[test]
fn lemma2_cover_completeness_with_paper_constants() {
    let mut rng = StdRng::seed_from_u64(301);
    for trial in 0..5 {
        let g = generators::random_ugraph(16, 0.5, 4, &mut rng);
        let s = PairSet::all_pairs(16);
        let inst = Instance::new(&g, &s, Params::paper());
        let mut net = Clique::new(16).unwrap();
        let cover = qcc::algo::lambda::build_lambda_cover_with_retry(&inst, &mut net, 5, &mut rng)
            .expect("paper constants cannot abort at n = 16");
        assert!(cover.covers_all_s_edges(&inst), "trial {trial}");
    }
}

/// Lemma 2 with genuinely sub-1 sampling: coverage still holds for almost
/// every draw once p·√n exceeds ~3 ln n.
#[test]
fn lemma2_cover_completeness_with_subunit_sampling() {
    let mut rng = StdRng::seed_from_u64(302);
    // rate chosen so p < 1 at n = 81 (p = 1.2·log2(81)/9 ≈ 0.85) while
    // keeping the per-pair miss probability (1 − p)^{√n} ≈ 5·10⁻⁸ tiny
    let mut params = Params::paper();
    params.lambda_rate = 1.2;
    let g = generators::random_ugraph(81, 0.3, 4, &mut rng);
    let s = PairSet::all_pairs(81);
    let inst = Instance::new(&g, &s, params);
    let p = params.lambda_probability(81);
    assert!(p < 1.0, "sampling must be probabilistic, p = {p}");
    let mut covered = 0;
    let trials = 8;
    for _ in 0..trials {
        let mut net = Clique::new(81).unwrap();
        let cover = qcc::algo::lambda::build_lambda_cover_with_retry(&inst, &mut net, 10, &mut rng)
            .expect("balance cap is generous at this rate");
        if cover.covers_all_s_edges(&inst) {
            covered += 1;
        }
    }
    assert!(covered >= trials - 1, "covered {covered}/{trials}");
}

/// Proposition 5 (shape): IdentifyClass's estimator d is monotone in the
/// true |Δ| and separates light from heavy triples.
#[test]
fn proposition5_class_bands_separate_light_and_heavy() {
    let (g, _) = congestion_hotspot(16, 4, 8);
    let s = PairSet::all_pairs(16);
    let mut params = Params::paper();
    params.identify_rate = 1e9; // exact counting regime
    params.identify_abort = 1e9;
    params.class_threshold = 0.25;
    let inst = Instance::new(&g, &s, params);
    let mut net = Clique::new(16).unwrap();
    let mut rng = StdRng::seed_from_u64(303);
    let a =
        qcc::algo::identify_class::identify_class_with_retry(&inst, &mut net, 5, &mut rng).unwrap();
    // with full sampling d == |Δ| exactly, so the bands are exact:
    for (label, (bu, bv, bw)) in inst.triples.triples() {
        let delta = inst.delta(bu, bv, bw).len();
        assert_eq!(a.d[label], delta);
        let c = a.class_of[label];
        // smallest c with delta < threshold·2^c·log n
        let boundary_prev = if c == 0 {
            0.0
        } else {
            inst.params.class_boundary(16, c - 1)
        };
        assert!((delta as f64) < inst.params.class_boundary(16, c));
        assert!(delta as f64 >= boundary_prev || c == 0);
    }
}

/// Lemma 4 (generic form): Σ_w |Δ(u,v;w)| ≤ Γ-bound · |P(u,v)|, so heavy
/// classes are rare — verified exactly on the hotspot instance.
#[test]
fn lemma4_heavy_triples_are_few() {
    let (g, base_pairs) = congestion_hotspot(16, 4, 8);
    let s: PairSet = base_pairs.iter().copied().collect();
    let inst = Instance::new(&g, &s, Params::paper());
    let parts = &inst.parts;
    for bu in 0..parts.coarse.num_blocks() {
        for bv in 0..parts.coarse.num_blocks() {
            let total: usize = (0..parts.fine.num_blocks())
                .map(|bw| inst.delta(bu, bv, bw).len())
                .sum();
            // each pair of S contributes at most once per fine block that
            // holds one of its ≤ 8 apexes: total ≤ |S ∩ P(u,v)| · 8
            assert!(total <= 8 * s.len());
        }
    }
}

/// Theorem 3 bound sanity at the paper's operating point: the analytic
/// quantities are vanishing and consistent.
#[test]
fn theorem3_bounds_at_the_paper_operating_point() {
    for &n in &[256usize, 1024, 4096] {
        let m = 100 * n * (n as f64).log2() as usize;
        let x = (n as f64).sqrt() as usize;
        // With m = 100·n·log n and |X| = √n, the α = 0 list bound
        // 800·√n·log n sits *exactly* at 8m/|X|; the strict inequality of
        // Theorem 3 holds because |T_α[u,v]| < √n in every class that
        // matters (Lemma 4). Use the α = 1 bound, which doubles β.
        let beta = 1600.0 * (n as f64).sqrt() * (n as f64).log2();
        let b = TypicalityBounds::new(m, x, beta);
        assert!(b.assumptions_hold(), "n = {n}");
        assert!(b.projection_mass_bound() < 1e-100, "n = {n}");
        // k = O(√|X|) iterations leave the deviation negligible
        let k = (x as f64).sqrt().ceil() as u64 * 10;
        assert!(b.deviation_bound(k) < 1e-90, "n = {n}");
    }
}

/// The partitions of Section 5.1 are exact on fourth powers and the
/// labelings are bijections there.
#[test]
fn section51_partitions_are_exact_on_fourth_powers() {
    for m in 2..=5usize {
        let n = m.pow(4);
        let parts = PaperPartitions::new(n);
        assert!(parts.is_exact());
        let triples = qcc::graph::TripleLabeling::new(&parts, n);
        assert_eq!(triples.labeling().label_count(), n);
        assert_eq!(triples.labeling().max_labels_per_node(), 1);
    }
}

/// Success-rate check of the full quantum FindEdgesWithPromise: across
/// seeds, the output equals the census (the 1 − O(1/n) claim of Theorem 2
/// leaves room for rare misses; 10/10 at these sizes is the expectation).
#[test]
fn theorem2_success_rate() {
    let mut ok = 0;
    let trials = 10;
    for seed in 0..trials {
        let mut rng = StdRng::seed_from_u64(304 + seed);
        let g = generators::random_ugraph(16, 0.45, 4, &mut rng);
        let s = PairSet::all_pairs(16);
        let mut net = Clique::new(16).unwrap();
        let report = qcc::algo::compute_pairs(
            &g,
            &s,
            Params::paper(),
            qcc::algo::SearchBackend::Quantum,
            &mut net,
            &mut rng,
        )
        .unwrap();
        if report.found == qcc::algo::reference_find_edges(&g, &s) {
            ok += 1;
        }
    }
    assert!(ok >= trials - 1, "{ok}/{trials} exact");
}
