//! End-to-end checks of the distance-parameter suite (`qcc diameter`,
//! `qcc radius`, `qcc ecc`): honest disconnected-graph semantics, the
//! rounds-vs-trace contract, determinism pins for the charged rounds,
//! and the Las-Vegas composition with faults and verification.

use qcc::algo::{distance_params, ApspAlgorithm, DistanceParam, ExtremumConfig};
use qcc::cli::{parse, run, RunStatus};
use qcc::graph::{DiGraph, ExtWeight};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(String::from).collect()
}

/// Parses and runs a command line, returning its status and stdout.
fn run_line(line: &str) -> (RunStatus, String) {
    let cmd = parse(&argv(line)).expect("line parses");
    let mut buf = Vec::new();
    let status = run(&cmd, &mut buf).expect("command runs");
    (status, String::from_utf8(buf).expect("utf8 output"))
}

/// The first number after the first `": "` — the reported round total.
fn extract_rounds(text: &str) -> u64 {
    text.split(": ")
        .nth(1)
        .and_then(|s| s.split(' ').next())
        .and_then(|s| s.parse().ok())
        .expect("rounds in output")
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("qcc-dp-{tag}-{}.ndjson", std::process::id()))
}

/// The acceptance contract: `qcc diameter --n 27 --seed 7` reports a
/// round total exactly equal to the scaled total of its own trace.
#[test]
fn diameter_n27_seed7_rounds_equal_the_trace_total() {
    let path = temp_path("n27");
    let (status, text) = run_line(&format!(
        "diameter --n 27 --seed 7 --trace {}",
        path.display()
    ));
    assert_eq!(status, RunStatus::Success);
    let rounds = extract_rounds(&text);
    let (status, summary) = run_line(&format!(
        "trace-summary {} --expect-rounds {rounds} --max-depth 2",
        path.display()
    ));
    assert_eq!(status, RunStatus::Success);
    assert!(summary.contains("distance-param"), "{summary}");
    assert!(
        summary.contains(&format!("round total matches expected {rounds}")),
        "{summary}"
    );
    std::fs::remove_file(&path).ok();
}

/// Density 0 guarantees an arcless graph: every eccentricity, the
/// diameter and the radius are honestly infinite, never 0.
#[test]
fn arcless_graph_reports_disconnected_and_infinite() {
    for param in ["diameter", "radius"] {
        let (status, text) = run_line(&format!("{param} --n 6 --seed 1 --density 0"));
        assert_eq!(status, RunStatus::Success);
        assert!(text.contains(&format!("{param} = inf")), "{text}");
        assert!(text.contains("disconnected"), "{text}");
    }
    let (_, text) = run_line("ecc --n 4 --seed 1 --density 0 --algorithm naive");
    for v in 0..4 {
        assert!(text.contains(&format!("ecc({v}) = inf")), "{text}");
    }
}

/// A single vertex is trivially connected with eccentricity 0.
#[test]
fn single_vertex_graph_is_trivially_connected() {
    let (status, text) = run_line("diameter --n 1 --seed 1 --algorithm naive");
    assert_eq!(status, RunStatus::Success);
    assert!(text.contains("diameter = 0"), "{text}");
    assert!(!text.contains("disconnected"), "{text}");
    let (_, text) = run_line("ecc --n 1 --seed 1 --algorithm naive");
    assert!(text.contains("ecc(0) = 0"), "{text}");
}

/// Directed asymmetry: a one-way path 0 → 1 → 2 has a finite radius
/// (vertex 0 reaches everything) but an infinite diameter (nothing
/// reaches back) — the two parameters must not collapse to one story.
#[test]
fn directed_asymmetry_finite_radius_infinite_diameter() {
    let mut g = DiGraph::new(3);
    g.add_arc(0, 1, 4);
    g.add_arc(1, 2, 3);
    let mut rng = StdRng::seed_from_u64(11);
    let mut cfg = ExtremumConfig::new(DistanceParam::Radius);
    cfg.algorithm = ApspAlgorithm::NaiveBroadcast;
    let radius = distance_params(&g, &cfg, &mut rng, None).expect("runs");
    assert_eq!(radius.value, ExtWeight::from(7));
    assert_eq!(radius.witness, Some(0));
    assert!(!radius.connected);
    assert!(radius.verified);

    cfg.param = DistanceParam::Diameter;
    let diameter = distance_params(&g, &cfg, &mut rng, None).expect("runs");
    assert_eq!(diameter.value, ExtWeight::PosInf);
    assert!(!diameter.connected);
    assert!(diameter.verified);
}

/// Both backends find the same extremum; the scan spends exactly `n`
/// evaluations while the quantum search's count varies with the seed.
#[test]
fn quantum_and_scan_backends_agree_on_the_value() {
    let (_, q) = run_line("diameter --n 14 --seed 6 --algorithm naive --backend quantum");
    let (_, s) = run_line("diameter --n 14 --seed 6 --algorithm naive --backend scan");
    let value = |text: &str| {
        text.lines()
            .find(|l| l.starts_with("diameter = "))
            .expect("value line")
            .to_string()
    };
    assert_eq!(value(&q), value(&s), "backends disagree");
    assert!(s.contains("14 oracle evaluations"), "{s}");
}

/// Determinism pins: the charged rounds of seeded runs are part of the
/// model, recorded here so accounting drift fails loudly. A repeated run
/// must also be byte-identical.
#[test]
fn charged_rounds_are_pinned_and_repeatable() {
    let cases = [
        (
            "radius --n 12 --seed 3 --algorithm semiring --backend scan",
            53u64,
        ),
        ("ecc --n 9 --seed 2 --algorithm naive", 3),
        ("diameter --n 10 --seed 5 --algorithm naive", 64),
    ];
    for (line, pinned) in cases {
        let (status, first) = run_line(line);
        assert_eq!(status, RunStatus::Success);
        assert_eq!(extract_rounds(&first), pinned, "{line}: {first}");
        let (_, second) = run_line(line);
        assert_eq!(first, second, "{line} is not deterministic");
    }
}

/// Faults + verification compose: behind the envelope the Las-Vegas loop
/// still certifies both the distance matrix and the claimed extremum.
#[test]
fn faulty_verified_radius_certifies() {
    let (status, text) = run_line(
        "radius --n 8 --seed 9 --algorithm naive --faults drop=0.1,corrupt=0.02,seed=4 --verify",
    );
    assert_eq!(status, RunStatus::Success);
    assert!(text.contains("verified: true"), "{text}");
    assert!(text.contains("fallback: false"), "{text}");
}

/// The verified path also balances its trace: driver attempts, the
/// search certificate and the extremum spans all close, and the scaled
/// total equals the reported rounds.
#[test]
fn verified_traced_run_balances_the_trace() {
    let path = temp_path("verified");
    let (status, text) = run_line(&format!(
        "diameter --n 9 --seed 4 --algorithm naive --verify --trace {}",
        path.display()
    ));
    assert_eq!(status, RunStatus::Success);
    assert!(text.contains("verified: true"), "{text}");
    let rounds = extract_rounds(&text);
    let (status, summary) = run_line(&format!(
        "trace-summary {} --expect-rounds {rounds}",
        path.display()
    ));
    assert_eq!(status, RunStatus::Success);
    assert!(summary.contains("ext-attempt-0"), "{summary}");
    assert!(summary.contains("ext-verify-0"), "{summary}");
    std::fs::remove_file(&path).ok();
}

/// The `ecc` gather and the extremum subcommands tell one consistent
/// story: max of the printed vector = diameter, min = radius.
#[test]
fn ecc_vector_is_consistent_with_diameter_and_radius() {
    let (_, e) = run_line("ecc --n 10 --seed 8 --algorithm naive");
    let ecc: Vec<i64> = e
        .lines()
        .filter(|l| l.trim_start().starts_with("ecc("))
        .map(|l| {
            l.split("= ")
                .nth(1)
                .expect("value")
                .parse()
                .expect("finite")
        })
        .collect();
    assert_eq!(ecc.len(), 10);
    let (_, d) = run_line("diameter --n 10 --seed 8 --algorithm naive");
    let (_, r) = run_line("radius --n 10 --seed 8 --algorithm naive");
    assert!(
        d.contains(&format!("diameter = {}", ecc.iter().max().expect("n > 0"))),
        "{d}"
    );
    assert!(
        r.contains(&format!("radius = {}", ecc.iter().min().expect("n > 0"))),
        "{r}"
    );
}

/// An unverified clean run never claims `verified: true`.
#[test]
fn unverified_run_does_not_claim_verification() {
    let (_, text) = run_line("diameter --n 8 --seed 2 --algorithm naive");
    assert!(text.contains("verified: false"), "{text}");
}
