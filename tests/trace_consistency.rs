//! End-to-end trace self-consistency: for every CLI subcommand that takes
//! `--trace`, the NDJSON file it writes must (a) parse, (b) pass the span
//! tree's internal verification, and (c) agree *exactly* — scaled root
//! totals against printed round counts — with what the command reported on
//! stdout. This is the acceptance gate for the tracing subsystem: a trace
//! that disagrees with the simulator's own accounting is worse than none.

use qcc::algo::{ApspAlgorithm, SearchBackend, TransportKind};
use qcc::cli::{run, Command};
use qcc::congest::{parse_trace, TraceSummary};
use std::path::PathBuf;

fn temp_trace(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "qcc-trace-consistency-{tag}-{}.ndjson",
        std::process::id()
    ))
}

/// Extracts the first integer that precedes the word "rounds" in CLI output.
fn rounds_from_output(text: &str) -> u64 {
    let mut last_token: Option<&str> = None;
    for token in text.split_whitespace() {
        if token.starts_with("rounds") {
            if let Some(prev) = last_token {
                if let Ok(v) = prev.trim_end_matches(',').parse() {
                    return v;
                }
            }
        }
        last_token = Some(token);
    }
    panic!("no `<N> rounds` in output:\n{text}");
}

/// Runs `cmd`, parses the trace it wrote, verifies it, and checks the
/// scaled total equals the printed round count.
fn assert_trace_matches_stdout(cmd: &Command, path: &PathBuf) {
    let mut buf = Vec::new();
    run(cmd, &mut buf).unwrap();
    let stdout = String::from_utf8(buf).unwrap();
    let printed = rounds_from_output(&stdout);

    let text = std::fs::read_to_string(path).unwrap();
    let events = parse_trace(&text).unwrap_or_else(|e| panic!("{cmd:?}: {e}"));
    let summary = TraceSummary::from_events(&events).unwrap();
    summary.verify().unwrap_or_else(|e| panic!("{cmd:?}: {e}"));
    assert_eq!(
        summary.total_rounds(),
        printed,
        "{cmd:?}: trace total disagrees with printed rounds\n{stdout}"
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn traced_quantum_apsp_agrees_with_its_report() {
    let path = temp_trace("apsp-quantum");
    assert_trace_matches_stdout(
        &Command::Apsp {
            n: 5,
            seed: 11,
            algorithm: ApspAlgorithm::QuantumTriangle,
            w_max: 4,
            trace: Some(path.to_string_lossy().into_owned()),
            faults: None,
            verify: false,
            max_retries: 3,
            transport: TransportKind::Clique,
            topology: None,
        },
        &path,
    );
}

#[test]
fn traced_gossip_apsp_agrees_with_its_report() {
    // The gossip transport routes everything through an inner clique, so
    // the span tree and the printed total must agree exactly even with
    // faults in play.
    let path = temp_trace("apsp-gossip");
    assert_trace_matches_stdout(
        &Command::Apsp {
            n: 6,
            seed: 11,
            algorithm: ApspAlgorithm::NaiveBroadcast,
            w_max: 4,
            trace: Some(path.to_string_lossy().into_owned()),
            faults: Some(qcc::congest::FaultPlan::parse("drop=0.05,seed=3").unwrap()),
            verify: false,
            max_retries: 3,
            transport: TransportKind::Gossip,
            topology: Some(qcc::congest::TopologySpec::Mesh { degree: 4 }),
        },
        &path,
    );
}

#[test]
fn traced_classical_apsp_agrees_with_its_report() {
    let path = temp_trace("apsp-classical");
    assert_trace_matches_stdout(
        &Command::Apsp {
            n: 5,
            seed: 12,
            algorithm: ApspAlgorithm::ClassicalTriangle,
            w_max: 4,
            trace: Some(path.to_string_lossy().into_owned()),
            faults: None,
            verify: false,
            max_retries: 3,
            transport: TransportKind::Clique,
            topology: None,
        },
        &path,
    );
}

#[test]
fn traced_baseline_apsp_agrees_with_their_reports() {
    for (tag, algorithm) in [
        ("apsp-naive", ApspAlgorithm::NaiveBroadcast),
        ("apsp-semiring", ApspAlgorithm::SemiringSquaring),
    ] {
        let path = temp_trace(tag);
        assert_trace_matches_stdout(
            &Command::Apsp {
                n: 8,
                seed: 13,
                algorithm,
                w_max: 6,
                trace: Some(path.to_string_lossy().into_owned()),
                faults: None,
                verify: false,
                max_retries: 3,
                transport: TransportKind::Clique,
                topology: None,
            },
            &path,
        );
    }
}

#[test]
fn traced_find_edges_agrees_with_its_report() {
    let path = temp_trace("find-edges");
    assert_trace_matches_stdout(
        &Command::FindEdges {
            n: 16,
            seed: 14,
            backend: SearchBackend::Classical,
            trace: Some(path.to_string_lossy().into_owned()),
        },
        &path,
    );
}

#[test]
fn traced_paths_agrees_with_its_report() {
    let path = temp_trace("paths");
    assert_trace_matches_stdout(
        &Command::Paths {
            n: 6,
            seed: 15,
            trace: Some(path.to_string_lossy().into_owned()),
        },
        &path,
    );
}

#[test]
fn traced_gamma_agrees_with_its_report() {
    let path = temp_trace("gamma");
    assert_trace_matches_stdout(
        &Command::Gamma {
            n: 12,
            seed: 16,
            bits: 6,
            trace: Some(path.to_string_lossy().into_owned()),
        },
        &path,
    );
}

#[test]
fn quantum_trace_has_the_expected_hierarchy() {
    // The quantum pipeline's trace must read apsp → product-k → the
    // distance-product binary search → the step labels — the hierarchical
    // labelling that motivated the span tree.
    let path = temp_trace("hierarchy");
    let cmd = Command::Apsp {
        n: 5,
        seed: 17,
        algorithm: ApspAlgorithm::QuantumTriangle,
        w_max: 4,
        trace: Some(path.to_string_lossy().into_owned()),
        faults: None,
        verify: false,
        max_retries: 3,
        transport: TransportKind::Clique,
        topology: None,
    };
    run(&cmd, &mut Vec::new()).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let events = parse_trace(&text).unwrap();
    let summary = TraceSummary::from_events(&events).unwrap();
    summary.verify().unwrap();

    let labels: Vec<&str> = summary.spans().iter().map(|s| s.label.as_str()).collect();
    assert_eq!(summary.roots().len(), 1);
    assert_eq!(summary.spans()[summary.roots()[0]].label, "apsp");
    assert!(labels.contains(&"product-0"), "{labels:?}");
    assert!(
        labels
            .iter()
            .any(|l| l.starts_with("distance-product/call")),
        "{labels:?}"
    );
    assert!(
        labels.iter().any(|l| l.starts_with("find-edges/")),
        "{labels:?}"
    );
    assert!(labels.iter().any(|l| l.starts_with("step3/")), "{labels:?}");
    // product spans carry the paper's 9x virtual-network factor.
    let product = summary
        .spans()
        .iter()
        .position(|s| s.label == "product-0")
        .unwrap();
    assert_eq!(summary.spans()[product].factor, 9);
    // Depths are consistent with the nesting: apsp(0) → product(1) → ...
    assert_eq!(summary.spans()[summary.roots()[0]].depth, 0);
    assert_eq!(summary.spans()[product].depth, 1);
    std::fs::remove_file(&path).ok();
}
