//! Integration tests for the beyond-the-paper extensions, exercised
//! through the facade crate the way a downstream user would.

use qcc::algo::{
    apsp_with_paths, max_additive_error, quantized_apsp, quantum_for_epsilon, quantum_gamma_count,
    sssp, sssp_with_paths, ApspAlgorithm, PairSet, Params, SearchBackend,
};
use qcc::congest::Clique;
use qcc::graph::{
    bellman_ford, cycle_weight, find_negative_cycle, floyd_warshall, generators, path_weight,
    ExtWeight,
};
use qcc::quantum::{quantum_maximum, quantum_minimum, AmplitudeEstimator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn footnote1_paths_through_the_quantum_pipeline() {
    let mut rng = StdRng::seed_from_u64(2001);
    let g = generators::random_reweighted_digraph(6, 0.55, 4, &mut rng);
    let fw = floyd_warshall(&g.adjacency_matrix()).unwrap();
    let report = apsp_with_paths(&g, Params::paper(), SearchBackend::Quantum, &mut rng).unwrap();
    for u in 0..6 {
        for v in 0..6 {
            if u == v {
                continue;
            }
            match report.oracle.path(u, v) {
                Some(p) => {
                    assert_eq!(ExtWeight::from(path_weight(&g, &p).unwrap()), fw[(u, v)]);
                    assert!(p.len() <= 6);
                }
                None => assert_eq!(fw[(u, v)], ExtWeight::PosInf),
            }
        }
    }
}

#[test]
fn sssp_projects_the_apsp_row() {
    let mut rng = StdRng::seed_from_u64(2002);
    let g = generators::random_reweighted_digraph(9, 0.5, 5, &mut rng);
    let bf = bellman_ford(&g, 4).unwrap();
    let r = sssp(
        &g,
        4,
        Params::paper(),
        ApspAlgorithm::NaiveBroadcast,
        &mut rng,
    )
    .unwrap();
    assert_eq!(r.distances, bf);
    let (r2, oracle) =
        sssp_with_paths(&g, 4, Params::paper(), SearchBackend::Classical, &mut rng).unwrap();
    assert_eq!(r2.distances, bf);
    for v in 0..9 {
        if let Some(p) = oracle.path(4, v) {
            assert_eq!(p[0], 4);
            assert_eq!(*p.last().unwrap(), v);
        }
    }
}

#[test]
fn negative_cycle_witnesses_are_real_cycles() {
    let mut rng = StdRng::seed_from_u64(2003);
    for trial in 0..5 {
        let mut g = generators::random_nonneg_digraph(12, 0.3, 9, &mut rng);
        // plant a negative 3-cycle at random vertices
        let a = rng.gen_range(0..4);
        let (b, c) = (a + 4, a + 8);
        g.add_arc(a, b, 1);
        g.add_arc(b, c, 1);
        g.add_arc(c, a, -5);
        let cycle = find_negative_cycle(&g).expect("planted cycle exists");
        assert!(cycle_weight(&g, &cycle) < 0, "trial {trial}: {cycle:?}");
    }
}

#[test]
fn quantization_error_is_bounded_end_to_end() {
    let mut rng = StdRng::seed_from_u64(2004);
    let n = 8;
    let w = 10_000;
    let g = generators::random_nonneg_digraph(n, 0.6, w, &mut rng);
    let exact = floyd_warshall(&g.adjacency_matrix()).unwrap();
    let q = quantum_for_epsilon(n, w, 0.2);
    let report =
        quantized_apsp(&g, q, Params::paper(), SearchBackend::Classical, &mut rng).unwrap();
    let err = max_additive_error(&exact, &report.distances);
    assert!(err <= (n as i64 - 1) * q);
    assert!(
        err as f64 <= 0.2 * w as f64 * 2.0,
        "err {err} vs epsilon*W budget"
    );
}

#[test]
fn gamma_counting_matches_census_through_the_facade() {
    let mut rng = StdRng::seed_from_u64(2005);
    let g = generators::random_ugraph(24, 0.5, 5, &mut rng);
    let pairs: PairSet = g.edges().map(|(u, v, _)| (u, v)).take(6).collect();
    let mut net = Clique::new(24).unwrap();
    let report = quantum_gamma_count(&g, &pairs, 10, 5, &mut net, &mut rng).unwrap();
    assert!(report.max_error() <= 1);
    for &(u, v, _, truth) in &report.estimates {
        assert_eq!(truth, g.gamma(u, v));
    }
}

#[test]
fn extremum_finding_agrees_with_scans() {
    let mut rng = StdRng::seed_from_u64(2006);
    let values: Vec<i64> = (0..300)
        .map(|_| rng.gen_range(-1_000_000..1_000_000))
        .collect();
    let min = quantum_minimum(values.len(), |i| values[i], &mut rng);
    let max = quantum_maximum(values.len(), |i| values[i], &mut rng);
    assert_eq!(values[min.index], *values.iter().min().unwrap());
    assert_eq!(values[max.index], *values.iter().max().unwrap());
    assert!(min.iterations < 300, "sublinear: {}", min.iterations);
}

#[test]
fn amplitude_estimation_register_sizes_are_practical() {
    // the recommendation follows M ≈ 4π√(t(X−t)): ~√(t·X) grid points,
    // i.e. ~(log₂X + log₂t)/2 + 4 bits — far below log₂X + log₂t
    let est = AmplitudeEstimator::new(1 << 16, 8);
    assert_eq!(est.bits_for_exact_count(), 15); // √(8·2^16)·4π ≈ 2^14.3
    let dense = AmplitudeEstimator::new(1 << 10, 512);
    assert_eq!(dense.bits_for_exact_count(), 14);
    // and the estimate at that size is exact (±1) in expectation-land
    let mut rng = StdRng::seed_from_u64(2007);
    let out = est.estimate(est.bits_for_exact_count(), &mut rng);
    assert!(
        (out.count_estimate - 8.0).abs() < 1.0,
        "{}",
        out.count_estimate
    );
}
