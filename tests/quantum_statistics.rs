//! Distribution-level statistical checks of the quantum simulation: the
//! measured frequencies must match the closed-form quantum mechanics the
//! simulator claims to implement exactly.

use qcc::quantum::{
    grover_search, quantum_minimum, quantum_minimum_bounded, AmplitudeEstimator, GroverAmplitudes,
    SearchOracle,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Measurement frequencies after k iterations track sin²((2k+1)θ) across a
/// whole sweep of k — not just at the optimum.
#[test]
fn grover_measurement_curve_matches_theory() {
    let domain = 32;
    let solutions = 3;
    let amp = GroverAmplitudes::new(domain, solutions);
    let mut rng = StdRng::seed_from_u64(3001);
    let trials = 4000;
    for k in [0u64, 1, 2, 3, 5, 8] {
        let p = amp.success_probability(k);
        let hits = (0..trials).filter(|_| amp.measure(k, &mut rng)).count();
        let freq = hits as f64 / f64::from(trials);
        // 4σ tolerance for a Bernoulli mean over 4000 trials
        let sigma = (p * (1.0 - p) / f64::from(trials)).sqrt();
        assert!(
            (freq - p).abs() <= 4.0 * sigma + 0.01,
            "k = {k}: freq {freq:.4} vs p {p:.4}"
        );
    }
}

/// The QAE register histogram matches the Fejér-kernel law bin by bin.
#[test]
fn amplitude_estimation_histogram_matches_the_kernel() {
    let est = AmplitudeEstimator::new(64, 9);
    let bits = 6;
    let dist = est.outcome_distribution(bits);
    let mut rng = StdRng::seed_from_u64(3002);
    let trials = 20_000usize;
    let mut counts = vec![0usize; dist.len()];
    for _ in 0..trials {
        counts[est.estimate(bits, &mut rng).register] += 1;
    }
    for (y, (&c, &p)) in counts.iter().zip(&dist).enumerate() {
        let freq = c as f64 / trials as f64;
        let sigma = (p * (1.0 - p) / trials as f64).sqrt();
        assert!(
            (freq - p).abs() <= 5.0 * sigma + 0.005,
            "bin {y}: freq {freq:.4} vs p {p:.4}"
        );
    }
}

/// BBHT-style repetition (random k) succeeds with probability well above
/// the 1/4 the amplification analysis assumes, for a spread of solution
/// densities.
#[test]
fn random_iteration_success_rate_beats_one_quarter() {
    struct Marked {
        marked: Vec<bool>,
    }
    impl SearchOracle for Marked {
        fn domain_size(&self) -> usize {
            self.marked.len()
        }
        fn truth(&self, item: usize) -> bool {
            self.marked[item]
        }
        fn evaluate_distributed(&mut self, item: usize) -> bool {
            self.marked[item]
        }
    }
    let mut rng = StdRng::seed_from_u64(3003);
    for &solutions in &[1usize, 2, 7, 20] {
        let domain = 64;
        let mut marked = vec![false; domain];
        for i in 0..solutions {
            marked[(i * 13 + 1) % domain] = true;
        }
        let trials = 300;
        let mut ok = 0;
        for _ in 0..trials {
            let mut oracle = Marked {
                marked: marked.clone(),
            };
            // single repetition, exact-census optimal k: near-certain;
            // what the multi-search analysis needs is ≥ 1/4, so this is a
            // generous margin check
            if grover_search(&mut oracle, &mut rng).found.is_some() {
                ok += 1;
            }
        }
        let rate = f64::from(ok) / f64::from(trials);
        assert!(rate > 0.5, "solutions = {solutions}: rate {rate}");
    }
}

/// The amplitude tracker's angle arithmetic is consistent: doubling the
/// solution count increases θ, and probabilities are 2π/θ-periodic in k.
#[test]
fn amplitude_angle_consistency() {
    let a1 = GroverAmplitudes::new(100, 4);
    let a2 = GroverAmplitudes::new(100, 16);
    assert!(a2.theta() > a1.theta());
    // doubling θ doubles the rotation rate: sin θ = √(s/X) exactly
    assert!((a1.theta().sin() - 0.2).abs() < 1e-12);
    assert!((a2.theta().sin() - 0.4).abs() < 1e-12);
    // the closed form sin²((2k+1)θ) is implemented verbatim
    let amp = GroverAmplitudes::new(64, 1);
    let theta = amp.theta();
    for k in 0..40u64 {
        let expected = ((2.0 * k as f64 + 1.0) * theta).sin().powi(2);
        assert!(
            (amp.success_probability(k) - expected).abs() < 1e-12,
            "k = {k}"
        );
    }
}

/// Dürr–Høyer minimum finding is a Las-Vegas algorithm: across hundreds
/// of seeded trials on adversarial arrays (duplicates, ties at the
/// threshold, the minimum hidden at every position) the returned index
/// must hold the true minimum *every* time. The pre-fix implementation
/// silently returned its current — possibly non-extremal — threshold
/// when a stage blew its 64-attempt budget, which this sweep would
/// eventually catch as a wrong answer.
#[test]
fn quantum_minimum_returns_the_true_extremum_across_seeded_trials() {
    for seed in 0..300u64 {
        let mut rng = StdRng::seed_from_u64(7000 + seed);
        let n = rng.gen_range(2..80);
        let values: Vec<i64> = (0..n).map(|_| rng.gen_range(-5..50)).collect();
        let true_min = *values.iter().min().expect("n > 0");
        let out = quantum_minimum(n, |i| values[i], &mut rng);
        assert_eq!(
            values[out.index], true_min,
            "seed {seed}: returned {} but the minimum is {true_min} ({values:?})",
            values[out.index]
        );
    }
}

/// Under a starvation budget (one BBHT attempt per stage) exhaustion is
/// frequent — and must surface as a typed error carrying the best seen
/// so far, never as a silent non-extremum dressed up as the answer.
#[test]
fn bounded_minimum_is_sound_even_when_the_budget_starves() {
    let mut exhausted = 0u32;
    let mut succeeded = 0u32;
    for seed in 0..300u64 {
        let mut rng = StdRng::seed_from_u64(8000 + seed);
        let n = 48;
        let values: Vec<i64> = (0..n).map(|_| rng.gen_range(0..40)).collect();
        let true_min = *values.iter().min().expect("n > 0");
        match quantum_minimum_bounded(n, |i| values[i], 1, &mut rng) {
            Ok(out) => {
                succeeded += 1;
                assert_eq!(
                    values[out.index], true_min,
                    "seed {seed}: an Ok that is not the minimum"
                );
            }
            Err(e) => {
                exhausted += 1;
                assert!(e.best_index < n, "seed {seed}: best index out of range");
            }
        }
    }
    assert!(exhausted > 0, "a 1-attempt budget must starve sometimes");
    assert!(
        succeeded > 0,
        "a 1-attempt budget must also succeed sometimes"
    );
}

/// Exact-count register recommendation really achieves ±1 counting across
/// a sweep (the E14 claim, verified statistically).
#[test]
fn exact_count_recommendation_holds_across_sweep() {
    let mut rng = StdRng::seed_from_u64(3004);
    for &(x, t) in &[(64usize, 3usize), (128, 11), (256, 40), (512, 200)] {
        let est = AmplitudeEstimator::new(x, t);
        let bits = est.bits_for_exact_count();
        let mut errs = Vec::new();
        for _ in 0..40 {
            let out = est.estimate(bits, &mut rng);
            errs.push((out.count_estimate - t as f64).abs());
        }
        errs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let median_err = errs[errs.len() / 2];
        assert!(median_err <= 1.0, "({x},{t}): median error {median_err}");
    }
}
