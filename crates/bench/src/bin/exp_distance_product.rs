//! Experiment E11 — Propositions 2–3: distance products by binary search.
//!
//! Paper claims: the distance product reduces to `O(log M)` `FindEdges`
//! calls (Proposition 2), and APSP to `O(log n)` distance products
//! (Proposition 3). We sweep the entry magnitude `M` and verify the
//! logarithmic call count, plus the product-count schedule of the
//! squaring loop.

use qcc_apsp::{apsp, distributed_distance_product, ApspAlgorithm, Params, SearchBackend};
use qcc_bench::{banner, Table};
use qcc_graph::{
    distance_product, floyd_warshall, random_reweighted_digraph, ExtWeight, WeightMatrix,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_matrix(n: usize, mag: i64, rng: &mut StdRng) -> WeightMatrix {
    WeightMatrix::from_fn(n, |_, _| {
        if rng.gen_bool(0.85) {
            ExtWeight::from(rng.gen_range(-mag..=mag))
        } else {
            ExtWeight::PosInf
        }
    })
}

fn main() {
    banner(
        "E11",
        "Proposition 2: O(log M) FindEdges calls per distance product",
    );
    let n = 5;
    let mut table = Table::new(&[
        "M",
        "FindEdges calls",
        "ceil(log2(4M+3))",
        "virtual rounds",
        "exact",
    ]);
    for &mag in &[2i64, 8, 64, 512, 4096] {
        let mut rng = StdRng::seed_from_u64(0xE11 + mag as u64);
        let a = random_matrix(n, mag, &mut rng);
        let b = random_matrix(n, mag, &mut rng);
        let report = distributed_distance_product(
            &a,
            &b,
            Params::paper(),
            SearchBackend::Classical,
            &mut rng,
        )
        .unwrap();
        let predicted = ((4 * mag + 3) as f64).log2().ceil() as u32;
        table.row(&[
            &mag,
            &report.find_edges_calls,
            &predicted,
            &report.virtual_rounds,
            &(report.product == distance_product(&a, &b)),
        ]);
    }
    table.print();

    banner("E11b", "Proposition 3: ceil(log2(n-1)) products per APSP");
    let mut table = Table::new(&["n", "products", "ceil(log2(n-1))", "exact"]);
    for &n in &[4usize, 8, 16] {
        let mut rng = StdRng::seed_from_u64(0xE11B + n as u64);
        let g = random_reweighted_digraph(n, 0.5, 6, &mut rng);
        let oracle = floyd_warshall(&g.adjacency_matrix()).unwrap();
        let report = apsp(
            &g,
            Params::paper(),
            ApspAlgorithm::ClassicalTriangle,
            &mut rng,
        )
        .unwrap();
        let predicted = ((n - 1) as f64).log2().ceil() as u32;
        table.row(&[
            &n,
            &report.products,
            &predicted,
            &(report.distances == oracle),
        ]);
    }
    table.print();
}
