//! Experiment E16 — the fault sweep: Las-Vegas APSP on lossy networks.
//!
//! A grid of seeded fault plans (drop × corrupt rates) is applied to the
//! simulated clique and the self-verifying driver runs APSP on each cell.
//! The claim: behind the reliable envelope and the driver's certificate,
//! *every* cell returns the exact Floyd–Warshall matrix — faults cost
//! rounds (retransmit waves, retries, verification products), never
//! correctness. The table reports attempts, fallback use, and the round
//! overhead relative to the fault-free cell of the same seed.
//!
//! Usage: `exp_fault_sweep [--smoke] [--trace FILE]`
//!
//! Exits 1 if any cell's matrix disagrees with Floyd–Warshall or fails
//! verification — this binary doubles as the CI fault-sweep gate.

use qcc_apsp::{apsp_driver, ApspAlgorithm, DriverConfig};
use qcc_bench::{banner, take_trace_flag, Table};
use qcc_congest::{FaultPlan, NetConfig};
use qcc_graph::{floyd_warshall, random_reweighted_digraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let sink = take_trace_flag(&mut args).unwrap_or_else(|e| {
        eprintln!("exp_fault_sweep: {e}");
        eprintln!("usage: exp_fault_sweep [--smoke] [--trace FILE]");
        std::process::exit(2);
    });
    let mut smoke = false;
    for a in &args {
        match a.as_str() {
            "--smoke" => smoke = true,
            other => {
                eprintln!("exp_fault_sweep: unknown argument `{other}`");
                eprintln!("usage: exp_fault_sweep [--smoke] [--trace FILE]");
                std::process::exit(2);
            }
        }
    }
    banner(
        "E16",
        "fault sweep: seeded drops/corruption + envelope + driver stay exact",
    );

    let n = if smoke { 8 } else { 10 };
    let seeds: &[u64] = if smoke { &[1] } else { &[1, 2] };
    let drops: &[f64] = if smoke {
        &[0.0, 0.05]
    } else {
        &[0.0, 0.05, 0.2]
    };
    let corrupts: &[f64] = &[0.0, 0.01];

    let mut table = Table::new(&[
        "drop",
        "corrupt",
        "seed",
        "attempts",
        "fallback",
        "verified",
        "total rounds",
        "overhead",
    ]);
    let mut failures = 0u32;
    for &seed in seeds {
        let mut rng = StdRng::seed_from_u64(0xE16 + seed);
        let g = random_reweighted_digraph(n, 0.5, 6, &mut rng);
        let oracle = floyd_warshall(&g.adjacency_matrix()).expect("no negative cycles");
        // The (0, 0) cell runs first and anchors the overhead column.
        let mut clean_rounds: Option<u64> = None;
        for &drop in drops {
            for &corrupt in corrupts {
                let plan = FaultPlan {
                    drop_rate: drop,
                    corrupt_rate: corrupt,
                    seed: seed * 1000 + 17,
                    ..FaultPlan::default()
                };
                let net = if plan.is_empty() {
                    NetConfig::default()
                } else {
                    NetConfig::faulty(plan)
                };
                let cfg = DriverConfig {
                    algorithm: ApspAlgorithm::NaiveBroadcast,
                    net,
                    ..DriverConfig::default()
                };
                let mut run_rng = StdRng::seed_from_u64(seed);
                let out = match apsp_driver(&g, &cfg, &mut run_rng, sink.as_ref()) {
                    Ok(out) => out,
                    Err(e) => {
                        eprintln!(
                            "exp_fault_sweep: drop={drop} corrupt={corrupt} seed={seed}: {e}"
                        );
                        failures += 1;
                        continue;
                    }
                };
                if clean_rounds.is_none() {
                    clean_rounds = Some(out.total_rounds);
                }
                let overhead = clean_rounds.filter(|&c| c > 0).map_or_else(
                    || "-".into(),
                    |c| format!("{:.2}x", out.total_rounds as f64 / c as f64),
                );
                if !out.verified || out.report.distances != oracle {
                    eprintln!(
                        "exp_fault_sweep: drop={drop} corrupt={corrupt} seed={seed}: \
                         matrix mismatch or unverified"
                    );
                    failures += 1;
                }
                table.row(&[
                    &drop,
                    &corrupt,
                    &seed,
                    &out.attempts.len(),
                    &out.used_fallback,
                    &out.verified,
                    &out.total_rounds,
                    &overhead,
                ]);
            }
        }
    }
    table.print();
    if let Some(sink) = &sink {
        sink.flush().expect("trace flush");
    }
    if failures > 0 {
        eprintln!("exp_fault_sweep: {failures} cell(s) FAILED");
        std::process::exit(1);
    }
    println!(
        "\n(every cell returned the exact Floyd-Warshall matrix, certificate-verified;\n\
         faults buy retransmit waves and verification products, never wrong answers)"
    );
}
