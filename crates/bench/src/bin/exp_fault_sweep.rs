//! Experiment E16 — the fault sweep: Las-Vegas APSP on lossy networks.
//!
//! A grid of seeded fault plans (drop × corrupt × dup rates, plus
//! fail-stop `crash=NODE@ROUND` cells) is applied to the simulated
//! clique and the self-verifying driver runs APSP on each cell. The
//! claim: behind the reliable envelope and the driver's certificate,
//! every cell either returns the exact Floyd–Warshall matrix or fails
//! with a *typed* outcome (a crashed node exhausts verification) —
//! faults cost rounds and retries, never silent wrong answers. The
//! table reports attempts, fallback use, and the round overhead
//! relative to the fault-free cell of the same seed.
//!
//! Usage: `exp_fault_sweep [--smoke] [--trace FILE]`
//!
//! Exits 1 if any cell's matrix disagrees with Floyd–Warshall, a lossy
//! (non-crash) cell fails verification, or a crash cell fails with
//! anything other than a typed error — this binary doubles as the CI
//! fault-sweep gate.

use qcc_apsp::{apsp_driver, ApspAlgorithm, ApspError, DriverConfig};
use qcc_bench::{banner, take_trace_flag, Table};
use qcc_congest::{FaultPlan, NetConfig};
use qcc_graph::{floyd_warshall, random_reweighted_digraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let sink = take_trace_flag(&mut args).unwrap_or_else(|e| {
        eprintln!("exp_fault_sweep: {e}");
        eprintln!("usage: exp_fault_sweep [--smoke] [--trace FILE]");
        std::process::exit(2);
    });
    let mut smoke = false;
    for a in &args {
        match a.as_str() {
            "--smoke" => smoke = true,
            other => {
                eprintln!("exp_fault_sweep: unknown argument `{other}`");
                eprintln!("usage: exp_fault_sweep [--smoke] [--trace FILE]");
                std::process::exit(2);
            }
        }
    }
    banner(
        "E16",
        "fault sweep: seeded drops/corruption/dups/crashes + envelope + driver stay exact or fail typed",
    );

    let n = if smoke { 8 } else { 10 };
    let seeds: &[u64] = if smoke { &[1] } else { &[1, 2] };
    let drops: &[f64] = if smoke {
        &[0.0, 0.05]
    } else {
        &[0.0, 0.05, 0.2]
    };
    let corrupts: &[f64] = &[0.0, 0.01];
    let dups: &[f64] = if smoke { &[0.0] } else { &[0.0, 0.02] };
    // Fail-stop cells ride on the mid drop rate: an immediate crash can
    // never certify (typed failure), a crash far beyond the round budget
    // behaves like no crash at all (exact matrix).
    let crashes: &[Option<(usize, u64)>] = if smoke {
        &[None, Some((1, 0))]
    } else {
        &[None, Some((1, 0)), Some((2, 1_000_000))]
    };

    let mut table = Table::new(&[
        "drop",
        "corrupt",
        "dup",
        "crash",
        "seed",
        "attempts",
        "fallback",
        "verified",
        "total rounds",
        "overhead",
        "outcome",
    ]);
    let mut failures = 0u32;
    for &seed in seeds {
        let mut rng = StdRng::seed_from_u64(0xE16 + seed);
        let g = random_reweighted_digraph(n, 0.5, 6, &mut rng);
        let oracle = floyd_warshall(&g.adjacency_matrix()).expect("no negative cycles");
        // The all-zero cell runs first and anchors the overhead column.
        let mut clean_rounds: Option<u64> = None;
        for &crash in crashes {
            for &drop in drops {
                for &corrupt in corrupts {
                    for &dup in dups {
                        // Crash cells only extend the mid drop column:
                        // the full cross-product would bloat the grid
                        // without changing what the cells can prove.
                        if crash.is_some() && (drop != drops[1] || corrupt != 0.0 || dup != 0.0) {
                            continue;
                        }
                        let plan = FaultPlan {
                            drop_rate: drop,
                            corrupt_rate: corrupt,
                            duplicate_rate: dup,
                            crashes: crash
                                .map(|(node, round)| (qcc_congest::NodeId::new(node), round))
                                .into_iter()
                                .collect(),
                            seed: seed * 1000 + 17,
                            ..FaultPlan::default()
                        };
                        let spec = plan.to_spec();
                        let crash_label = crash
                            .map_or("-".to_string(), |(node, round)| format!("{node}@{round}"));
                        let net = if plan.is_empty() {
                            NetConfig::default()
                        } else {
                            NetConfig::faulty(plan)
                        };
                        let cfg = DriverConfig {
                            algorithm: ApspAlgorithm::NaiveBroadcast,
                            net,
                            ..DriverConfig::default()
                        };
                        let mut run_rng = StdRng::seed_from_u64(seed);
                        let (row, outcome_ok) =
                            match apsp_driver(&g, &cfg, &mut run_rng, sink.as_ref()) {
                                Ok(out) => {
                                    if clean_rounds.is_none() {
                                        clean_rounds = Some(out.total_rounds);
                                    }
                                    let overhead = clean_rounds.filter(|&c| c > 0).map_or_else(
                                        || "-".into(),
                                        |c| format!("{:.2}x", out.total_rounds as f64 / c as f64),
                                    );
                                    let exact = out.verified && out.report.distances == oracle;
                                    if !exact {
                                        eprintln!(
                                            "exp_fault_sweep: [{spec}] seed={seed}: \
                                             matrix mismatch or unverified"
                                        );
                                    }
                                    (
                                        (
                                            out.attempts.len().to_string(),
                                            out.used_fallback.to_string(),
                                            out.verified.to_string(),
                                            out.total_rounds.to_string(),
                                            overhead,
                                            "exact".to_string(),
                                        ),
                                        exact,
                                    )
                                }
                                // A typed failure is an honest cell — but
                                // only crash plans are allowed to produce
                                // one; the envelope must mask pure rates.
                                Err(e @ ApspError::VerificationFailed { .. }) => {
                                    let ok = crash.is_some();
                                    if !ok {
                                        eprintln!(
                                            "exp_fault_sweep: [{spec}] seed={seed}: \
                                             unexpected failure: {e}"
                                        );
                                    }
                                    (
                                        (
                                            "-".into(),
                                            "-".into(),
                                            "false".into(),
                                            "-".into(),
                                            "-".into(),
                                            "typed-failure".into(),
                                        ),
                                        ok,
                                    )
                                }
                                Err(e) => {
                                    eprintln!("exp_fault_sweep: [{spec}] seed={seed}: {e}");
                                    (
                                        (
                                            "-".into(),
                                            "-".into(),
                                            "false".into(),
                                            "-".into(),
                                            "-".into(),
                                            "error".into(),
                                        ),
                                        false,
                                    )
                                }
                            };
                        if !outcome_ok {
                            failures += 1;
                        }
                        let (attempts, fallback, verified, rounds, overhead, outcome) = row;
                        table.row(&[
                            &drop,
                            &corrupt,
                            &dup,
                            &crash_label,
                            &seed,
                            &attempts,
                            &fallback,
                            &verified,
                            &rounds,
                            &overhead,
                            &outcome,
                        ]);
                    }
                }
            }
        }
    }
    table.print();
    if let Some(sink) = &sink {
        sink.flush().expect("trace flush");
    }
    if failures > 0 {
        eprintln!("exp_fault_sweep: {failures} cell(s) FAILED");
        std::process::exit(1);
    }
    println!(
        "\n(every cell returned the exact Floyd-Warshall matrix or a typed failure;\n\
         rate faults buy retransmit waves and verification products, fail-stop\n\
         crashes exhaust verification honestly - never silent wrong answers)"
    );
}
