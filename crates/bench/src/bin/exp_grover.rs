//! Experiment E10 — Section 4.1: the quadratic search speedup.
//!
//! Paper claim: the distributed Grover framework finds a marked element
//! with `O~(√|X|)` evaluations versus the classical `|X|`. We sweep the
//! domain size, measure evaluation calls for both, and fit the exponents.

use qcc_bench::{banner, loglog_slope, Table};
use qcc_quantum::{classical_search, grover_search_amplified, GroverAmplitudes, SearchOracle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Marked {
    marked: Vec<bool>,
}

impl SearchOracle for Marked {
    fn domain_size(&self) -> usize {
        self.marked.len()
    }
    fn truth(&self, item: usize) -> bool {
        self.marked[item]
    }
    fn evaluate_distributed(&mut self, item: usize) -> bool {
        self.marked[item]
    }
}

fn main() {
    banner(
        "E10",
        "distributed Grover search: O~(sqrt |X|) vs classical |X| evaluations",
    );
    let sizes = [64usize, 256, 1024, 4096, 16384];
    let trials = 25;
    let mut table = Table::new(&[
        "|X|",
        "grover calls (mean)",
        "classical calls (mean)",
        "speedup",
        "theory k*",
        "success",
    ]);
    let mut ns = Vec::new();
    let mut grover_means = Vec::new();

    for &x in &sizes {
        let mut rng = StdRng::seed_from_u64(0xE10 + x as u64);
        let mut g_calls = 0u64;
        let mut c_calls = 0u64;
        let mut successes = 0u32;
        for _ in 0..trials {
            let target = rng.gen_range(0..x);
            let mut marked = vec![false; x];
            marked[target] = true;
            let mut oracle = Marked {
                marked: marked.clone(),
            };
            let out = grover_search_amplified(&mut oracle, 12, &mut rng);
            if out.found == Some(target) {
                successes += 1;
            }
            g_calls += out.distributed_calls;
            let mut oracle = Marked { marked };
            c_calls += classical_search(&mut oracle).distributed_calls;
        }
        let g_mean = g_calls as f64 / f64::from(trials as u32);
        let c_mean = c_calls as f64 / f64::from(trials as u32);
        let k_star = GroverAmplitudes::new(x, 1).optimal_iterations();
        table.row(&[
            &x,
            &format!("{g_mean:.0}"),
            &format!("{c_mean:.0}"),
            &format!("{:.1}x", c_mean / g_mean),
            &k_star,
            &format!("{successes}/{trials}"),
        ]);
        ns.push(x as f64);
        grover_means.push(g_mean);
    }
    table.print();
    if let Some(s) = loglog_slope(&ns, &grover_means) {
        println!("\ngrover-call slope: {s:.2}  (paper: 0.5)");
    }
}
