//! Experiment E14 (extension) — quantum Γ counting and extremum finding.
//!
//! Beyond the paper's detection problem, the toolbox extends to *counting*
//! (amplitude estimation: `Γ(u, v)` to within ±1 with `O(M)` queries,
//! `M ≈ 4π√(Γ(n−Γ))`) and *extremum finding* (Dürr–Høyer: `O(√n)`
//! expected queries). Both are exactly simulated; the counting oracle runs
//! real exchanges on the network.

use qcc_apsp::{quantum_gamma_count, PairSet};
use qcc_bench::{banner, Table};
use qcc_congest::Clique;
use qcc_graph::book_graph;
use qcc_quantum::{quantum_maximum, AmplitudeEstimator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    banner(
        "E14",
        "quantum Gamma counting: amplitude estimation over the apex domain",
    );
    let mut table = Table::new(&[
        "n",
        "true Gamma",
        "register bits",
        "estimate",
        "oracle queries/pair",
        "classical queries",
        "rounds",
    ]);
    for &(n, gamma) in &[(32usize, 4usize), (32, 12), (64, 24), (128, 48)] {
        let g = book_graph(n, gamma);
        let mut pairs = PairSet::new();
        pairs.insert(0, 1);
        let bits = AmplitudeEstimator::new(n, gamma).bits_for_exact_count();
        let mut net = Clique::new(n).unwrap();
        let mut rng = StdRng::seed_from_u64(0xE14 + n as u64);
        let report = quantum_gamma_count(&g, &pairs, bits, 5, &mut net, &mut rng).unwrap();
        let (_, _, est, truth) = report.estimates[0];
        table.row(&[
            &n,
            &truth,
            &bits,
            &est,
            &report.oracle_queries,
            &(n - 2), // classical exact count probes every candidate apex
            &report.rounds,
        ]);
    }
    table.print();
    println!(
        "\n(the register size follows 4π√(Γ(n−Γ)): sublinear in n for sparse Γ;\n\
         at these demonstration sizes the crossover against the classical n−2\n\
         probes appears once Γ ≪ n, e.g. n = 128, Γ = 4)"
    );

    banner(
        "E14b",
        "Duerr-Hoyer extremum: O(sqrt n) expected evaluations",
    );
    let mut table = Table::new(&[
        "n",
        "mean iterations",
        "classical n",
        "mean stages",
        "correct",
    ]);
    let trials = 40;
    for &n in &[64usize, 256, 1024, 4096] {
        let mut rng = StdRng::seed_from_u64(0xE14B + n as u64);
        let values: Vec<i64> = (0..n).map(|_| rng.gen_range(-1000..1000)).collect();
        let truth = *values.iter().max().unwrap();
        let mut total_iters = 0u64;
        let mut total_stages = 0u64;
        let mut correct = 0u32;
        for _ in 0..trials {
            let out = quantum_maximum(n, |i| values[i], &mut rng);
            total_iters += out.iterations;
            total_stages += u64::from(out.stages);
            if values[out.index] == truth {
                correct += 1;
            }
        }
        table.row(&[
            &n,
            &format!("{:.0}", total_iters as f64 / f64::from(trials)),
            &n,
            &format!("{:.1}", total_stages as f64 / f64::from(trials)),
            &format!("{correct}/{trials}"),
        ]);
    }
    table.print();
}
