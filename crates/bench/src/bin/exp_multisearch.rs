//! Experiment E3 — Theorem 3: multiple searches on typical inputs.
//!
//! Paper claims: (a) the truncated multi-search succeeds with probability
//! `≥ 1 − 2/m²`; (b) with `β > 8m/|X|` the sampled query tuples are
//! essentially never atypical (Lemma 5 bounds the atypical mass by
//! `|X|·exp(−2m/(9|X|))`); (c) an *undersized* β breaks the evaluator
//! visibly. We measure all three.

use qcc_bench::{banner, Table};
use qcc_quantum::{
    max_frequency, multi_grover_search, repetitions_for_target, AtypicalInputError, MultiOracle,
    TypicalityBounds,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Needles {
    domain: usize,
    needles: Vec<Option<usize>>,
    beta: f64,
    atypical_seen: u64,
}

impl MultiOracle for Needles {
    fn domain_size(&self) -> usize {
        self.domain
    }
    fn num_searches(&self) -> usize {
        self.needles.len()
    }
    fn truth(&self, search: usize, item: usize) -> bool {
        self.needles[search] == Some(item)
    }
    fn evaluate(&mut self, tuple: &[usize]) -> Result<Vec<bool>, AtypicalInputError> {
        let freq = max_frequency(tuple, self.domain);
        if freq as f64 > self.beta {
            self.atypical_seen += 1;
            return Err(AtypicalInputError {
                max_frequency: freq,
                beta: self.beta,
            });
        }
        Ok(tuple
            .iter()
            .enumerate()
            .map(|(s, &i)| self.needles[s] == Some(i))
            .collect())
    }
    fn evaluate_classical(&mut self, item: usize) -> Vec<bool> {
        self.needles.iter().map(|&t| t == Some(item)).collect()
    }
}

fn run(m: usize, domain: usize, beta: f64, trials: u32, seed: u64) -> (f64, u64, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut full = 0u32;
    let mut violations = 0u64;
    let mut iterations = 0u64;
    for _ in 0..trials {
        let needles: Vec<Option<usize>> = (0..m)
            .map(|_| {
                if rng.gen_bool(0.75) {
                    Some(rng.gen_range(0..domain))
                } else {
                    None
                }
            })
            .collect();
        let mut oracle = Needles {
            domain,
            needles: needles.clone(),
            beta,
            atypical_seen: 0,
        };
        let out = multi_grover_search(&mut oracle, repetitions_for_target(m), &mut rng);
        let ok = out.found.iter().zip(&needles).all(|(f, n)| match n {
            Some(t) => *f == Some(*t),
            None => f.is_none(),
        });
        if ok {
            full += 1;
        }
        violations += out.typicality_violations;
        iterations += out.iterations;
    }
    (
        f64::from(full) / f64::from(trials),
        violations,
        iterations / u64::from(trials),
    )
}

fn main() {
    banner(
        "E3",
        "Theorem 3: parallel searches with a truncated (typical-input) evaluator",
    );
    let trials = 20;
    let mut table = Table::new(&[
        "m",
        "|X|",
        "beta / (m/|X|)",
        "success rate",
        "target 1-2/m^2",
        "atypical rejections",
        "iters/trial",
        "Lemma5 mass bound",
    ]);
    for &(m, domain) in &[
        (64usize, 8usize),
        (256, 8),
        (256, 16),
        (1024, 16),
        (4096, 32),
    ] {
        let beta = 9.0 * m as f64 / domain as f64;
        let bounds = TypicalityBounds::new(m, domain, beta);
        let (rate, violations, iters) = run(m, domain, beta, trials, 0xE3 + m as u64);
        table.row(&[
            &m,
            &domain,
            &"9.0",
            &format!("{rate:.3}"),
            &format!("{:.4}", bounds.success_lower_bound()),
            &violations,
            &iters,
            &format!("{:.1e}", bounds.projection_mass_bound()),
        ]);
    }
    table.print();

    banner(
        "E3b",
        "ablation: an undersized beta forces atypical rejections",
    );
    let mut table = Table::new(&["beta / (m/|X|)", "success rate", "atypical rejections"]);
    let (m, domain) = (512usize, 8usize);
    for &factor in &[9.0f64, 2.0, 1.2, 0.9] {
        let beta = factor * m as f64 / domain as f64;
        let (rate, violations, _) = run(m, domain, beta, trials, 0xE3B);
        table.row(&[&factor, &format!("{rate:.3}"), &violations]);
    }
    table.print();
    println!(
        "\n(beta at 9x the typical frequency: zero rejections; below ~1x the\n\
         evaluator rejects nearly every tuple and searches stop confirming)"
    );
}
