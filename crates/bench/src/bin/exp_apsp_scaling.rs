//! Experiments E1 + E9 — Theorem 1 and the algorithm landscape.
//!
//! E1: the full quantum APSP pipeline is correct and its rounds scale with
//! a smaller exponent than the classical triangle pipeline. E9: round
//! counts of all four APSP algorithms on the same instances (naive `O(n)`,
//! semiring `O~(n^{1/3})`, classical triangle `O~(√n·log W)`, quantum
//! triangle `O~(n^{1/4}·log W)`).
//!
//! End-to-end runs execute the entire reduction stack, so sizes stay
//! moderate; per-stage scaling at larger `n` is covered by E2/E8/E11.

use qcc_apsp::{apsp_traced, ApspAlgorithm, Params};
use qcc_bench::{banner, loglog_slope, take_trace_flag, Table};
use qcc_graph::{floyd_warshall, random_reweighted_digraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let sink = take_trace_flag(&mut args).unwrap_or_else(|e| {
        eprintln!("exp_apsp_scaling: {e}");
        eprintln!("usage: exp_apsp_scaling [--trace FILE]");
        std::process::exit(2);
    });
    if let Some(extra) = args.first() {
        eprintln!("exp_apsp_scaling: unknown argument `{extra}`");
        eprintln!("usage: exp_apsp_scaling [--trace FILE]");
        std::process::exit(2);
    }
    banner(
        "E1/E9",
        "end-to-end APSP: correctness and round counts across algorithms",
    );
    let sizes = [4usize, 8, 12, 16];
    let mut table = Table::new(&[
        "n",
        "naive",
        "semiring",
        "classical-triangle",
        "quantum-triangle",
        "exact",
    ]);
    let mut ns = Vec::new();
    let mut quantum = Vec::new();
    let mut classical = Vec::new();

    for &n in &sizes {
        let mut rng = StdRng::seed_from_u64(0xE1 + n as u64);
        let g = random_reweighted_digraph(n, 0.5, 8, &mut rng);
        let oracle = floyd_warshall(&g.adjacency_matrix()).unwrap();
        let mut params = Params::paper();
        params.search_repetitions = Some(12);

        let mut rounds = Vec::new();
        let mut exact = true;
        for algorithm in [
            ApspAlgorithm::NaiveBroadcast,
            ApspAlgorithm::SemiringSquaring,
            ApspAlgorithm::ClassicalTriangle,
            ApspAlgorithm::QuantumTriangle,
        ] {
            if let Some(sink) = &sink {
                sink.open_span(&format!("e1/n{n}/{algorithm:?}"));
            }
            let report = apsp_traced(&g, params, algorithm, &mut rng, sink.as_ref()).unwrap();
            if let Some(sink) = &sink {
                sink.close_span();
            }
            exact &= report.distances == oracle;
            rounds.push(report.rounds);
        }
        table.row(&[&n, &rounds[0], &rounds[1], &rounds[2], &rounds[3], &exact]);
        ns.push(n as f64);
        classical.push(rounds[2] as f64);
        quantum.push(rounds[3] as f64);
    }
    table.print();

    println!();
    if let (Some(q), Some(c)) = (loglog_slope(&ns, &quantum), loglog_slope(&ns, &classical)) {
        println!("quantum-triangle slope:   {q:.2}");
        println!("classical-triangle slope: {c:.2}");
        println!(
            "(at end-to-end testable sizes the shared reduction machinery — gather,\n\
             covering, identify-class, O(log n · log M) invocations — dominates both\n\
             pipelines equally, so their slopes coincide; the quantum separation is\n\
             in the Step-3 search itself, measured at scale in E2: 0.48 vs 0.96)"
        );
    }

    banner(
        "E1b",
        "log W dependence: rounds grow linearly in log(weight range)",
    );
    let mut table = Table::new(&["W", "quantum rounds", "products", "exact"]);
    let n = 8;
    for &w in &[2u64, 8, 64, 512] {
        let mut rng = StdRng::seed_from_u64(0xE1B + w);
        let g = random_reweighted_digraph(n, 0.5, w, &mut rng);
        let oracle = floyd_warshall(&g.adjacency_matrix()).unwrap();
        let mut params = Params::paper();
        params.search_repetitions = Some(12);
        if let Some(sink) = &sink {
            sink.open_span(&format!("e1b/w{w}"));
        }
        let report = apsp_traced(
            &g,
            params,
            ApspAlgorithm::QuantumTriangle,
            &mut rng,
            sink.as_ref(),
        )
        .unwrap();
        if let Some(sink) = &sink {
            sink.close_span();
        }
        table.row(&[
            &w,
            &report.rounds,
            &report.products,
            &(report.distances == oracle),
        ]);
    }
    table.print();
    if let Some(sink) = &sink {
        sink.flush().expect("trace flush");
    }
}
