//! Host-performance baseline: a fixed workload matrix timed with
//! wall-clock medians, written to `BENCH_baseline.json`.
//!
//! Three workload families:
//!
//! 1. **Tiled min-plus distance product** at `n ∈ {64, 128, 256}`, once
//!    with 1 worker thread and once with 4 — the speedup table quoted in
//!    `README.md`. On a single-core host both configurations time the
//!    same; the JSON records whatever the machine actually delivers.
//! 2. **`Clique::route` stress** — all-to-all fragmented payloads on the
//!    zero-allocation simulator (n = 64, repeated phases on one warm
//!    network instance).
//! 3. **End-to-end E1** — the full quantum APSP pipeline (Theorem 1) at
//!    `n = 81` with scaled params; a single run (it executes millions of
//!    simulated rounds), recording wall-clock and charged rounds.
//!
//! `--smoke` shrinks every workload (n = 64 products, n = 16 pipeline) so
//! CI can exercise the whole harness in seconds. Charged round counts are
//! asserted identical across worker counts — optimisations must never
//! change simulation semantics.
//!
//! Usage: `bench_baseline [--smoke] [--skip-e1] [--out PATH] [--trace FILE]`
//!
//! `--skip-e1` omits the end-to-end quantum APSP workload (`bench_e1`
//! owns that measurement), keeping smoke invocations fast.
//!
//! `--trace FILE` writes an NDJSON congestion trace of the simulated
//! workloads (route stress + end-to-end APSP); render it with
//! `qcc trace-summary FILE`.

use qcc_apsp::{apsp_traced, ApspAlgorithm, Params};
use qcc_congest::{Clique, Envelope, NodeId, RawBits, TraceSink};
use qcc_graph::{
    distance_product_with_threads, random_reweighted_digraph, ExtWeight, WeightMatrix,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

struct Sample {
    name: String,
    n: usize,
    threads: usize,
    reps: usize,
    times_ms: Vec<f64>,
    rounds: Option<u64>,
}

impl Sample {
    fn median_ms(&self) -> f64 {
        let mut sorted = self.times_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let mid = sorted.len() / 2;
        if sorted.len() % 2 == 1 {
            sorted[mid]
        } else {
            (sorted[mid - 1] + sorted[mid]) / 2.0
        }
    }

    fn min_ms(&self) -> f64 {
        self.times_ms.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

/// Times `reps` executions of `f`, preceded by one discarded warmup run
/// (when `reps > 1`) so cold caches, lazy allocations, and first-touch page
/// faults don't skew the recorded samples. Single-rep workloads (the
/// end-to-end pipeline) skip the warmup — doubling a minutes-long run buys
/// no precision.
fn time_reps<F: FnMut()>(reps: usize, mut f: F) -> Vec<f64> {
    if reps > 1 {
        f();
    }
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect()
}

fn random_matrix(n: usize, seed: u64) -> WeightMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    WeightMatrix::from_fn(n, |_, _| {
        if rng.gen_bool(0.85) {
            ExtWeight::from(rng.gen_range(-40..=40))
        } else {
            ExtWeight::PosInf
        }
    })
}

fn bench_distance_products(sizes: &[usize], reps: usize, out: &mut Vec<Sample>) {
    for &n in sizes {
        let a = random_matrix(n, 0xA0 + n as u64);
        let b = random_matrix(n, 0xB0 + n as u64);
        let reference = distance_product_with_threads(&a, &b, 1);
        for threads in [1usize, 4] {
            let times_ms = time_reps(reps, || {
                let c = distance_product_with_threads(&a, &b, threads);
                assert_eq!(c, reference, "worker count changed the product");
            });
            out.push(Sample {
                name: "distance_product".into(),
                n,
                threads,
                reps,
                times_ms,
                rounds: None,
            });
        }
    }
}

fn bench_route_stress(n: usize, reps: usize, sink: Option<&TraceSink>, out: &mut Vec<Sample>) {
    // All-to-all fragmented payloads: every node sends 3 bandwidth-widths
    // to every other node, so Lemma 1 relaying and fragmentation both run.
    let bits = 16;
    let sends: Vec<Envelope<RawBits>> = (0..n)
        .flat_map(|u| {
            (0..n).filter(move |&v| v != u).map(move |v| {
                Envelope::new(NodeId::new(u), NodeId::new(v), RawBits::new(0, 3 * bits))
            })
        })
        .collect();
    let mut net = Clique::with_bandwidth(n, bits).expect("valid network");
    if let Some(sink) = sink {
        net.set_trace_sink(sink.clone());
    }
    net.push_span("route-stress");
    let mut rounds_per_phase = None;
    let times_ms = time_reps(reps, || {
        let before = net.rounds();
        net.route(sends.clone()).expect("route succeeds");
        let phase = net.rounds() - before;
        // Warm scratch must not change charged rounds between phases.
        assert_eq!(*rounds_per_phase.get_or_insert(phase), phase);
    });
    net.close_all_spans();
    out.push(Sample {
        name: "clique_route_all_to_all".into(),
        n,
        threads: 1,
        reps,
        times_ms,
        rounds: rounds_per_phase,
    });
}

fn bench_apsp_e2e(n: usize, sink: Option<&TraceSink>, out: &mut Vec<Sample>) {
    let mut rng = StdRng::seed_from_u64(0xE1);
    let g = random_reweighted_digraph(n, 0.5, 8, &mut rng);
    let mut rounds = 0;
    let times_ms = time_reps(1, || {
        let report = apsp_traced(
            &g,
            Params::scaled(),
            ApspAlgorithm::QuantumTriangle,
            &mut rng,
            sink,
        )
        .expect("pipeline succeeds");
        rounds = report.rounds;
    });
    out.push(Sample {
        name: "apsp_e2e_quantum".into(),
        n,
        threads: 1,
        reps: 1,
        times_ms,
        rounds: Some(rounds),
    });
}

fn to_json(samples: &[Sample], mode: &str) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"qcc-bench-baseline/v1\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    let _ = writeln!(
        s,
        "  \"host_available_parallelism\": {},",
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    );
    s.push_str("  \"workloads\": [\n");
    for (i, sample) in samples.iter().enumerate() {
        s.push_str("    {");
        let _ = write!(
            s,
            "\"name\": \"{}\", \"n\": {}, \"threads\": {}, \"reps\": {}, \"median_ms\": {:.3}, \"min_ms\": {:.3}",
            sample.name,
            sample.n,
            sample.threads,
            sample.reps,
            sample.median_ms(),
            sample.min_ms()
        );
        if let Some(r) = sample.rounds {
            let _ = write!(s, ", \"rounds\": {r}");
        }
        let _ = write!(s, ", \"all_ms\": [");
        for (j, t) in sample.times_ms.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "{t:.3}");
        }
        s.push_str("]}");
        s.push_str(if i + 1 < samples.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut skip_e1 = false;
    let mut out_path = String::from("BENCH_baseline.json");
    let mut trace_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--skip-e1" => skip_e1 = true,
            "--out" => match it.next() {
                Some(path) => out_path = path.clone(),
                None => {
                    eprintln!("bench_baseline: --out requires a path");
                    std::process::exit(2);
                }
            },
            "--trace" => match it.next() {
                Some(path) => trace_path = Some(path.clone()),
                None => {
                    eprintln!("bench_baseline: --trace requires a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("bench_baseline: unknown argument `{other}`");
                eprintln!(
                    "usage: bench_baseline [--smoke] [--skip-e1] [--out PATH] [--trace FILE]"
                );
                std::process::exit(2);
            }
        }
    }
    let sink = trace_path.map(|p| {
        TraceSink::to_file(&p).unwrap_or_else(|e| {
            eprintln!("bench_baseline: cannot create trace file {p}: {e}");
            std::process::exit(2);
        })
    });

    let (sizes, reps, e2e_n): (&[usize], usize, usize) = if smoke {
        (&[64], 2, 16)
    } else {
        (&[64, 128, 256], 5, 81)
    };

    let mut samples = Vec::new();
    eprintln!("bench_baseline: distance products (n = {sizes:?}, {reps} reps) ...");
    bench_distance_products(sizes, reps, &mut samples);
    eprintln!("bench_baseline: Clique::route stress ...");
    bench_route_stress(64, reps, sink.as_ref(), &mut samples);
    if skip_e1 {
        // `bench_e1` owns the end-to-end E1 measurement; skipping it here
        // keeps smoke invocations out of the ~34 s run.
        eprintln!("bench_baseline: skipping end-to-end APSP (--skip-e1)");
    } else {
        eprintln!("bench_baseline: end-to-end quantum APSP at n = {e2e_n} (single run) ...");
        bench_apsp_e2e(e2e_n, sink.as_ref(), &mut samples);
    }
    if let Some(sink) = &sink {
        sink.flush().expect("trace flush");
    }

    let json = to_json(&samples, if smoke { "smoke" } else { "full" });
    std::fs::write(&out_path, &json).expect("write baseline JSON");
    println!("{json}");
    eprintln!("bench_baseline: wrote {out_path}");
}
