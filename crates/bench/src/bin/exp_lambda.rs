//! Experiment E5 — Lemma 2: the Λ coverings are well-balanced and complete.
//!
//! Paper claim: with probability `≥ 1 − 2/n` every `Λ_x(u, v)` is
//! well-balanced and the union covers `P(u, v)`. We resample coverings
//! many times at each size and measure abort and coverage frequencies,
//! both with the paper constants (sampling clamps to 1 at these sizes) and
//! with a reduced rate that keeps sampling genuinely probabilistic.

use qcc_apsp::lambda::{build_lambda_cover, LambdaAttempt};
use qcc_apsp::{Instance, PairSet, Params};
use qcc_bench::{banner, Table};
use qcc_congest::Clique;
use qcc_graph::random_ugraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn trial_stats(n: usize, params: Params, trials: u32, seed: u64) -> (u32, u32, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = random_ugraph(n, (12.0 / n as f64).min(0.6), 4, &mut rng);
    let s = PairSet::all_pairs(n);
    let inst = Instance::new(&g, &s, params);
    let mut aborts = 0;
    let mut covered = 0;
    let mut kept_total = 0u64;
    for _ in 0..trials {
        let mut net = Clique::new(n).unwrap();
        match build_lambda_cover(&inst, &mut net, &mut rng).unwrap() {
            LambdaAttempt::Aborted { .. } => aborts += 1,
            LambdaAttempt::Balanced(cover) => {
                if cover.covers_all_s_edges(&inst) {
                    covered += 1;
                }
                kept_total += cover.total_kept() as u64;
            }
        }
    }
    let balanced = trials - aborts;
    let mean_kept = if balanced > 0 {
        kept_total as f64 / f64::from(balanced)
    } else {
        0.0
    };
    (aborts, covered, mean_kept)
}

fn main() {
    banner(
        "E5",
        "Lemma 2: abort and coverage frequencies of the Lambda covering",
    );
    let trials = 40;

    let mut table = Table::new(&[
        "n",
        "p (paper)",
        "aborts",
        "covered",
        "bound 1-2/n",
        "mean kept pairs",
    ]);
    for &n in &[16usize, 81, 256] {
        let params = Params::paper();
        let (aborts, covered, kept) = trial_stats(n, params, trials, 0xE5 + n as u64);
        table.row(&[
            &n,
            &format!("{:.2}", params.lambda_probability(n)),
            &format!("{aborts}/{trials}"),
            &format!("{covered}/{trials}"),
            &format!("{:.3}", 1.0 - 2.0 / n as f64),
            &format!("{kept:.0}"),
        ]);
    }
    table.print();

    banner(
        "E5b",
        "sub-unit sampling: coverage survives once p*sqrt(n) >> ln n",
    );
    let mut table = Table::new(&[
        "n",
        "lambda_rate",
        "p",
        "aborts",
        "covered",
        "mean kept pairs",
    ]);
    for &(n, rate) in &[(81usize, 1.2f64), (256, 1.6), (256, 0.8), (625, 1.6)] {
        let mut params = Params::paper();
        params.lambda_rate = rate;
        let (aborts, covered, kept) = trial_stats(n, params, trials, 0xE5B + n as u64);
        table.row(&[
            &n,
            &rate,
            &format!("{:.2}", params.lambda_probability(n)),
            &format!("{aborts}/{trials}"),
            &format!("{covered}/{trials}"),
            &format!("{kept:.0}"),
        ]);
    }
    table.print();
    println!(
        "\n(higher rates keep coverage at {trials}/{trials}; cutting the rate below the\n\
         Lemma 2 threshold loses pairs, exactly as the union bound predicts)"
    );
}
