//! Experiment E4 — Proposition 1: removing the promise by edge sampling.
//!
//! Paper claim: Algorithm B solves unrestricted `FindEdges` with
//! `O(log n)` calls to the promise solver, succeeding with probability
//! `1 − O((ε + 1/n³) log n)`. We build instances whose `Γ` distribution is
//! deliberately skewed (book graphs with spines up to `Γ = n − 3`), run
//! the loop across many seeds, and record invocation counts and exactness.

use qcc_apsp::{
    find_edges, find_edges_instrumented, reference_find_edges, PairSet, Params, SearchBackend,
};
use qcc_bench::{banner, Table};
use qcc_congest::Clique;
use qcc_graph::book_graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner(
        "E4",
        "Proposition 1: FindEdges via O(log n) promise-solver calls",
    );
    let trials = 10u32;
    let mut table = Table::new(&[
        "n",
        "max Gamma",
        "params",
        "invocations (mean)",
        "exact runs",
        "rounds (mean)",
    ]);

    for &(n, gamma) in &[(16usize, 13usize), (32, 29), (64, 30)] {
        let g = book_graph(n, gamma);
        let s = PairSet::all_pairs(n);
        let expected = reference_find_edges(&g, &s);
        for (name, params) in [("paper", Params::paper()), ("scaled", Params::scaled())] {
            let mut exact = 0u32;
            let mut invocations = 0u64;
            let mut rounds = 0u64;
            for t in 0..trials {
                let mut rng = StdRng::seed_from_u64(0xE4 + n as u64 * 100 + u64::from(t));
                let mut net = Clique::new(n).unwrap();
                let report =
                    find_edges(&g, &s, params, SearchBackend::Quantum, &mut net, &mut rng).unwrap();
                if report.found == expected {
                    exact += 1;
                }
                invocations += u64::from(report.invocations);
                rounds += report.rounds;
            }
            table.row(&[
                &n,
                &gamma,
                &name,
                &format!("{:.1}", invocations as f64 / f64::from(trials)),
                &format!("{exact}/{trials}"),
                &format!("{:.0}", rounds as f64 / f64::from(trials)),
            ]);
        }
    }
    table.print();
    println!(
        "\n(paper constants: the while-loop is vacuous below n ≈ 60·log n, one call\n\
         suffices; scaled constants exercise the sampled iterations and stay exact)"
    );

    banner(
        "E4b",
        "inside one Algorithm B run: the loop schedule (n = 64, Gamma = 30, scaled)",
    );
    let g = book_graph(64, 30);
    let s = PairSet::all_pairs(64);
    let mut net = Clique::new(64).unwrap();
    let mut rng = StdRng::seed_from_u64(0xE4B);
    let (report, loop_stats) = find_edges_instrumented(
        &g,
        &s,
        Params::scaled(),
        SearchBackend::Quantum,
        &mut net,
        &mut rng,
    )
    .unwrap();
    let mut table = Table::new(&[
        "iteration",
        "p (edge sampling)",
        "sampled edges",
        "max Gamma in G'",
        "caught pairs",
        "|S| before",
    ]);
    for ls in &loop_stats {
        table.row(&[
            &ls.iteration,
            &format!("{:.3}", ls.sampling_probability),
            &ls.sampled_edges,
            &ls.max_gamma_sampled,
            &ls.caught,
            &ls.remaining_before,
        ]);
    }
    table.print();
    println!(
        "\n(sampling thins Γ below the promise in the early iterations; the final\n\
         p = 1 call cleans up; total found: {} pairs, exact: {})",
        report.found.len(),
        report.found == reference_find_edges(&g, &s)
    );
}
