//! Experiment E12 — the load-balancing ablation (Section 5.3).
//!
//! Paper narrative: without the class machinery, a node `(u, v, w)` whose
//! fine block holds the apexes of *many* negative triangles receives
//! `Θ(m√n)` queries in one evaluation — `Θ~(√n)` rounds of congestion.
//! The class partition plus Figure-5 duplication spreads exactly that load.
//!
//! We build the adversarial hotspot instance, run one evaluation step with
//! every query aimed at the hot block, and compare three configurations:
//! unbounded classical (pays the congestion), promise-gated Figure 4
//! (refuses), and Figure 5 with duplication (accepts and stays flat).

use qcc_apsp::eval_procedure::{evaluate_joint, evaluate_joint_unbounded, AlphaContext, EvalQuery};
use qcc_apsp::gather::gather_weights;
use qcc_apsp::lambda::KeptPair;
use qcc_apsp::{Instance, PairSet, Params};
use qcc_bench::{banner, take_trace_flag, Table};
use qcc_congest::Clique;
use qcc_graph::congestion_hotspot;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let sink = take_trace_flag(&mut args).unwrap_or_else(|e| {
        eprintln!("exp_congestion: {e}");
        eprintln!("usage: exp_congestion [--trace FILE]");
        std::process::exit(2);
    });
    if let Some(extra) = args.first() {
        eprintln!("exp_congestion: unknown argument `{extra}`");
        eprintln!("usage: exp_congestion [--trace FILE]");
        std::process::exit(2);
    }
    banner(
        "E12",
        "load-balancing ablation: hot-block queries with and without the machinery",
    );
    let n = 256;
    let (g, base_pairs) = congestion_hotspot(n, 64, 16);
    let s = PairSet::all_pairs(n);

    // All apexes sit in the fine blocks right after the base pairs; pick
    // the block holding the first apexes as the hot target.
    let params = Params::paper();
    let inst = Instance::new(&g, &s, params);
    let hot_block = inst.parts.fine.block_of(2 * 64); // first apex vertex
    let mut net = Clique::new(n).unwrap();
    if let Some(sink) = &sink {
        net.set_trace_sink(sink.clone());
    }
    net.push_span("e12");
    let gathered = gather_weights(&inst, &mut net).unwrap();
    let labels: Vec<usize> = (0..inst.triples.labeling().label_count()).collect();

    // Every base pair queries the hot block from every search node that
    // keeps it — the worst case the class machinery is built for.
    let build_queries = |inst: &Instance<'_>| -> Vec<EvalQuery> {
        let mut queries = Vec::new();
        for &(u, v) in &base_pairs {
            let bu = inst.parts.coarse.block_of(u);
            let bv = inst.parts.coarse.block_of(v);
            let w = g.weight(u, v).finite().expect("base pairs are edges");
            for x in 0..inst.parts.fine.num_blocks() {
                queries.push(EvalQuery {
                    search_label: inst.searches.encode(bu.min(bv), bu.max(bv), x),
                    pair: KeptPair { u, v, weight: w },
                    target: hot_block,
                });
            }
        }
        queries
    };

    let mut table = Table::new(&["configuration", "outcome", "rounds", "max link bits"]);

    // (a) unbounded classical evaluator: pays the congestion.
    let queries = build_queries(&inst);
    let actx = AlphaContext::build(&inst, &mut net, 0, &labels).unwrap();
    net.begin_phase("e12/unbounded");
    let before = net.rounds();
    evaluate_joint_unbounded(&inst, &mut net, &gathered, &actx, &queries).unwrap();
    let unbounded_rounds = net.rounds() - before;
    let unbounded_link = last_max_link(&net);
    table.row(&[
        &"classical unbounded",
        &"answered",
        &unbounded_rounds,
        &unbounded_link,
    ]);

    // (b) promise-gated Figure 4 with a tight cap: refuses the hot load.
    let mut tight = params;
    tight.list_bound = 0.05; // cap ≈ 0.05·√n·log n = 6.4 < per-list load
    let inst_tight = Instance::new(&g, &s, tight);
    let queries_t = build_queries(&inst_tight);
    let actx_t = AlphaContext::build(&inst_tight, &mut net, 0, &labels).unwrap();
    net.begin_phase("e12/gated");
    let before = net.rounds();
    let refused = evaluate_joint(&inst_tight, &mut net, &gathered, &actx_t, &queries_t).is_err();
    let gated_rounds = net.rounds() - before;
    table.row(&[
        &"Figure 4, tight promise gate",
        &(if refused {
            "refused (atypical)"
        } else {
            "answered"
        }),
        &gated_rounds,
        &0u64,
    ]);

    // (c) Figure 5 with duplication: accepts the same load, spread flat.
    let mut dup_params = params;
    dup_params.dup_denominator = 0.02; // alpha = 3 => dup = floor(8/(0.02·8)) = 50 copies
    let inst_d = Instance::new(&g, &s, dup_params);
    let queries_d = build_queries(&inst_d);
    let actx_d = AlphaContext::build(&inst_d, &mut net, 3, &labels).unwrap();
    net.begin_phase("e12/duplicated");
    let before = net.rounds();
    evaluate_joint(&inst_d, &mut net, &gathered, &actx_d, &queries_d).unwrap();
    let dup_rounds = net.rounds() - before;
    let dup_link = last_max_link(&net);
    table.row(&[
        &format!("Figure 5, {} copies", actx_d.dup),
        &"answered",
        &dup_rounds,
        &dup_link,
    ]);

    net.close_all_spans();
    table.print();
    println!(
        "\n(duplication cuts the busiest link by ~{}x at the cost of a one-time\n\
         table broadcast, exactly Section 5.3.2's trade)",
        unbounded_link.checked_div(dup_link).unwrap_or(0)
    );

    // E12b: why the covering is randomized (Section 5.1).
    banner(
        "E12b",
        "random vs deterministic covering on adversarially ordered triangle pairs",
    );
    let n2 = 64;
    let mut g2 = qcc_graph::UGraph::new(n2);
    // 30 consecutive pairs {0,v} all in negative triangles through apex 50
    for v in 1..=30 {
        g2.add_edge(0, v, -10);
        g2.add_edge(v, 50, 4);
    }
    g2.add_edge(0, 50, 4);
    let s2 = PairSet::all_pairs(n2);
    // sub-unit sampling rate so the randomized covering actually spreads
    let mut thin = Params::paper();
    thin.lambda_rate = 0.25; // p ≈ 0.19 at n = 64
    let inst2 = Instance::new(&g2, &s2, thin);
    let delta: Vec<(usize, usize)> = (1..=30).map(|v| (0usize, v)).collect();

    let max_overlap = |cover: &qcc_apsp::LambdaCover| -> usize {
        cover
            .kept
            .iter()
            .map(|list| {
                list.iter()
                    .filter(|kp| delta.contains(&(kp.u, kp.v)))
                    .count()
            })
            .max()
            .unwrap_or(0)
    };

    let mut net2 = Clique::new(n2).unwrap();
    if let Some(sink) = &sink {
        net2.set_trace_sink(sink.clone());
    }
    net2.push_span("e12b");
    let det = qcc_apsp::build_deterministic_cover(&inst2, &mut net2).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xE12B);
    use rand::SeedableRng;
    let rnd = qcc_apsp::build_lambda_cover_with_retry(&inst2, &mut net2, 10, &mut rng).unwrap();

    let mut table = Table::new(&["covering", "max |Lambda_x ∩ Delta| (one label)", "|Delta|"]);
    table.row(&[&"deterministic chunks", &max_overlap(&det), &delta.len()]);
    table.row(&[&"randomized (paper)", &max_overlap(&rnd), &delta.len()]);
    net2.close_all_spans();
    table.print();
    println!(
        "\n(the randomized cover spreads Delta across the sqrt(n) labels — the\n\
         mechanism behind Lemma 3 — while deterministic chunks hand an\n\
         adversary a single hot label forever; this is why Section 5.1 uses a\n\
         random covering rather than a partition)"
    );
    if let Some(sink) = &sink {
        sink.flush().expect("trace flush");
    }
}

fn last_max_link(net: &Clique) -> u64 {
    net.metrics()
        .phases()
        .iter()
        .rev()
        .take_while(|p| !p.label.starts_with("e12/"))
        .map(|p| p.max_link_bits)
        .max()
        .unwrap_or(0)
}
