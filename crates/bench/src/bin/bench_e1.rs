//! E1 end-to-end wall-clock bench: the full quantum APSP pipeline on the
//! fixed E1 instance (seed `0xE1`, density 0.5, weights ≤ 8, scaled
//! params), timed at a configurable `n`.
//!
//! This is the workload `BENCH_baseline.json` pins at n = 81 (337.6 s /
//! 9,767,313 charged rounds on the recording host). The binary exists so
//! that the batched-simulator speedups are visible as a standalone
//! artifact (`BENCH_e1_fast.json`) and so CI can smoke-test for wall-clock
//! regressions at a reduced `n` against a checked-in reference.
//!
//! Usage:
//!
//! ```text
//! bench_e1 [--n N] [--reps R] [--out PATH] [--trace FILE]
//!          [--check REF.json] [--max-ratio X]
//! ```
//!
//! * Every rep replays the *identical* run (the RNG is re-seeded per rep),
//!   so charged rounds are asserted equal across reps. One warmup rep is
//!   executed and discarded before timing.
//! * `--check REF.json` compares this run's `min_ms` against the
//!   reference's `min_ms` (falling back to `median_ms`) and exits 1 when
//!   it regressed by more than `--max-ratio` (default 2.0). `min_ms` is
//!   compared because it is the noise-robust statistic on shared CI hosts.
//! * The JSON also records `trimmed_mean_ms` (mean with the fastest and
//!   slowest rep dropped) as the typical-rep statistic; it is reported,
//!   never gated on. See EXPERIMENTS.md for the rationale.

use qcc_apsp::{apsp_traced, ApspAlgorithm, Params};
use qcc_congest::TraceSink;
use qcc_graph::random_reweighted_digraph;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;

struct E1Result {
    n: usize,
    reps: usize,
    times_ms: Vec<f64>,
    rounds: u64,
}

fn median(sorted: &[f64]) -> f64 {
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// Mean with the extremes dropped (when there are at least three
/// samples): E1 tails are high-variance, so the trimmed mean tracks the
/// typical rep better than the plain mean without being as optimistic as
/// the min.
fn trimmed_mean(sorted: &[f64]) -> f64 {
    let trimmed = if sorted.len() >= 3 {
        &sorted[1..sorted.len() - 1]
    } else {
        sorted
    };
    trimmed.iter().sum::<f64>() / trimmed.len() as f64
}

fn run_e1(n: usize, reps: usize, sink: Option<&TraceSink>) -> E1Result {
    // The E1 instance of bench_baseline, byte for byte: graph and
    // algorithm randomness both come from the 0xE1 stream.
    let mut times_ms = Vec::with_capacity(reps);
    let mut rounds: Option<u64> = None;
    // Rep 0 is a discarded warmup: it faults in code pages and warms the
    // allocator so the timed reps measure steady state.
    for rep in 0..=reps {
        let mut rng = StdRng::seed_from_u64(0xE1);
        let g = random_reweighted_digraph(n, 0.5, 8, &mut rng);
        let timed_sink = if rep == 1 { sink } else { None };
        let t = Instant::now();
        let report = apsp_traced(
            &g,
            Params::scaled(),
            ApspAlgorithm::QuantumTriangle,
            &mut rng,
            timed_sink,
        )
        .expect("pipeline succeeds");
        let elapsed = t.elapsed().as_secs_f64() * 1e3;
        // Identical seed ⇒ identical simulation: any drift in charged
        // rounds between reps is a determinism bug.
        assert_eq!(
            *rounds.get_or_insert(report.rounds),
            report.rounds,
            "charged rounds drifted between identical reps"
        );
        if rep > 0 {
            times_ms.push(elapsed);
        }
        eprintln!(
            "bench_e1: rep {rep}{} n={n}: {elapsed:.1} ms, {} rounds",
            if rep == 0 { " (warmup, discarded)" } else { "" },
            report.rounds
        );
    }
    E1Result {
        n,
        reps,
        times_ms,
        rounds: rounds.expect("at least one rep ran"),
    }
}

fn to_json(r: &E1Result) -> String {
    let mut sorted = r.times_ms.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"qcc-bench-e1/v1\",");
    let _ = writeln!(
        s,
        "  \"host_available_parallelism\": {},",
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    );
    let _ = writeln!(s, "  \"n\": {},", r.n);
    let _ = writeln!(s, "  \"reps\": {},", r.reps);
    let _ = writeln!(s, "  \"median_ms\": {:.3},", median(&sorted));
    let _ = writeln!(s, "  \"trimmed_mean_ms\": {:.3},", trimmed_mean(&sorted));
    let _ = writeln!(s, "  \"min_ms\": {:.3},", sorted[0]);
    let _ = writeln!(s, "  \"rounds\": {},", r.rounds);
    let _ = write!(s, "  \"all_ms\": [");
    for (j, t) in r.times_ms.iter().enumerate() {
        if j > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{t:.3}");
    }
    s.push_str("]\n}\n");
    s
}

/// Pulls `"key": <number>` out of a flat JSON object without a JSON
/// dependency (the bench JSON is machine-written, schema-stable).
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut n = 81usize;
    let mut reps = 1usize;
    let mut out_path = String::from("BENCH_e1_fast.json");
    let mut trace_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut max_ratio = 2.0f64;
    let mut it = args.iter();
    let usage = "usage: bench_e1 [--n N] [--reps R] [--out PATH] [--trace FILE] \
                 [--check REF.json] [--max-ratio X]";
    let take = |it: &mut std::slice::Iter<String>, flag: &str| -> String {
        it.next().cloned().unwrap_or_else(|| {
            eprintln!("bench_e1: {flag} requires a value\n{usage}");
            std::process::exit(2);
        })
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--n" => {
                n = take(&mut it, "--n").parse().unwrap_or_else(|_| {
                    eprintln!("bench_e1: --n requires an integer");
                    std::process::exit(2);
                })
            }
            "--reps" => {
                reps = take(&mut it, "--reps").parse().unwrap_or_else(|_| {
                    eprintln!("bench_e1: --reps requires an integer");
                    std::process::exit(2);
                })
            }
            "--out" => out_path = take(&mut it, "--out"),
            "--trace" => trace_path = Some(take(&mut it, "--trace")),
            "--check" => check_path = Some(take(&mut it, "--check")),
            "--max-ratio" => {
                max_ratio = take(&mut it, "--max-ratio").parse().unwrap_or_else(|_| {
                    eprintln!("bench_e1: --max-ratio requires a number");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("bench_e1: unknown argument `{other}`\n{usage}");
                std::process::exit(2);
            }
        }
    }
    if reps == 0 {
        eprintln!("bench_e1: --reps must be at least 1");
        std::process::exit(2);
    }
    let sink = trace_path.map(|p| {
        TraceSink::to_file(&p).unwrap_or_else(|e| {
            eprintln!("bench_e1: cannot create trace file {p}: {e}");
            std::process::exit(2);
        })
    });

    let result = run_e1(n, reps, sink.as_ref());
    if let Some(sink) = &sink {
        sink.flush().expect("trace flush");
    }
    let json = to_json(&result);
    std::fs::write(&out_path, &json).expect("write bench JSON");
    println!("{json}");
    eprintln!("bench_e1: wrote {out_path}");

    if let Some(ref_path) = check_path {
        let ref_text = std::fs::read_to_string(&ref_path).unwrap_or_else(|e| {
            eprintln!("bench_e1: cannot read reference {ref_path}: {e}");
            std::process::exit(2);
        });
        let ref_ms = json_number(&ref_text, "min_ms")
            .or_else(|| json_number(&ref_text, "median_ms"))
            .unwrap_or_else(|| {
                eprintln!("bench_e1: reference {ref_path} has no min_ms/median_ms");
                std::process::exit(2);
            });
        let mut sorted = result.times_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let ours = sorted[0];
        let ratio = ours / ref_ms;
        if let Some(ref_rounds) = json_number(&ref_text, "rounds") {
            let ref_rounds = ref_rounds as u64;
            if ref_rounds != result.rounds {
                eprintln!(
                    "bench_e1: FAIL — charged rounds {} differ from reference {} \
                     (simulation semantics changed)",
                    result.rounds, ref_rounds
                );
                std::process::exit(1);
            }
        }
        if ratio > max_ratio {
            eprintln!(
                "bench_e1: FAIL — min {ours:.1} ms is {ratio:.2}x the reference \
                 {ref_ms:.1} ms (limit {max_ratio}x)"
            );
            std::process::exit(1);
        }
        eprintln!(
            "bench_e1: check OK — min {ours:.1} ms vs reference {ref_ms:.1} ms \
             ({ratio:.2}x, limit {max_ratio}x)"
        );
    }
}
