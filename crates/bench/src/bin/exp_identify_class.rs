//! Experiments E6 + E7 — Proposition 5 and Lemmas 3–4.
//!
//! E6: `IdentifyClass` assigns classes that bracket the true `|Δ(u,v;w)|`
//! (Proposition 5's bands). E7: the per-class structure the load balancing
//! relies on — `|Λ_x ∩ Δ|` stays below its cap (Lemma 3) and heavy classes
//! contain few triples (Lemma 4).

use qcc_apsp::identify_class::identify_class_with_retry;
use qcc_apsp::lambda::build_lambda_cover_with_retry;
use qcc_apsp::{Instance, PairSet, Params};
use qcc_bench::{banner, Table};
use qcc_congest::Clique;
use qcc_graph::congestion_hotspot;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner("E6", "Proposition 5: class bands bracket the true |Delta|");
    let n = 256;
    // hotspot: 16 base pairs, each in 32 negative triangles, concentrated
    let (g, _) = congestion_hotspot(n, 16, 32);
    let s = PairSet::all_pairs(n);
    let mut params = Params::paper();
    params.class_threshold = 0.5;
    let inst = Instance::new(&g, &s, params);
    let mut net = Clique::new(n).unwrap();
    let mut rng = StdRng::seed_from_u64(0xE6);
    let classes = identify_class_with_retry(&inst, &mut net, 10, &mut rng).unwrap();

    let mut table = Table::new(&[
        "class alpha",
        "triples",
        "min |Delta|",
        "max |Delta|",
        "band check (monotone d)",
    ]);
    let mut rows = 0;
    for alpha in 0..=classes.max_class() {
        let mut min_d = usize::MAX;
        let mut max_d = 0usize;
        let mut count = 0usize;
        for (label, (bu, bv, bw)) in inst.triples.triples() {
            if classes.class_of[label] != alpha {
                continue;
            }
            let delta = inst.delta(bu, bv, bw).len();
            min_d = min_d.min(delta);
            max_d = max_d.max(delta);
            count += 1;
        }
        if count == 0 {
            continue;
        }
        rows += 1;
        table.row(&[&alpha, &count, &min_d, &max_d, &"see E6 note"]);
    }
    table.print();
    println!("({rows} classes in use; higher classes hold strictly heavier triples)");

    banner(
        "E7",
        "Lemmas 3-4: per-search solution density and heavy-class scarcity",
    );
    let cover = build_lambda_cover_with_retry(&inst, &mut net, 10, &mut rng).unwrap();
    let mut table = Table::new(&[
        "alpha",
        "|T_alpha| (max over (u,v))",
        "Lemma 4 cap",
        "max |Lambda_x ∩ Delta|",
        "Lemma 3 cap",
    ]);
    let q = inst.parts.coarse.num_blocks();
    let log_n = Params::log_n(n);
    for alpha in 0..=classes.max_class() {
        let mut max_t = 0usize;
        for bu in 0..q {
            for bv in 0..q {
                max_t = max_t.max(classes.t_alpha(&inst, bu, bv, alpha).len());
            }
        }
        if max_t == 0 {
            continue;
        }
        // Lemma 3: |Λ_x ∩ Δ| ≤ 100·2^α·√n·log n (paper constants).
        let mut max_overlap = 0usize;
        for (label, (bu, bv, _x)) in inst.searches.triples() {
            for bw in classes.t_alpha(&inst, bu, bv, alpha) {
                let delta = inst.delta(bu, bv, bw);
                let overlap = cover.kept[label]
                    .iter()
                    .filter(|kp| delta.contains(&(kp.u, kp.v)))
                    .count();
                max_overlap = max_overlap.max(overlap);
            }
        }
        let lemma3_cap = 100.0 * 2f64.powi(alpha as i32) * (n as f64).sqrt() * log_n;
        let lemma4_cap = 720.0 * (n as f64).sqrt() * log_n / 2f64.powi(alpha as i32);
        table.row(&[
            &alpha,
            &max_t,
            &format!("{lemma4_cap:.0}"),
            &max_overlap,
            &format!("{lemma3_cap:.0}"),
        ]);
    }
    table.print();
    println!("\n(measured values sit far inside both caps, as the union bounds require)");
}
