//! Experiment E18 — the transport matrix: graceful degradation across
//! topology × transport × fault grid (`BENCH_transport_matrix.json`).
//!
//! Every cell runs APSP on the same seeded graph through one of three
//! delivery mechanisms and asserts the exact Floyd–Warshall matrix (or
//! an honest typed failure, for fail-stop cells):
//!
//! * **envelope on the clique** — the PR-5 ack/retransmit reliable
//!   envelope under the Las-Vegas driver: retransmission buys delivery.
//! * **envelope off the clique** — uncoded flooding (RLNC with one
//!   chunk): repetition buys delivery on general topologies.
//! * **gossip** — random linear network coding over GF(256):
//!   redundancy buys delivery, and the matrix measures its price as
//!   wasted (non-innovative) bandwidth and full-node progress.
//!
//! The point of the grid: none of the three mechanisms is allowed to
//! degrade into a silent wrong answer. Lossy cells must survive with
//! the exact matrix; crash cells must fail with a typed error.
//!
//! Usage: `exp_transport_matrix [--smoke] [--out PATH] [--trace FILE]`
//!
//! Exit codes: 0 on success; 1 when any surviving cell's matrix
//! disagrees with Floyd–Warshall, a non-crash cell fails outright, or a
//! crash cell produces an untyped outcome; 2 on usage errors.

use qcc_apsp::{
    apsp_driver, gossip_apsp, ApspAlgorithm, DriverConfig, GossipApspConfig, GossipApspReport,
};
use qcc_bench::{banner, take_trace_flag, Table};
use qcc_congest::{FaultPlan, NetConfig, NodeId, TopologySpec};
use qcc_graph::{floyd_warshall, random_reweighted_digraph, WeightMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

/// One grid cell's result, ready for the JSON report.
struct Cell {
    topology: &'static str,
    transport: &'static str,
    mechanism: &'static str,
    faults: String,
    success: bool,
    verified: bool,
    error: Option<String>,
    rounds: Option<u64>,
    attempts: Option<u64>,
    wasted_packets: Option<u64>,
    wasted_bits: Option<u64>,
    full_nodes: Option<u64>,
}

fn json_str_opt(v: &Option<String>) -> String {
    v.as_ref()
        .map_or("null".to_string(), |s| format!("{:?}", s))
}

fn json_num_opt(v: Option<u64>) -> String {
    v.map_or("null".to_string(), |x| x.to_string())
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: exp_transport_matrix [--smoke] [--out PATH] [--trace FILE]";
    let sink = take_trace_flag(&mut args).unwrap_or_else(|e| {
        eprintln!("exp_transport_matrix: {e}");
        eprintln!("{usage}");
        std::process::exit(2);
    });
    let mut smoke = false;
    let mut out_path = String::from("BENCH_transport_matrix.json");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                out_path = it.next().cloned().unwrap_or_else(|| {
                    eprintln!("exp_transport_matrix: --out requires a value");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("exp_transport_matrix: unknown argument `{other}`");
                eprintln!("{usage}");
                std::process::exit(2);
            }
        }
    }
    banner(
        "E18",
        "transport matrix: topology x transport x faults, exact answers or typed failures",
    );

    let n = if smoke { 8 } else { 10 };
    let seed = 7u64;
    let topologies: &[(&'static str, TopologySpec)] = if smoke {
        &[
            ("clique", TopologySpec::Clique),
            ("mesh:4", TopologySpec::Mesh { degree: 4 }),
        ]
    } else {
        &[
            ("clique", TopologySpec::Clique),
            ("ring", TopologySpec::Ring),
            ("mesh:4", TopologySpec::Mesh { degree: 4 }),
            ("torus", TopologySpec::Torus),
        ]
    };
    let transports: &[&'static str] = &["envelope", "gossip"];
    // Fault columns: fault-free, a lossy link, and (full mode) loss plus
    // an immediate fail-stop crash that no mechanism can mask.
    let fault_cols: &[(&'static str, f64, bool)] = if smoke {
        &[("none", 0.0, false), ("drop", 0.05, false)]
    } else {
        &[
            ("none", 0.0, false),
            ("drop", 0.05, false),
            ("drop+crash", 0.05, true),
        ]
    };

    let mut rng = StdRng::seed_from_u64(0xE18);
    let g = random_reweighted_digraph(n, 0.5, 6, &mut rng);
    let oracle = floyd_warshall(&g.adjacency_matrix()).expect("no negative cycles");

    let mut table = Table::new(&[
        "topology",
        "transport",
        "mechanism",
        "faults",
        "outcome",
        "rounds",
        "attempts",
        "wasted pk",
        "full nodes",
    ]);
    let mut cells: Vec<Cell> = Vec::new();
    let mut failures = 0u32;

    for &(topo_label, topo) in topologies {
        for &transport in transports {
            for &(_fault_label, drop, crash) in fault_cols {
                let plan = FaultPlan {
                    drop_rate: drop,
                    crashes: if crash {
                        vec![(NodeId::new(1), 0)]
                    } else {
                        Vec::new()
                    },
                    seed: seed * 100 + 13,
                    ..FaultPlan::default()
                };
                let spec = plan.to_spec();
                let expect_survival = plan.crashes.is_empty();
                let net = if plan.is_empty() {
                    NetConfig::default()
                } else {
                    NetConfig::faulty(plan.clone())
                };

                // Three mechanisms share two transport names: the reliable
                // envelope only exists on the clique (it needs all-to-all
                // acks); off the clique the "envelope" column degrades to
                // uncoded flooding, which is exactly the comparison the
                // gossip column is priced against.
                let on_clique = matches!(topo, TopologySpec::Clique);
                let (mechanism, result): (&'static str, Result<CellRun, String>) =
                    if transport == "envelope" && on_clique {
                        let cfg = DriverConfig {
                            algorithm: ApspAlgorithm::NaiveBroadcast,
                            net: net.clone(),
                            ..DriverConfig::default()
                        };
                        let mut run_rng = StdRng::seed_from_u64(seed);
                        (
                            "ack-retransmit",
                            apsp_driver(&g, &cfg, &mut run_rng, sink.as_ref())
                                .map(|out| CellRun {
                                    distances: out.report.distances,
                                    verified: out.verified,
                                    rounds: out.total_rounds,
                                    attempts: out.attempts.len() as u64,
                                    gossip: None,
                                })
                                .map_err(|e| e.to_string()),
                        )
                    } else {
                        let chunks = if transport == "envelope" { 1 } else { 8 };
                        let mech = if transport == "envelope" {
                            "uncoded-flood"
                        } else {
                            "rlnc"
                        };
                        let cfg = GossipApspConfig {
                            topology: topo,
                            chunks,
                            max_retries: 3,
                            verify: true,
                            net: net.clone(),
                            seed,
                        };
                        (
                            mech,
                            gossip_apsp(&g, &cfg, sink.as_ref())
                                .map(CellRun::from_gossip)
                                .map_err(|e| e.to_string()),
                        )
                    };

                let cell = match result {
                    Ok(run) => {
                        let exact = run.verified && run.distances == oracle;
                        if !exact {
                            eprintln!(
                                "exp_transport_matrix: [{topo_label}/{transport}] [{spec}]: \
                                 matrix mismatch or unverified"
                            );
                            failures += 1;
                        }
                        let (wp, wb, fnodes) = run.gossip.unwrap_or((None, None, None));
                        Cell {
                            topology: topo_label,
                            transport,
                            mechanism,
                            faults: spec,
                            success: true,
                            verified: run.verified,
                            error: None,
                            rounds: Some(run.rounds),
                            attempts: Some(run.attempts),
                            wasted_packets: wp,
                            wasted_bits: wb,
                            full_nodes: fnodes,
                        }
                    }
                    Err(e) => {
                        if expect_survival {
                            eprintln!(
                                "exp_transport_matrix: [{topo_label}/{transport}] [{spec}]: \
                                 unexpected failure: {e}"
                            );
                            failures += 1;
                        }
                        Cell {
                            topology: topo_label,
                            transport,
                            mechanism,
                            faults: spec,
                            success: false,
                            verified: false,
                            error: Some(e),
                            rounds: None,
                            attempts: None,
                            wasted_packets: None,
                            wasted_bits: None,
                            full_nodes: None,
                        }
                    }
                };
                let outcome = if cell.success {
                    "exact"
                } else if expect_survival {
                    "FAILED"
                } else {
                    "typed-failure"
                };
                table.row(&[
                    &cell.topology,
                    &cell.transport,
                    &cell.mechanism,
                    &cell.faults,
                    &outcome,
                    &json_num_opt(cell.rounds),
                    &json_num_opt(cell.attempts),
                    &json_num_opt(cell.wasted_packets),
                    &json_num_opt(cell.full_nodes),
                ]);
                cells.push(cell);
            }
        }
    }
    table.print();
    if let Some(sink) = &sink {
        sink.flush().expect("trace flush");
    }

    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"schema\": \"qcc-bench-transport-matrix/v1\",");
    let _ = writeln!(s, "  \"n\": {n},");
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(s, "  \"smoke\": {smoke},");
    let _ = writeln!(s, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"topology\": {:?}, \"transport\": {:?}, \"mechanism\": {:?}, \
             \"faults\": {:?}, \"success\": {}, \"verified\": {}, \"error\": {}, \
             \"rounds\": {}, \"attempts\": {}, \"wasted_packets\": {}, \
             \"wasted_bits\": {}, \"full_nodes\": {}}}{comma}",
            c.topology,
            c.transport,
            c.mechanism,
            c.faults,
            c.success,
            c.verified,
            json_str_opt(&c.error),
            json_num_opt(c.rounds),
            json_num_opt(c.attempts),
            json_num_opt(c.wasted_packets),
            json_num_opt(c.wasted_bits),
            json_num_opt(c.full_nodes),
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    std::fs::write(&out_path, &s).expect("write transport-matrix JSON");
    eprintln!("exp_transport_matrix: wrote {out_path}");

    if failures > 0 {
        eprintln!("exp_transport_matrix: {failures} cell(s) FAILED");
        std::process::exit(1);
    }
    println!(
        "\n(all surviving cells returned the exact Floyd-Warshall matrix; crash\n\
         cells failed with typed errors; gossip cells priced their redundancy\n\
         as wasted bandwidth - degradation is graceful, never silent)"
    );
}

/// The normalized outcome of one successful cell run.
struct CellRun {
    distances: WeightMatrix,
    verified: bool,
    rounds: u64,
    attempts: u64,
    gossip: Option<(Option<u64>, Option<u64>, Option<u64>)>,
}

impl CellRun {
    fn from_gossip(r: GossipApspReport) -> CellRun {
        CellRun {
            verified: r.verified,
            rounds: r.total_rounds,
            attempts: r.attempts.len() as u64,
            gossip: Some((
                Some(r.stats.wasted_packets),
                Some(r.stats.wasted_bits),
                Some(r.stats.full_nodes as u64),
            )),
            distances: r.distances,
        }
    }
}
