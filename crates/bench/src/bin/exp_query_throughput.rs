//! Query-serving throughput for the `qcc serve` engine
//! (`BENCH_query_throughput.json`).
//!
//! The serving thesis of the Kerger et al. critique ("Mind the Õ"): the
//! constants of the distributed APSP run are hidden by amortization —
//! compute once, answer point queries from cache. This bench quantifies
//! the amortization with a seeded 90/10 `dist`/`path` query mix over
//! three regimes:
//!
//! * **cold** — a `--row-cache N` engine whose cache is far smaller than
//!   the working set, so most queries pay a single-source relaxation;
//! * **warm** — the full distance matrix resident; queries are lookups;
//! * **post_delta** — the warm engine after a single-edge decrease that
//!   the engine repaired with one certified min-plus product.
//!
//! Throughput (queries/sec) is measured over batches of 64; latency
//! percentiles (p50/p99, µs) over single-request batches. The JSON also
//! records the from-scratch baseline (sequential Floyd–Warshall, the
//! *cheapest* way to recompute — the distributed runs are orders of
//! magnitude slower) and the cost of the delta repair vs the full
//! recompute it replaces.
//!
//! Usage: `exp_query_throughput [--smoke] [--n N] [--seed S]
//! [--queries Q] [--row-cache C] [--out PATH]`
//!
//! Exit codes: 0 on success; 1 when an acceptance gate fails (full run:
//! warm per-query ≥ 100× faster than from-scratch Floyd–Warshall and
//! repair cheaper than recompute; smoke: warm faster than cold); 2 on
//! usage errors.

use qcc_apsp::serve::{EdgeChange, QueryEngine, ServeRequest, UpdateMethod};
use qcc_graph::{floyd_warshall, random_reweighted_digraph, DiGraph, ExtWeight, PathOracle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

/// Per-regime measurements.
struct RegimeStats {
    name: &'static str,
    queries: usize,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

/// A seeded 90/10 dist/path mix over random pairs.
fn query_mix(n: usize, count: usize, rng: &mut StdRng) -> Vec<Result<ServeRequest, String>> {
    (0..count)
        .map(|i| {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            let id = Some(i as i64);
            Ok(if rng.gen_range(0..10) == 0 {
                ServeRequest::Path { id, u, v }
            } else {
                ServeRequest::Dist { id, u, v }
            })
        })
        .collect()
}

/// Replays `queries` against `engine`: throughput over 64-query batches,
/// latency percentiles over single-query batches.
fn measure(
    name: &'static str,
    engine: &mut QueryEngine,
    queries: &[Result<ServeRequest, String>],
) -> RegimeStats {
    let start = Instant::now();
    for chunk in queries.chunks(64) {
        let out = engine.answer_batch(chunk);
        assert!(
            out.responses.iter().all(|r| r.starts_with("{\"ok\":true")),
            "{name}: a query failed: {:?}",
            out.responses
                .iter()
                .find(|r| !r.starts_with("{\"ok\":true"))
        );
    }
    let elapsed = start.elapsed().as_secs_f64();
    let qps = queries.len() as f64 / elapsed.max(1e-12);

    let mut lat_us: Vec<f64> = Vec::with_capacity(queries.len());
    for q in queries {
        let t = Instant::now();
        let out = engine.answer_batch(std::slice::from_ref(q));
        let us = t.elapsed().as_secs_f64() * 1e6;
        assert!(out.responses[0].starts_with("{\"ok\":true"));
        lat_us.push(us);
    }
    lat_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    RegimeStats {
        name,
        queries: queries.len(),
        qps,
        p50_us: percentile(&lat_us, 0.50),
        p99_us: percentile(&lat_us, 0.99),
    }
}

/// Finds an arc whose one-step decrease cannot close a negative cycle:
/// `(w - 1) + dist(v, u) ≥ 0` (or `v` cannot reach `u` at all).
fn safe_decrease(g: &DiGraph, dist: &qcc_graph::WeightMatrix) -> Option<(usize, usize, i64)> {
    g.arcs().find(|&(u, v, w)| match dist[(v, u)] {
        ExtWeight::Finite(back) => (w - 1).checked_add(back).is_some_and(|c| c >= 0),
        _ => true,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut n = 81usize;
    let mut seed = 7u64;
    let mut queries = 2000usize;
    let mut row_cache = 4usize;
    let mut out_path = String::from("BENCH_query_throughput.json");
    let mut it = args.iter();
    let usage = "usage: exp_query_throughput [--smoke] [--n N] [--seed S] \
                 [--queries Q] [--row-cache C] [--out PATH]";
    let take = |flag: &str, it: &mut std::slice::Iter<String>| -> String {
        it.next().cloned().unwrap_or_else(|| {
            eprintln!("exp_query_throughput: {flag} requires a value");
            std::process::exit(2);
        })
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--n" => n = parse_num(&take("--n", &mut it), "--n"),
            "--seed" => seed = parse_num(&take("--seed", &mut it), "--seed"),
            "--queries" => queries = parse_num(&take("--queries", &mut it), "--queries"),
            "--row-cache" => row_cache = parse_num(&take("--row-cache", &mut it), "--row-cache"),
            "--out" => out_path = take("--out", &mut it),
            other => {
                eprintln!("exp_query_throughput: unknown argument `{other}`");
                eprintln!("{usage}");
                std::process::exit(2);
            }
        }
    }
    if smoke {
        n = 16;
        queries = 300;
        row_cache = 2;
    }
    if row_cache == 0 {
        eprintln!("exp_query_throughput: --row-cache must be at least 1");
        std::process::exit(2);
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let g = random_reweighted_digraph(n, 0.5, 8, &mut rng);
    let adj = g.adjacency_matrix();

    // From-scratch baseline: the cheapest possible recompute-per-query.
    eprintln!("exp_query_throughput: from-scratch Floyd-Warshall at n = {n} ...");
    let mut fw_ms = f64::MAX;
    let mut fw = None;
    for _ in 0..5 {
        let t = Instant::now();
        let d = floyd_warshall(&adj).expect("no negative cycles in the workload");
        fw_ms = fw_ms.min(t.elapsed().as_secs_f64() * 1e3);
        fw = Some(d);
    }
    let fw = fw.expect("at least one rep");

    let t = Instant::now();
    let oracle = PathOracle::build(&adj);
    let oracle_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(oracle.distances(), &fw, "oracle distances disagree with FW");

    // Cold: a row cache far smaller than the working set.
    eprintln!("exp_query_throughput: cold regime (row cache {row_cache}) ...");
    let mut cold_engine = QueryEngine::from_tables(g.clone(), oracle.clone(), Some(row_cache));
    let mut mix_rng = StdRng::seed_from_u64(seed ^ 0x51EE7);
    let cold_mix = query_mix(n, queries, &mut mix_rng);
    let cold = measure("cold", &mut cold_engine, &cold_mix);

    // Warm: the full matrix resident.
    eprintln!("exp_query_throughput: warm regime (full matrix) ...");
    let mut warm_engine = QueryEngine::from_tables(g.clone(), oracle, None);
    let warm_mix = query_mix(n, queries, &mut mix_rng);
    let warm = measure("warm", &mut warm_engine, &warm_mix);

    // Post-delta: one single-edge decrease, repaired by one min-plus
    // product, then the same mix again.
    let (du, dv, dw) = safe_decrease(&g, &fw).expect("workload has a safely decreasable arc");
    eprintln!(
        "exp_query_throughput: delta regime (decrease ({du}, {dv}) from {dw} to {}) ...",
        dw - 1
    );
    // Time the repair kernel (candidate + certificate — exactly what the
    // engine's update runs) as a min-of-5, same protocol as the FW
    // baselines, then apply the update through the engine once.
    let delta = [qcc_graph::EdgeDelta {
        u: du,
        v: dv,
        weight: ExtWeight::Finite(dw - 1),
    }];
    let mut mutated = g.clone();
    mutated.add_arc(du, dv, dw - 1);
    let mutated_adj = mutated.adjacency_matrix();
    let mut repair_ms = f64::MAX;
    for _ in 0..5 {
        let t = Instant::now();
        let cand = qcc_graph::delta_repair_candidate(&fw, &delta);
        let certified = qcc_graph::min_plus_fixpoint_certificate(&mutated_adj, &cand);
        repair_ms = repair_ms.min(t.elapsed().as_secs_f64() * 1e3);
        assert!(certified, "single-edge decrease must certify");
    }
    let method = warm_engine
        .update(&[EdgeChange {
            u: du,
            v: dv,
            weight: Some(dw - 1),
        }])
        .expect("safe decrease applies");
    assert_eq!(
        method,
        UpdateMethod::DeltaRepair,
        "single-edge decrease must take the one-product repair path"
    );
    let delta_mix = query_mix(n, queries, &mut mix_rng);
    let post_delta = measure("post_delta", &mut warm_engine, &delta_mix);

    // What the repair replaced: a full recompute on the mutated graph
    // (min-of-5, same protocol).
    let mut recompute_ms = f64::MAX;
    let mut fresh = None;
    for _ in 0..5 {
        let t = Instant::now();
        let d = floyd_warshall(&mutated_adj).expect("mutated graph stays cycle-free");
        recompute_ms = recompute_ms.min(t.elapsed().as_secs_f64() * 1e3);
        fresh = Some(d);
    }
    let fresh = fresh.expect("at least one rep");
    for u in 0..n {
        for v in 0..n {
            assert_eq!(
                warm_engine.dist(u, v).expect("in range"),
                fresh[(u, v)],
                "repaired matrix diverges from fresh recompute at ({u}, {v})"
            );
        }
    }

    let warm_per_query_ms = 1e3 / warm.qps.max(1e-12);
    let warm_vs_scratch = fw_ms / warm_per_query_ms.max(1e-12);
    let regimes = [&cold, &warm, &post_delta];

    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"qcc-bench-query-throughput/v1\",");
    let _ = writeln!(
        s,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(s, "  \"n\": {n},");
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(s, "  \"queries_per_regime\": {queries},");
    let _ = writeln!(s, "  \"row_cache\": {row_cache},");
    let _ = writeln!(s, "  \"from_scratch_apsp_ms\": {fw_ms:.3},");
    let _ = writeln!(s, "  \"oracle_build_ms\": {oracle_ms:.3},");
    let _ = writeln!(s, "  \"delta_repair_ms\": {repair_ms:.3},");
    let _ = writeln!(s, "  \"full_recompute_ms\": {recompute_ms:.3},");
    let _ = writeln!(s, "  \"warm_vs_scratch_speedup\": {warm_vs_scratch:.1},");
    s.push_str("  \"regimes\": [\n");
    for (i, r) in regimes.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"queries\": {}, \"qps\": {:.1}, \
             \"p50_us\": {:.2}, \"p99_us\": {:.2}}}{}",
            r.name,
            r.queries,
            r.qps,
            r.p50_us,
            r.p99_us,
            if i + 1 < regimes.len() { "," } else { "" }
        );
    }
    s.push_str("  ]\n}\n");
    std::fs::write(&out_path, &s).expect("write throughput JSON");
    println!("{s}");
    eprintln!("exp_query_throughput: wrote {out_path}");

    // Acceptance gates.
    let mut failed = false;
    if smoke {
        if warm.qps <= cold.qps {
            eprintln!(
                "exp_query_throughput: FAIL warm regime ({:.0} q/s) not faster than cold ({:.0} q/s)",
                warm.qps, cold.qps
            );
            failed = true;
        }
    } else {
        if warm_vs_scratch < 100.0 {
            eprintln!(
                "exp_query_throughput: FAIL warm per-query only {warm_vs_scratch:.1}x \
                 faster than from-scratch (need >= 100x)"
            );
            failed = true;
        }
        if repair_ms >= recompute_ms {
            eprintln!(
                "exp_query_throughput: FAIL delta repair ({repair_ms:.3} ms) not cheaper \
                 than full recompute ({recompute_ms:.3} ms)"
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> T {
    text.parse().unwrap_or_else(|_| {
        eprintln!("exp_query_throughput: invalid value for {flag}: {text}");
        std::process::exit(2);
    })
}
