//! Experiment E15 (extension) — ablating the `log W` factor by weight
//! quantization.
//!
//! Theorem 1's `log W` comes from the Proposition-2 binary search.
//! Quantizing the weights to multiples of `q` shrinks the searched range
//! to `W/q` at an additive cost of at most `(n−1)·q` per distance; with
//! `q = εW/n` the depth becomes `O(log(n/ε))`, independent of `W`. We
//! sweep `q` on a fixed heavy-weight instance and record the trade.

use qcc_apsp::{max_additive_error, quantized_apsp, Params, SearchBackend};
use qcc_bench::{banner, Table};
use qcc_graph::{floyd_warshall, random_nonneg_digraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner(
        "E15",
        "weight quantization: FindEdges calls vs additive error (W = 50000)",
    );
    let n = 8;
    let w = 50_000u64;
    let mut rng = StdRng::seed_from_u64(0xE15);
    let g = random_nonneg_digraph(n, 0.6, w, &mut rng);
    let exact = floyd_warshall(&g.adjacency_matrix()).unwrap();

    let mut table = Table::new(&[
        "q",
        "FindEdges calls",
        "rounds",
        "max additive error",
        "bound (n-1)q",
        "error / max distance",
    ]);
    let max_dist = exact
        .entries()
        .filter_map(|(_, _, &w)| w.finite())
        .max()
        .unwrap_or(1)
        .max(1);
    for &q in &[1i64, 16, 256, 2048, 8192] {
        let report =
            quantized_apsp(&g, q, Params::paper(), SearchBackend::Classical, &mut rng).unwrap();
        let err = max_additive_error(&exact, &report.distances);
        table.row(&[
            &q,
            &report.find_edges_calls,
            &report.rounds,
            &err,
            &((n as i64 - 1) * q),
            &format!("{:.4}", err as f64 / max_dist as f64),
        ]);
    }
    table.print();
    println!(
        "\n(q = 256 nearly halves the FindEdges calls at ~1% relative error;\n\
         the realized error always stays inside the (n-1)q bound — the log W\n\
         factor of Theorem 1 is exactly the price of exactness)"
    );
}
