//! Experiment E13 — Lemma 1 (Dolev, Lenzen & Peled): 2-round routing.
//!
//! Paper claim: any message set in which no node sources or sinks more
//! than `n` messages is deliverable in 2 rounds. We route balanced,
//! hot-pair, and overloaded message sets and compare against the direct
//! (unrouted) delivery, plus the degradation curve for loads `L·n`.

use qcc_bench::{banner, Table};
use qcc_congest::{Clique, Envelope, NodeId, RawBits};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn unit(bits: u64) -> RawBits {
    RawBits::new(0, bits)
}

fn main() {
    banner(
        "E13",
        "Lemma 1: bounded-load message sets route in exactly 2 rounds",
    );
    let n = 64;
    let bits = 16;
    let mut rng = StdRng::seed_from_u64(0xE13);

    let mut table = Table::new(&["message set", "messages", "direct rounds", "lemma1 rounds"]);

    // (a) random permutation load: n messages, 1 per source/dest
    let perm: Vec<Envelope<RawBits>> = {
        let mut dests: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            dests.swap(i, rng.gen_range(0..=i));
        }
        (0..n)
            .map(|u| Envelope::new(NodeId::new(u), NodeId::new(dests[u]), unit(bits)))
            .collect()
    };
    // (b) hot pair: n messages all from node 0 to node 1
    let hot: Vec<Envelope<RawBits>> = (0..n)
        .map(|_| Envelope::new(NodeId::new(0), NodeId::new(1), unit(bits)))
        .collect();
    // (c) full bipartite burst: every node sends one unit to every node
    let full: Vec<Envelope<RawBits>> = (0..n)
        .flat_map(|u| {
            (0..n)
                .filter(move |&v| v != u)
                .map(move |v| Envelope::new(NodeId::new(u), NodeId::new(v), unit(bits)))
        })
        .collect();

    for (label, sends) in [
        ("permutation", perm),
        ("hot pair (n->1 link)", hot),
        ("all-to-all", full),
    ] {
        let count = sends.len();
        let mut direct = Clique::with_bandwidth(n, bits).unwrap();
        direct.exchange(sends.clone()).unwrap();
        let mut routed = Clique::with_bandwidth(n, bits).unwrap();
        routed.route(sends).unwrap();
        table.row(&[&label, &count, &direct.rounds(), &routed.rounds()]);
    }
    table.print();

    banner(
        "E13b",
        "overload degradation: 2*ceil(L/n) rounds at per-node load L*n",
    );
    let mut table = Table::new(&["load factor L", "lemma1 rounds", "predicted 2*ceil(L)"]);
    for &load in &[1usize, 2, 3, 5, 8] {
        let sends: Vec<Envelope<RawBits>> = (0..load)
            .flat_map(|_| {
                (0..n).map(|v| Envelope::new(NodeId::new(0), NodeId::new(v % n), unit(bits)))
            })
            .filter(|e| e.src != e.dst)
            .collect();
        // pad each destination evenly: node 0 sources load*n units
        let mut net = Clique::with_bandwidth(n, bits).unwrap();
        net.route(sends).unwrap();
        table.row(&[&load, &net.rounds(), &(2 * load as u64)]);
    }
    table.print();
}
