//! Experiment E8 — Figures 4–5: evaluation procedures run in polylog rounds.
//!
//! Paper claim: one joint evaluation costs `O(log n)` rounds for `α = 0`
//! (Figure 4) and `O(log² n)` rounds for `α > 0` with duplication
//! (Figure 5), because the promise bounds every link's load. We execute
//! single joint evaluations at growing `n` under promise-sized query loads
//! and record rounds and the busiest link.

use qcc_apsp::eval_procedure::{evaluate_joint, AlphaContext, EvalQuery};
use qcc_apsp::gather::gather_weights;
use qcc_apsp::lambda::KeptPair;
use qcc_apsp::{Instance, PairSet, Params};
use qcc_bench::{banner, Table};
use qcc_congest::Clique;
use qcc_graph::planted_disjoint_triangles;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    banner(
        "E8",
        "Figures 4-5: one joint evaluation costs polylog rounds",
    );
    let mut table = Table::new(&[
        "n",
        "queries",
        "eval rounds",
        "max link bits",
        "bandwidth B",
        "rounds / log2(n)",
    ]);

    for &n in &[16usize, 81, 256, 625] {
        let mut rng = StdRng::seed_from_u64(0xE8 + n as u64);
        let (g, _) = planted_disjoint_triangles(n, n / 8, (8.0 / n as f64).min(0.5), &mut rng);
        let s = PairSet::all_pairs(n);
        let inst = Instance::new(&g, &s, Params::paper());
        let mut net = Clique::new(n).unwrap();
        let gathered = gather_weights(&inst, &mut net).unwrap();
        let labels: Vec<usize> = (0..inst.triples.labeling().label_count()).collect();
        let actx = AlphaContext::build(&inst, &mut net, 0, &labels).unwrap();

        // Promise-shaped load: every edge of S queried once, targets
        // spread uniformly (the distribution Grover queries actually have).
        let mut queries = Vec::new();
        for (u, v, w) in g.edges() {
            let bu = inst.parts.coarse.block_of(u);
            let bv = inst.parts.coarse.block_of(v);
            let x = rng.gen_range(0..inst.parts.fine.num_blocks());
            let target = rng.gen_range(0..inst.parts.fine.num_blocks());
            queries.push(EvalQuery {
                search_label: inst.searches.encode(bu.min(bv), bu.max(bv), x),
                pair: KeptPair {
                    u: u.min(v),
                    v: u.max(v),
                    weight: w,
                },
                target,
            });
        }
        net.begin_phase("e8/eval");
        let before = net.rounds();
        let answers = evaluate_joint(&inst, &mut net, &gathered, &actx, &queries).unwrap();
        let rounds = net.rounds() - before;
        assert_eq!(answers.len(), queries.len());
        let max_link = net
            .metrics()
            .phases()
            .iter()
            .filter(|p| p.label.starts_with("step3/alpha0"))
            .map(|p| p.max_link_bits)
            .max()
            .unwrap_or(0);
        table.row(&[
            &n,
            &queries.len(),
            &rounds,
            &max_link,
            &net.bandwidth_bits(),
            &format!("{:.2}", rounds as f64 / Params::log_n(n)),
        ]);
    }
    table.print();
    println!("\n(rounds/log n stays near-constant: the Figure-4 procedure is O(log n))");
}
