//! Experiment E2 — Theorem 2: `FindEdgesWithPromise` round scaling.
//!
//! Paper claim: the quantum `ComputePairs` solves the promise problem in
//! `O~(n^{1/4})` rounds; the classical Step-3 scan needs `O~(√n)` and the
//! Dolev–Lenzen–Peled listing `O~(n^{1/3})`.
//!
//! We plant `n/8` disjoint negative triangles (promise `Γ = 1`), set `S`
//! to all pairs, and measure total and Step-3 rounds across `n` on the
//! simulated network, reporting empirical log-log slopes.

use qcc_apsp::{compute_pairs, dolev_find_edges, PairSet, Params, SearchBackend};
use qcc_bench::{banner, loglog_slope, Table};
use qcc_congest::Clique;
use qcc_graph::planted_disjoint_triangles;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner(
        "E2",
        "FindEdgesWithPromise: quantum O~(n^{1/4}) vs classical O~(sqrt n) vs listing O~(n^{1/3})",
    );
    let sizes = [16usize, 81, 256, 625];
    let mut table = Table::new(&[
        "n",
        "quantum rounds",
        "quantum step3",
        "classical rounds",
        "classical step3",
        "dolev rounds",
        "exact",
    ]);
    let mut q_step3 = Vec::new();
    let mut c_step3 = Vec::new();
    let mut d_total = Vec::new();
    let mut ns = Vec::new();

    for &n in &sizes {
        let mut rng = StdRng::seed_from_u64(0xE2 + n as u64);
        // constant average degree keeps the workload family comparable
        let filler_density = (8.0 / n as f64).min(0.5);
        let (g, _) = planted_disjoint_triangles(n, n / 8, filler_density, &mut rng);
        let s = PairSet::all_pairs(n);
        let expected = qcc_apsp::reference_find_edges(&g, &s);
        let mut params = Params::paper();
        params.search_repetitions = Some(16);

        let mut net_q = Clique::new(n).unwrap();
        let rq =
            compute_pairs(&g, &s, params, SearchBackend::Quantum, &mut net_q, &mut rng).unwrap();
        let q3 = net_q.metrics().rounds_with_prefix("step3/");

        let mut net_c = Clique::new(n).unwrap();
        let rc = compute_pairs(
            &g,
            &s,
            params,
            SearchBackend::Classical,
            &mut net_c,
            &mut rng,
        )
        .unwrap();
        let c3 = net_c.metrics().rounds_with_prefix("step3/");

        let rd = dolev_find_edges(&g, &s).unwrap();

        let exact = rq.found == expected && rc.found == expected && rd.found == expected;
        table.row(&[&n, &rq.rounds, &q3, &rc.rounds, &c3, &rd.rounds, &exact]);
        ns.push(n as f64);
        q_step3.push(q3.max(1) as f64);
        c_step3.push(c3.max(1) as f64);
        d_total.push(rd.rounds.max(1) as f64);
    }
    table.print();

    println!();
    if let Some(s) = loglog_slope(&ns, &q_step3) {
        println!("quantum step-3 slope:   {s:.2}  (paper: 0.25 + o(1))");
    }
    if let Some(s) = loglog_slope(&ns, &c_step3) {
        println!("classical step-3 slope: {s:.2}  (paper: 0.50 + o(1))");
    }
    if let Some(s) = loglog_slope(&ns, &d_total) {
        println!("dolev listing slope:    {s:.2}  (paper: 0.33 + o(1))");
    }
}
