//! Experiment E17 — distance parameters: quantum extremum search vs the
//! classical gather-and-scan (`BENCH_distance_params.json`).
//!
//! The Le Gall–Magniez framework finds the diameter by a Dürr–Høyer
//! search over the node-held eccentricities: `O(√n)` expected oracle
//! evaluations, each a real query/answer exchange on the clique, instead
//! of the classical scan's `n`. This bench sweeps `n`, runs both backends
//! on the same eccentricity vectors, and records evaluation counts and
//! charged rounds. The scan is `O(1)` rounds but `n` evaluations; the
//! quantum search pays ~2 rounds per evaluation and wins on evaluations —
//! the resource the framework optimizes — once `√n` clears the
//! constant. One end-to-end `distance_params` run per `n` (semiring
//! distances + verified quantum search) pins the full pipeline's rounds.
//!
//! Usage: `exp_distance_params [--smoke] [--trials T] [--seed S]
//! [--out PATH]`
//!
//! Exit codes: 0 on success; 1 when a gate fails (mean quantum
//! evaluations must stay below the classical `n` per sweep point, and
//! both backends must agree on the diameter every trial); 2 on usage
//! errors.

use qcc_apsp::{
    classical_extremum_scan, distance_params, eccentricities, network_extremum, ApspAlgorithm,
    DistanceParam, ExtremumConfig,
};
use qcc_bench::{banner, Table};
use qcc_congest::Clique;
use qcc_graph::{floyd_warshall, random_reweighted_digraph};
use qcc_quantum::DEFAULT_STAGE_ATTEMPTS;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

struct SweepPoint {
    n: usize,
    quantum_evals_mean: f64,
    quantum_rounds_mean: f64,
    scan_evals: u64,
    scan_rounds: u64,
    diameter: String,
    end_to_end_rounds: u64,
    end_to_end_verified: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: exp_distance_params [--smoke] [--trials T] [--seed S] [--out PATH]";
    let mut smoke = false;
    let mut trials = 20usize;
    let mut seed = 7u64;
    let mut out_path = String::from("BENCH_distance_params.json");
    let take = |flag: &str, it: &mut std::slice::Iter<String>| -> String {
        it.next().cloned().unwrap_or_else(|| {
            eprintln!("exp_distance_params: {flag} requires a value");
            std::process::exit(2);
        })
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--trials" => trials = parse_num(&take("--trials", &mut it), "--trials"),
            "--seed" => seed = parse_num(&take("--seed", &mut it), "--seed"),
            "--out" => out_path = take("--out", &mut it),
            other => {
                eprintln!("exp_distance_params: unknown argument `{other}`");
                eprintln!("{usage}");
                std::process::exit(2);
            }
        }
    }
    if trials == 0 {
        eprintln!("exp_distance_params: --trials must be at least 1");
        std::process::exit(2);
    }
    if smoke {
        trials = trials.min(10);
    }
    banner(
        "E17",
        "distance parameters: O(sqrt n) quantum evaluations vs the n-value scan",
    );

    // Below n ~ 25 the Durr-Hoyer constant (~4.5 sqrt(n) evaluations)
    // eats the speedup; the sweep starts where the asymptotics bite.
    let ns: &[usize] = if smoke { &[32, 48] } else { &[32, 48, 64, 96] };

    let mut table = Table::new(&[
        "n",
        "q evals (mean)",
        "q rounds (mean)",
        "scan evals",
        "scan rounds",
        "diameter",
        "e2e rounds",
        "verified",
    ]);
    let mut points = Vec::new();
    let mut failures = 0u32;
    for &n in ns {
        let mut rng = StdRng::seed_from_u64(0xE17 ^ seed ^ n as u64);
        let g = random_reweighted_digraph(n, 0.5, 8, &mut rng);
        let dist = floyd_warshall(&g.adjacency_matrix()).expect("no negative cycles");
        let ecc = eccentricities(&dist);

        let mut scan_net = Clique::new(n).expect("clique");
        let scan = classical_extremum_scan(&ecc, true, &mut scan_net).expect("clean network");

        let mut evals_sum = 0u64;
        let mut rounds_sum = 0u64;
        for t in 0..trials {
            let mut net = Clique::new(n).expect("clique");
            let mut trial_rng = StdRng::seed_from_u64(seed ^ (t as u64) << 8 ^ n as u64);
            let out = match network_extremum(
                &ecc,
                true,
                DEFAULT_STAGE_ATTEMPTS,
                &mut net,
                &mut trial_rng,
            ) {
                Ok(out) => out,
                Err(e) => {
                    eprintln!("exp_distance_params: n={n} trial={t}: {e}");
                    failures += 1;
                    continue;
                }
            };
            if out.value != scan.value {
                eprintln!(
                    "exp_distance_params: n={n} trial={t}: quantum found {} but scan found {}",
                    out.value, scan.value
                );
                failures += 1;
            }
            evals_sum += out.evaluations;
            rounds_sum += out.rounds;
        }
        let quantum_evals_mean = evals_sum as f64 / trials as f64;
        let quantum_rounds_mean = rounds_sum as f64 / trials as f64;
        if quantum_evals_mean >= n as f64 {
            eprintln!(
                "exp_distance_params: FAIL at n={n}: mean quantum evaluations \
                 {quantum_evals_mean:.1} not below the classical {n}"
            );
            failures += 1;
        }

        // The full pipeline once per n: semiring distances, verified
        // quantum search, everything charged.
        let cfg = ExtremumConfig {
            algorithm: ApspAlgorithm::SemiringSquaring,
            ..ExtremumConfig::new(DistanceParam::Diameter)
        };
        let mut e2e_rng = StdRng::seed_from_u64(seed ^ 0xD1A ^ n as u64);
        let report = distance_params(&g, &cfg, &mut e2e_rng, None).expect("clean network");
        if report.value != scan.value {
            eprintln!(
                "exp_distance_params: n={n}: end-to-end diameter {} disagrees with scan {}",
                report.value, scan.value
            );
            failures += 1;
        }

        table.row(&[
            &n,
            &format!("{quantum_evals_mean:.1}"),
            &format!("{quantum_rounds_mean:.1}"),
            &scan.evaluations,
            &scan.rounds,
            &scan.value,
            &report.total_rounds,
            &report.verified,
        ]);
        points.push(SweepPoint {
            n,
            quantum_evals_mean,
            quantum_rounds_mean,
            scan_evals: scan.evaluations,
            scan_rounds: scan.rounds,
            diameter: scan.value.to_string(),
            end_to_end_rounds: report.total_rounds,
            end_to_end_verified: report.verified,
        });
    }
    table.print();

    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"qcc-bench-distance-params/v1\",");
    let _ = writeln!(
        s,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(s, "  \"trials_per_n\": {trials},");
    s.push_str("  \"sweep\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"n\": {}, \"quantum_evals_mean\": {:.2}, \"quantum_rounds_mean\": {:.2}, \
             \"scan_evals\": {}, \"scan_rounds\": {}, \"diameter\": \"{}\", \
             \"end_to_end_rounds\": {}, \"end_to_end_verified\": {}}}{}",
            p.n,
            p.quantum_evals_mean,
            p.quantum_rounds_mean,
            p.scan_evals,
            p.scan_rounds,
            p.diameter,
            p.end_to_end_rounds,
            p.end_to_end_verified,
            if i + 1 < points.len() { "," } else { "" }
        );
    }
    s.push_str("  ]\n}\n");
    std::fs::write(&out_path, &s).expect("write distance-params JSON");
    println!("{s}");
    eprintln!("exp_distance_params: wrote {out_path}");

    if failures > 0 {
        eprintln!("exp_distance_params: {failures} gate failure(s)");
        std::process::exit(1);
    }
    println!(
        "\n(the quantum search touched a sublinear number of eccentricities at every n;\n\
         the scan stays O(1) rounds — evaluations, not rounds, are the framework's\n\
         oracle-cost currency)"
    );
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> T {
    text.parse().unwrap_or_else(|_| {
        eprintln!("exp_distance_params: invalid value for {flag}: {text}");
        std::process::exit(2);
    })
}
