//! # qcc-bench — the experiment harness
//!
//! Shared utilities for the experiment binaries (`src/bin/exp_*.rs`) and
//! the Criterion benches (`benches/`). Every experiment of `DESIGN.md`
//! (E1–E13) has a binary that regenerates its table; the output is pasted
//! into `EXPERIMENTS.md`.
//!
//! Run all experiment binaries with, e.g.:
//!
//! ```text
//! cargo run --release -p qcc-bench --bin exp_find_edges
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;

/// A markdown table accumulated row by row and printed to stdout.
///
/// # Examples
///
/// ```
/// use qcc_bench::Table;
///
/// let mut t = Table::new(&["n", "rounds"]);
/// t.row(&[&16, &42]);
/// let rendered = t.render();
/// assert!(rendered.contains("| n | rounds |"));
/// assert!(rendered.contains("| 16 | 42 |"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Renders the table as GitHub-flavored markdown.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.header.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Least-squares slope of `log y` against `log x` — the empirical scaling
/// exponent of a measurement series.
///
/// Returns `None` for fewer than two points or non-positive values.
///
/// # Examples
///
/// ```
/// let xs = [16.0f64, 64.0, 256.0];
/// let ys: Vec<f64> = xs.iter().map(|x: &f64| 3.0 * x.powf(0.5)).collect();
/// let slope = qcc_bench::loglog_slope(&xs, &ys).unwrap();
/// assert!((slope - 0.5).abs() < 1e-9);
/// ```
pub fn loglog_slope(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    if xs.iter().chain(ys.iter()).any(|&v| v <= 0.0) {
        return None;
    }
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    let n = lx.len() as f64;
    let mx = lx.iter().sum::<f64>() / n;
    let my = ly.iter().sum::<f64>() / n;
    let cov: f64 = lx.iter().zip(&ly).map(|(x, y)| (x - mx) * (y - my)).sum();
    let var: f64 = lx.iter().map(|x| (x - mx).powi(2)).sum();
    if var == 0.0 {
        return None;
    }
    Some(cov / var)
}

/// Geometric mean of a series (0 if empty or any non-positive entry).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Prints an experiment banner (id + claim) so harness output is
/// self-describing when tee'd into logs.
pub fn banner(id: &str, claim: &str) {
    println!("\n## {id} — {claim}\n");
}

/// Extracts `--trace FILE` from an experiment binary's argument list,
/// removing both tokens and opening the NDJSON sink.
///
/// The experiment binaries share one convention: `--trace` is optional,
/// everything else is binary-specific. Returns `Err` with a usage-style
/// message when the flag is present without a value or the file cannot be
/// created; the caller prints it and exits non-zero.
///
/// # Errors
///
/// Returns a message naming the problem (`--trace requires a path`, or the
/// file-creation failure).
///
/// # Examples
///
/// ```
/// let mut args = vec!["--smoke".to_string()];
/// let sink = qcc_bench::take_trace_flag(&mut args).unwrap();
/// assert!(sink.is_none());
/// assert_eq!(args, ["--smoke"]);
/// ```
pub fn take_trace_flag(args: &mut Vec<String>) -> Result<Option<qcc_congest::TraceSink>, String> {
    let Some(i) = args.iter().position(|a| a == "--trace") else {
        return Ok(None);
    };
    if i + 1 >= args.len() || args[i + 1].starts_with("--") {
        return Err("--trace requires a path".into());
    }
    let path = args.remove(i + 1);
    args.remove(i);
    qcc_congest::TraceSink::to_file(&path)
        .map(Some)
        .map_err(|e| format!("cannot create trace file {path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&[&1, &"x"]);
        t.row(&[&2, &"y"]);
        let r = t.render();
        assert!(r.starts_with("| a | b |\n|---|---|\n"));
        assert!(r.contains("| 2 | y |"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_is_checked() {
        Table::new(&["a"]).row(&[&1, &2]);
    }

    #[test]
    fn slope_recovers_exponents() {
        let xs = [8.0f64, 16.0, 32.0, 64.0];
        for expo in [0.25, 0.333, 0.5, 1.0] {
            let ys: Vec<f64> = xs.iter().map(|x: &f64| 7.0 * x.powf(expo)).collect();
            let slope = loglog_slope(&xs, &ys).unwrap();
            assert!((slope - expo).abs() < 1e-9, "expo {expo}");
        }
    }

    #[test]
    fn slope_rejects_degenerate_input() {
        assert!(loglog_slope(&[1.0], &[1.0]).is_none());
        assert!(loglog_slope(&[1.0, 2.0], &[0.0, 1.0]).is_none());
        assert!(loglog_slope(&[2.0, 2.0], &[1.0, 3.0]).is_none());
    }

    #[test]
    fn geometric_mean_of_powers() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn take_trace_flag_removes_its_tokens() {
        let path =
            std::env::temp_dir().join(format!("qcc-bench-lib-{}.ndjson", std::process::id()));
        let mut args = vec![
            "--smoke".to_string(),
            "--trace".to_string(),
            path.to_string_lossy().into_owned(),
            "--out".to_string(),
            "x.json".to_string(),
        ];
        let sink = take_trace_flag(&mut args).unwrap();
        assert!(sink.is_some());
        assert_eq!(args, ["--smoke", "--out", "x.json"]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn take_trace_flag_requires_a_value() {
        let mut args = vec!["--trace".to_string()];
        assert!(take_trace_flag(&mut args).is_err());
        let mut args = vec!["--trace".to_string(), "--smoke".to_string()];
        assert!(take_trace_flag(&mut args).is_err());
    }
}
