//! Criterion bench: FindEdgesWithPromise, quantum vs classical Step 3 (E2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcc_apsp::{compute_pairs, PairSet, Params, SearchBackend};
use qcc_congest::Clique;
use qcc_graph::planted_disjoint_triangles;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_compute_pairs(c: &mut Criterion) {
    let mut group = c.benchmark_group("compute_pairs");
    group.sample_size(10);
    for &n in &[16usize, 81] {
        let mut rng = StdRng::seed_from_u64(21);
        let (g, _) = planted_disjoint_triangles(n, n / 8, (8.0 / n as f64).min(0.5), &mut rng);
        let s = PairSet::all_pairs(n);
        let mut params = Params::paper();
        params.search_repetitions = Some(8);
        for (name, backend) in [
            ("quantum", SearchBackend::Quantum),
            ("classical", SearchBackend::Classical),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, &n| {
                let mut rng = StdRng::seed_from_u64(22);
                b.iter(|| {
                    let mut net = Clique::new(n).unwrap();
                    compute_pairs(&g, &s, params, backend, &mut net, &mut rng).unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_compute_pairs);
criterion_main!(benches);
