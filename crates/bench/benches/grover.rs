//! Criterion bench: single and multiple quantum searches (E10, E3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcc_quantum::{
    classical_search, grover_search_amplified, multi_grover_search, AtypicalInputError,
    MultiOracle, SearchOracle,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Marked {
    marked: Vec<bool>,
}

impl SearchOracle for Marked {
    fn domain_size(&self) -> usize {
        self.marked.len()
    }
    fn truth(&self, item: usize) -> bool {
        self.marked[item]
    }
    fn evaluate_distributed(&mut self, item: usize) -> bool {
        self.marked[item]
    }
}

struct Needles {
    domain: usize,
    needles: Vec<usize>,
}

impl MultiOracle for Needles {
    fn domain_size(&self) -> usize {
        self.domain
    }
    fn num_searches(&self) -> usize {
        self.needles.len()
    }
    fn truth(&self, search: usize, item: usize) -> bool {
        self.needles[search] == item
    }
    fn evaluate(&mut self, tuple: &[usize]) -> Result<Vec<bool>, AtypicalInputError> {
        Ok(tuple
            .iter()
            .enumerate()
            .map(|(s, &i)| self.needles[s] == i)
            .collect())
    }
    fn evaluate_classical(&mut self, item: usize) -> Vec<bool> {
        self.needles.iter().map(|&t| t == item).collect()
    }
}

fn bench_single(c: &mut Criterion) {
    let mut group = c.benchmark_group("grover_vs_classical");
    group.sample_size(30);
    for &x in &[256usize, 1024, 4096] {
        let mut marked = vec![false; x];
        marked[x / 3] = true;
        group.bench_with_input(BenchmarkId::new("grover", x), &x, |b, _| {
            let mut rng = StdRng::seed_from_u64(11);
            b.iter(|| {
                let mut oracle = Marked {
                    marked: marked.clone(),
                };
                grover_search_amplified(&mut oracle, 10, &mut rng)
            })
        });
        group.bench_with_input(BenchmarkId::new("classical", x), &x, |b, _| {
            b.iter(|| {
                let mut oracle = Marked {
                    marked: marked.clone(),
                };
                classical_search(&mut oracle)
            })
        });
    }
    group.finish();
}

fn bench_multi(c: &mut Criterion) {
    let mut group = c.benchmark_group("multi_search");
    group.sample_size(20);
    for &m in &[64usize, 256, 1024] {
        let domain = 16;
        let needles: Vec<usize> = (0..m).map(|s| (5 * s + 1) % domain).collect();
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            let mut rng = StdRng::seed_from_u64(12);
            b.iter(|| {
                let mut oracle = Needles {
                    domain,
                    needles: needles.clone(),
                };
                multi_grover_search(&mut oracle, 20, &mut rng)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single, bench_multi);
criterion_main!(benches);
