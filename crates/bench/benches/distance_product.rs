//! Criterion bench: distance products — VW-W binary search, semiring
//! distributed product, and the sequential reference (E11).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcc_apsp::{distributed_distance_product, semiring_distance_product, Params, SearchBackend};
use qcc_congest::Clique;
use qcc_graph::{distance_product, ExtWeight, WeightMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_matrix(n: usize, seed: u64) -> WeightMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    WeightMatrix::from_fn(n, |_, _| {
        if rng.gen_bool(0.85) {
            ExtWeight::from(rng.gen_range(-8..=8))
        } else {
            ExtWeight::PosInf
        }
    })
}

fn bench_products(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_product");
    group.sample_size(10);
    for &n in &[4usize, 6] {
        let a = random_matrix(n, 31);
        let b = random_matrix(n, 32);
        group.bench_with_input(BenchmarkId::new("vww_classical", n), &n, |bch, _| {
            let mut rng = StdRng::seed_from_u64(33);
            bch.iter(|| {
                distributed_distance_product(
                    &a,
                    &b,
                    Params::paper(),
                    SearchBackend::Classical,
                    &mut rng,
                )
                .unwrap()
            })
        });
    }
    for &n in &[16usize, 64, 128] {
        let a = random_matrix(n, 34);
        let b = random_matrix(n, 35);
        group.bench_with_input(BenchmarkId::new("semiring", n), &n, |bch, &n| {
            bch.iter(|| {
                let mut net = Clique::new(n).unwrap();
                semiring_distance_product(&a, &b, &mut net).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("sequential", n), &n, |bch, _| {
            bch.iter(|| distance_product(&a, &b))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_products);
criterion_main!(benches);
