//! Criterion bench: Lemma 1 routing and the König edge coloring (E13).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcc_congest::coloring::color_bipartite;
use qcc_congest::{Clique, Envelope, NodeId, RawBits};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_sends(n: usize, count: usize, seed: u64) -> Vec<Envelope<RawBits>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            Envelope::new(
                NodeId::new(rng.gen_range(0..n)),
                NodeId::new(rng.gen_range(0..n)),
                RawBits::new(0, 16),
            )
        })
        .collect()
}

fn bench_route(c: &mut Criterion) {
    let mut group = c.benchmark_group("lemma1_route");
    group.sample_size(20);
    for &n in &[32usize, 64, 128] {
        let sends = random_sends(n, 4 * n, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut net = Clique::new(n).unwrap();
                net.route(sends.clone()).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("konig_coloring");
    group.sample_size(20);
    for &n in &[32usize, 64, 128] {
        let mut rng = StdRng::seed_from_u64(9);
        let edges: Vec<(usize, usize)> = (0..8 * n)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| color_bipartite(&edges, n, n))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_route, bench_coloring);
criterion_main!(benches);
