//! Criterion bench: the quantum extensions — amplitude estimation and
//! Dürr–Høyer extremum finding (E14).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcc_quantum::{quantum_count, quantum_minimum, AmplitudeEstimator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_estimation(c: &mut Criterion) {
    let mut group = c.benchmark_group("amplitude_estimation");
    group.sample_size(30);
    for &bits in &[8u32, 10, 12] {
        group.bench_with_input(BenchmarkId::new("estimate", bits), &bits, |b, &bits| {
            let est = AmplitudeEstimator::new(256, 40);
            let mut rng = StdRng::seed_from_u64(81);
            b.iter(|| est.estimate(bits, &mut rng))
        });
    }
    group.bench_function("quantum_count/256", |b| {
        let mut rng = StdRng::seed_from_u64(82);
        b.iter(|| quantum_count(256, 17, 9, 5, &mut rng))
    });
    group.finish();
}

fn bench_minimum(c: &mut Criterion) {
    let mut group = c.benchmark_group("duerr_hoyer_minimum");
    group.sample_size(30);
    for &n in &[256usize, 1024, 4096] {
        let mut rng = StdRng::seed_from_u64(83);
        let values: Vec<i64> = (0..n).map(|_| rng.gen_range(-1000..1000)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(84);
            b.iter(|| quantum_minimum(n, |i| values[i], &mut rng))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_estimation, bench_minimum);
criterion_main!(benches);
