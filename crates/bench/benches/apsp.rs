//! Criterion bench: end-to-end APSP across the four algorithms (E1/E9).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcc_apsp::{apsp, ApspAlgorithm, Params};
use qcc_graph::random_reweighted_digraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_apsp(c: &mut Criterion) {
    let mut group = c.benchmark_group("apsp");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(41);
    let g8 = random_reweighted_digraph(8, 0.5, 6, &mut rng);
    let g32 = random_reweighted_digraph(32, 0.5, 6, &mut rng);

    let mut params = Params::paper();
    params.search_repetitions = Some(8);

    for (name, algorithm, g) in [
        ("naive/32", ApspAlgorithm::NaiveBroadcast, &g32),
        ("semiring/32", ApspAlgorithm::SemiringSquaring, &g32),
        (
            "classical-triangle/8",
            ApspAlgorithm::ClassicalTriangle,
            &g8,
        ),
        ("quantum-triangle/8", ApspAlgorithm::QuantumTriangle, &g8),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            let mut rng = StdRng::seed_from_u64(42);
            b.iter(|| apsp(g, params, algorithm, &mut rng).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_apsp);
criterion_main!(benches);
