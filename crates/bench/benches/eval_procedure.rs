//! Criterion bench: the Figure 4/5 joint evaluation procedures (E8/E12).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcc_apsp::eval_procedure::{evaluate_joint, AlphaContext, EvalQuery};
use qcc_apsp::gather::gather_weights;
use qcc_apsp::lambda::KeptPair;
use qcc_apsp::{Instance, PairSet, Params};
use qcc_congest::Clique;
use qcc_graph::planted_disjoint_triangles;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("joint_evaluation");
    group.sample_size(20);
    for &n in &[16usize, 81, 256] {
        let mut rng = StdRng::seed_from_u64(51);
        let (g, _) = planted_disjoint_triangles(n, n / 8, (8.0 / n as f64).min(0.5), &mut rng);
        let s = PairSet::all_pairs(n);
        let params = Params::paper();
        let inst = Instance::new(&g, &s, params);
        let mut net = Clique::new(n).unwrap();
        let gathered = gather_weights(&inst, &mut net).unwrap();
        let labels: Vec<usize> = (0..inst.triples.labeling().label_count()).collect();
        let actx = AlphaContext::build(&inst, &mut net, 0, &labels).unwrap();
        let queries: Vec<EvalQuery> = g
            .edges()
            .map(|(u, v, w)| {
                let bu = inst.parts.coarse.block_of(u);
                let bv = inst.parts.coarse.block_of(v);
                EvalQuery {
                    search_label: inst.searches.encode(
                        bu.min(bv),
                        bu.max(bv),
                        rng.gen_range(0..inst.parts.fine.num_blocks()),
                    ),
                    pair: KeptPair {
                        u: u.min(v),
                        v: u.max(v),
                        weight: w,
                    },
                    target: rng.gen_range(0..inst.parts.fine.num_blocks()),
                }
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut net = Clique::new(n).unwrap();
                evaluate_joint(&inst, &mut net, &gathered, &actx, &queries).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eval);
criterion_main!(benches);
