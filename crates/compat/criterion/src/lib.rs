//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion 0.5 API used by this workspace's
//! `benches/`: [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function`, `bench_with_input`, [`BenchmarkId`], [`black_box`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Like upstream criterion, running a bench binary **without** the
//! `--bench` argument (as `cargo test` does) executes every benchmark body
//! exactly once as a smoke test. With `--bench` (as `cargo bench` passes),
//! each benchmark runs `sample_size` timed samples and prints the median
//! wall-clock per iteration. There is no statistical analysis, outlier
//! rejection, or HTML report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds a `name/parameter` id.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

/// Drives the timed iterations of one benchmark body.
pub struct Bencher {
    samples: u32,
    /// Median duration of one iteration, filled by [`Bencher::iter`].
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, storing the median over the configured sample count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let mut times = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed());
        }
        times.sort_unstable();
        self.elapsed = times[times.len() / 2];
    }
}

/// Top-level benchmark driver (the `c` in `fn bench(c: &mut Criterion)`).
#[derive(Debug, Default)]
pub struct Criterion {
    measure: bool,
}

impl Criterion {
    /// Reads the command line: `--bench` selects measurement mode, its
    /// absence (e.g. under `cargo test`) selects one-shot smoke mode.
    pub fn configure_from_args(mut self) -> Self {
        self.measure = std::env::args().any(|a| a == "--bench");
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let measure = self.measure;
        run_one(&id.into().id, 10, measure, f);
        self
    }
}

/// A named group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark (measurement mode).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.sample_size, self.criterion.measure, |b| {
            f(b, input)
        });
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.sample_size, self.criterion.measure, f);
        self
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, measure: bool, mut f: F) {
    let samples = if measure { sample_size as u32 } else { 1 };
    let mut b = Bencher {
        samples,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if measure {
        println!("{id}: median {:?} over {samples} samples", b.elapsed);
    } else {
        println!("{id}: ok (smoke run)");
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the `main` entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_bodies_once() {
        let mut c = Criterion::default();
        let mut calls = 0;
        {
            let mut group = c.benchmark_group("g");
            group
                .sample_size(50)
                .bench_with_input(BenchmarkId::new("f", 1), &1, |b, &x| {
                    b.iter(|| {
                        calls += 1;
                        x + 1
                    })
                });
            group.finish();
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn benchmark_ids_format_as_paths() {
        assert_eq!(BenchmarkId::new("kernel", 256).id, "kernel/256");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }
}
