//! Value-generation strategies (no shrinking; see the crate docs).

use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value (proptest's
    /// `prop_flat_map`): `f` maps a value to a new strategy, which is then
    /// sampled once.
    fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        O: Strategy,
        F: Fn(Self::Value) -> O,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases this strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A [`Strategy::prop_map`] adapter.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A [`Strategy::prop_flat_map`] adapter.
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    O: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O::Value;

    fn generate(&self, rng: &mut StdRng) -> O::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Weighted union of same-type strategies (built by [`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof requires a positive total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, arm) in &self.arms {
            if pick < *w {
                return arm.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

/// Strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<u64>() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Clone, Debug)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
