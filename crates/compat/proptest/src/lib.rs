//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API this workspace's property
//! tests use: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`,
//! [`prop_oneof!`], [`strategy::Strategy`] with `prop_map`, range and tuple
//! strategies, [`collection::vec`], [`Just`], [`any`], and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from upstream proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   left to the assertion message; there is no minimization pass.
//! * **Deterministic seeding.** Each test derives its RNG seed from the
//!   test's name (FNV-1a), so runs are reproducible without a persistence
//!   file. Set `PROPTEST_SEED` to override the base seed.
//! * Failure persistence files, `prop_filter`, and recursive strategies
//!   are not implemented (unused here).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;

pub use strategy::{any, Just, Strategy};

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

/// Runtime configuration for a [`proptest!`] block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the suite fast on small CI
        // machines while still exploring the space every run.
        ProptestConfig { cases: 64 }
    }
}

/// Derives the per-test RNG seed from the test name (FNV-1a 64), xor'd
/// with `PROPTEST_SEED` when set.
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let base = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    h ^ base
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Element-count specification for [`vec`]: a fixed size or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for a `Vec` of `size` elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The usual wildcard-import surface: strategies, macros, config.
pub mod prelude {
    pub use crate::collection::vec as prop_vec;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Weighted (or unweighted) union of strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running the body over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@config ($cfg) $($rest)*);
    };
    (@config ($cfg:expr) $($(#[$meta:meta])* fn $name:ident (
        $($arg:ident in $strat:expr),* $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut proptest_rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(
                    $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
                for _ in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut proptest_rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_stay_in_bounds(x in 0usize..10, y in -5i64..=5) {
            prop_assert!(x < 10);
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn tuples_and_vecs_compose(
            pair in (0usize..4, 0u64..100),
            items in crate::collection::vec(0usize..7, 0..20),
        ) {
            prop_assert!(pair.0 < 4 && pair.1 < 100);
            prop_assert!(items.len() < 20);
            prop_assert!(items.iter().all(|&i| i < 7));
        }

        #[test]
        fn oneof_maps_and_just(v in prop_oneof![
            3 => (0i64..10).prop_map(|x| x * 2),
            1 => Just(-1i64),
        ]) {
            prop_assert!(v == -1 || (v % 2 == 0 && (0..20).contains(&v)));
        }

        #[test]
        fn any_bool_is_generated(b in any::<bool>()) {
            let _ = b;
            prop_assert!(true);
        }
    }
}
