//! Offline stand-in for the `rand_chacha` crate.
//!
//! Declared as a workspace dependency for API compatibility; no code in
//! this repository currently draws from a ChaCha generator. The types here
//! delegate to the workspace's [`rand::rngs::StdRng`] (xoshiro256++) and
//! are **not** ChaCha stream ciphers — they exist so that `use
//! rand_chacha::ChaChaNRng` code paths keep compiling offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

macro_rules! chacha_alias {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Debug)]
        pub struct $name(StdRng);

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                self.0.next_u32()
            }
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64()
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                $name(StdRng::from_seed(seed))
            }
        }
    };
}

chacha_alias!(
    /// Stand-in for `rand_chacha::ChaCha8Rng` (delegates to `StdRng`).
    ChaCha8Rng
);
chacha_alias!(
    /// Stand-in for `rand_chacha::ChaCha12Rng` (delegates to `StdRng`).
    ChaCha12Rng
);
chacha_alias!(
    /// Stand-in for `rand_chacha::ChaCha20Rng` (delegates to `StdRng`).
    ChaCha20Rng
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = ChaCha12Rng::seed_from_u64(3);
        let mut b = ChaCha12Rng::seed_from_u64(3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
