//! Offline stand-in for the `rand` crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! the workspace vendors a minimal, std-only implementation of the small
//! `rand` 0.8 API surface the codebase actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `gen`,
//! `gen_range`, and `gen_bool`.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — deterministic, high-quality, and fast, but **not** the
//! ChaCha12 stream of the real `rand::rngs::StdRng`: seeds produce
//! different (equally reproducible) sequences than upstream `rand` would.
//! All simulation results in this repository are defined relative to this
//! generator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed (via SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly from the "standard" distribution
/// (`[0, 1)` for floats, the full range for integers).
pub trait StandardSample: Sized {
    /// Draws one value from the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Types with a uniform sampler over an arbitrary sub-range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

/// Uniform `u128` draw below `span` (Lemire-style widening rejection on the
/// low 64 bits; every span used in this workspace fits in a `u64`).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    let span64 = u64::try_from(span).expect("range span exceeds u64");
    if span64 == 0 {
        return 0;
    }
    // Widening-multiply rejection sampling: unbiased, at most a few retries.
    let zone = u64::MAX - (u64::MAX - span64 + 1) % span64;
    loop {
        let draw = rng.next_u64();
        if draw <= zone {
            return u128::from(((u128::from(draw) * u128::from(span64)) >> 64) as u64);
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let (lo_w, hi_w) = (lo as i128, hi as i128);
                let span = (hi_w - lo_w) as u128 + u128::from(inclusive);
                assert!(span > 0, "cannot sample from empty range");
                let off = uniform_below(rng, span);
                (lo_w + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self {
        assert!(
            lo < hi || (inclusive && lo <= hi),
            "cannot sample from empty range"
        );
        let unit = f64::sample_standard(rng);
        let v = lo + (hi - lo) * unit;
        if !inclusive && v >= hi {
            lo
        } else {
            v.clamp(lo, hi)
        }
    }
}

impl SampleUniform for f32 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self {
        assert!(
            lo < hi || (inclusive && lo <= hi),
            "cannot sample from empty range"
        );
        let unit = f32::sample_standard(rng);
        let v = lo + (hi - lo) * unit;
        if !inclusive && v >= hi {
            lo
        } else {
            v.clamp(lo, hi)
        }
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(rng, lo, hi, true)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    ///
    /// See the crate docs: this is a compatible stand-in for
    /// `rand::rngs::StdRng`, not a bit-for-bit reimplementation.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, 2019)
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0u64; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0x6A09_E667_F3BC_C909, 1, 2];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..10).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 10);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&x));
            let y = rng.gen_range(0usize..3);
            assert!(y < 3);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits = {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn standard_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn mut_ref_is_an_rng_too() {
        fn takes_rng<R: Rng>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..100)
        }
        let mut rng = StdRng::seed_from_u64(11);
        let r = &mut rng;
        assert!(takes_rng(r) < 100);
    }
}
