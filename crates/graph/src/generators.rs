//! Workload generators for experiments and tests.
//!
//! The paper evaluates nothing empirically, so the reproduction defines its
//! own workloads (see `DESIGN.md`, experiments E1–E13). This module
//! provides:
//!
//! * random weighted digraphs guaranteed free of negative cycles (for APSP
//!   instances with negative arcs, via the potential-reweighting trick),
//! * random undirected graphs for negative-triangle stress tests,
//! * *planted* instances where `Γ(u, v)` is controlled exactly (to exercise
//!   the `FindEdgesWithPromise` promise and the class machinery of
//!   Section 5.2),
//! * adversarial instances concentrating all negative triangles on a single
//!   coarse-block pair (the congestion hot-spot scenario the paper's load
//!   balancing is designed for).

use crate::digraph::DiGraph;
use crate::ugraph::UGraph;
use rand::Rng;

/// Random directed graph with arc probability `density` and weights drawn
/// uniformly from `[0, w_max]` (no negative arcs, hence no negative cycle).
///
/// # Panics
///
/// Panics if `density` is not in `[0, 1]`.
pub fn random_nonneg_digraph<R: Rng>(n: usize, density: f64, w_max: u64, rng: &mut R) -> DiGraph {
    assert!((0.0..=1.0).contains(&density));
    let mut g = DiGraph::new(n);
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.gen_bool(density) {
                g.add_arc(u, v, rng.gen_range(0..=w_max) as i64);
            }
        }
    }
    g
}

/// Random directed graph with *negative* arcs but no negative cycle.
///
/// Arcs get weight `c(u,v) + p(u) − p(v)` where `c ≥ 0` is a random base
/// cost and `p` is a random vertex potential: every cycle's weight equals
/// its (nonnegative) base cost, so no negative cycle exists, yet individual
/// arcs can be strongly negative.
///
/// # Panics
///
/// Panics if `density` is not in `[0, 1]`.
///
/// # Examples
///
/// ```
/// use qcc_graph::{floyd_warshall, random_reweighted_digraph};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let g = random_reweighted_digraph(10, 0.5, 20, &mut rng);
/// assert!(floyd_warshall(&g.adjacency_matrix()).is_ok()); // no negative cycle
/// ```
pub fn random_reweighted_digraph<R: Rng>(
    n: usize,
    density: f64,
    w_max: u64,
    rng: &mut R,
) -> DiGraph {
    assert!((0.0..=1.0).contains(&density));
    let potentials: Vec<i64> = (0..n).map(|_| rng.gen_range(0..=w_max) as i64).collect();
    let mut g = DiGraph::new(n);
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.gen_bool(density) {
                let base = rng.gen_range(0..=w_max) as i64;
                g.add_arc(u, v, base + potentials[u] - potentials[v]);
            }
        }
    }
    g
}

/// Random undirected graph with edge probability `density` and weights
/// drawn uniformly from `[-w_mag, w_mag]`.
///
/// # Panics
///
/// Panics if `density` is not in `[0, 1]`.
pub fn random_ugraph<R: Rng>(n: usize, density: f64, w_mag: i64, rng: &mut R) -> UGraph {
    assert!((0.0..=1.0).contains(&density));
    let mut g = UGraph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(density) {
                g.add_edge(u, v, rng.gen_range(-w_mag..=w_mag));
            }
        }
    }
    g
}

/// Builds a "book" instance: the pair `{0, 1}` is in exactly `gamma`
/// negative triangles (one per apex `2 .. 2 + gamma`), every apex pair is
/// in exactly one, and every other pair in none.
///
/// Used to exercise `Γ` counting and the `IdentifyClass` bands with exact
/// ground truth.
///
/// # Panics
///
/// Panics if `n < 2 + gamma`.
///
/// # Examples
///
/// ```
/// use qcc_graph::book_graph;
///
/// let g = book_graph(10, 4);
/// assert_eq!(g.gamma(0, 1), 4);
/// assert_eq!(g.gamma(0, 2), 1);
/// assert_eq!(g.gamma(2, 3), 0);
/// ```
pub fn book_graph(n: usize, gamma: usize) -> UGraph {
    assert!(
        n >= 2 + gamma,
        "need {} vertices for a {gamma}-page book",
        2 + gamma
    );
    let mut g = UGraph::new(n);
    g.add_edge(0, 1, -10);
    for w in 2..(2 + gamma) {
        g.add_edge(0, w, 4);
        g.add_edge(1, w, 4);
    }
    g
}

/// Plants `count` vertex-disjoint negative triangles into an `n`-vertex
/// graph whose remaining edges (added with probability `filler_density`)
/// are heavy enough never to create further negative triangles.
///
/// Each planted pair has `Γ = 1`; every other pair has `Γ = 0`.
///
/// # Panics
///
/// Panics if `3 * count > n` or `filler_density ∉ [0, 1]`.
pub fn planted_disjoint_triangles<R: Rng>(
    n: usize,
    count: usize,
    filler_density: f64,
    rng: &mut R,
) -> (UGraph, Vec<(usize, usize, usize)>) {
    assert!(3 * count <= n, "need 3·{count} ≤ {n} vertices");
    assert!((0.0..=1.0).contains(&filler_density));
    let mut g = UGraph::new(n);
    // Heavy filler edges first: weight +10 each, so any triangle that uses
    // at least one filler edge has sum ≥ 10 − 1 − 1 > 0.
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(filler_density) {
                g.add_edge(u, v, 10);
            }
        }
    }
    let mut triangles = Vec::with_capacity(count);
    for t in 0..count {
        let (a, b, c) = (3 * t, 3 * t + 1, 3 * t + 2);
        g.add_edge(a, b, -1);
        g.add_edge(a, c, -1);
        g.add_edge(b, c, -1);
        triangles.push((a, b, c));
    }
    (g, triangles)
}

/// Adversarial congestion instance: all negative triangles share apexes in
/// one fine block and base pairs in one coarse-block pair, concentrating
/// the checking traffic of `ComputePairs` onto a few `(u, v, w)` nodes.
///
/// `pages` base pairs each form `apexes` negative triangles. Returns the
/// graph and the list of base pairs (each with `Γ = apexes`).
///
/// # Panics
///
/// Panics if `2 * pages + apexes > n`.
pub fn congestion_hotspot(n: usize, pages: usize, apexes: usize) -> (UGraph, Vec<(usize, usize)>) {
    assert!(2 * pages + apexes <= n);
    let mut g = UGraph::new(n);
    let apex_start = 2 * pages;
    let mut base_pairs = Vec::with_capacity(pages);
    for p in 0..pages {
        let (u, v) = (2 * p, 2 * p + 1);
        g.add_edge(u, v, -10);
        for a in 0..apexes {
            let w = apex_start + a;
            g.add_edge(u, w, 4);
            g.add_edge(v, w, 4);
        }
        base_pairs.push((u, v));
    }
    (g, base_pairs)
}

/// Directed path `0 → 1 → … → n−1` with unit weights: `dist(i, j) = j − i`
/// forward, `+∞` backward. A structured oracle for distance tests.
pub fn path_digraph(n: usize) -> DiGraph {
    let mut g = DiGraph::new(n);
    for i in 0..n.saturating_sub(1) {
        g.add_arc(i, i + 1, 1);
    }
    g
}

/// Directed cycle `0 → 1 → … → n−1 → 0` with unit weights:
/// `dist(i, j) = (j − i) mod n`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn cycle_digraph(n: usize) -> DiGraph {
    assert!(n >= 2, "a cycle needs at least two vertices");
    let mut g = DiGraph::new(n);
    for i in 0..n {
        g.add_arc(i, (i + 1) % n, 1);
    }
    g
}

/// Complete digraph with `w(u, v) = base + |u − v|` — every distance is
/// realized by the direct arc, making expected values trivial.
pub fn complete_digraph(n: usize, base: i64) -> DiGraph {
    let mut g = DiGraph::new(n);
    for u in 0..n {
        for v in 0..n {
            if u != v {
                g.add_arc(u, v, base + (u.abs_diff(v)) as i64);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apsp_ref::floyd_warshall;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn nonneg_digraph_has_no_negative_arcs() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = random_nonneg_digraph(12, 0.5, 9, &mut rng);
        assert!(g.arcs().all(|(_, _, w)| (0..=9).contains(&w)));
    }

    #[test]
    fn reweighted_digraph_has_negative_arcs_but_no_negative_cycle() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut any_negative = false;
        for _ in 0..5 {
            let g = random_reweighted_digraph(12, 0.7, 30, &mut rng);
            any_negative |= g.arcs().any(|(_, _, w)| w < 0);
            assert!(floyd_warshall(&g.adjacency_matrix()).is_ok());
        }
        assert!(
            any_negative,
            "reweighting should produce some negative arcs"
        );
    }

    #[test]
    fn random_ugraph_respects_magnitude() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = random_ugraph(10, 0.8, 5, &mut rng);
        assert!(g.edges().all(|(_, _, w)| (-5..=5).contains(&w)));
    }

    #[test]
    fn book_graph_gamma_is_exact() {
        let g = book_graph(12, 7);
        assert_eq!(g.gamma(0, 1), 7);
        for w in 2..9 {
            assert_eq!(g.gamma(0, w), 1);
            assert_eq!(g.gamma(1, w), 1);
        }
        assert_eq!(g.negative_triangles().len(), 7);
    }

    #[test]
    fn planted_triangles_have_unit_gamma() {
        let mut rng = StdRng::seed_from_u64(5);
        let (g, triangles) = planted_disjoint_triangles(15, 4, 0.5, &mut rng);
        assert_eq!(triangles.len(), 4);
        let expected: std::collections::HashSet<_> = triangles
            .iter()
            .flat_map(|&(a, b, c)| [(a, b), (a, c), (b, c)])
            .collect();
        let found: std::collections::HashSet<_> = g.negative_triangle_pairs().into_iter().collect();
        assert_eq!(found, expected);
        for &(a, b, c) in &triangles {
            assert_eq!(g.gamma(a, b), 1);
            assert_eq!(g.gamma(a, c), 1);
            assert_eq!(g.gamma(b, c), 1);
        }
    }

    #[test]
    fn hotspot_concentrates_gamma() {
        let (g, base_pairs) = congestion_hotspot(20, 3, 5);
        for &(u, v) in &base_pairs {
            assert_eq!(g.gamma(u, v), 5);
        }
        assert_eq!(g.negative_triangles().len(), 15);
    }

    #[test]
    fn path_distances_are_index_differences() {
        let g = path_digraph(6);
        let d = floyd_warshall(&g.adjacency_matrix()).unwrap();
        assert_eq!(d[(0, 5)], crate::ExtWeight::from(5));
        assert_eq!(d[(2, 4)], crate::ExtWeight::from(2));
        assert_eq!(d[(4, 2)], crate::ExtWeight::PosInf);
    }

    #[test]
    fn cycle_distances_wrap() {
        let g = cycle_digraph(5);
        let d = floyd_warshall(&g.adjacency_matrix()).unwrap();
        assert_eq!(d[(3, 1)], crate::ExtWeight::from(3)); // 3 -> 4 -> 0 -> 1
        assert_eq!(d[(1, 3)], crate::ExtWeight::from(2));
    }

    #[test]
    fn complete_digraph_distances_are_direct() {
        let g = complete_digraph(6, 1);
        let d = floyd_warshall(&g.adjacency_matrix()).unwrap();
        for u in 0..6 {
            for v in 0..6 {
                if u != v {
                    assert_eq!(d[(u, v)], crate::ExtWeight::from(1 + u.abs_diff(v) as i64));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "vertices")]
    fn planted_triangles_reject_overfull_request() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = planted_disjoint_triangles(5, 2, 0.0, &mut rng);
    }
}
