//! Dense square matrices and the tropical distance product.
//!
//! The distance product (Definition 2 of the paper) of `A` and `B` is the
//! matrix `C` with `C[i,j] = min_k (A[i,k] + B[k,j])` — matrix
//! multiplication over the `(min, +)` semiring. Shortest-path distances are
//! the `n`-th distance-product power of the weighted adjacency matrix
//! (Proposition 3). This module provides the sequential reference
//! implementations the distributed algorithms are verified against.

use crate::weight::ExtWeight;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense `n × n` matrix in row-major order.
///
/// # Examples
///
/// ```
/// use qcc_graph::{ExtWeight, SquareMatrix};
///
/// let mut m = SquareMatrix::filled(2, ExtWeight::PosInf);
/// m[(0, 1)] = ExtWeight::from(5);
/// assert_eq!(m[(0, 1)], ExtWeight::from(5));
/// assert_eq!(m.n(), 2);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct SquareMatrix<T> {
    n: usize,
    data: Vec<T>,
}

impl<T: Clone> SquareMatrix<T> {
    /// Creates an `n × n` matrix with every entry set to `fill`.
    pub fn filled(n: usize, fill: T) -> Self {
        SquareMatrix { n, data: vec![fill; n * n] }
    }

    /// Creates a matrix from a row-major entry generator.
    ///
    /// # Examples
    ///
    /// ```
    /// use qcc_graph::SquareMatrix;
    ///
    /// let m = SquareMatrix::from_fn(3, |i, j| (i * 10 + j) as u64);
    /// assert_eq!(m[(2, 1)], 21);
    /// ```
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                data.push(f(i, j));
            }
        }
        SquareMatrix { n, data }
    }

    /// Side length of the matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Mutable row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        &mut self.data[i * self.n..(i + 1) * self.n]
    }

    /// Iterates over `(i, j, &entry)` in row-major order.
    pub fn entries(&self) -> impl Iterator<Item = (usize, usize, &T)> {
        self.data.iter().enumerate().map(move |(k, t)| (k / self.n, k % self.n, t))
    }
}

impl<T> Index<(usize, usize)> for SquareMatrix<T> {
    type Output = T;

    fn index(&self, (i, j): (usize, usize)) -> &T {
        &self.data[i * self.n + j]
    }
}

impl<T> IndexMut<(usize, usize)> for SquareMatrix<T> {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        &mut self.data[i * self.n + j]
    }
}

impl<T: fmt::Debug> fmt::Debug for SquareMatrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "SquareMatrix(n={})", self.n)?;
        for i in 0..self.n {
            write!(f, "  [")?;
            for j in 0..self.n {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:?}", self.data[i * self.n + j])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

/// A weight matrix over the extended integers.
pub type WeightMatrix = SquareMatrix<ExtWeight>;

impl WeightMatrix {
    /// The identity of the distance product: `0` on the diagonal, `+∞` elsewhere.
    ///
    /// # Examples
    ///
    /// ```
    /// use qcc_graph::{distance_product, ExtWeight, WeightMatrix};
    ///
    /// let id = WeightMatrix::distance_identity(3);
    /// let a = WeightMatrix::from_fn(3, |i, j| ExtWeight::from((i + j) as i64));
    /// assert_eq!(distance_product(&a, &id), a);
    /// ```
    pub fn distance_identity(n: usize) -> Self {
        SquareMatrix::from_fn(n, |i, j| if i == j { ExtWeight::ZERO } else { ExtWeight::PosInf })
    }

    /// Largest finite magnitude among the entries (0 if none).
    pub fn max_finite_magnitude(&self) -> u64 {
        self.data.iter().map(|w| w.magnitude()).max().unwrap_or(0)
    }
}

/// Sequential distance product `A ⋆ B` (Definition 2): `C[i,j] = min_k (A[i,k] + B[k,j])`.
///
/// Reference implementation in `O(n³)` time; the distributed algorithms are
/// validated against it.
///
/// # Panics
///
/// Panics if the dimensions differ.
///
/// # Examples
///
/// ```
/// use qcc_graph::{distance_product, ExtWeight, WeightMatrix};
///
/// let a = WeightMatrix::from_fn(2, |i, j| ExtWeight::from((i as i64) + 1 + j as i64));
/// let c = distance_product(&a, &a);
/// // C[0][0] = min(a00+a00, a01+a10) = min(2, 4) = 2
/// assert_eq!(c[(0, 0)], ExtWeight::from(2));
/// ```
pub fn distance_product(a: &WeightMatrix, b: &WeightMatrix) -> WeightMatrix {
    assert_eq!(a.n(), b.n(), "distance product requires equal dimensions");
    let n = a.n();
    let mut c = WeightMatrix::filled(n, ExtWeight::PosInf);
    for i in 0..n {
        for k in 0..n {
            let aik = a[(i, k)];
            if aik == ExtWeight::PosInf {
                continue;
            }
            let brow = b.row(k);
            let crow = c.row_mut(i);
            for j in 0..n {
                let cand = aik + brow[j];
                if cand < crow[j] {
                    crow[j] = cand;
                }
            }
        }
    }
    c
}

/// `p`-th power of `a` with respect to the distance product, by repeated
/// squaring (`O(log p)` products).
///
/// `distance_power(a, n-1)` (or any exponent `≥ n − 1`) of a weighted
/// adjacency matrix yields all-pairs shortest distances when the graph has
/// no negative cycle.
///
/// # Examples
///
/// ```
/// use qcc_graph::{distance_power, ExtWeight, WeightMatrix};
///
/// // path 0 -> 1 -> 2 with unit weights
/// let mut a = WeightMatrix::distance_identity(3);
/// a[(0, 1)] = ExtWeight::from(1);
/// a[(1, 2)] = ExtWeight::from(1);
/// let d = distance_power(&a, 2);
/// assert_eq!(d[(0, 2)], ExtWeight::from(2));
/// ```
pub fn distance_power(a: &WeightMatrix, p: u64) -> WeightMatrix {
    let mut result = WeightMatrix::distance_identity(a.n());
    let mut base = a.clone();
    let mut exp = p;
    while exp > 0 {
        if exp & 1 == 1 {
            result = distance_product(&result, &base);
        }
        exp >>= 1;
        if exp > 0 {
            base = distance_product(&base, &base);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(x: i64) -> ExtWeight {
        ExtWeight::from(x)
    }

    #[test]
    fn indexing_round_trips() {
        let mut m = SquareMatrix::filled(3, 0u64);
        m[(1, 2)] = 42;
        assert_eq!(m[(1, 2)], 42);
        assert_eq!(m.row(1), &[0, 0, 42]);
    }

    #[test]
    fn entries_iterates_in_row_major_order() {
        let m = SquareMatrix::from_fn(2, |i, j| i * 2 + j);
        let coords: Vec<(usize, usize, usize)> =
            m.entries().map(|(i, j, &x)| (i, j, x)).collect();
        assert_eq!(coords, vec![(0, 0, 0), (0, 1, 1), (1, 0, 2), (1, 1, 3)]);
    }

    #[test]
    fn identity_is_neutral_on_both_sides() {
        let a = WeightMatrix::from_fn(4, |i, j| w((3 * i + j) as i64 - 5));
        let id = WeightMatrix::distance_identity(4);
        assert_eq!(distance_product(&a, &id), a);
        assert_eq!(distance_product(&id, &a), a);
    }

    #[test]
    fn product_respects_infinities() {
        let mut a = WeightMatrix::filled(2, ExtWeight::PosInf);
        a[(0, 0)] = w(1);
        let b = WeightMatrix::filled(2, ExtWeight::PosInf);
        let c = distance_product(&a, &b);
        assert!(c.entries().all(|(_, _, &x)| x == ExtWeight::PosInf));
    }

    #[test]
    fn product_handles_negative_weights() {
        let mut a = WeightMatrix::distance_identity(2);
        a[(0, 1)] = w(-7);
        a[(1, 0)] = w(3);
        let c = distance_product(&a, &a);
        assert_eq!(c[(0, 0)], w(-4)); // 0->1->0 = -7 + 3
    }

    #[test]
    fn power_zero_is_identity() {
        let a = WeightMatrix::from_fn(3, |_, _| w(1));
        assert_eq!(distance_power(&a, 0), WeightMatrix::distance_identity(3));
    }

    #[test]
    fn power_matches_iterated_product() {
        let a = WeightMatrix::from_fn(4, |i, j| {
            if (i + 2 * j) % 3 == 0 { w((i as i64) - (j as i64)) } else { ExtWeight::PosInf }
        });
        let mut iter = WeightMatrix::distance_identity(4);
        for _ in 0..5 {
            iter = distance_product(&iter, &a);
        }
        assert_eq!(distance_power(&a, 5), iter);
    }

    #[test]
    fn power_computes_path_distances() {
        // cycle 0 -> 1 -> 2 -> 3 -> 0, unit weights
        let n = 4;
        let mut a = WeightMatrix::distance_identity(n);
        for i in 0..n {
            a[(i, (i + 1) % n)] = w(1);
        }
        let d = distance_power(&a, (n - 1) as u64);
        assert_eq!(d[(0, 3)], w(3));
        assert_eq!(d[(3, 0)], w(1));
        assert_eq!(d[(2, 1)], w(3));
    }

    #[test]
    fn max_finite_magnitude_ignores_infinities() {
        let mut a = WeightMatrix::filled(2, ExtWeight::PosInf);
        a[(0, 1)] = w(-9);
        assert_eq!(a.max_finite_magnitude(), 9);
    }

    #[test]
    fn debug_output_is_nonempty() {
        let m = SquareMatrix::filled(1, 5u8);
        assert!(format!("{m:?}").contains('5'));
    }
}
