//! Dense square matrices and the tropical distance product.
//!
//! The distance product (Definition 2 of the paper) of `A` and `B` is the
//! matrix `C` with `C[i,j] = min_k (A[i,k] + B[k,j])` — matrix
//! multiplication over the `(min, +)` semiring. Shortest-path distances are
//! the `n`-th distance-product power of the weighted adjacency matrix
//! (Proposition 3). This module provides the local implementations the
//! distributed algorithms are verified against.
//!
//! Two implementations are kept deliberately:
//!
//! * [`distance_product_reference`] — the textbook `i, k, j` triple loop,
//!   small enough to audit by eye; the property tests treat it as ground
//!   truth.
//! * [`distance_product`] / [`distance_product_with_threads`] — a
//!   cache-blocked (tiled) kernel with row-band parallelism over
//!   `std::thread::scope` workers (worker count from `QCC_THREADS`, see
//!   [`qcc_perf::resolve_threads`]). Min over `k` is order-independent on
//!   plain values, so the tiled schedule is **bit-identical** to the
//!   reference for every input, which `tests/proptests.rs` asserts across
//!   random matrices including `±∞` and negative weights.

use crate::weight::ExtWeight;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense `n × n` matrix in row-major order.
///
/// # Examples
///
/// ```
/// use qcc_graph::{ExtWeight, SquareMatrix};
///
/// let mut m = SquareMatrix::filled(2, ExtWeight::PosInf);
/// m[(0, 1)] = ExtWeight::from(5);
/// assert_eq!(m[(0, 1)], ExtWeight::from(5));
/// assert_eq!(m.n(), 2);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct SquareMatrix<T> {
    n: usize,
    data: Vec<T>,
}

impl<T: Clone> SquareMatrix<T> {
    /// Creates an `n × n` matrix with every entry set to `fill`.
    pub fn filled(n: usize, fill: T) -> Self {
        SquareMatrix {
            n,
            data: vec![fill; n * n],
        }
    }

    /// Creates a matrix from a row-major entry generator.
    ///
    /// # Examples
    ///
    /// ```
    /// use qcc_graph::SquareMatrix;
    ///
    /// let m = SquareMatrix::from_fn(3, |i, j| (i * 10 + j) as u64);
    /// assert_eq!(m[(2, 1)], 21);
    /// ```
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                data.push(f(i, j));
            }
        }
        SquareMatrix { n, data }
    }

    /// Side length of the matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Mutable row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        &mut self.data[i * self.n..(i + 1) * self.n]
    }

    /// Iterates over `(i, j, &entry)` in row-major order.
    pub fn entries(&self) -> impl Iterator<Item = (usize, usize, &T)> {
        self.data
            .iter()
            .enumerate()
            .map(move |(k, t)| (k / self.n, k % self.n, t))
    }

    /// The underlying row-major storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The underlying row-major storage, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T> Index<(usize, usize)> for SquareMatrix<T> {
    type Output = T;

    fn index(&self, (i, j): (usize, usize)) -> &T {
        &self.data[i * self.n + j]
    }
}

impl<T> IndexMut<(usize, usize)> for SquareMatrix<T> {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        &mut self.data[i * self.n + j]
    }
}

impl<T: fmt::Debug> fmt::Debug for SquareMatrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "SquareMatrix(n={})", self.n)?;
        for i in 0..self.n {
            write!(f, "  [")?;
            for j in 0..self.n {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:?}", self.data[i * self.n + j])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

/// A weight matrix over the extended integers.
pub type WeightMatrix = SquareMatrix<ExtWeight>;

impl WeightMatrix {
    /// The identity of the distance product: `0` on the diagonal, `+∞` elsewhere.
    ///
    /// # Examples
    ///
    /// ```
    /// use qcc_graph::{distance_product, ExtWeight, WeightMatrix};
    ///
    /// let id = WeightMatrix::distance_identity(3);
    /// let a = WeightMatrix::from_fn(3, |i, j| ExtWeight::from((i + j) as i64));
    /// assert_eq!(distance_product(&a, &id), a);
    /// ```
    pub fn distance_identity(n: usize) -> Self {
        SquareMatrix::from_fn(n, |i, j| {
            if i == j {
                ExtWeight::ZERO
            } else {
                ExtWeight::PosInf
            }
        })
    }

    /// Largest finite magnitude among the entries (0 if none).
    pub fn max_finite_magnitude(&self) -> u64 {
        self.data.iter().map(|w| w.magnitude()).max().unwrap_or(0)
    }

    /// Largest finite magnitude across this matrix and `other` — the `M`
    /// of the paper's `O(log M)` binary searches over a product `A ⋆ B`.
    pub fn max_finite_magnitude_with(&self, other: &Self) -> u64 {
        self.max_finite_magnitude()
            .max(other.max_finite_magnitude())
    }
}

/// Edge length of the cache tiles of the blocked min-plus kernel.
///
/// 64 × 64 tiles of 16-byte `ExtWeight` entries keep one `B` tile plus the
/// active `C` tile rows comfortably inside a typical 32 KiB L1 data cache.
pub const MIN_PLUS_TILE: usize = 64;

/// Sentinel code for "no entry / +∞" in the flat i64 min-plus kernels.
///
/// The flat kernels trade the three-variant [`ExtWeight`] for plain `i64`
/// lanes the compiler can vectorize: a missing entry is coded as `1 << 62`,
/// finite entries are themselves, and any accumulated value above
/// [`TROPICAL_FINITE_MAX`]`· 2` decodes back to "no entry". This is exact —
/// not approximate — as long as every finite input magnitude is at most
/// [`TROPICAL_FINITE_MAX`]: finite sums stay `≤ 2^60` while any sum through
/// the sentinel stays `≥ 2^62 − 2^59`, so coded infinities can never beat a
/// real path and additions never overflow `i64`.
pub const TROPICAL_NONE: i64 = 1 << 62;

/// Largest finite input magnitude the flat i64 kernels accept exactly.
pub const TROPICAL_FINITE_MAX: i64 = 1 << 59;

/// Decodes an accumulated flat-kernel value: anything beyond the reach of
/// pure finite sums must have passed through [`TROPICAL_NONE`].
#[inline]
pub fn tropical_decode(v: i64) -> Option<i64> {
    if v > 2 * TROPICAL_FINITE_MAX {
        None
    } else {
        Some(v)
    }
}

/// Rectangular flat min-plus accumulation:
/// `c[i·cols + l] = min(c[i·cols + l], min_j (a[i·inner + j] + b[j·cols + l]))`.
///
/// All slices are sentinel-coded per [`TROPICAL_NONE`]; `c` must be
/// pre-filled (typically with `TROPICAL_NONE`). The inner loop runs over
/// contiguous `c` and `b` rows with branch-free `min(add)` lanes — the
/// SIMD-friendly core shared by [`distance_product`] and the batched
/// oracle-census evaluator of the APSP crate.
///
/// # Panics
///
/// Panics if the slice lengths do not match `rows·inner`, `inner·cols`,
/// and `rows·cols`.
pub fn min_plus_flat_into(
    a: &[i64],
    b: &[i64],
    rows: usize,
    inner: usize,
    cols: usize,
    c: &mut [i64],
) {
    assert_eq!(a.len(), rows * inner);
    assert_eq!(b.len(), inner * cols);
    assert_eq!(c.len(), rows * cols);
    for i in 0..rows {
        let arow = &a[i * inner..(i + 1) * inner];
        let crow = &mut c[i * cols..(i + 1) * cols];
        for (j, &aij) in arow.iter().enumerate() {
            // A coded "no entry" can never win; skipping it keeps the
            // inner loop's additions within the exactness bound.
            if aij > TROPICAL_FINITE_MAX {
                continue;
            }
            let brow = &b[j * cols..(j + 1) * cols];
            for (cil, &bjl) in crow.iter_mut().zip(brow) {
                let cand = aij + bjl;
                if cand < *cil {
                    *cil = cand;
                }
            }
        }
    }
}

/// Encodes a weight matrix for the flat i64 kernels, or `None` when the
/// matrix is outside their exact domain (a `−∞` entry, or a finite entry
/// beyond [`TROPICAL_FINITE_MAX`]).
pub(crate) fn tropical_encode(m: &WeightMatrix) -> Option<Vec<i64>> {
    let mut coded = Vec::with_capacity(m.n() * m.n());
    for w in m.as_slice() {
        coded.push(match *w {
            ExtWeight::PosInf => TROPICAL_NONE,
            ExtWeight::Finite(x) if x.unsigned_abs() <= TROPICAL_FINITE_MAX as u64 => x,
            _ => return None,
        });
    }
    Some(coded)
}

/// Reference distance product `A ⋆ B` (Definition 2):
/// `C[i,j] = min_k (A[i,k] + B[k,j])`.
///
/// The textbook `i, k, j` triple loop in `O(n³)` time — ground truth for
/// both the distributed algorithms and the tiled kernel of
/// [`distance_product`].
///
/// # Panics
///
/// Panics if the dimensions differ.
pub fn distance_product_reference(a: &WeightMatrix, b: &WeightMatrix) -> WeightMatrix {
    assert_eq!(a.n(), b.n(), "distance product requires equal dimensions");
    let n = a.n();
    let mut c = WeightMatrix::filled(n, ExtWeight::PosInf);
    for i in 0..n {
        for k in 0..n {
            let aik = a[(i, k)];
            if aik == ExtWeight::PosInf {
                continue;
            }
            let brow = b.row(k);
            let crow = c.row_mut(i);
            for j in 0..n {
                let cand = aik + brow[j];
                if cand < crow[j] {
                    crow[j] = cand;
                }
            }
        }
    }
    c
}

/// Computes rows `rows` of `A ⋆ B` into `c_rows` (row-major, pre-filled
/// with `+∞`) with `MIN_PLUS_TILE`-blocked loops.
///
/// Min over `k` is order- and grouping-independent, so the tiled schedule
/// produces exactly the entries of [`distance_product_reference`].
fn min_plus_rows(
    a: &WeightMatrix,
    b: &WeightMatrix,
    rows: std::ops::Range<usize>,
    c_rows: &mut [ExtWeight],
) {
    let n = a.n();
    debug_assert_eq!(c_rows.len(), rows.len() * n);
    for (bi, i) in rows.enumerate() {
        let arow = a.row(i);
        let crow = &mut c_rows[bi * n..(bi + 1) * n];
        for kb in (0..n).step_by(MIN_PLUS_TILE) {
            let kend = (kb + MIN_PLUS_TILE).min(n);
            for jb in (0..n).step_by(MIN_PLUS_TILE) {
                let jend = (jb + MIN_PLUS_TILE).min(n);
                let ctile = &mut crow[jb..jend];
                for (k, &aik) in arow.iter().enumerate().take(kend).skip(kb) {
                    if aik == ExtWeight::PosInf {
                        continue;
                    }
                    let btile = &b.row(k)[jb..jend];
                    for (cij, &bkj) in ctile.iter_mut().zip(btile) {
                        let cand = aik + bkj;
                        if cand < *cij {
                            *cij = cand;
                        }
                    }
                }
            }
        }
    }
}

/// Computes rows `rows` of the sentinel-coded product into `c_rows`
/// (pre-filled with [`TROPICAL_NONE`]) with `MIN_PLUS_TILE`-blocked loops.
///
/// Same schedule as [`min_plus_rows`], but over plain `i64` lanes: the
/// innermost loop is a contiguous branch-free `min(c, a + b)` sweep the
/// compiler auto-vectorizes. Exactness per [`TROPICAL_NONE`].
fn min_plus_flat_rows(
    a: &[i64],
    b: &[i64],
    n: usize,
    rows: std::ops::Range<usize>,
    c_rows: &mut [i64],
) {
    debug_assert_eq!(c_rows.len(), rows.len() * n);
    for (bi, i) in rows.enumerate() {
        let arow = &a[i * n..(i + 1) * n];
        let crow = &mut c_rows[bi * n..(bi + 1) * n];
        for kb in (0..n).step_by(MIN_PLUS_TILE) {
            let kend = (kb + MIN_PLUS_TILE).min(n);
            for jb in (0..n).step_by(MIN_PLUS_TILE) {
                let jend = (jb + MIN_PLUS_TILE).min(n);
                let ctile = &mut crow[jb..jend];
                for (k, &aik) in arow.iter().enumerate().take(kend).skip(kb) {
                    if aik > TROPICAL_FINITE_MAX {
                        continue;
                    }
                    let btile = &b[k * n + jb..k * n + jend];
                    for (cij, &bkj) in ctile.iter_mut().zip(btile) {
                        let cand = aik + bkj;
                        if cand < *cij {
                            *cij = cand;
                        }
                    }
                }
            }
        }
    }
}

/// Distance product `A ⋆ B` with an explicit worker count.
///
/// Rows of `C` are split into contiguous bands, one scoped thread per band
/// ([`qcc_perf::for_each_row_band`]); each band runs the tiled kernel
/// independently, so the result is bit-identical for every worker count.
///
/// Inputs inside the flat kernels' exact domain (no `−∞` entries, finite
/// magnitudes `≤` [`TROPICAL_FINITE_MAX`]) take the sentinel-coded `i64`
/// fast path; anything else falls back to the [`ExtWeight`] tiles. Both
/// paths produce identical matrices (asserted across random ±∞ inputs by
/// the property tests).
///
/// # Panics
///
/// Panics if the dimensions differ.
pub fn distance_product_with_threads(
    a: &WeightMatrix,
    b: &WeightMatrix,
    threads: usize,
) -> WeightMatrix {
    assert_eq!(a.n(), b.n(), "distance product requires equal dimensions");
    let n = a.n();
    if let (Some(ac), Some(bc)) = (tropical_encode(a), tropical_encode(b)) {
        let mut coded = vec![TROPICAL_NONE; n * n];
        qcc_perf::for_each_row_band(&mut coded, n, threads, |rows, c_rows| {
            min_plus_flat_rows(&ac, &bc, n, rows, c_rows);
        });
        let mut c = WeightMatrix::filled(n, ExtWeight::PosInf);
        for (dst, &v) in c.as_mut_slice().iter_mut().zip(&coded) {
            if let Some(x) = tropical_decode(v) {
                *dst = ExtWeight::Finite(x);
            }
        }
        return c;
    }
    let mut c = WeightMatrix::filled(n, ExtWeight::PosInf);
    qcc_perf::for_each_row_band(c.as_mut_slice(), n, threads, |rows, c_rows| {
        min_plus_rows(a, b, rows, c_rows);
    });
    c
}

/// Distance product `A ⋆ B` (Definition 2): `C[i,j] = min_k (A[i,k] + B[k,j])`.
///
/// Runs the tiled parallel kernel with the ambient worker count
/// (`QCC_THREADS`, else available parallelism — see
/// [`qcc_perf::resolve_threads`]). Identical output to
/// [`distance_product_reference`] for every input.
///
/// # Panics
///
/// Panics if the dimensions differ.
///
/// # Examples
///
/// ```
/// use qcc_graph::{distance_product, ExtWeight, WeightMatrix};
///
/// let a = WeightMatrix::from_fn(2, |i, j| ExtWeight::from((i as i64) + 1 + j as i64));
/// let c = distance_product(&a, &a);
/// // C[0][0] = min(a00+a00, a01+a10) = min(2, 4) = 2
/// assert_eq!(c[(0, 0)], ExtWeight::from(2));
/// ```
pub fn distance_product(a: &WeightMatrix, b: &WeightMatrix) -> WeightMatrix {
    distance_product_with_threads(a, b, qcc_perf::resolve_threads(None))
}

/// `p`-th power of `a` with respect to the distance product, by repeated
/// squaring (`O(log p)` products), with an explicit worker count.
pub fn distance_power_with_threads(a: &WeightMatrix, p: u64, threads: usize) -> WeightMatrix {
    let mut result = WeightMatrix::distance_identity(a.n());
    let mut base = a.clone();
    let mut exp = p;
    while exp > 0 {
        if exp & 1 == 1 {
            result = distance_product_with_threads(&result, &base, threads);
        }
        exp >>= 1;
        if exp > 0 {
            base = distance_product_with_threads(&base, &base, threads);
        }
    }
    result
}

/// `p`-th power of `a` with respect to the distance product, by repeated
/// squaring (`O(log p)` products).
///
/// `distance_power(a, n-1)` (or any exponent `≥ n − 1`) of a weighted
/// adjacency matrix yields all-pairs shortest distances when the graph has
/// no negative cycle.
///
/// # Examples
///
/// ```
/// use qcc_graph::{distance_power, ExtWeight, WeightMatrix};
///
/// // path 0 -> 1 -> 2 with unit weights
/// let mut a = WeightMatrix::distance_identity(3);
/// a[(0, 1)] = ExtWeight::from(1);
/// a[(1, 2)] = ExtWeight::from(1);
/// let d = distance_power(&a, 2);
/// assert_eq!(d[(0, 2)], ExtWeight::from(2));
/// ```
pub fn distance_power(a: &WeightMatrix, p: u64) -> WeightMatrix {
    distance_power_with_threads(a, p, qcc_perf::resolve_threads(None))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(x: i64) -> ExtWeight {
        ExtWeight::from(x)
    }

    #[test]
    fn indexing_round_trips() {
        let mut m = SquareMatrix::filled(3, 0u64);
        m[(1, 2)] = 42;
        assert_eq!(m[(1, 2)], 42);
        assert_eq!(m.row(1), &[0, 0, 42]);
    }

    #[test]
    fn entries_iterates_in_row_major_order() {
        let m = SquareMatrix::from_fn(2, |i, j| i * 2 + j);
        let coords: Vec<(usize, usize, usize)> = m.entries().map(|(i, j, &x)| (i, j, x)).collect();
        assert_eq!(coords, vec![(0, 0, 0), (0, 1, 1), (1, 0, 2), (1, 1, 3)]);
    }

    #[test]
    fn identity_is_neutral_on_both_sides() {
        let a = WeightMatrix::from_fn(4, |i, j| w((3 * i + j) as i64 - 5));
        let id = WeightMatrix::distance_identity(4);
        assert_eq!(distance_product(&a, &id), a);
        assert_eq!(distance_product(&id, &a), a);
    }

    #[test]
    fn product_respects_infinities() {
        let mut a = WeightMatrix::filled(2, ExtWeight::PosInf);
        a[(0, 0)] = w(1);
        let b = WeightMatrix::filled(2, ExtWeight::PosInf);
        let c = distance_product(&a, &b);
        assert!(c.entries().all(|(_, _, &x)| x == ExtWeight::PosInf));
    }

    #[test]
    fn product_handles_negative_weights() {
        let mut a = WeightMatrix::distance_identity(2);
        a[(0, 1)] = w(-7);
        a[(1, 0)] = w(3);
        let c = distance_product(&a, &a);
        assert_eq!(c[(0, 0)], w(-4)); // 0->1->0 = -7 + 3
    }

    #[test]
    fn power_zero_is_identity() {
        let a = WeightMatrix::from_fn(3, |_, _| w(1));
        assert_eq!(distance_power(&a, 0), WeightMatrix::distance_identity(3));
    }

    #[test]
    fn power_matches_iterated_product() {
        let a = WeightMatrix::from_fn(4, |i, j| {
            if (i + 2 * j) % 3 == 0 {
                w((i as i64) - (j as i64))
            } else {
                ExtWeight::PosInf
            }
        });
        let mut iter = WeightMatrix::distance_identity(4);
        for _ in 0..5 {
            iter = distance_product(&iter, &a);
        }
        assert_eq!(distance_power(&a, 5), iter);
    }

    #[test]
    fn power_computes_path_distances() {
        // cycle 0 -> 1 -> 2 -> 3 -> 0, unit weights
        let n = 4;
        let mut a = WeightMatrix::distance_identity(n);
        for i in 0..n {
            a[(i, (i + 1) % n)] = w(1);
        }
        let d = distance_power(&a, (n - 1) as u64);
        assert_eq!(d[(0, 3)], w(3));
        assert_eq!(d[(3, 0)], w(1));
        assert_eq!(d[(2, 1)], w(3));
    }

    #[test]
    fn max_finite_magnitude_ignores_infinities() {
        let mut a = WeightMatrix::filled(2, ExtWeight::PosInf);
        a[(0, 1)] = w(-9);
        assert_eq!(a.max_finite_magnitude(), 9);
        let mut b = WeightMatrix::filled(2, ExtWeight::PosInf);
        b[(1, 0)] = w(12);
        assert_eq!(a.max_finite_magnitude_with(&b), 12);
        assert_eq!(b.max_finite_magnitude_with(&a), 12);
    }

    #[test]
    fn tiled_kernel_matches_reference_across_tile_boundaries() {
        // n > MIN_PLUS_TILE exercises multi-tile k/j loops and, under
        // multiple workers, multi-band rows.
        let n = MIN_PLUS_TILE + 17;
        let a = WeightMatrix::from_fn(n, |i, j| {
            if (i * 31 + j * 7) % 5 == 0 {
                ExtWeight::PosInf
            } else {
                w((i as i64) - 2 * j as i64)
            }
        });
        let b = WeightMatrix::from_fn(n, |i, j| {
            if (i + 3 * j) % 7 == 0 {
                ExtWeight::PosInf
            } else {
                w((3 * j) as i64 - i as i64)
            }
        });
        let expected = distance_product_reference(&a, &b);
        for threads in [1, 2, 4, 7] {
            assert_eq!(
                distance_product_with_threads(&a, &b, threads),
                expected,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn debug_output_is_nonempty() {
        let m = SquareMatrix::filled(1, 5u8);
        assert!(format!("{m:?}").contains('5'));
    }
}
