//! Incremental distance-matrix repair and single-source row recomputation.
//!
//! Local (non-distributed) machinery behind the APSP serving hot path:
//!
//! * [`sssp_row_with_parents`] — Bellman–Ford with parent tracking, the
//!   per-source relaxation that recomputes one evicted row of the distance
//!   matrix without holding the full `O(n²)` table resident;
//! * [`delta_repair_candidate`] — one-product incremental repair for
//!   edge-weight changes: route every pair through each changed edge via a
//!   single rectangular min-plus product over the flat `i64` kernel
//!   ([`min_plus_flat_into`]);
//! * [`min_plus_fixpoint_certificate`] — the Las-Vegas driver's
//!   certificate (zero diagonal, `D ≤ A₀`, `D ⊗ D = D`) evaluated locally.
//!
//! ## Why the certificate decides repairs exactly
//!
//! For **decrease-only** updates the candidate
//! `C[i,j] = min(D[i,j], min_e (D[i,u_e] + w_e + D[v_e,j]))` is a minimum
//! over weights of real walks in the updated graph, hence an
//! *overestimate* of its true distances. The certificate rejects every
//! overestimate except the distances themselves (conditions 2–3 force
//! `C ≤ dist` by induction on path length), so for such candidates
//! "certificate passes" ⟺ "repair is exact": shortest paths crossing one
//! changed edge are covered by the single product; paths that need several
//! changed edges leave `C` too large, condition 3 fails, and the caller
//! falls back to a full recompute. A weight *increase* can make the stale
//! `D` an **underestimate**, which the certificate cannot detect (see
//! `underestimates_slip_past_the_certificate`), so callers must route
//! non-decrease updates straight to the full recompute.

use crate::apsp_ref::{bellman_ford, NegativeCycleError};
use crate::digraph::DiGraph;
use crate::matrix::{
    distance_product, min_plus_flat_into, tropical_decode, tropical_encode, WeightMatrix,
    TROPICAL_FINITE_MAX, TROPICAL_NONE,
};
use crate::weight::ExtWeight;

/// One edge-weight change: the arc `(u, v)` now weighs `weight`.
///
/// A non-finite `weight` means the arc carries no usable route
/// (`PosInf` = deleted); such deltas contribute nothing to a repair
/// candidate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeDelta {
    /// Tail vertex.
    pub u: usize,
    /// Head vertex.
    pub v: usize,
    /// The new weight of the arc.
    pub weight: ExtWeight,
}

/// Bellman–Ford single-source relaxation with parent tracking.
///
/// Returns `(dist, parent)` where `parent[v]` is the predecessor of `v` on
/// a shortest path from `src` (`None` for `src` itself and for unreachable
/// vertices). Because parents are only rewritten on *strict* improvement,
/// the parent pointers form a tree rooted at `src` whenever the graph has
/// no negative cycle — a cycle of parent pointers would certify a cycle of
/// total weight `< 0`.
///
/// # Errors
///
/// [`NegativeCycleError`] if a negative cycle is reachable from `src`.
///
/// # Panics
///
/// Panics if `src` is out of range.
pub fn sssp_row_with_parents(
    g: &DiGraph,
    src: usize,
) -> Result<(Vec<ExtWeight>, Vec<Option<usize>>), NegativeCycleError> {
    let n = g.n();
    assert!(src < n, "source out of range");
    let mut dist = vec![ExtWeight::PosInf; n];
    let mut parent: Vec<Option<usize>> = vec![None; n];
    dist[src] = ExtWeight::ZERO;
    let arcs: Vec<(usize, usize, i64)> = g.arcs().collect();
    for _ in 0..n.saturating_sub(1) {
        let mut changed = false;
        for &(u, v, w) in &arcs {
            let cand = dist[u] + ExtWeight::from(w);
            if cand < dist[v] {
                dist[v] = cand;
                parent[v] = Some(u);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for &(u, v, w) in &arcs {
        if dist[u] + ExtWeight::from(w) < dist[v] {
            return Err(NegativeCycleError);
        }
    }
    Ok((dist, parent))
}

/// Walks `parents` back from `dst` to `src` and returns the shortest path
/// as a vertex sequence (both endpoints inclusive), or `None` when the
/// pointers never reach `src` (unreachable `dst`, or corrupted pointers —
/// the walk is cut after `n` hops instead of looping forever).
pub fn parent_path(src: usize, dst: usize, parents: &[Option<usize>]) -> Option<Vec<usize>> {
    if src == dst {
        return Some(vec![src]);
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = parents[cur]?;
        path.push(cur);
        if path.len() > parents.len() {
            return None;
        }
    }
    path.reverse();
    Some(path)
}

/// The repair candidate for edge-weight deltas applied to a distance
/// matrix `d`:
///
/// `C[i,j] = min(D[i,j], min_e (D[i,u_e] + w_e + D[v_e,j]))`
///
/// — every pair re-routed through each changed edge, computed as **one**
/// rectangular min-plus product `L (n×k) ⋆ R (k×n)` accumulated into a
/// copy of `D` over the flat `i64` kernel (with an [`ExtWeight`] fallback
/// when magnitudes leave the kernel's exact domain). For decrease-only
/// updates the result is an overestimate of the updated graph's distances
/// and [`min_plus_fixpoint_certificate`] decides exactness; see the module
/// docs.
///
/// # Panics
///
/// Panics if a delta endpoint is out of range.
pub fn delta_repair_candidate(d: &WeightMatrix, deltas: &[EdgeDelta]) -> WeightMatrix {
    let n = d.n();
    let live: Vec<&EdgeDelta> = deltas.iter().filter(|e| e.weight.is_finite()).collect();
    for e in &live {
        assert!(e.u < n && e.v < n, "delta endpoint out of range");
    }
    let k = live.len();
    if k == 0 {
        return d.clone();
    }
    if let Some(coded) = tropical_encode(d) {
        if let Some(l) = encode_left(d, &live) {
            let mut r = Vec::with_capacity(k * n);
            for e in &live {
                r.extend_from_slice(&coded[e.v * n..(e.v + 1) * n]);
            }
            // Accumulate into a copy of D: entries only ever improve.
            let mut cand = coded;
            min_plus_flat_into(&l, &r, n, k, n, &mut cand);
            let mut out = WeightMatrix::filled(n, ExtWeight::PosInf);
            for (dst, &v) in out.as_mut_slice().iter_mut().zip(&cand) {
                if let Some(x) = tropical_decode(v) {
                    *dst = ExtWeight::Finite(x);
                }
            }
            return out;
        }
    }
    // ExtWeight fallback for inputs outside the flat kernel's domain.
    let mut out = d.clone();
    for e in &live {
        for i in 0..n {
            let head = d[(i, e.u)] + e.weight;
            if head == ExtWeight::PosInf {
                continue;
            }
            let drow = d.row(e.v);
            let orow = out.row_mut(i);
            for (o, &dvj) in orow.iter_mut().zip(drow) {
                let cand = head + dvj;
                if cand < *o {
                    *o = cand;
                }
            }
        }
    }
    out
}

/// Sentinel-codes the left factor `L[i,e] = D[i,u_e] + w_e`, or `None`
/// when an entry leaves the flat kernel's exact domain.
fn encode_left(d: &WeightMatrix, live: &[&EdgeDelta]) -> Option<Vec<i64>> {
    let n = d.n();
    let mut l = Vec::with_capacity(n * live.len());
    for i in 0..n {
        for e in live {
            match d[(i, e.u)] + e.weight {
                ExtWeight::PosInf => l.push(TROPICAL_NONE),
                ExtWeight::Finite(x) if x.unsigned_abs() <= TROPICAL_FINITE_MAX as u64 => {
                    l.push(x);
                }
                _ => return None,
            }
        }
    }
    Some(l)
}

/// The certificate's local conditions: zero diagonal and `D ≤ A₀`
/// pointwise (`adj` is the adjacency matrix with zero diagonal). Shared
/// by the distributed Las-Vegas driver and the local repair check.
pub fn certificate_local_ok(adj: &WeightMatrix, d: &WeightMatrix) -> bool {
    let n = adj.n();
    if d.n() != n {
        return false;
    }
    if (0..n).any(|i| d[(i, i)] != ExtWeight::ZERO) {
        return false;
    }
    d.as_slice().iter().zip(adj.as_slice()).all(|(x, a)| x <= a)
}

/// The full min-plus fixpoint certificate, evaluated locally: zero
/// diagonal, `D ≤ A₀` pointwise, and `D ⊗ D = D`.
///
/// Accepts exactly the true distance matrix among all *overestimates*
/// (conditions 2–3 force `D ≤ dist` by induction on path length; if the
/// graph had a negative cycle through `x`, the same induction would force
/// `D[x,x] < 0`, violating condition 1 — so a passing matrix also proves
/// the absence of negative cycles). Underestimates can pass; callers must
/// only hand it candidates that are overestimates by construction.
pub fn min_plus_fixpoint_certificate(adj: &WeightMatrix, d: &WeightMatrix) -> bool {
    certificate_local_ok(adj, d) && distance_product(d, d) == *d
}

/// Whether the graph contains a negative cycle anywhere, via one
/// Bellman–Ford run from a virtual source with zero-weight arcs to every
/// vertex (the Johnson augmentation) — `O(nm)` time and `O(n)` memory, no
/// `O(n²)` matrix required.
pub fn has_negative_cycle(g: &DiGraph) -> bool {
    let n = g.n();
    let mut aug = DiGraph::new(n + 1);
    for (u, v, w) in g.arcs() {
        aug.add_arc(u, v, w);
    }
    for v in 0..n {
        aug.add_arc(n, v, 0);
    }
    bellman_ford(&aug, n).is_err()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apsp_ref::floyd_warshall;
    use crate::generators::random_reweighted_digraph;
    use crate::paths::path_weight;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn w(x: i64) -> ExtWeight {
        ExtWeight::from(x)
    }

    /// Textbook reference for the repair candidate.
    fn candidate_reference(d: &WeightMatrix, deltas: &[EdgeDelta]) -> WeightMatrix {
        let n = d.n();
        let mut out = d.clone();
        for e in deltas {
            if !e.weight.is_finite() {
                continue;
            }
            for i in 0..n {
                for j in 0..n {
                    let cand = d[(i, e.u)] + e.weight + d[(e.v, j)];
                    if cand < out[(i, j)] {
                        out[(i, j)] = cand;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn row_with_parents_matches_bellman_ford_and_yields_real_paths() {
        let mut rng = StdRng::seed_from_u64(601);
        for _ in 0..5 {
            let g = random_reweighted_digraph(9, 0.5, 12, &mut rng);
            for src in 0..9 {
                let plain = bellman_ford(&g, src).unwrap();
                let (dist, parents) = sssp_row_with_parents(&g, src).unwrap();
                assert_eq!(dist, plain, "src {src}");
                for (v, d) in dist.iter().enumerate() {
                    match *d {
                        ExtWeight::Finite(x) => {
                            let p = parent_path(src, v, &parents).expect("reachable");
                            assert_eq!(p.first(), Some(&src));
                            assert_eq!(p.last(), Some(&v));
                            if src != v {
                                assert_eq!(path_weight(&g, &p), Some(x), "({src},{v})");
                            }
                        }
                        _ => assert_eq!(parent_path(src, v, &parents), None),
                    }
                }
            }
        }
    }

    #[test]
    fn row_with_parents_detects_reachable_negative_cycle() {
        let mut g = DiGraph::new(4);
        g.add_arc(0, 1, 1);
        g.add_arc(1, 2, -3);
        g.add_arc(2, 1, 1);
        assert_eq!(sssp_row_with_parents(&g, 0), Err(NegativeCycleError));
        assert!(sssp_row_with_parents(&g, 3).is_ok());
    }

    #[test]
    fn parent_path_handles_trivial_and_unreachable() {
        assert_eq!(parent_path(2, 2, &[None, None, None]), Some(vec![2]));
        assert_eq!(parent_path(0, 2, &[None, None, None]), None);
        // corrupted pointers (a 1 ↔ 2 loop) terminate instead of hanging
        assert_eq!(parent_path(0, 2, &[None, Some(2), Some(1)]), None);
    }

    #[test]
    fn single_edge_decrease_repairs_exactly_and_certifies() {
        let mut rng = StdRng::seed_from_u64(602);
        let mut repaired = 0;
        for _ in 0..8 {
            let mut g = random_reweighted_digraph(9, 0.5, 10, &mut rng);
            let d = floyd_warshall(&g.adjacency_matrix()).unwrap();
            let Some((u, v, old)) = g.arcs().next() else {
                continue;
            };
            g.add_arc(u, v, old - 1);
            if has_negative_cycle(&g) {
                continue;
            }
            let cand = delta_repair_candidate(
                &d,
                &[EdgeDelta {
                    u,
                    v,
                    weight: w(old - 1),
                }],
            );
            let adj = g.adjacency_matrix();
            assert!(min_plus_fixpoint_certificate(&adj, &cand));
            assert_eq!(cand, floyd_warshall(&adj).unwrap());
            repaired += 1;
        }
        assert!(repaired > 0, "no instance exercised the repair");
    }

    #[test]
    fn multi_edge_repair_needing_two_new_edges_fails_the_certificate() {
        // Empty 3-graph; both arcs of the path 0 → 1 → 2 arrive in one
        // update. One product cannot route 0 → 2 through both, so the
        // candidate overestimates and idempotency must catch it.
        let g_old = DiGraph::new(3);
        let d = floyd_warshall(&g_old.adjacency_matrix()).unwrap();
        let deltas = [
            EdgeDelta {
                u: 0,
                v: 1,
                weight: w(2),
            },
            EdgeDelta {
                u: 1,
                v: 2,
                weight: w(3),
            },
        ];
        let cand = delta_repair_candidate(&d, &deltas);
        assert_eq!(cand[(0, 1)], w(2));
        assert_eq!(cand[(0, 2)], ExtWeight::PosInf, "one product cannot chain");
        let mut g_new = DiGraph::new(3);
        g_new.add_arc(0, 1, 2);
        g_new.add_arc(1, 2, 3);
        assert!(!min_plus_fixpoint_certificate(
            &g_new.adjacency_matrix(),
            &cand
        ));
    }

    #[test]
    fn certificate_accepts_truth_and_rejects_overestimates() {
        let mut rng = StdRng::seed_from_u64(603);
        let g = random_reweighted_digraph(8, 0.5, 7, &mut rng);
        let adj = g.adjacency_matrix();
        let exact = floyd_warshall(&adj).unwrap();
        assert!(certificate_local_ok(&adj, &exact));
        assert!(min_plus_fixpoint_certificate(&adj, &exact));

        let (u, v, _) = exact
            .entries()
            .find(|&(i, j, &x)| i != j && x.is_finite())
            .map(|(i, j, &x)| (i, j, x))
            .expect("some reachable pair");
        let mut over = exact.clone();
        over[(u, v)] = over[(u, v)] + w(1);
        assert!(!min_plus_fixpoint_certificate(&adj, &over));

        let mut bad_diag = exact.clone();
        bad_diag[(0, 0)] = w(1);
        assert!(!certificate_local_ok(&adj, &bad_diag));

        let wrong_n = WeightMatrix::distance_identity(adj.n() + 1);
        assert!(!certificate_local_ok(&adj, &wrong_n));
    }

    #[test]
    fn underestimates_slip_past_the_certificate() {
        // The documented blind spot: on the arcless 2-graph the matrix
        // with D[0,1] = -5 is idempotent, ≤ A₀ and zero-diagonal, yet -5
        // underestimates the true +∞. This is why callers must restrict
        // repair to decrease-only updates (whose candidates are
        // overestimates by construction).
        let g = DiGraph::new(2);
        let mut d = WeightMatrix::distance_identity(2);
        d[(0, 1)] = w(-5);
        assert!(min_plus_fixpoint_certificate(&g.adjacency_matrix(), &d));
    }

    #[test]
    fn repair_candidate_matches_reference_on_random_inputs() {
        let mut rng = StdRng::seed_from_u64(604);
        for trial in 0..6 {
            let g = random_reweighted_digraph(11, 0.4, 9, &mut rng);
            let d = floyd_warshall(&g.adjacency_matrix()).unwrap();
            let deltas = [
                EdgeDelta {
                    u: trial % 11,
                    v: (trial + 3) % 11,
                    weight: w(-2),
                },
                EdgeDelta {
                    u: (trial + 5) % 11,
                    v: (trial + 1) % 11,
                    weight: w(4),
                },
                EdgeDelta {
                    u: 1,
                    v: 2,
                    weight: ExtWeight::PosInf, // inert
                },
            ];
            assert_eq!(
                delta_repair_candidate(&d, &deltas),
                candidate_reference(&d, &deltas),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn repair_candidate_falls_back_outside_the_flat_domain() {
        // Magnitudes beyond TROPICAL_FINITE_MAX force the ExtWeight path;
        // the result must still match the reference.
        let big = TROPICAL_FINITE_MAX + 10;
        let mut d = WeightMatrix::distance_identity(3);
        d[(0, 1)] = w(big);
        d[(1, 2)] = w(5);
        let deltas = [EdgeDelta {
            u: 1,
            v: 2,
            weight: w(3),
        }];
        assert_eq!(
            delta_repair_candidate(&d, &deltas),
            candidate_reference(&d, &deltas)
        );
    }

    #[test]
    fn no_live_deltas_returns_the_input() {
        let d = WeightMatrix::distance_identity(4);
        assert_eq!(
            delta_repair_candidate(
                &d,
                &[EdgeDelta {
                    u: 0,
                    v: 1,
                    weight: ExtWeight::PosInf,
                }]
            ),
            d
        );
        assert_eq!(delta_repair_candidate(&d, &[]), d);
    }

    #[test]
    fn negative_cycle_detection_via_virtual_source() {
        let mut g = DiGraph::new(4);
        g.add_arc(0, 1, 2);
        g.add_arc(1, 2, -1);
        assert!(!has_negative_cycle(&g));
        // cycle 2 → 3 → 2 of weight -1, unreachable from vertex 0
        g.add_arc(2, 3, -3);
        g.add_arc(3, 2, 2);
        assert!(has_negative_cycle(&g));
    }
}
