//! Shortest *paths* (not just distances): witness-tracking distance
//! products and path reconstruction.
//!
//! Footnote 1 of the paper: "Using standard techniques, the approach can
//! be adapted to return the shortest paths as well, at a cost of
//! increasing the complexity only by a polylogarithmic factor." The
//! standard technique implemented here is *weight scaling*: replace
//! `A[i,k] + B[k,j]` by `(A[i,k] + B[k,j])·(n+1) + k`; the minimum then
//! encodes both the true minimum (quotient) and a witness `k` achieving it
//! (remainder), at the price of a `log n` blow-up in weight magnitude —
//! exactly the polylog factor the footnote promises.

use crate::matrix::{SquareMatrix, WeightMatrix};
use crate::weight::ExtWeight;

/// A distance product together with a witness matrix: `witness[(i, j)]` is
/// an index `k` attaining `C[i,j] = A[i,k] + B[k,j]` (`None` when
/// `C[i,j] = +∞`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WitnessedProduct {
    /// The distance product `A ⋆ B`.
    pub product: WeightMatrix,
    /// A minimizing inner index per entry.
    pub witness: SquareMatrix<Option<usize>>,
}

/// Sequential distance product with witnesses (the reference the
/// distributed implementation is validated against).
///
/// # Panics
///
/// Panics if dimensions differ.
///
/// # Examples
///
/// ```
/// use qcc_graph::{distance_product_with_witness, ExtWeight, WeightMatrix};
///
/// let a = WeightMatrix::from_fn(2, |i, j| ExtWeight::from((i + j) as i64));
/// let w = distance_product_with_witness(&a, &a);
/// let k = w.witness[(0, 0)].unwrap();
/// // the witness attains the product value
/// assert_eq!(a[(0, k)] + a[(k, 0)], w.product[(0, 0)]);
/// ```
pub fn distance_product_with_witness(a: &WeightMatrix, b: &WeightMatrix) -> WitnessedProduct {
    assert_eq!(a.n(), b.n());
    let n = a.n();
    let mut product = WeightMatrix::filled(n, ExtWeight::PosInf);
    let mut witness = SquareMatrix::filled(n, None);
    for i in 0..n {
        for k in 0..n {
            let aik = a[(i, k)];
            if aik == ExtWeight::PosInf {
                continue;
            }
            for j in 0..n {
                let cand = aik + b[(k, j)];
                if cand < product[(i, j)] {
                    product[(i, j)] = cand;
                    witness[(i, j)] = Some(k);
                }
            }
        }
    }
    WitnessedProduct { product, witness }
}

/// Applies the weight-scaling encoding: `A'[i,k] = A[i,k]·(n+1)` and
/// `B'[k,j] = B[k,j]·(n+1) + k`, so that any plain distance product of the
/// scaled matrices carries a witness in its remainder mod `n+1`.
///
/// Used by the distributed implementation, which can then reuse the plain
/// (witness-free) product machinery end to end.
pub fn scale_for_witness(a: &WeightMatrix, b: &WeightMatrix) -> (WeightMatrix, WeightMatrix) {
    assert_eq!(a.n(), b.n());
    let n = a.n();
    let s = (n + 1) as i64;
    let scale = |w: ExtWeight, add: i64| match w {
        ExtWeight::Finite(x) => ExtWeight::Finite(x * s + add),
        other => other,
    };
    let a2 = WeightMatrix::from_fn(n, |i, k| scale(a[(i, k)], 0));
    let b2 = WeightMatrix::from_fn(n, |k, j| scale(b[(k, j)], k as i64));
    (a2, b2)
}

/// Decodes a scaled product back into `(plain product, witnesses)`.
///
/// Inverse of [`scale_for_witness`] composed with a distance product:
/// `decode_witness(n, scaled ⋆-product)` recovers the plain product and a
/// minimizing witness per finite entry.
pub fn decode_witness(n: usize, scaled: &WeightMatrix) -> WitnessedProduct {
    let s = (n + 1) as i64;
    let mut product = WeightMatrix::filled(n, ExtWeight::PosInf);
    let mut witness = SquareMatrix::filled(n, None);
    for i in 0..n {
        for j in 0..n {
            if let ExtWeight::Finite(x) = scaled[(i, j)] {
                product[(i, j)] = ExtWeight::Finite(x.div_euclid(s));
                witness[(i, j)] = Some(x.rem_euclid(s) as usize);
            }
        }
    }
    WitnessedProduct { product, witness }
}

/// The witness matrices of a repeated-squaring APSP run, enough to
/// reconstruct an explicit shortest path for every pair.
///
/// Level `l` stores the witnesses of `D_{2^l} = D_{2^{l-1}} ⋆ D_{2^{l-1}}`.
#[derive(Clone, Debug)]
pub struct PathOracle {
    base: WeightMatrix,
    levels: Vec<SquareMatrix<Option<usize>>>,
    distances: WeightMatrix,
}

impl PathOracle {
    /// Builds the oracle by sequential witnessed squaring (reference
    /// implementation; the distributed variant lives in `qcc-apsp`).
    ///
    /// `adjacency` is the `A_G` matrix (0 diagonal).
    pub fn build(adjacency: &WeightMatrix) -> PathOracle {
        let n = adjacency.n();
        let mut current = adjacency.clone();
        let mut levels = Vec::new();
        let mut exponent: u64 = 1;
        while exponent < (n.max(2) as u64) - 1 {
            let w = distance_product_with_witness(&current, &current);
            levels.push(w.witness);
            current = w.product;
            exponent *= 2;
        }
        PathOracle {
            base: adjacency.clone(),
            levels,
            distances: current,
        }
    }

    /// Creates an oracle from externally computed parts (used by the
    /// distributed implementation).
    pub fn from_parts(
        base: WeightMatrix,
        levels: Vec<SquareMatrix<Option<usize>>>,
        distances: WeightMatrix,
    ) -> PathOracle {
        PathOracle {
            base,
            levels,
            distances,
        }
    }

    /// The all-pairs distance matrix.
    pub fn distances(&self) -> &WeightMatrix {
        &self.distances
    }

    /// Reconstructs a shortest path from `u` to `v` as a *simple* vertex
    /// sequence (inclusive of both endpoints). Returns `None` if `v` is
    /// unreachable.
    ///
    /// The path's total weight equals `distances()[(u, v)]` and its length
    /// is at most `n − 1` arcs. Witness expansion can produce walks that
    /// revisit a vertex when the graph has zero-weight cycles; those loops
    /// necessarily carry weight exactly 0 (the walk's total equals the
    /// distance and no cycle is negative), so they are spliced out.
    pub fn path(&self, u: usize, v: usize) -> Option<Vec<usize>> {
        if self.distances[(u, v)] == ExtWeight::PosInf {
            return None;
        }
        let mut vertices = vec![u];
        self.expand(self.levels.len(), u, v, &mut vertices);
        // collapse the self-loop padding introduced by the 0-diagonal
        vertices.dedup();
        // splice out zero-weight loops: keep the first occurrence of each
        // vertex and drop everything walked between repeat visits
        let mut position: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        let mut simple: Vec<usize> = Vec::with_capacity(vertices.len());
        for x in vertices {
            match position.get(&x) {
                Some(&i) => {
                    for removed in simple.drain(i + 1..) {
                        position.remove(&removed);
                    }
                }
                None => {
                    position.insert(x, simple.len());
                    simple.push(x);
                }
            }
        }
        Some(simple)
    }

    fn expand(&self, level: usize, u: usize, v: usize, out: &mut Vec<usize>) {
        if u == v {
            return;
        }
        if level == 0 {
            debug_assert!(
                self.base[(u, v)].is_finite(),
                "level-0 hop ({u}, {v}) must be an arc or diagonal"
            );
            out.push(v);
            return;
        }
        let mid = self.levels[level - 1][(u, v)].expect("finite entries carry witnesses");
        self.expand(level - 1, u, mid, out);
        self.expand(level - 1, mid, v, out);
    }
}

/// Extracts an explicit negative cycle from a graph that has one, or
/// `None` if none exists. Uses Floyd–Warshall parent tracking.
///
/// The returned cycle lists vertices in order (first ≠ last; the closing
/// arc is implicit) and its total arc weight is negative.
///
/// # Examples
///
/// ```
/// use qcc_graph::{find_negative_cycle, DiGraph};
///
/// let mut g = DiGraph::new(4);
/// g.add_arc(0, 1, 1);
/// g.add_arc(1, 2, -3);
/// g.add_arc(2, 1, 1);
/// let cycle = find_negative_cycle(&g).unwrap();
/// assert!(cycle.contains(&1) && cycle.contains(&2));
/// ```
pub fn find_negative_cycle(g: &crate::digraph::DiGraph) -> Option<Vec<usize>> {
    let n = g.n();
    let mut dist = g.adjacency_matrix();
    let mut next: SquareMatrix<Option<usize>> = SquareMatrix::from_fn(n, |i, j| {
        if i != j && g.weight(i, j).is_finite() {
            Some(j)
        } else {
            None
        }
    });
    for k in 0..n {
        for i in 0..n {
            let dik = dist[(i, k)];
            if dik == ExtWeight::PosInf {
                continue;
            }
            for j in 0..n {
                let cand = dik + dist[(k, j)];
                if cand < dist[(i, j)] {
                    dist[(i, j)] = cand;
                    next[(i, j)] = next[(i, k)];
                }
            }
        }
    }
    let start = (0..n).find(|&i| dist[(i, i)] < ExtWeight::ZERO)?;
    // walk successor pointers from `start` back to itself; to guarantee a
    // *simple* cycle, walk until a repeat and cut there.
    let mut seen = vec![usize::MAX; n];
    let mut walk = Vec::new();
    let mut cur = start;
    loop {
        if seen[cur] != usize::MAX {
            let cycle: Vec<usize> = walk[seen[cur]..].to_vec();
            return Some(cycle);
        }
        seen[cur] = walk.len();
        walk.push(cur);
        cur = next[(cur, start)].expect("negative diagonal implies a pointer");
    }
}

/// Total arc weight of a vertex cycle (closing arc included).
///
/// # Panics
///
/// Panics if any consecutive pair (or the closing pair) is not an arc.
pub fn cycle_weight(g: &crate::digraph::DiGraph, cycle: &[usize]) -> i64 {
    assert!(!cycle.is_empty());
    let mut total = 0;
    for w in cycle.windows(2) {
        total += g
            .weight(w[0], w[1])
            .finite()
            .expect("cycle edge must exist");
    }
    total += g
        .weight(*cycle.last().expect("nonempty"), cycle[0])
        .finite()
        .expect("closing edge must exist");
    total
}

/// Total arc weight of a path (vertex sequence), `None` if some hop is
/// missing.
pub fn path_weight(g: &crate::digraph::DiGraph, path: &[usize]) -> Option<i64> {
    let mut total = 0;
    for w in path.windows(2) {
        total += g.weight(w[0], w[1]).finite()?;
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apsp_ref::floyd_warshall;
    use crate::digraph::DiGraph;
    use crate::generators::random_reweighted_digraph;
    use crate::matrix::distance_product;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn witnesses_attain_the_product() {
        let mut rng = StdRng::seed_from_u64(501);
        for _ in 0..5 {
            let g = random_reweighted_digraph(7, 0.5, 6, &mut rng);
            let a = g.adjacency_matrix();
            let w = distance_product_with_witness(&a, &a);
            assert_eq!(w.product, distance_product(&a, &a));
            for i in 0..7 {
                for j in 0..7 {
                    if let Some(k) = w.witness[(i, j)] {
                        assert_eq!(a[(i, k)] + a[(k, j)], w.product[(i, j)]);
                    } else {
                        assert_eq!(w.product[(i, j)], ExtWeight::PosInf);
                    }
                }
            }
        }
    }

    #[test]
    fn scaling_round_trips_with_witnesses() {
        let mut rng = StdRng::seed_from_u64(502);
        let g = random_reweighted_digraph(8, 0.5, 5, &mut rng);
        let a = g.adjacency_matrix();
        let (a2, b2) = scale_for_witness(&a, &a);
        let scaled = distance_product(&a2, &b2);
        let decoded = decode_witness(8, &scaled);
        assert_eq!(decoded.product, distance_product(&a, &a));
        for i in 0..8 {
            for j in 0..8 {
                if let Some(k) = decoded.witness[(i, j)] {
                    assert_eq!(a[(i, k)] + a[(k, j)], decoded.product[(i, j)]);
                }
            }
        }
    }

    #[test]
    fn paths_match_distances_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(503);
        for trial in 0..5 {
            let g = random_reweighted_digraph(9, 0.4, 6, &mut rng);
            let adj = g.adjacency_matrix();
            let oracle = PathOracle::build(&adj);
            let fw = floyd_warshall(&adj).unwrap();
            assert_eq!(oracle.distances(), &fw, "trial {trial}");
            for u in 0..9 {
                for v in 0..9 {
                    match oracle.path(u, v) {
                        Some(path) => {
                            assert_eq!(path[0], u);
                            assert_eq!(*path.last().unwrap(), v);
                            assert!(path.len() <= 9);
                            if u != v {
                                let w = path_weight(&g, &path).expect("valid hops");
                                assert_eq!(ExtWeight::from(w), fw[(u, v)], "({u},{v})");
                            }
                        }
                        None => assert_eq!(fw[(u, v)], ExtWeight::PosInf),
                    }
                }
            }
        }
    }

    #[test]
    fn zero_weight_cycles_do_not_inflate_paths() {
        // regression (proptest seed 79): zero-weight cycles let witness
        // expansion emit non-simple walks; path() must splice them out
        let mut rng = StdRng::seed_from_u64(79);
        let g = random_reweighted_digraph(6, 0.5, 5, &mut rng);
        let oracle = PathOracle::build(&g.adjacency_matrix());
        let fw = floyd_warshall(&g.adjacency_matrix()).unwrap();
        for u in 0..6 {
            for v in 0..6 {
                if let Some(p) = oracle.path(u, v) {
                    assert!(p.len() <= 6, "({u},{v}): {p:?}");
                    let mut sorted = p.clone();
                    sorted.sort_unstable();
                    sorted.dedup();
                    assert_eq!(sorted.len(), p.len(), "({u},{v}): not simple: {p:?}");
                    if u != v {
                        let w = path_weight(&g, &p).expect("valid hops");
                        assert_eq!(ExtWeight::from(w), fw[(u, v)]);
                    }
                }
            }
        }
    }

    #[test]
    fn trivial_paths_are_single_vertices() {
        let g = DiGraph::new(4);
        let oracle = PathOracle::build(&g.adjacency_matrix());
        assert_eq!(oracle.path(2, 2), Some(vec![2]));
        assert_eq!(oracle.path(0, 3), None);
    }

    #[test]
    fn negative_cycle_extraction_returns_a_real_cycle() {
        let mut g = DiGraph::new(5);
        g.add_arc(0, 1, 2);
        g.add_arc(1, 2, -1);
        g.add_arc(2, 3, -1);
        g.add_arc(3, 1, 1);
        let cycle = find_negative_cycle(&g).expect("1->2->3->1 is negative");
        assert!(cycle_weight(&g, &cycle) < 0, "cycle {cycle:?}");
        // the cycle is simple
        let mut sorted = cycle.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), cycle.len());
    }

    #[test]
    fn acyclic_graphs_have_no_negative_cycle() {
        let mut g = DiGraph::new(4);
        g.add_arc(0, 1, -5);
        g.add_arc(1, 2, -5);
        g.add_arc(2, 3, -5);
        assert_eq!(find_negative_cycle(&g), None);
    }

    #[test]
    fn negative_self_reachable_cycle_found_in_random_graphs() {
        // plant a negative cycle in an otherwise positive random graph
        let mut rng = StdRng::seed_from_u64(504);
        let mut g = crate::generators::random_nonneg_digraph(10, 0.4, 9, &mut rng);
        g.add_arc(4, 7, -6);
        g.add_arc(7, 4, 2);
        let cycle = find_negative_cycle(&g).expect("planted cycle");
        assert!(cycle_weight(&g, &cycle) < 0);
    }
}
