//! Extended integer weights for the tropical (min-plus) semiring.
//!
//! Distance-product computations (Definition 2 of the paper) work over
//! matrices with entries in `Z ∪ {−∞, +∞}`: `+∞` encodes "no edge / no
//! path", `−∞` appears transiently inside the Vassilevska Williams–Williams
//! binary search. [`ExtWeight`] implements this extended number line with
//! the saturation conventions of shortest-path algebra.

use std::cmp::Ordering;
use std::fmt;
use std::ops::Add;

/// An integer weight extended with `−∞` and `+∞`.
///
/// Addition follows min-plus shortest-path conventions: `+∞` is absorbing
/// (`+∞ + x = +∞` for every `x`, including `−∞`, since a missing edge kills
/// a path regardless of what else the path contains), and `−∞ + finite =
/// −∞`. Finite additions that overflow `i64` saturate to the matching
/// infinity (`+∞` for positive overflow, `−∞` for negative), preserving the
/// semiring order: a path longer than every representable finite weight
/// must never compare *below* `+∞`, or [`ExtWeight::min_with`] would let it
/// beat a real path.
///
/// # Examples
///
/// ```
/// use qcc_graph::ExtWeight;
///
/// let a = ExtWeight::from(3);
/// assert_eq!(a + ExtWeight::from(-5), ExtWeight::from(-2));
/// assert_eq!(a + ExtWeight::PosInf, ExtWeight::PosInf);
/// assert_eq!(ExtWeight::NegInf + a, ExtWeight::NegInf);
/// assert!(ExtWeight::NegInf < a && a < ExtWeight::PosInf);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ExtWeight {
    /// Negative infinity (smaller than every finite weight).
    NegInf,
    /// A finite integer weight.
    Finite(i64),
    /// Positive infinity ("no edge" / "no path").
    PosInf,
}

impl ExtWeight {
    /// The additive identity of min-plus multiplication.
    pub const ZERO: ExtWeight = ExtWeight::Finite(0);

    /// Returns the finite value, if any.
    ///
    /// # Examples
    ///
    /// ```
    /// use qcc_graph::ExtWeight;
    /// assert_eq!(ExtWeight::from(7).finite(), Some(7));
    /// assert_eq!(ExtWeight::PosInf.finite(), None);
    /// ```
    pub fn finite(self) -> Option<i64> {
        match self {
            ExtWeight::Finite(x) => Some(x),
            _ => None,
        }
    }

    /// Whether this weight is finite.
    pub fn is_finite(self) -> bool {
        matches!(self, ExtWeight::Finite(_))
    }

    /// Min-plus "sum" (the semiring's additive operation): the minimum.
    pub fn min_with(self, other: ExtWeight) -> ExtWeight {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The magnitude of the finite value, or 0 for infinities.
    pub fn magnitude(self) -> u64 {
        match self {
            ExtWeight::Finite(x) => x.unsigned_abs(),
            _ => 0,
        }
    }
}

impl Default for ExtWeight {
    /// The default weight is `+∞` ("no edge").
    fn default() -> Self {
        ExtWeight::PosInf
    }
}

impl From<i64> for ExtWeight {
    fn from(x: i64) -> Self {
        ExtWeight::Finite(x)
    }
}

impl PartialOrd for ExtWeight {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ExtWeight {
    fn cmp(&self, other: &Self) -> Ordering {
        use ExtWeight::*;
        match (self, other) {
            (NegInf, NegInf) | (PosInf, PosInf) => Ordering::Equal,
            (NegInf, _) | (_, PosInf) => Ordering::Less,
            (PosInf, _) | (_, NegInf) => Ordering::Greater,
            (Finite(a), Finite(b)) => a.cmp(b),
        }
    }
}

impl Add for ExtWeight {
    type Output = ExtWeight;

    fn add(self, rhs: ExtWeight) -> ExtWeight {
        use ExtWeight::*;
        match (self, rhs) {
            // +inf is absorbing: a path through a missing edge does not exist.
            (PosInf, _) | (_, PosInf) => PosInf,
            (NegInf, _) | (_, NegInf) => NegInf,
            (Finite(a), Finite(b)) => match a.checked_add(b) {
                Some(sum) => Finite(sum),
                // Overflowing operands share a sign; saturate to the
                // matching infinity so the order stays consistent
                // (Finite(i64::MAX) < PosInf would rank a fictitious
                // overflowed distance below "no path").
                None if a > 0 => PosInf,
                None => NegInf,
            },
        }
    }
}

impl fmt::Display for ExtWeight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtWeight::NegInf => write!(f, "-inf"),
            ExtWeight::Finite(x) => write!(f, "{x}"),
            ExtWeight::PosInf => write!(f, "inf"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_spans_the_extended_line() {
        assert!(ExtWeight::NegInf < ExtWeight::Finite(i64::MIN));
        assert!(ExtWeight::Finite(i64::MAX) < ExtWeight::PosInf);
        assert!(ExtWeight::Finite(-1) < ExtWeight::Finite(0));
        assert_eq!(ExtWeight::PosInf.cmp(&ExtWeight::PosInf), Ordering::Equal);
    }

    #[test]
    fn pos_inf_is_absorbing() {
        assert_eq!(ExtWeight::PosInf + ExtWeight::NegInf, ExtWeight::PosInf);
        assert_eq!(ExtWeight::NegInf + ExtWeight::PosInf, ExtWeight::PosInf);
        assert_eq!(ExtWeight::PosInf + ExtWeight::from(5), ExtWeight::PosInf);
    }

    #[test]
    fn neg_inf_dominates_finite() {
        assert_eq!(ExtWeight::NegInf + ExtWeight::from(100), ExtWeight::NegInf);
    }

    #[test]
    fn finite_addition_is_exact() {
        assert_eq!(
            ExtWeight::from(4) + ExtWeight::from(-9),
            ExtWeight::from(-5)
        );
    }

    #[test]
    fn overflow_saturates_to_the_matching_infinity() {
        // Positive overflow must not produce Finite(i64::MAX), which would
        // compare below PosInf and beat a real path in min_with.
        assert_eq!(
            ExtWeight::from(i64::MAX) + ExtWeight::from(1),
            ExtWeight::PosInf
        );
        assert_eq!(
            ExtWeight::from(i64::MAX) + ExtWeight::from(i64::MAX),
            ExtWeight::PosInf
        );
        assert_eq!(
            ExtWeight::from(i64::MIN) + ExtWeight::from(-1),
            ExtWeight::NegInf
        );
        assert_eq!(
            ExtWeight::from(i64::MIN) + ExtWeight::from(i64::MIN),
            ExtWeight::NegInf
        );
    }

    #[test]
    fn boundary_additions_that_fit_stay_finite() {
        assert_eq!(
            ExtWeight::from(i64::MAX - 1) + ExtWeight::from(1),
            ExtWeight::from(i64::MAX)
        );
        assert_eq!(
            ExtWeight::from(i64::MIN + 1) + ExtWeight::from(-1),
            ExtWeight::from(i64::MIN)
        );
        assert_eq!(
            ExtWeight::from(i64::MAX) + ExtWeight::from(i64::MIN),
            ExtWeight::from(-1)
        );
    }

    #[test]
    fn overflowed_path_never_beats_a_real_path() {
        let overflowed = ExtWeight::from(i64::MAX) + ExtWeight::from(1);
        let real = ExtWeight::from(i64::MAX);
        assert_eq!(overflowed.min_with(real), real);
        assert_eq!(real.min_with(overflowed), real);
    }

    #[test]
    fn min_with_picks_smaller() {
        assert_eq!(
            ExtWeight::from(3).min_with(ExtWeight::from(-1)),
            ExtWeight::from(-1)
        );
        assert_eq!(
            ExtWeight::PosInf.min_with(ExtWeight::from(7)),
            ExtWeight::from(7)
        );
    }

    #[test]
    fn default_is_no_edge() {
        assert_eq!(ExtWeight::default(), ExtWeight::PosInf);
    }

    #[test]
    fn display_covers_all_variants() {
        assert_eq!(ExtWeight::NegInf.to_string(), "-inf");
        assert_eq!(ExtWeight::from(-3).to_string(), "-3");
        assert_eq!(ExtWeight::PosInf.to_string(), "inf");
    }

    #[test]
    fn magnitude_of_infinities_is_zero() {
        assert_eq!(ExtWeight::PosInf.magnitude(), 0);
        assert_eq!(ExtWeight::from(-17).magnitude(), 17);
    }
}
