//! Undirected weighted graphs and the negative-triangle census.
//!
//! `FindEdges` (Section 3 of the paper) operates on an undirected weighted
//! graph `G = (V, E, f)`: a triple `{u, v, w}` is a *negative triangle* if
//! all three edges exist and `f(u,v) + f(u,w) + f(v,w) < 0`. The quantity
//! `Γ(u, v)` counts the negative triangles through the pair `{u, v}`. This
//! module provides the graph type plus exhaustive `O(n³)` reference
//! procedures that the distributed algorithms are validated against.

use crate::matrix::SquareMatrix;
use crate::weight::ExtWeight;

/// An undirected weighted graph on vertices `0..n` without self-loops.
///
/// # Examples
///
/// ```
/// use qcc_graph::{ExtWeight, UGraph};
///
/// let mut g = UGraph::new(3);
/// g.add_edge(0, 1, -4);
/// assert_eq!(g.weight(1, 0), ExtWeight::from(-4)); // symmetric
/// assert_eq!(g.edge_count(), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UGraph {
    weights: SquareMatrix<ExtWeight>,
}

impl UGraph {
    /// Creates an edgeless undirected graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        UGraph {
            weights: SquareMatrix::filled(n, ExtWeight::PosInf),
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.weights.n()
    }

    /// Adds (or overwrites) the undirected edge `{u, v}`.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` or either endpoint is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize, weight: i64) {
        assert_ne!(u, v, "self-loops are not allowed");
        self.weights[(u, v)] = ExtWeight::from(weight);
        self.weights[(v, u)] = ExtWeight::from(weight);
    }

    /// Removes the edge `{u, v}` if present.
    pub fn remove_edge(&mut self, u: usize, v: usize) {
        self.weights[(u, v)] = ExtWeight::PosInf;
        self.weights[(v, u)] = ExtWeight::PosInf;
    }

    /// Weight of edge `{u, v}`, `PosInf` if absent.
    pub fn weight(&self, u: usize, v: usize) -> ExtWeight {
        if u == v {
            ExtWeight::PosInf
        } else {
            self.weights[(u, v)]
        }
    }

    /// Whether the edge `{u, v}` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u != v && self.weights[(u, v)].is_finite()
    }

    /// Number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.edges().count()
    }

    /// Iterates over edges as `(u, v, weight)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, i64)> + '_ {
        self.weights.entries().filter_map(|(i, j, &w)| {
            if i < j {
                w.finite().map(|x| (i, j, x))
            } else {
                None
            }
        })
    }

    /// The neighbor set `N_G(u)` as `(v, weight)` pairs.
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = (usize, i64)> + '_ {
        self.weights
            .row(u)
            .iter()
            .enumerate()
            .filter_map(move |(v, &w)| {
                if v != u {
                    w.finite().map(|x| (v, x))
                } else {
                    None
                }
            })
    }

    /// Whether `{u, v, w}` forms a negative triangle (Definition 1).
    pub fn is_negative_triangle(&self, u: usize, v: usize, w: usize) -> bool {
        if u == v || u == w || v == w {
            return false;
        }
        match (
            self.weight(u, v).finite(),
            self.weight(u, w).finite(),
            self.weight(v, w).finite(),
        ) {
            (Some(a), Some(b), Some(c)) => a + b + c < 0,
            _ => false,
        }
    }

    /// `Γ(u, v)`: the number of negative triangles through the pair `{u, v}`.
    ///
    /// Reference implementation in `O(n)` time per pair.
    pub fn gamma(&self, u: usize, v: usize) -> usize {
        (0..self.n())
            .filter(|&w| self.is_negative_triangle(u, v, w))
            .count()
    }

    /// The matrix of all `Γ(u, v)` values (`O(n³)` reference census).
    pub fn gamma_matrix(&self) -> SquareMatrix<usize> {
        let n = self.n();
        let mut gamma = SquareMatrix::filled(n, 0usize);
        for u in 0..n {
            for v in (u + 1)..n {
                let g = self.gamma(u, v);
                gamma[(u, v)] = g;
                gamma[(v, u)] = g;
            }
        }
        gamma
    }

    /// All pairs `{u, v}` (as `u < v`) involved in at least one negative
    /// triangle — the exact answer of `FindEdges`.
    pub fn negative_triangle_pairs(&self) -> Vec<(usize, usize)> {
        let gamma = self.gamma_matrix();
        let mut pairs = Vec::new();
        for u in 0..self.n() {
            for v in (u + 1)..self.n() {
                if gamma[(u, v)] > 0 {
                    pairs.push((u, v));
                }
            }
        }
        pairs
    }

    /// Lists all negative triangles as sorted triples.
    pub fn negative_triangles(&self) -> Vec<(usize, usize, usize)> {
        let n = self.n();
        let mut out = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                for w in (v + 1)..n {
                    if self.is_negative_triangle(u, v, w) {
                        out.push((u, v, w));
                    }
                }
            }
        }
        out
    }

    /// Keeps each edge independently with probability `p`, returning the
    /// sampled subgraph (used by the Proposition 1 reduction).
    pub fn sample_edges<R: rand::Rng>(&self, p: f64, rng: &mut R) -> UGraph {
        let mut g = UGraph::new(self.n());
        for (u, v, w) in self.edges() {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(u, v, w);
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn triangle(a: i64, b: i64, c: i64) -> UGraph {
        let mut g = UGraph::new(3);
        g.add_edge(0, 1, a);
        g.add_edge(0, 2, b);
        g.add_edge(1, 2, c);
        g
    }

    #[test]
    fn edges_are_symmetric() {
        let mut g = UGraph::new(4);
        g.add_edge(3, 1, 9);
        assert_eq!(g.weight(1, 3), ExtWeight::from(9));
        assert!(g.has_edge(3, 1) && g.has_edge(1, 3));
    }

    #[test]
    fn negative_triangle_detection_matches_definition() {
        assert!(triangle(-1, -1, -1).is_negative_triangle(0, 1, 2));
        assert!(triangle(-5, 2, 2).is_negative_triangle(2, 0, 1)); // order-insensitive
        assert!(!triangle(1, 1, -2).is_negative_triangle(0, 1, 2)); // sum 0 is not negative
        assert!(!triangle(1, 1, 1).is_negative_triangle(0, 1, 2));
    }

    #[test]
    fn missing_edge_breaks_triangle() {
        let mut g = triangle(-10, -10, -10);
        g.remove_edge(0, 2);
        assert!(!g.is_negative_triangle(0, 1, 2));
        assert_eq!(g.gamma(0, 1), 0);
    }

    #[test]
    fn gamma_counts_all_apexes() {
        // book: pair {0,1} with heavy negative edge, apexes 2, 3, 4
        let mut g = UGraph::new(5);
        g.add_edge(0, 1, -10);
        for w in 2..5 {
            g.add_edge(0, w, 4);
            g.add_edge(1, w, 4);
        }
        assert_eq!(g.gamma(0, 1), 3);
        // each apex pair {0,w} sits in exactly one negative triangle (0,w,1)
        assert_eq!(g.gamma(0, 2), 1);
        assert_eq!(g.gamma(2, 1), 1);
        assert_eq!(g.gamma(2, 3), 0);
    }

    #[test]
    fn census_and_pairs_agree() {
        let mut g = UGraph::new(6);
        g.add_edge(0, 1, -10);
        g.add_edge(0, 2, 4);
        g.add_edge(1, 2, 4);
        g.add_edge(3, 4, 100);
        let pairs = g.negative_triangle_pairs();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 2)]);
        assert_eq!(g.negative_triangles(), vec![(0, 1, 2)]);
        let gamma = g.gamma_matrix();
        assert_eq!(gamma[(0, 1)], 1);
        assert_eq!(gamma[(3, 4)], 0);
    }

    #[test]
    fn degenerate_triples_are_never_triangles() {
        let g = triangle(-5, -5, -5);
        assert!(!g.is_negative_triangle(0, 0, 1));
        assert!(!g.is_negative_triangle(2, 1, 1));
    }

    #[test]
    fn sampling_with_p_one_keeps_everything() {
        let g = triangle(-1, 2, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let s = g.sample_edges(1.0, &mut rng);
        assert_eq!(s, g);
    }

    #[test]
    fn sampling_with_p_zero_removes_everything() {
        let g = triangle(-1, 2, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let s = g.sample_edges(0.0, &mut rng);
        assert_eq!(s.edge_count(), 0);
    }
}
