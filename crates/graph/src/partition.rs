//! Vertex partitions and the labeling schemes of Section 5.1.
//!
//! The algorithm `ComputePairs` uses two partitions of the vertex set:
//!
//! * a **coarse** partition `V` into `n^{1/4}` blocks of `n^{3/4}` vertices,
//! * a **fine** partition `V'` into `√n` blocks of `√n` vertices,
//!
//! plus two extra labelings of the *network* nodes:
//!
//! * the **triple labeling** `T = V × V × V'` (`|T| = n`): node `(u, v, w)`
//!   gathers the weights of all edges in `P(u, w)` and `P(w, v)`;
//! * the **search labeling** `V × V × [√n]`: node `(u, v, x)` runs the
//!   quantum searches for the pair block `Λ_x(u, v)`.
//!
//! For `n = m⁴` all sizes are exact and both labelings are bijections onto
//! the `n` network nodes. For other `n` the paper rounds the block counts
//! up; the labelings then have slightly more labels than nodes and each
//! node simulates at most a constant number of labels (tracked by
//! [`Labeling::max_labels_per_node`]).

/// A partition of `0..n_items` into contiguous blocks of near-equal size.
///
/// # Examples
///
/// ```
/// use qcc_graph::Partition;
///
/// let p = Partition::equal(10, 3);
/// assert_eq!(p.num_blocks(), 3);
/// assert_eq!(p.block(0), 0..4);
/// assert_eq!(p.block_of(9), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    bounds: Vec<usize>, // block b = bounds[b]..bounds[b+1]
    block_of: Vec<usize>,
}

impl Partition {
    /// Splits `0..n_items` into `num_blocks` contiguous blocks whose sizes
    /// differ by at most one.
    ///
    /// # Panics
    ///
    /// Panics if `num_blocks == 0` or `num_blocks > n_items` (with
    /// `n_items > 0`).
    pub fn equal(n_items: usize, num_blocks: usize) -> Self {
        assert!(num_blocks > 0, "need at least one block");
        assert!(num_blocks <= n_items.max(1), "more blocks than items");
        let base = n_items / num_blocks;
        let extra = n_items % num_blocks;
        let mut bounds = Vec::with_capacity(num_blocks + 1);
        let mut block_of = vec![0; n_items];
        let mut start = 0;
        for b in 0..num_blocks {
            bounds.push(start);
            let size = base + usize::from(b < extra);
            block_of[start..start + size].fill(b);
            start += size;
        }
        bounds.push(start);
        Partition { bounds, block_of }
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Number of partitioned items.
    pub fn n_items(&self) -> usize {
        *self.bounds.last().expect("bounds nonempty")
    }

    /// The items of block `b` (contiguous range).
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn block(&self, b: usize) -> std::ops::Range<usize> {
        self.bounds[b]..self.bounds[b + 1]
    }

    /// The block containing `item`.
    ///
    /// # Panics
    ///
    /// Panics if `item` is out of range.
    pub fn block_of(&self, item: usize) -> usize {
        self.block_of[item]
    }

    /// Size of block `b`.
    pub fn block_size(&self, b: usize) -> usize {
        self.bounds[b + 1] - self.bounds[b]
    }

    /// All unordered pairs `{u, v}` with `u ∈ block(a)`, `v ∈ block(b)`,
    /// `u ≠ v` — the set `P(U, U')` of the paper. Each pair is listed once,
    /// as `(min, max)`.
    pub fn pair_set(&self, a: usize, b: usize) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        for u in self.block(a) {
            for v in self.block(b) {
                if u < v {
                    pairs.push((u, v));
                } else if v < u && a != b {
                    pairs.push((v, u));
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }
}

/// Integer `⌈x^{1/4}⌉`-style helpers used to size the paper's partitions.
fn ceil_root(n: usize, k: u32) -> usize {
    if n == 0 {
        return 0;
    }
    let mut r = (n as f64).powf(1.0 / f64::from(k)).round() as usize;
    while r.saturating_pow(k) < n {
        r += 1;
    }
    while r > 1 && (r - 1).saturating_pow(k) >= n {
        r -= 1;
    }
    r
}

/// `⌈√n⌉` as used for the fine partition.
pub fn ceil_sqrt(n: usize) -> usize {
    ceil_root(n, 2)
}

/// `⌈n^{1/4}⌉` as used for the coarse partition.
pub fn ceil_fourth_root(n: usize) -> usize {
    ceil_root(n, 4)
}

/// The two vertex partitions of Section 5.1.
#[derive(Clone, Debug)]
pub struct PaperPartitions {
    /// `V`: `⌈n^{1/4}⌉` blocks of `≈ n^{3/4}` vertices.
    pub coarse: Partition,
    /// `V'`: `⌈√n⌉` blocks of `≈ √n` vertices.
    pub fine: Partition,
}

impl PaperPartitions {
    /// Builds both partitions for an `n`-vertex graph.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        let q = ceil_fourth_root(n).max(1).min(n);
        let s = ceil_sqrt(n).max(1).min(n);
        PaperPartitions {
            coarse: Partition::equal(n, q),
            fine: Partition::equal(n, s),
        }
    }

    /// Whether `n` admits the exact paper sizes (`n = m⁴`).
    pub fn is_exact(&self) -> bool {
        let q = self.coarse.num_blocks();
        let s = self.fine.num_blocks();
        q * q == s && s * s == self.coarse.n_items()
    }
}

/// A labeling of network nodes by tuples, as in Section 5.1.
///
/// Labels are tuples drawn from a product space of size `label_count`;
/// label `t` lives on node `t mod n`. For exact `n` (`label_count == n`)
/// this is a bijection.
#[derive(Clone, Debug)]
pub struct Labeling {
    label_count: usize,
    n_nodes: usize,
}

impl Labeling {
    /// Creates a labeling of `n_nodes` nodes by `label_count` labels.
    pub fn new(label_count: usize, n_nodes: usize) -> Self {
        assert!(n_nodes > 0);
        Labeling {
            label_count,
            n_nodes,
        }
    }

    /// Total number of labels.
    pub fn label_count(&self) -> usize {
        self.label_count
    }

    /// The node hosting label `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn node_of(&self, t: usize) -> usize {
        assert!(t < self.label_count, "label {t} out of range");
        t % self.n_nodes
    }

    /// Labels hosted by `node`.
    pub fn labels_of(&self, node: usize) -> impl Iterator<Item = usize> + '_ {
        (node..self.label_count).step_by(self.n_nodes)
    }

    /// Maximum number of labels any node simulates (1 when exact).
    pub fn max_labels_per_node(&self) -> usize {
        self.label_count.div_ceil(self.n_nodes)
    }
}

/// The triple labeling `T = V × V × V'` of Section 5.1.
///
/// # Examples
///
/// ```
/// use qcc_graph::{PaperPartitions, TripleLabeling};
///
/// let parts = PaperPartitions::new(16);
/// let t = TripleLabeling::new(&parts, 16);
/// assert_eq!(t.labeling().label_count(), 16); // q² · s = 2·2·4
/// let (u, v, w) = t.decode(7);
/// assert_eq!(t.encode(u, v, w), 7);
/// ```
#[derive(Clone, Debug)]
pub struct TripleLabeling {
    q: usize,
    s: usize,
    labeling: Labeling,
}

impl TripleLabeling {
    /// Builds the labeling `V × V × V'` over `n_nodes` network nodes.
    pub fn new(parts: &PaperPartitions, n_nodes: usize) -> Self {
        let q = parts.coarse.num_blocks();
        let s = parts.fine.num_blocks();
        TripleLabeling {
            q,
            s,
            labeling: Labeling::new(q * q * s, n_nodes),
        }
    }

    /// Encodes `(u, v, w)` (coarse, coarse, fine block indices) as a label.
    pub fn encode(&self, u: usize, v: usize, w: usize) -> usize {
        debug_assert!(u < self.q && v < self.q && w < self.s);
        (u * self.q + v) * self.s + w
    }

    /// Decodes a label into `(u, v, w)`.
    pub fn decode(&self, t: usize) -> (usize, usize, usize) {
        let w = t % self.s;
        let uv = t / self.s;
        (uv / self.q, uv % self.q, w)
    }

    /// The underlying node assignment.
    pub fn labeling(&self) -> &Labeling {
        &self.labeling
    }

    /// Iterates over all `(u, v, w)` triples with their label ids.
    pub fn triples(&self) -> impl Iterator<Item = (usize, (usize, usize, usize))> + '_ {
        (0..self.labeling.label_count()).map(move |t| (t, self.decode(t)))
    }
}

/// The search labeling `V × V × [√n]` of Section 5.1 (third scheme).
#[derive(Clone, Debug)]
pub struct SearchLabeling {
    q: usize,
    s: usize,
    labeling: Labeling,
}

impl SearchLabeling {
    /// Builds the labeling `V × V × [⌈√n⌉]` over `n_nodes` network nodes.
    pub fn new(parts: &PaperPartitions, n_nodes: usize) -> Self {
        let q = parts.coarse.num_blocks();
        let s = parts.fine.num_blocks();
        SearchLabeling {
            q,
            s,
            labeling: Labeling::new(q * q * s, n_nodes),
        }
    }

    /// Encodes `(u, v, x)` as a label.
    pub fn encode(&self, u: usize, v: usize, x: usize) -> usize {
        debug_assert!(u < self.q && v < self.q && x < self.s);
        (u * self.q + v) * self.s + x
    }

    /// Decodes a label into `(u, v, x)`.
    pub fn decode(&self, t: usize) -> (usize, usize, usize) {
        let x = t % self.s;
        let uv = t / self.s;
        (uv / self.q, uv % self.q, x)
    }

    /// The underlying node assignment.
    pub fn labeling(&self) -> &Labeling {
        &self.labeling
    }

    /// Iterates over all `(u, v, x)` triples with their label ids.
    pub fn triples(&self) -> impl Iterator<Item = (usize, (usize, usize, usize))> + '_ {
        (0..self.labeling.label_count()).map(move |t| (t, self.decode(t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_partition_covers_everything_once() {
        let p = Partition::equal(11, 4);
        let mut seen = [false; 11];
        for b in 0..p.num_blocks() {
            for item in p.block(b) {
                assert!(!seen[item]);
                seen[item] = true;
                assert_eq!(p.block_of(item), b);
            }
        }
        assert!(seen.iter().all(|&x| x));
        let sizes: Vec<_> = (0..4).map(|b| p.block_size(b)).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 11);
        assert!(sizes.iter().all(|&s| s == 2 || s == 3));
    }

    #[test]
    fn roots_are_exact_on_perfect_powers() {
        assert_eq!(ceil_sqrt(16), 4);
        assert_eq!(ceil_sqrt(17), 5);
        assert_eq!(ceil_fourth_root(16), 2);
        assert_eq!(ceil_fourth_root(81), 3);
        assert_eq!(ceil_fourth_root(82), 4);
        assert_eq!(ceil_fourth_root(625), 5);
        assert_eq!(ceil_sqrt(1), 1);
        assert_eq!(ceil_fourth_root(1), 1);
    }

    #[test]
    fn paper_partitions_are_exact_on_fourth_powers() {
        for m in 2..6usize {
            let n = m.pow(4);
            let parts = PaperPartitions::new(n);
            assert!(parts.is_exact(), "n = {n}");
            assert_eq!(parts.coarse.num_blocks(), m);
            assert_eq!(parts.fine.num_blocks(), m * m);
            assert!(parts.coarse.block(0).len() == m.pow(3));
            assert!(parts.fine.block(0).len() == m * m);
        }
    }

    #[test]
    fn paper_partitions_handle_inexact_sizes() {
        let parts = PaperPartitions::new(100);
        assert_eq!(parts.coarse.n_items(), 100);
        assert_eq!(parts.fine.n_items(), 100);
        assert_eq!(parts.fine.num_blocks(), 10);
        assert_eq!(parts.coarse.num_blocks(), 4); // ceil(100^{1/4}) = 4
    }

    #[test]
    fn pair_set_counts_cross_and_same_block() {
        let p = Partition::equal(6, 3); // blocks {0,1}, {2,3}, {4,5}
        assert_eq!(p.pair_set(0, 1), vec![(0, 2), (0, 3), (1, 2), (1, 3)]);
        assert_eq!(p.pair_set(0, 0), vec![(0, 1)]);
        // symmetric arguments give the same set
        assert_eq!(p.pair_set(1, 0), p.pair_set(0, 1));
    }

    #[test]
    fn triple_labeling_is_a_bijection_on_exact_n() {
        let n = 16;
        let parts = PaperPartitions::new(n);
        let t = TripleLabeling::new(&parts, n);
        assert_eq!(t.labeling().label_count(), n);
        assert_eq!(t.labeling().max_labels_per_node(), 1);
        let mut seen = vec![false; n];
        for (label, (u, v, w)) in t.triples() {
            assert_eq!(t.encode(u, v, w), label);
            let node = t.labeling().node_of(label);
            assert!(!seen[node]);
            seen[node] = true;
        }
    }

    #[test]
    fn labeling_distributes_excess_labels() {
        let l = Labeling::new(10, 4);
        assert_eq!(l.max_labels_per_node(), 3);
        let mut counts = [0; 4];
        for t in 0..10 {
            counts[l.node_of(t)] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 10);
        assert!(counts.iter().all(|&c| c <= 3));
        let on_node1: Vec<_> = l.labels_of(1).collect();
        assert_eq!(on_node1, vec![1, 5, 9]);
    }

    #[test]
    fn search_labeling_round_trips() {
        let parts = PaperPartitions::new(81);
        let s = SearchLabeling::new(&parts, 81);
        for (label, (u, v, x)) in s.triples() {
            assert_eq!(s.encode(u, v, x), label);
        }
        assert_eq!(s.labeling().label_count(), 3 * 3 * 9);
    }
}
