//! # qcc-graph — graphs, tropical matrices and workloads
//!
//! Graph-theoretic substrate for the reproduction of *"Quantum Distributed
//! Algorithm for the All-Pairs Shortest Path Problem in the CONGEST-CLIQUE
//! Model"* (Izumi & Le Gall, PODC 2019):
//!
//! * [`ExtWeight`] — integers extended with `±∞` under min-plus saturation;
//! * [`SquareMatrix`] / [`WeightMatrix`] — dense matrices with the
//!   sequential [`distance_product`] and [`distance_power`] references
//!   (Definition 2, Proposition 3);
//! * [`DiGraph`] — weighted digraphs, the APSP input;
//! * [`UGraph`] — undirected weighted graphs with the negative-triangle
//!   census (`Γ(u, v)` of Definition 1);
//! * [`build_tripartite`] — the Vassilevska Williams–Williams reduction
//!   graph (Proposition 2);
//! * [`Partition`], [`PaperPartitions`], [`TripleLabeling`],
//!   [`SearchLabeling`] — the vertex partitions and node labelings of
//!   Section 5.1;
//! * [`floyd_warshall`], [`bellman_ford`], [`johnson`] — sequential oracles;
//! * [`generators`] — reproducible workloads for the experiments.
//!
//! ## Example
//!
//! ```
//! use qcc_graph::{floyd_warshall, generators, ExtWeight};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let g = generators::random_reweighted_digraph(16, 0.4, 10, &mut rng);
//! let dist = floyd_warshall(&g.adjacency_matrix())?;
//! assert_eq!(dist[(0, 0)], ExtWeight::ZERO);
//! # Ok::<(), qcc_graph::NegativeCycleError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apsp_ref;
mod delta;
mod digraph;
pub mod generators;
mod matrix;
mod partition;
mod paths;
mod tripartite;
mod ugraph;
mod weight;

pub use apsp_ref::{
    bellman_ford, dijkstra, floyd_warshall, floyd_warshall_with_threads, johnson,
    johnson_with_threads, NegativeCycleError,
};
pub use delta::{
    certificate_local_ok, delta_repair_candidate, has_negative_cycle,
    min_plus_fixpoint_certificate, parent_path, sssp_row_with_parents, EdgeDelta,
};
pub use digraph::DiGraph;
pub use generators::{
    book_graph, complete_digraph, congestion_hotspot, cycle_digraph, path_digraph,
    planted_disjoint_triangles, random_nonneg_digraph, random_reweighted_digraph, random_ugraph,
};
pub use matrix::{
    distance_power, distance_power_with_threads, distance_product, distance_product_reference,
    distance_product_with_threads, min_plus_flat_into, tropical_decode, SquareMatrix, WeightMatrix,
    MIN_PLUS_TILE, TROPICAL_FINITE_MAX, TROPICAL_NONE,
};
pub use partition::{
    ceil_fourth_root, ceil_sqrt, Labeling, PaperPartitions, Partition, SearchLabeling,
    TripleLabeling,
};
pub use paths::{
    cycle_weight, decode_witness, distance_product_with_witness, find_negative_cycle, path_weight,
    scale_for_witness, PathOracle, WitnessedProduct,
};
pub use tripartite::{build_tripartite, TripartiteLayout, TripartiteVertex};
pub use ugraph::UGraph;
pub use weight::ExtWeight;
