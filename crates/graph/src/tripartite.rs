//! The Vassilevska Williams–Williams tripartite construction.
//!
//! Proposition 2 of the paper reduces the distance product `A ⋆ B` to
//! finding the edges involved in negative triangles: build the undirected
//! tripartite graph on `I ∪ J ∪ K` (each a copy of `[n]`) with
//!
//! * `f(i, k) = A[i, k]` for `(i, k) ∈ I × K`,
//! * `f(j, k) = B[k, j]` for `(j, k) ∈ J × K`,
//! * `f(i, j) = −D[i, j]` for `(i, j) ∈ I × J`,
//!
//! so that `{i, j, k}` is a negative triangle iff `A[i,k] + B[k,j] < D[i,j]`,
//! and the pair `{i, j}` sits in a negative triangle iff
//! `(A ⋆ B)[i, j] < D[i, j]`. A binary search over the entries of `D`
//! (Proposition 2's outer loop, implemented in `qcc-apsp`) then pins down
//! every entry of the product.

use crate::matrix::{SquareMatrix, WeightMatrix};
use crate::ugraph::UGraph;
use crate::weight::ExtWeight;

/// Vertex layout of the tripartite graph: `I = 0..n`, `J = n..2n`, `K = 2n..3n`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TripartiteLayout {
    /// Side length of the matrices involved.
    pub n: usize,
}

impl TripartiteLayout {
    /// Creates the layout for `n × n` matrices.
    pub fn new(n: usize) -> Self {
        TripartiteLayout { n }
    }

    /// Total number of vertices (`3n`).
    pub fn vertex_count(&self) -> usize {
        3 * self.n
    }

    /// Vertex id of `i ∈ I`.
    pub fn i_vertex(&self, i: usize) -> usize {
        debug_assert!(i < self.n);
        i
    }

    /// Vertex id of `j ∈ J`.
    pub fn j_vertex(&self, j: usize) -> usize {
        debug_assert!(j < self.n);
        self.n + j
    }

    /// Vertex id of `k ∈ K`.
    pub fn k_vertex(&self, k: usize) -> usize {
        debug_assert!(k < self.n);
        2 * self.n + k
    }

    /// Decodes a vertex id into its side and index.
    pub fn decode(&self, v: usize) -> TripartiteVertex {
        match v / self.n {
            0 => TripartiteVertex::I(v),
            1 => TripartiteVertex::J(v - self.n),
            2 => TripartiteVertex::K(v - 2 * self.n),
            _ => panic!("vertex {v} out of range for layout n={}", self.n),
        }
    }

    /// Extracts the `(i, j)` matrix coordinates from a vertex pair, if the
    /// pair spans `I × J`.
    pub fn as_ij_pair(&self, u: usize, v: usize) -> Option<(usize, usize)> {
        match (self.decode(u), self.decode(v)) {
            (TripartiteVertex::I(i), TripartiteVertex::J(j))
            | (TripartiteVertex::J(j), TripartiteVertex::I(i)) => Some((i, j)),
            _ => None,
        }
    }
}

/// A vertex of the tripartite graph, tagged by its side.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TripartiteVertex {
    /// Row side (`i` of `C[i,j]`).
    I(usize),
    /// Column side (`j` of `C[i,j]`).
    J(usize),
    /// Inner-dimension side (`k` of the min over `A[i,k] + B[k,j]`).
    K(usize),
}

/// Builds the tripartite negative-triangle graph for matrices `A`, `B` and
/// threshold matrix `D`.
///
/// Entries `+∞` in `A`/`B` yield absent edges (they can never witness the
/// minimum); entries `−∞` are mapped to a finite surrogate low enough to
/// make any triangle through them negative.
///
/// # Panics
///
/// Panics if the dimensions of `A`, `B`, `D` differ.
///
/// # Examples
///
/// ```
/// use qcc_graph::{build_tripartite, ExtWeight, SquareMatrix, WeightMatrix};
///
/// let a = WeightMatrix::from_fn(2, |_, _| ExtWeight::from(1));
/// let b = WeightMatrix::from_fn(2, |_, _| ExtWeight::from(1));
/// let d = SquareMatrix::filled(2, 3i64);
/// let (g, layout) = build_tripartite(&a, &b, &d);
/// // A[i,k] + B[k,j] = 2 < 3 = D[i,j]: every (i, j, k) is a negative triangle
/// assert!(g.is_negative_triangle(layout.i_vertex(0), layout.j_vertex(0), layout.k_vertex(1)));
/// ```
pub fn build_tripartite(
    a: &WeightMatrix,
    b: &WeightMatrix,
    d: &SquareMatrix<i64>,
) -> (UGraph, TripartiteLayout) {
    assert_eq!(a.n(), b.n());
    assert_eq!(a.n(), d.n());
    let n = a.n();
    let layout = TripartiteLayout::new(n);
    // Surrogate for -inf: beyond any achievable finite triangle sum.
    let max_mag = a.max_finite_magnitude_with(b).max(
        d.entries()
            .map(|(_, _, &x)| x.unsigned_abs())
            .max()
            .unwrap_or(0),
    ) as i64;
    let neg_surrogate = -(3 * max_mag + 1);
    let finite = |w: ExtWeight| -> Option<i64> {
        match w {
            ExtWeight::Finite(x) => Some(x),
            ExtWeight::NegInf => Some(neg_surrogate),
            ExtWeight::PosInf => None,
        }
    };
    let mut g = UGraph::new(layout.vertex_count());
    for i in 0..n {
        for k in 0..n {
            if let Some(x) = finite(a[(i, k)]) {
                g.add_edge(layout.i_vertex(i), layout.k_vertex(k), x);
            }
        }
    }
    for j in 0..n {
        for k in 0..n {
            if let Some(x) = finite(b[(k, j)]) {
                g.add_edge(layout.j_vertex(j), layout.k_vertex(k), x);
            }
        }
    }
    for i in 0..n {
        for j in 0..n {
            g.add_edge(layout.i_vertex(i), layout.j_vertex(j), -d[(i, j)]);
        }
    }
    (g, layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::distance_product;

    fn small_instance() -> (WeightMatrix, WeightMatrix, SquareMatrix<i64>) {
        let a = WeightMatrix::from_fn(3, |i, k| ExtWeight::from((i as i64) - (k as i64) + 1));
        let b = WeightMatrix::from_fn(3, |k, j| ExtWeight::from((k as i64) * (j as i64) - 2));
        let d = SquareMatrix::from_fn(3, |i, j| (i + j) as i64);
        (a, b, d)
    }

    #[test]
    fn layout_indices_partition_vertices() {
        let layout = TripartiteLayout::new(4);
        assert_eq!(layout.vertex_count(), 12);
        assert_eq!(layout.decode(layout.i_vertex(2)), TripartiteVertex::I(2));
        assert_eq!(layout.decode(layout.j_vertex(0)), TripartiteVertex::J(0));
        assert_eq!(layout.decode(layout.k_vertex(3)), TripartiteVertex::K(3));
    }

    #[test]
    fn ij_pair_extraction_ignores_other_sides() {
        let layout = TripartiteLayout::new(2);
        assert_eq!(
            layout.as_ij_pair(layout.i_vertex(1), layout.j_vertex(0)),
            Some((1, 0))
        );
        assert_eq!(
            layout.as_ij_pair(layout.j_vertex(0), layout.i_vertex(1)),
            Some((1, 0))
        );
        assert_eq!(
            layout.as_ij_pair(layout.i_vertex(1), layout.k_vertex(0)),
            None
        );
    }

    #[test]
    fn negative_triangles_characterize_product_threshold() {
        let (a, b, d) = small_instance();
        let (g, layout) = build_tripartite(&a, &b, &d);
        let c = distance_product(&a, &b);
        for i in 0..3 {
            for j in 0..3 {
                let in_triangle = (0..3).any(|k| {
                    g.is_negative_triangle(
                        layout.i_vertex(i),
                        layout.j_vertex(j),
                        layout.k_vertex(k),
                    )
                });
                let expected = c[(i, j)] < ExtWeight::from(d[(i, j)]);
                assert_eq!(in_triangle, expected, "pair ({i}, {j})");
            }
        }
    }

    #[test]
    fn pos_inf_entries_produce_no_edges() {
        let mut a = WeightMatrix::filled(2, ExtWeight::PosInf);
        a[(0, 0)] = ExtWeight::from(0);
        let b = WeightMatrix::filled(2, ExtWeight::PosInf);
        let d = SquareMatrix::filled(2, 100i64);
        let (g, layout) = build_tripartite(&a, &b, &d);
        // only one I-K edge plus the I-J clique edges exist
        assert!(g.has_edge(layout.i_vertex(0), layout.k_vertex(0)));
        assert!(!g.has_edge(layout.i_vertex(0), layout.k_vertex(1)));
        assert!(!g.has_edge(layout.j_vertex(0), layout.k_vertex(0)));
        // no K-side witness: no negative triangles at all
        assert!(g.negative_triangles().is_empty());
    }

    #[test]
    fn neg_inf_entries_force_negative_triangles() {
        let mut a = WeightMatrix::filled(2, ExtWeight::from(5));
        a[(0, 1)] = ExtWeight::NegInf;
        let b = WeightMatrix::filled(2, ExtWeight::from(5));
        let d = SquareMatrix::filled(2, 0i64);
        let (g, layout) = build_tripartite(&a, &b, &d);
        // A[0,1] = -inf makes (i=0, j, k=1) negative for every j
        assert!(g.is_negative_triangle(layout.i_vertex(0), layout.j_vertex(0), layout.k_vertex(1)));
        assert!(g.is_negative_triangle(layout.i_vertex(0), layout.j_vertex(1), layout.k_vertex(1)));
    }

    #[test]
    fn no_triangles_within_one_side() {
        let (a, b, d) = small_instance();
        let (g, layout) = build_tripartite(&a, &b, &d);
        // I-I pairs have no edge
        assert!(!g.has_edge(layout.i_vertex(0), layout.i_vertex(1)));
        assert!(!g.has_edge(layout.k_vertex(0), layout.k_vertex(2)));
    }
}
