//! Weighted directed graphs — the input of the APSP problem.

use crate::matrix::WeightMatrix;
use crate::weight::ExtWeight;

/// A weighted directed graph on vertices `0..n` without self-loops.
///
/// Stored densely as a weight matrix: `weight(i, j) = PosInf` means the arc
/// `(i, j)` is absent. The diagonal is fixed at `0` in the adjacency-matrix
/// view (`A_G[i,i] = 0`, as in Section 3 of the paper).
///
/// # Examples
///
/// ```
/// use qcc_graph::{DiGraph, ExtWeight};
///
/// let mut g = DiGraph::new(3);
/// g.add_arc(0, 1, 4);
/// g.add_arc(1, 2, -1);
/// assert_eq!(g.weight(0, 1), ExtWeight::from(4));
/// assert_eq!(g.weight(1, 0), ExtWeight::PosInf);
/// assert_eq!(g.arc_count(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiGraph {
    weights: WeightMatrix,
}

impl DiGraph {
    /// Creates an arcless directed graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        DiGraph {
            weights: WeightMatrix::filled(n, ExtWeight::PosInf),
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.weights.n()
    }

    /// Adds (or overwrites) the arc `(u, v)` with the given weight.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` (self-loops are excluded by the problem statement)
    /// or if either endpoint is out of range.
    pub fn add_arc(&mut self, u: usize, v: usize, weight: i64) {
        assert_ne!(u, v, "self-loops are not allowed");
        self.weights[(u, v)] = ExtWeight::from(weight);
    }

    /// Removes the arc `(u, v)` if present.
    pub fn remove_arc(&mut self, u: usize, v: usize) {
        self.weights[(u, v)] = ExtWeight::PosInf;
    }

    /// Weight of the arc `(u, v)`, `PosInf` if absent.
    pub fn weight(&self, u: usize, v: usize) -> ExtWeight {
        if u == v {
            ExtWeight::PosInf
        } else {
            self.weights[(u, v)]
        }
    }

    /// Number of arcs.
    pub fn arc_count(&self) -> usize {
        self.weights
            .entries()
            .filter(|&(i, j, &w)| i != j && w.is_finite())
            .count()
    }

    /// Iterates over arcs as `(u, v, weight)`.
    pub fn arcs(&self) -> impl Iterator<Item = (usize, usize, i64)> + '_ {
        self.weights.entries().filter_map(|(i, j, &w)| {
            if i == j {
                None
            } else {
                w.finite().map(|x| (i, j, x))
            }
        })
    }

    /// The out-neighborhood row of vertex `u`: `(v, weight)` pairs.
    pub fn out_neighbors(&self, u: usize) -> impl Iterator<Item = (usize, i64)> + '_ {
        self.weights
            .row(u)
            .iter()
            .enumerate()
            .filter_map(move |(v, &w)| {
                if v != u {
                    w.finite().map(|x| (v, x))
                } else {
                    None
                }
            })
    }

    /// Largest absolute arc weight (the `W` of "weights in `{−W..W}`").
    pub fn weight_magnitude(&self) -> u64 {
        self.weights.max_finite_magnitude()
    }

    /// The adjacency matrix `A_G` of Section 3: `0` on the diagonal, arc
    /// weights off-diagonal, `+∞` for absent arcs.
    pub fn adjacency_matrix(&self) -> WeightMatrix {
        WeightMatrix::from_fn(self.n(), |i, j| {
            if i == j {
                ExtWeight::ZERO
            } else {
                self.weights[(i, j)]
            }
        })
    }

    /// Builds a graph from an adjacency matrix view (inverse of
    /// [`DiGraph::adjacency_matrix`]; diagonal entries are ignored).
    pub fn from_adjacency_matrix(m: &WeightMatrix) -> Self {
        let mut g = DiGraph::new(m.n());
        for (i, j, &w) in m.entries() {
            if i != j {
                if let Some(x) = w.finite() {
                    g.add_arc(i, j, x);
                }
            }
        }
        g
    }

    /// Builds a graph from an arc list.
    ///
    /// # Panics
    ///
    /// Panics on self-loops or out-of-range endpoints.
    ///
    /// # Examples
    ///
    /// ```
    /// use qcc_graph::DiGraph;
    ///
    /// let g = DiGraph::from_arcs(3, [(0, 1, 5), (1, 2, -1)]);
    /// assert_eq!(g.arc_count(), 2);
    /// ```
    pub fn from_arcs(n: usize, arcs: impl IntoIterator<Item = (usize, usize, i64)>) -> Self {
        let mut g = DiGraph::new(n);
        for (u, v, w) in arcs {
            g.add_arc(u, v, w);
        }
        g
    }

    /// The transpose graph: every arc `(u, v)` becomes `(v, u)`.
    ///
    /// Distances in the transpose are the reversed distances, so a
    /// single-source run on the transpose yields single-*destination*
    /// distances in the original.
    pub fn transpose(&self) -> DiGraph {
        let mut g = DiGraph::new(self.n());
        for (u, v, w) in self.arcs() {
            g.add_arc(v, u, w);
        }
        g
    }

    /// The subgraph induced by `vertices` (relabelled `0..vertices.len()`
    /// in the given order).
    ///
    /// # Panics
    ///
    /// Panics if `vertices` contains duplicates or out-of-range ids.
    pub fn induced(&self, vertices: &[usize]) -> DiGraph {
        let mut g = DiGraph::new(vertices.len());
        for (i, &u) in vertices.iter().enumerate() {
            for (j, &v) in vertices.iter().enumerate() {
                if i != j {
                    assert!(u != v, "duplicate vertex {u} in induced set");
                    if let Some(w) = self.weight(u, v).finite() {
                        g.add_arc(i, j, w);
                    }
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_graph_has_no_arcs() {
        let g = DiGraph::new(4);
        assert_eq!(g.arc_count(), 0);
        assert_eq!(g.n(), 4);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_is_rejected() {
        DiGraph::new(3).add_arc(1, 1, 0);
    }

    #[test]
    fn arcs_are_directed() {
        let mut g = DiGraph::new(3);
        g.add_arc(0, 2, 7);
        assert_eq!(g.weight(0, 2), ExtWeight::from(7));
        assert_eq!(g.weight(2, 0), ExtWeight::PosInf);
    }

    #[test]
    fn remove_arc_restores_infinity() {
        let mut g = DiGraph::new(3);
        g.add_arc(0, 1, -2);
        g.remove_arc(0, 1);
        assert_eq!(g.weight(0, 1), ExtWeight::PosInf);
        assert_eq!(g.arc_count(), 0);
    }

    #[test]
    fn adjacency_matrix_round_trips() {
        let mut g = DiGraph::new(4);
        g.add_arc(0, 1, 3);
        g.add_arc(2, 3, -5);
        g.add_arc(3, 0, 11);
        let m = g.adjacency_matrix();
        assert_eq!(m[(0, 0)], ExtWeight::ZERO);
        assert_eq!(m[(0, 1)], ExtWeight::from(3));
        assert_eq!(DiGraph::from_adjacency_matrix(&m), g);
    }

    #[test]
    fn out_neighbors_lists_finite_arcs() {
        let mut g = DiGraph::new(3);
        g.add_arc(1, 0, 2);
        g.add_arc(1, 2, 4);
        let neigh: Vec<_> = g.out_neighbors(1).collect();
        assert_eq!(neigh, vec![(0, 2), (2, 4)]);
    }

    #[test]
    fn weight_magnitude_tracks_extremes() {
        let mut g = DiGraph::new(3);
        g.add_arc(0, 1, -9);
        g.add_arc(1, 2, 4);
        assert_eq!(g.weight_magnitude(), 9);
    }

    #[test]
    fn from_arcs_round_trips_with_arcs() {
        let g = DiGraph::from_arcs(5, [(0, 1, 2), (3, 4, -7), (4, 0, 9)]);
        let collected: Vec<_> = g.arcs().collect();
        assert_eq!(collected, vec![(0, 1, 2), (3, 4, -7), (4, 0, 9)]);
    }

    #[test]
    fn transpose_reverses_every_arc() {
        let g = DiGraph::from_arcs(4, [(0, 1, 2), (1, 3, -1), (3, 0, 5)]);
        let t = g.transpose();
        assert_eq!(t.weight(1, 0), ExtWeight::from(2));
        assert_eq!(t.weight(3, 1), ExtWeight::from(-1));
        assert_eq!(t.weight(0, 1), ExtWeight::PosInf);
        assert_eq!(t.transpose(), g);
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = DiGraph::from_arcs(5, [(0, 2, 1), (2, 4, 3), (4, 0, 5), (1, 3, 9)]);
        let sub = g.induced(&[0, 2, 4]);
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.weight(0, 1), ExtWeight::from(1)); // 0 -> 2
        assert_eq!(sub.weight(1, 2), ExtWeight::from(3)); // 2 -> 4
        assert_eq!(sub.weight(2, 0), ExtWeight::from(5)); // 4 -> 0
        assert_eq!(sub.arc_count(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn induced_rejects_duplicates() {
        let g = DiGraph::new(3);
        let _ = g.induced(&[0, 0]);
    }

    #[test]
    fn arcs_iterator_matches_count() {
        let mut g = DiGraph::new(5);
        g.add_arc(0, 4, 1);
        g.add_arc(4, 0, 1);
        g.add_arc(2, 3, 1);
        assert_eq!(g.arcs().count(), g.arc_count());
    }
}
