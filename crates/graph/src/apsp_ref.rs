//! Sequential all-pairs shortest path oracles.
//!
//! These run on a single machine and serve as ground truth for the
//! distributed algorithms: Floyd–Warshall (negative weights, cycle
//! detection), Bellman–Ford (single source), and Johnson's algorithm
//! (reweighting + Dijkstra, asymptotically faster on sparse graphs and an
//! independent cross-check of Floyd–Warshall).

use crate::digraph::DiGraph;
use crate::matrix::WeightMatrix;
use crate::weight::ExtWeight;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;

/// The input graph contains a negative cycle, so shortest distances are
/// undefined.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NegativeCycleError;

impl fmt::Display for NegativeCycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "graph contains a negative cycle")
    }
}

impl Error for NegativeCycleError {}

/// Floyd–Warshall on an adjacency matrix (`A_G[i,i] = 0`).
///
/// Returns the full distance matrix, or an error if a negative cycle is
/// detected (negative diagonal after relaxation).
///
/// # Examples
///
/// ```
/// use qcc_graph::{floyd_warshall, DiGraph, ExtWeight};
///
/// let mut g = DiGraph::new(3);
/// g.add_arc(0, 1, 2);
/// g.add_arc(1, 2, -1);
/// let d = floyd_warshall(&g.adjacency_matrix())?;
/// assert_eq!(d[(0, 2)], ExtWeight::from(1));
/// # Ok::<(), qcc_graph::NegativeCycleError>(())
/// ```
pub fn floyd_warshall(adj: &WeightMatrix) -> Result<WeightMatrix, NegativeCycleError> {
    floyd_warshall_with_threads(adj, qcc_perf::resolve_threads(None))
}

/// [`floyd_warshall`] with an explicit worker count.
///
/// Iteration `k` relaxes every row against a snapshot of pivot row `k`, so
/// row bands update independently. On inputs without a negative cycle the
/// pivot row is a fixed point of its own iteration (`d[k,k] = 0`
/// throughout), making the banded schedule entry-for-entry identical to
/// the sequential in-place algorithm; with a negative cycle both variants
/// report [`NegativeCycleError`].
pub fn floyd_warshall_with_threads(
    adj: &WeightMatrix,
    threads: usize,
) -> Result<WeightMatrix, NegativeCycleError> {
    let n = adj.n();
    let mut d = adj.clone();
    let mut pivot = vec![ExtWeight::PosInf; n];
    for k in 0..n {
        pivot.copy_from_slice(d.row(k));
        let pivot = &pivot;
        qcc_perf::for_each_row_band(d.as_mut_slice(), n, threads, |rows, d_rows| {
            for (bi, _) in rows.enumerate() {
                let row = &mut d_rows[bi * n..(bi + 1) * n];
                let dik = row[k];
                if dik == ExtWeight::PosInf {
                    continue;
                }
                for (dij, &dkj) in row.iter_mut().zip(pivot) {
                    let cand = dik + dkj;
                    if cand < *dij {
                        *dij = cand;
                    }
                }
            }
        });
    }
    for i in 0..n {
        if d[(i, i)] < ExtWeight::ZERO {
            return Err(NegativeCycleError);
        }
    }
    Ok(d)
}

/// Bellman–Ford single-source shortest paths.
///
/// Returns the distance vector from `src`, or an error if a negative cycle
/// is reachable from `src`.
///
/// # Panics
///
/// Panics if `src` is out of range.
pub fn bellman_ford(g: &DiGraph, src: usize) -> Result<Vec<ExtWeight>, NegativeCycleError> {
    let n = g.n();
    assert!(src < n);
    let mut dist = vec![ExtWeight::PosInf; n];
    dist[src] = ExtWeight::ZERO;
    let arcs: Vec<_> = g.arcs().collect();
    for _ in 0..n.saturating_sub(1) {
        let mut changed = false;
        for &(u, v, w) in &arcs {
            let cand = dist[u] + ExtWeight::from(w);
            if cand < dist[v] {
                dist[v] = cand;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for &(u, v, w) in &arcs {
        if dist[u] + ExtWeight::from(w) < dist[v] {
            return Err(NegativeCycleError);
        }
    }
    Ok(dist)
}

/// Dijkstra on nonnegative arc weights.
///
/// # Panics
///
/// Panics if `src` is out of range or any arc weight is negative.
pub fn dijkstra(g: &DiGraph, src: usize) -> Vec<ExtWeight> {
    let n = g.n();
    assert!(src < n);
    let mut dist = vec![ExtWeight::PosInf; n];
    dist[src] = ExtWeight::ZERO;
    let mut heap: BinaryHeap<Reverse<(i64, usize)>> = BinaryHeap::new();
    heap.push(Reverse((0, src)));
    while let Some(Reverse((du, u))) = heap.pop() {
        if ExtWeight::from(du) > dist[u] {
            continue;
        }
        for (v, w) in g.out_neighbors(u) {
            assert!(w >= 0, "dijkstra requires nonnegative weights");
            let cand = du + w;
            if ExtWeight::from(cand) < dist[v] {
                dist[v] = ExtWeight::from(cand);
                heap.push(Reverse((cand, v)));
            }
        }
    }
    dist
}

/// Johnson's algorithm: full APSP with negative arcs via Bellman–Ford
/// reweighting plus `n` Dijkstra runs.
///
/// Returns the distance matrix, or an error if the graph has a negative
/// cycle.
pub fn johnson(g: &DiGraph) -> Result<WeightMatrix, NegativeCycleError> {
    johnson_with_threads(g, qcc_perf::resolve_threads(None))
}

/// [`johnson`] with an explicit worker count.
///
/// The `n` per-source Dijkstra runs are independent and fan out across
/// scoped workers; each writes only its own row of the distance matrix, so
/// the result is identical for every worker count.
pub fn johnson_with_threads(
    g: &DiGraph,
    threads: usize,
) -> Result<WeightMatrix, NegativeCycleError> {
    let n = g.n();
    // Virtual source n with zero-weight arcs to every vertex.
    let mut aug = DiGraph::new(n + 1);
    for (u, v, w) in g.arcs() {
        aug.add_arc(u, v, w);
    }
    for v in 0..n {
        aug.add_arc(n, v, 0);
    }
    let h = bellman_ford(&aug, n)?;
    let mut reweighted = DiGraph::new(n);
    for (u, v, w) in g.arcs() {
        let hu = h[u].finite().expect("virtual source reaches every vertex");
        let hv = h[v].finite().expect("virtual source reaches every vertex");
        reweighted.add_arc(u, v, w + hu - hv);
    }
    let mut dist = WeightMatrix::filled(n, ExtWeight::PosInf);
    let reweighted = &reweighted;
    let h = &h;
    qcc_perf::for_each_row_band(dist.as_mut_slice(), n, threads, |rows, dist_rows| {
        for (bi, u) in rows.enumerate() {
            let du = dijkstra(reweighted, u);
            let hu = h[u].finite().expect("reachable");
            let row = &mut dist_rows[bi * n..(bi + 1) * n];
            for (v, slot) in row.iter_mut().enumerate() {
                *slot = if u == v {
                    ExtWeight::ZERO
                } else {
                    match du[v] {
                        ExtWeight::Finite(x) => {
                            let hv = h[v].finite().expect("reachable");
                            ExtWeight::from(x - hu + hv)
                        }
                        other => other,
                    }
                };
            }
        }
    });
    Ok(dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::random_reweighted_digraph;
    use crate::matrix::distance_power;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn line_graph() -> DiGraph {
        let mut g = DiGraph::new(4);
        g.add_arc(0, 1, 1);
        g.add_arc(1, 2, 2);
        g.add_arc(2, 3, 3);
        g
    }

    #[test]
    fn floyd_warshall_on_a_line() {
        let d = floyd_warshall(&line_graph().adjacency_matrix()).unwrap();
        assert_eq!(d[(0, 3)], ExtWeight::from(6));
        assert_eq!(d[(3, 0)], ExtWeight::PosInf);
        assert_eq!(d[(2, 2)], ExtWeight::ZERO);
    }

    #[test]
    fn floyd_warshall_detects_negative_cycle() {
        let mut g = DiGraph::new(3);
        g.add_arc(0, 1, 1);
        g.add_arc(1, 0, -2);
        assert_eq!(
            floyd_warshall(&g.adjacency_matrix()),
            Err(NegativeCycleError)
        );
    }

    #[test]
    fn floyd_warshall_uses_negative_shortcuts() {
        let mut g = DiGraph::new(3);
        g.add_arc(0, 1, 10);
        g.add_arc(0, 2, 1);
        g.add_arc(2, 1, -5);
        let d = floyd_warshall(&g.adjacency_matrix()).unwrap();
        assert_eq!(d[(0, 1)], ExtWeight::from(-4));
    }

    #[test]
    fn bellman_ford_matches_floyd_warshall() {
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..5 {
            let g = random_reweighted_digraph(9, 0.5, 15, &mut rng);
            let fw = floyd_warshall(&g.adjacency_matrix()).unwrap();
            for src in 0..9 {
                let bf = bellman_ford(&g, src).unwrap();
                for v in 0..9 {
                    assert_eq!(bf[v], fw[(src, v)], "src {src} v {v}");
                }
            }
        }
    }

    #[test]
    fn bellman_ford_detects_reachable_negative_cycle() {
        let mut g = DiGraph::new(4);
        g.add_arc(0, 1, 1);
        g.add_arc(1, 2, -3);
        g.add_arc(2, 1, 1);
        assert_eq!(bellman_ford(&g, 0), Err(NegativeCycleError));
        // unreachable from 3: fine
        assert!(bellman_ford(&g, 3).is_ok());
    }

    #[test]
    fn johnson_matches_floyd_warshall() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..5 {
            let g = random_reweighted_digraph(10, 0.4, 12, &mut rng);
            let fw = floyd_warshall(&g.adjacency_matrix()).unwrap();
            let jo = johnson(&g).unwrap();
            assert_eq!(fw, jo);
        }
    }

    #[test]
    fn worker_count_does_not_change_oracle_output() {
        let mut rng = StdRng::seed_from_u64(13);
        // 40 vertices: above the spawn threshold, several bands per run
        let g = random_reweighted_digraph(40, 0.2, 9, &mut rng);
        let adj = g.adjacency_matrix();
        let fw1 = floyd_warshall_with_threads(&adj, 1).unwrap();
        let jo1 = johnson_with_threads(&g, 1).unwrap();
        assert_eq!(fw1, jo1);
        for threads in [2, 3, 8] {
            assert_eq!(
                floyd_warshall_with_threads(&adj, threads).unwrap(),
                fw1,
                "fw {threads}"
            );
            assert_eq!(
                johnson_with_threads(&g, threads).unwrap(),
                jo1,
                "johnson {threads}"
            );
        }
    }

    #[test]
    fn johnson_detects_negative_cycle() {
        let mut g = DiGraph::new(2);
        g.add_arc(0, 1, -1);
        g.add_arc(1, 0, -1);
        assert_eq!(johnson(&g), Err(NegativeCycleError));
    }

    #[test]
    fn dijkstra_on_nonnegative_weights() {
        let d = dijkstra(&line_graph(), 0);
        assert_eq!(d[3], ExtWeight::from(6));
        assert_eq!(d[0], ExtWeight::ZERO);
    }

    #[test]
    fn distance_power_matches_floyd_warshall() {
        let mut rng = StdRng::seed_from_u64(12);
        let g = random_reweighted_digraph(8, 0.5, 10, &mut rng);
        let adj = g.adjacency_matrix();
        let fw = floyd_warshall(&adj).unwrap();
        let pow = distance_power(&adj, 7);
        assert_eq!(fw, pow);
    }

    #[test]
    fn error_type_displays() {
        assert!(NegativeCycleError.to_string().contains("negative cycle"));
    }
}
