//! Property-based tests for the graph substrate.

use proptest::collection::vec;
use proptest::prelude::*;
use qcc_graph::{
    bellman_ford, distance_power, distance_product, distance_product_reference,
    distance_product_with_threads, floyd_warshall, johnson, DiGraph, ExtWeight, PaperPartitions,
    Partition, UGraph, WeightMatrix,
};

fn arb_weight() -> impl Strategy<Value = ExtWeight> {
    prop_oneof![
        4 => (-50i64..50).prop_map(ExtWeight::from),
        1 => Just(ExtWeight::PosInf),
    ]
}

/// The full extended-weight range: negative weights and both infinities.
fn arb_full_weight() -> impl Strategy<Value = ExtWeight> {
    prop_oneof![
        6 => (-50i64..50).prop_map(ExtWeight::from),
        1 => Just(ExtWeight::PosInf),
        1 => Just(ExtWeight::NegInf),
    ]
}

fn arb_matrix(n: usize) -> impl Strategy<Value = WeightMatrix> {
    vec(arb_weight(), n * n).prop_map(move |entries| {
        let mut it = entries.into_iter();
        WeightMatrix::from_fn(n, |_, _| it.next().expect("enough entries"))
    })
}

fn arb_full_matrix(n: usize) -> impl Strategy<Value = WeightMatrix> {
    vec(arb_full_weight(), n * n).prop_map(move |entries| {
        let mut it = entries.into_iter();
        WeightMatrix::from_fn(n, |_, _| it.next().expect("enough entries"))
    })
}

proptest! {
    /// min-plus addition is commutative and monotone, +inf absorbing.
    #[test]
    fn weight_algebra_laws(a in arb_weight(), b in arb_weight(), c in arb_weight()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a + ExtWeight::PosInf, ExtWeight::PosInf);
        prop_assert_eq!(a.min_with(b), b.min_with(a));
        // monotonicity of + in each argument (no -inf in arb_weight)
        if a <= b {
            prop_assert!(a + c <= b + c);
        }
    }

    /// The distance product is associative.
    #[test]
    fn distance_product_is_associative(
        a in arb_matrix(5),
        b in arb_matrix(5),
        c in arb_matrix(5),
    ) {
        let left = distance_product(&distance_product(&a, &b), &c);
        let right = distance_product(&a, &distance_product(&b, &c));
        prop_assert_eq!(left, right);
    }

    /// Repeated squaring agrees with iterated products.
    #[test]
    fn distance_power_matches_iteration(a in arb_matrix(4), p in 0u64..7) {
        let mut iter = WeightMatrix::distance_identity(4);
        for _ in 0..p {
            iter = distance_product(&iter, &a);
        }
        prop_assert_eq!(distance_power(&a, p), iter);
    }

    /// Floyd–Warshall equals Johnson equals Bellman–Ford on random
    /// negative-cycle-free digraphs.
    #[test]
    fn apsp_oracles_agree(seed in 0u64..500) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = qcc_graph::random_reweighted_digraph(8, 0.45, 12, &mut rng);
        let fw = floyd_warshall(&g.adjacency_matrix()).expect("no negative cycle");
        let jo = johnson(&g).expect("no negative cycle");
        prop_assert_eq!(&fw, &jo);
        for src in 0..8 {
            let bf = bellman_ford(&g, src).expect("no negative cycle");
            for v in 0..8 {
                prop_assert_eq!(bf[v], fw[(src, v)]);
            }
        }
    }

    /// gamma() agrees with brute-force triangle enumeration.
    #[test]
    fn gamma_matches_triangle_listing(seed in 0u64..300) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = qcc_graph::random_ugraph(9, 0.6, 4, &mut rng);
        let triangles = g.negative_triangles();
        for u in 0..9 {
            for v in (u + 1)..9 {
                let count = triangles
                    .iter()
                    .filter(|&&(a, b, c)| {
                        let set = [a, b, c];
                        set.contains(&u) && set.contains(&v)
                    })
                    .count();
                prop_assert_eq!(g.gamma(u, v), count, "pair ({}, {})", u, v);
            }
        }
    }

    /// Edge sampling keeps a subset of edges with original weights.
    #[test]
    fn sampling_yields_subgraph(seed in 0u64..100, p in 0.0f64..1.0) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = qcc_graph::random_ugraph(8, 0.7, 5, &mut rng);
        let s = g.sample_edges(p, &mut rng);
        for (u, v, w) in s.edges() {
            prop_assert_eq!(g.weight(u, v), ExtWeight::from(w));
        }
        prop_assert!(s.edge_count() <= g.edge_count());
    }

    /// Partitions cover every item exactly once with near-equal sizes.
    #[test]
    fn partition_is_balanced(n in 1usize..200, blocks in 1usize..20) {
        let blocks = blocks.min(n);
        let p = Partition::equal(n, blocks);
        let mut count = 0usize;
        let mut min_size = usize::MAX;
        let mut max_size = 0usize;
        for b in 0..p.num_blocks() {
            let size = p.block_size(b);
            min_size = min_size.min(size);
            max_size = max_size.max(size);
            count += size;
        }
        prop_assert_eq!(count, n);
        prop_assert!(max_size - min_size <= 1);
    }

    /// The paper partitions always cover the vertex set.
    #[test]
    fn paper_partitions_cover(n in 1usize..700) {
        let parts = PaperPartitions::new(n);
        prop_assert_eq!(parts.coarse.n_items(), n);
        prop_assert_eq!(parts.fine.n_items(), n);
        let q = parts.coarse.num_blocks();
        let s = parts.fine.num_blocks();
        // block counts are the rounded roots
        prop_assert!(q.pow(4) >= n);
        prop_assert!(s.pow(2) >= n);
    }
}

proptest! {
    /// The tiled, band-parallel kernel is bit-identical to the naive
    /// reference for every worker count, on matrices spanning negative
    /// weights and both infinities.
    #[test]
    fn tiled_product_is_bit_identical_to_reference(
        pair in (1usize..9).prop_flat_map(|n| (arb_full_matrix(n), arb_full_matrix(n)))
    ) {
        let (a, b) = pair;
        let reference = distance_product_reference(&a, &b);
        prop_assert_eq!(&distance_product(&a, &b), &reference);
        for threads in [1usize, 2, 3, 5] {
            prop_assert_eq!(&distance_product_with_threads(&a, &b, threads), &reference);
        }
    }
}

#[test]
fn negative_triangle_pairs_on_complete_negative_graph() {
    // all edges -1: every triple is a negative triangle
    let n = 7;
    let mut g = UGraph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u, v, -1);
        }
    }
    let pairs = g.negative_triangle_pairs();
    assert_eq!(pairs.len(), n * (n - 1) / 2);
    assert_eq!(g.gamma(0, 1), n - 2);
}

#[test]
fn digraph_apsp_on_disconnected_graph() {
    let g = DiGraph::new(5);
    let d = floyd_warshall(&g.adjacency_matrix()).unwrap();
    for i in 0..5 {
        for j in 0..5 {
            let expected = if i == j {
                ExtWeight::ZERO
            } else {
                ExtWeight::PosInf
            };
            assert_eq!(d[(i, j)], expected);
        }
    }
}
