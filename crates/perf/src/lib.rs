//! # qcc-perf — the workspace performance layer
//!
//! Std-only threading primitives shared by every crate in the workspace:
//! worker-count resolution (the `QCC_THREADS` environment variable, an
//! explicit per-call override, or the machine's available parallelism) and
//! two `std::thread::scope`-based fan-out helpers with deterministic,
//! contiguous work splitting.
//!
//! ## Determinism contract
//!
//! Every helper here partitions work into **contiguous index bands** and
//! reassembles results **in band order**, so the observable output of a
//! parallel run is bit-identical to the sequential run for any worker
//! count. Simulation semantics — charged round counts in particular — must
//! never depend on `QCC_THREADS`; parallelism only changes host wall-clock.
//!
//! ## Worker-count resolution
//!
//! [`resolve_threads`] picks, in order of precedence:
//!
//! 1. a positive per-call override (e.g. `Params::threads`),
//! 2. the `QCC_THREADS` environment variable (positive integer),
//! 3. [`std::thread::available_parallelism`].
//!
//! The result is clamped to `[1, MAX_THREADS]`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::ops::Range;
use std::thread;

/// Environment variable naming the default worker count.
pub const THREADS_ENV_VAR: &str = "QCC_THREADS";

/// Upper bound on the resolved worker count (a safety valve against
/// misconfigured environments; far above any sensible value for the
/// cache-blocked kernels in this workspace).
pub const MAX_THREADS: usize = 64;

/// Work below this many items is not worth a thread spawn; fan-out helpers
/// fall back to inline execution under it.
pub const MIN_ITEMS_PER_THREAD: usize = 16;

/// Resolves the worker count: `explicit` override, then `QCC_THREADS`,
/// then available parallelism; always in `1..=MAX_THREADS`.
///
/// # Examples
///
/// ```
/// assert_eq!(qcc_perf::resolve_threads(Some(4)), 4);
/// assert!(qcc_perf::resolve_threads(None) >= 1);
/// ```
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    explicit
        .filter(|&t| t > 0)
        .or_else(env_threads)
        .unwrap_or_else(|| {
            thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
        .clamp(1, MAX_THREADS)
}

/// The `QCC_THREADS` setting, if present and a positive integer.
pub fn env_threads() -> Option<usize> {
    std::env::var(THREADS_ENV_VAR)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&t| t > 0)
}

/// Splits `0..total` into at most `parts` contiguous near-equal ranges
/// (the first `total % parts` ranges are one longer). Empty ranges are
/// never produced; fewer than `parts` ranges come back when
/// `total < parts`.
///
/// # Examples
///
/// ```
/// let bands = qcc_perf::band_ranges(10, 3);
/// assert_eq!(bands, vec![0..4, 4..7, 7..10]);
/// assert_eq!(qcc_perf::band_ranges(2, 8).len(), 2);
/// ```
pub fn band_ranges(total: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.clamp(1, total.max(1));
    let base = total / parts;
    let extra = total % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for band in 0..parts {
        let len = base + usize::from(band < extra);
        if len == 0 {
            break;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Runs `f` on contiguous index bands of `0..total` across `threads`
/// scoped workers. `f` receives each band's range; it must only touch
/// state it can share immutably (use [`map_bands`] or split mutable slices
/// at the call site for writes).
///
/// Runs inline (no spawn) when `threads == 1` or the work is too small.
pub fn for_each_band<F>(total: usize, threads: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let bands = plan(total, threads);
    if bands.len() <= 1 {
        if total > 0 {
            f(0..total);
        }
        return;
    }
    thread::scope(|scope| {
        for band in bands {
            let f = &f;
            scope.spawn(move || f(band));
        }
    });
}

/// Maps `f` over contiguous bands of `0..total` in parallel and returns
/// the per-band results **in band order** — deterministic for any worker
/// count.
pub fn map_bands<T, F>(total: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let bands = plan(total, threads);
    if bands.len() <= 1 {
        return if total == 0 {
            Vec::new()
        } else {
            vec![f(0..total)]
        };
    }
    thread::scope(|scope| {
        let handles: Vec<_> = bands
            .into_iter()
            .map(|band| {
                let f = &f;
                scope.spawn(move || f(band))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("band worker panicked"))
            .collect()
    })
}

/// Maps `f` over every index of `0..total` in parallel, returning results
/// in index order. Convenience wrapper over [`map_bands`] for
/// embarrassingly parallel per-item work (e.g. one Dijkstra per source).
pub fn map_indexed<T, F>(total: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    map_bands(total, threads, |band| band.map(&f).collect::<Vec<T>>())
        .into_iter()
        .flatten()
        .collect()
}

/// Splits `data` — a row-major buffer of `rows` equal rows — into
/// contiguous row bands and runs `f` on each band concurrently. `f`
/// receives the band's row range and the mutable sub-slice holding exactly
/// those rows, so writes are race-free by construction (`split_at_mut`).
///
/// Runs inline when `threads == 1` or the row count is too small.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `rows` (for `rows > 0`).
pub fn for_each_row_band<T, F>(data: &mut [T], rows: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(Range<usize>, &mut [T]) + Sync,
{
    if rows == 0 {
        return;
    }
    assert_eq!(data.len() % rows, 0, "data must hold whole rows");
    let row_len = data.len() / rows;
    let bands = plan(rows, threads);
    if bands.len() <= 1 {
        f(0..rows, data);
        return;
    }
    thread::scope(|scope| {
        let mut rest = data;
        for band in bands {
            let (head, tail) = rest.split_at_mut(band.len() * row_len);
            rest = tail;
            let f = &f;
            scope.spawn(move || f(band, head));
        }
    });
}

fn plan(total: usize, threads: usize) -> Vec<Range<usize>> {
    if threads <= 1 || total < 2 * MIN_ITEMS_PER_THREAD {
        let mut single = Vec::new();
        if total > 0 {
            single.push(0..total);
        }
        return single;
    }
    let max_parts = (total / MIN_ITEMS_PER_THREAD).max(1);
    band_ranges(total, threads.min(max_parts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn explicit_override_wins() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(
            resolve_threads(Some(0)).max(1),
            resolve_threads(None).max(1)
        );
    }

    #[test]
    fn resolution_is_clamped() {
        assert!(resolve_threads(Some(10_000)) <= MAX_THREADS);
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn bands_cover_exactly_once() {
        for total in [0usize, 1, 5, 16, 97, 256] {
            for parts in [1usize, 2, 3, 7, 64] {
                let bands = band_ranges(total, parts);
                let mut covered = 0;
                let mut expected_start = 0;
                for b in &bands {
                    assert_eq!(b.start, expected_start);
                    assert!(!b.is_empty());
                    covered += b.len();
                    expected_start = b.end;
                }
                assert_eq!(covered, total, "total {total} parts {parts}");
            }
        }
    }

    #[test]
    fn map_bands_preserves_order() {
        let out = map_bands(100, 4, |band| band.collect::<Vec<_>>());
        let flat: Vec<usize> = out.into_iter().flatten().collect();
        assert_eq!(flat, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn map_indexed_matches_sequential() {
        let par = map_indexed(113, 5, |i| i * i);
        let seq: Vec<usize> = (0..113).map(|i| i * i).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn for_each_band_visits_everything() {
        let count = AtomicUsize::new(0);
        for_each_band(1000, 8, |band| {
            count.fetch_add(band.len(), Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn row_bands_write_disjointly() {
        let rows = 64;
        let cols = 3;
        let mut data = vec![0usize; rows * cols];
        for_each_row_band(&mut data, rows, 4, |band, slice| {
            for (bi, row) in band.enumerate() {
                for c in 0..cols {
                    slice[bi * cols + c] = row * 100 + c;
                }
            }
        });
        for row in 0..rows {
            for c in 0..cols {
                assert_eq!(data[row * cols + c], row * 100 + c);
            }
        }
    }

    #[test]
    fn tiny_work_runs_inline() {
        // under the spawn threshold a single band is used
        let out = map_bands(4, 8, |band| band.len());
        assert_eq!(out, vec![4]);
    }
}
