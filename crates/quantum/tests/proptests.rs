//! Property-based tests for the quantum search substrate.

use proptest::prelude::*;
use qcc_quantum::{
    classical_search, grover_search_amplified, is_typical, max_frequency, GroverAmplitudes,
    SearchOracle, TypicalityBounds,
};

struct MarkedOracle {
    marked: Vec<bool>,
}

impl SearchOracle for MarkedOracle {
    fn domain_size(&self) -> usize {
        self.marked.len()
    }
    fn truth(&self, item: usize) -> bool {
        self.marked[item]
    }
    fn evaluate_distributed(&mut self, item: usize) -> bool {
        self.marked[item]
    }
}

proptest! {
    /// Probabilities are always in [0, 1] and the optimum beats sampling.
    #[test]
    fn amplitude_probabilities_are_valid(
        domain in 1usize..2000,
        frac in 0.0f64..1.0,
        k in 0u64..100,
    ) {
        let solutions = ((domain as f64) * frac) as usize;
        let g = GroverAmplitudes::new(domain, solutions);
        let p = g.success_probability(k);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
        if solutions > 0 {
            let opt = g.optimal_iterations();
            // the optimal iteration count is at least as good as measuring
            // the initial state
            prop_assert!(g.success_probability(opt) + 1e-12 >= g.success_probability(0));
        }
    }

    /// Grover with amplification finds a marked item whenever one exists.
    #[test]
    fn amplified_search_is_reliable(seed in 0u64..200, domain in 2usize..128, target_raw in 0usize..128) {
        use rand::SeedableRng;
        let target = target_raw % domain;
        let mut marked = vec![false; domain];
        marked[target] = true;
        let mut oracle = MarkedOracle { marked };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let out = grover_search_amplified(&mut oracle, 30, &mut rng);
        prop_assert_eq!(out.found, Some(target));
    }

    /// Classical search agrees with Grover on presence/absence.
    #[test]
    fn classical_and_quantum_agree_on_existence(
        seed in 0u64..100,
        marked in proptest::collection::vec(any::<bool>(), 1..64),
    ) {
        use rand::SeedableRng;
        let any_marked = marked.iter().any(|&b| b);
        let mut oracle = MarkedOracle { marked: marked.clone() };
        let classical = classical_search(&mut oracle);
        let mut oracle2 = MarkedOracle { marked };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let quantum = grover_search_amplified(&mut oracle2, 40, &mut rng);
        prop_assert_eq!(classical.found.is_some(), any_marked);
        prop_assert_eq!(quantum.found.is_some(), any_marked);
    }

    /// Υ_β membership is monotone in β and matches the max frequency.
    #[test]
    fn typicality_is_monotone(
        tuple in proptest::collection::vec(0usize..8, 0..64),
        beta in 0.0f64..20.0,
    ) {
        let freq = max_frequency(&tuple, 8);
        prop_assert_eq!(is_typical(&tuple, 8, beta), freq as f64 <= beta);
        if is_typical(&tuple, 8, beta) {
            prop_assert!(is_typical(&tuple, 8, beta + 1.0));
        }
    }

    /// The Theorem 3 analytic bounds are finite, nonnegative, and the
    /// deviation bound is monotone in k.
    #[test]
    fn theorem3_bounds_behave(m in 1usize..100_000, x in 1usize..1000, k in 0u64..10_000) {
        let b = TypicalityBounds::new(m, x, 8.0 * m as f64 / x as f64 + 1.0);
        prop_assert!(b.projection_mass_bound() >= 0.0);
        prop_assert!(b.deviation_bound(k) >= 0.0);
        prop_assert!(b.deviation_bound(k) <= b.deviation_bound(k + 1));
        prop_assert!(b.success_lower_bound() <= 1.0);
    }
}
