//! Multiple parallel distributed quantum searches (Sections 4.1–4.2).
//!
//! A node runs `m` independent Grover searches over a common domain `X`,
//! all sharing one joint evaluation procedure `C̃m` that answers a whole
//! query tuple `(x₁, …, x_m)` at once — but is only guaranteed correct on
//! *β-typical* tuples (`Υ_β(m, X)`, see [`crate::typicality`]). Theorem 3
//! shows the truncation is harmless when `β` comfortably exceeds the
//! typical frequency `m/|X|` and all solution tuples are `β/2`-typical.
//!
//! The driver below implements the lockstep parallel search with
//! BBHT-style amplification (uniformly random iteration counts per
//! repetition, which succeed with constant probability for *any* solution
//! count), exact per-search amplitude tracking, and per-iteration execution
//! of the joint distributed evaluation on tuples sampled from the current
//! product superposition.

use crate::amplitude::GroverAmplitudes;
use rand::Rng;
use std::error::Error;
use std::fmt;

/// The truncated evaluator rejected a query tuple outside `Υ_β(m, X)`.
#[derive(Clone, Debug, PartialEq)]
pub struct AtypicalInputError {
    /// Largest observed per-element frequency in the rejected tuple.
    pub max_frequency: u64,
    /// The evaluator's frequency cap `β`.
    pub beta: f64,
}

impl fmt::Display for AtypicalInputError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "query tuple outside Υ_β: element frequency {} exceeds β = {}",
            self.max_frequency, self.beta
        )
    }
}

impl Error for AtypicalInputError {}

/// A bundle of `m` search problems over a common domain, evaluated jointly
/// by one distributed procedure.
pub trait MultiOracle {
    /// `|X|`, the common domain size.
    fn domain_size(&self) -> usize;

    /// `m`, the number of parallel searches.
    fn num_searches(&self) -> usize;

    /// Ground truth `g_ℓ(x)` (local, free, side-effect free; used for the
    /// amplitude census, which is fanned out over host worker threads).
    fn truth(&self, search: usize, item: usize) -> bool;

    /// Batched ground truth of search `search` over a contiguous item
    /// range, in item order.
    ///
    /// The census calls this once per search instead of once per item, so
    /// oracles whose predicate reduces to a bulk kernel can answer the
    /// whole range in one vectorized evaluation. The default falls back to
    /// per-item [`MultiOracle::truth`]; overrides must return exactly the
    /// same bits.
    fn truth_block(&self, search: usize, items: std::ops::Range<usize>) -> Vec<bool> {
        items.map(|item| self.truth(search, item)).collect()
    }

    /// Joint distributed evaluation `C̃m` of a query tuple
    /// (`tuple[ℓ] ∈ 0..domain_size()` is search `ℓ`'s query).
    ///
    /// Implementations must run the real message schedule, charge their
    /// network, and reject tuples outside `Υ_β(m, X)` with
    /// [`AtypicalInputError`] — exactly the truncated evaluator of
    /// Section 4.2.
    ///
    /// # Errors
    ///
    /// Returns [`AtypicalInputError`] if the tuple is not β-typical.
    fn evaluate(&mut self, tuple: &[usize]) -> Result<Vec<bool>, AtypicalInputError>;

    /// Unrestricted classical evaluation of the constant tuple
    /// `(x, x, …, x)` — used only by the classical baseline, which pays the
    /// congestion the quantum algorithm's load balancing avoids.
    fn evaluate_classical(&mut self, item: usize) -> Vec<bool>;
}

/// Result of a parallel multi-search run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MultiSearchOutcome {
    /// Per-search verified witness (`None` when the search has no solution
    /// or amplification failed).
    pub found: Vec<Option<usize>>,
    /// Total Grover iterations executed (shared across all searches).
    pub iterations: u64,
    /// Joint distributed evaluation calls.
    pub eval_calls: u64,
    /// Query tuples the truncated evaluator rejected.
    pub typicality_violations: u64,
    /// Repetitions executed.
    pub repetitions: u64,
}

impl MultiSearchOutcome {
    /// Number of searches that returned a witness.
    pub fn success_count(&self) -> usize {
        self.found.iter().filter(|f| f.is_some()).count()
    }
}

/// Repetition count sufficient for overall success probability
/// `≥ 1 − 2/m²` under the BBHT per-repetition success bound of 1/4.
///
/// # Examples
///
/// ```
/// use qcc_quantum::repetitions_for_target;
///
/// assert!(repetitions_for_target(2) >= 3);
/// assert!(repetitions_for_target(1_000) > repetitions_for_target(10));
/// ```
pub fn repetitions_for_target(m: usize) -> u64 {
    let m = m.max(2) as f64;
    // m · (3/4)^t ≤ 2/m²  ⟺  t ≥ ln(m³/2) / ln(4/3)
    ((m.powi(3) / 2.0).ln() / (4.0f64 / 3.0).ln())
        .ceil()
        .max(3.0) as u64
}

/// Runs `m` parallel Grover searches with BBHT amplification.
///
/// Per repetition, an iteration count `k` is drawn uniformly from
/// `0 ..= ⌈(π/4)√|X|⌉`; all searches advance `k` Grover iterations in
/// lockstep (each iteration executes one joint distributed evaluation on a
/// tuple sampled from the current product superposition), then every
/// still-unsatisfied search measures and the measured tuple is verified
/// with one more joint evaluation. For any solution count `≥ 1`, a
/// repetition verifies a witness with probability `≥ 1/4`, so
/// [`repetitions_for_target`] repetitions push the overall failure below
/// `2/m²` — the guarantee of Theorem 3.
///
/// # Panics
///
/// Panics if the oracle has no searches or an empty domain, or if a
/// distributed evaluation disagrees with ground truth on a typical tuple.
pub fn multi_grover_search<O: MultiOracle + Sync, R: Rng>(
    oracle: &mut O,
    max_repetitions: u64,
    rng: &mut R,
) -> MultiSearchOutcome {
    let x = oracle.domain_size();
    let m = oracle.num_searches();
    assert!(x > 0, "empty search domain");
    assert!(m > 0, "no searches to run");

    // Census: exact solution sets, used for exact amplitude evolution.
    // One search per work item, fanned out over host worker threads; the
    // per-search results come back in search order, so the census is
    // identical for any worker count.
    let census: Vec<(Vec<usize>, Vec<usize>)> = {
        let oracle: &O = oracle;
        qcc_perf::map_indexed(m, qcc_perf::resolve_threads(None), |s| {
            let mut sol = Vec::new();
            let mut non = Vec::new();
            // One bulk truth evaluation per search: oracles with a
            // vectorized predicate answer the whole domain at once.
            for (item, marked) in oracle.truth_block(s, 0..x).into_iter().enumerate() {
                if marked {
                    sol.push(item);
                } else {
                    non.push(item);
                }
            }
            (sol, non)
        })
    };
    let mut solutions: Vec<Vec<usize>> = Vec::with_capacity(m);
    let mut non_solutions: Vec<Vec<usize>> = Vec::with_capacity(m);
    let mut amps: Vec<GroverAmplitudes> = Vec::with_capacity(m);
    for (sol, non) in census {
        amps.push(GroverAmplitudes::new(x, sol.len()));
        solutions.push(sol);
        non_solutions.push(non);
    }

    let k_max = GroverAmplitudes::max_useful_iterations(x);
    let mut found: Vec<Option<usize>> = vec![None; m];
    let mut iterations = 0u64;
    let mut eval_calls = 0u64;
    let mut typicality_violations = 0u64;
    let mut repetitions = 0u64;

    for _ in 0..max_repetitions {
        repetitions += 1;
        let k = rng.gen_range(0..=k_max);
        for i in 0..k {
            let tuple: Vec<usize> = (0..m)
                .map(|s| {
                    sample_side(
                        &solutions[s],
                        &non_solutions[s],
                        amps[s].query_solution_probability(i),
                        rng,
                    )
                })
                .collect();
            eval_calls += 1;
            iterations += 1;
            match oracle.evaluate(&tuple) {
                Ok(answers) => {
                    for (s, &item) in tuple.iter().enumerate() {
                        debug_assert_eq!(
                            answers[s],
                            oracle.truth(s, item),
                            "joint evaluation disagrees with truth (search {s}, item {item})"
                        );
                    }
                }
                Err(_) => typicality_violations += 1,
            }
        }
        // Measure every search, then verify the measured tuple jointly.
        let measured: Vec<usize> = (0..m)
            .map(|s| match found[s] {
                Some(witness) => witness,
                None => sample_side(
                    &solutions[s],
                    &non_solutions[s],
                    amps[s].success_probability(k),
                    rng,
                ),
            })
            .collect();
        eval_calls += 1;
        match oracle.evaluate(&measured) {
            Ok(answers) => {
                for s in 0..m {
                    if found[s].is_none() && answers[s] {
                        found[s] = Some(measured[s]);
                    }
                }
            }
            Err(_) => typicality_violations += 1,
        }
        if found
            .iter()
            .zip(&solutions)
            .all(|(f, sol)| f.is_some() || sol.is_empty())
        {
            break;
        }
    }

    MultiSearchOutcome {
        found,
        iterations,
        eval_calls,
        typicality_violations,
        repetitions,
    }
}

/// Classical baseline: scans the whole domain, evaluating the constant
/// tuple `(x, …, x)` for every `x ∈ X` via the unrestricted evaluator.
///
/// This is the `O(√n)`-round Step 3 the paper contrasts against; the
/// constant tuples are maximally atypical, so it also demonstrates the
/// congestion the quantum algorithm's typicality machinery avoids.
pub fn classical_multi_search<O: MultiOracle>(oracle: &mut O) -> MultiSearchOutcome {
    let x = oracle.domain_size();
    let m = oracle.num_searches();
    let mut found: Vec<Option<usize>> = vec![None; m];
    let mut eval_calls = 0u64;
    for item in 0..x {
        let answers = oracle.evaluate_classical(item);
        eval_calls += 1;
        for s in 0..m {
            if found[s].is_none() && answers[s] {
                found[s] = Some(item);
            }
        }
    }
    MultiSearchOutcome {
        found,
        iterations: x as u64,
        eval_calls,
        typicality_violations: 0,
        repetitions: 1,
    }
}

fn sample_side<R: Rng>(
    solutions: &[usize],
    non_solutions: &[usize],
    p_solution: f64,
    rng: &mut R,
) -> usize {
    let take_solution = if solutions.is_empty() {
        false
    } else if non_solutions.is_empty() {
        true
    } else {
        rng.gen_bool(p_solution.clamp(0.0, 1.0))
    };
    let side = if take_solution {
        solutions
    } else {
        non_solutions
    };
    side[rng.gen_range(0..side.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typicality::{is_typical, max_frequency};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Toy joint oracle with a β-typicality gate and call counting.
    struct ToyMultiOracle {
        domain: usize,
        marked: Vec<Vec<bool>>, // [search][item]
        beta: f64,
        eval_calls: u64,
        classical_calls: u64,
    }

    impl ToyMultiOracle {
        fn new(domain: usize, marked_items: &[Vec<usize>], beta: f64) -> Self {
            let marked = marked_items
                .iter()
                .map(|items| {
                    let mut v = vec![false; domain];
                    for &i in items {
                        v[i] = true;
                    }
                    v
                })
                .collect();
            ToyMultiOracle {
                domain,
                marked,
                beta,
                eval_calls: 0,
                classical_calls: 0,
            }
        }
    }

    impl MultiOracle for ToyMultiOracle {
        fn domain_size(&self) -> usize {
            self.domain
        }
        fn num_searches(&self) -> usize {
            self.marked.len()
        }
        fn truth(&self, search: usize, item: usize) -> bool {
            self.marked[search][item]
        }
        fn evaluate(&mut self, tuple: &[usize]) -> Result<Vec<bool>, AtypicalInputError> {
            self.eval_calls += 1;
            let freq = max_frequency(tuple, self.domain);
            if !is_typical(tuple, self.domain, self.beta) {
                return Err(AtypicalInputError {
                    max_frequency: freq,
                    beta: self.beta,
                });
            }
            Ok(tuple
                .iter()
                .enumerate()
                .map(|(s, &i)| self.marked[s][i])
                .collect())
        }
        fn evaluate_classical(&mut self, item: usize) -> Vec<bool> {
            self.classical_calls += 1;
            self.marked.iter().map(|v| v[item]).collect()
        }
    }

    #[test]
    fn all_searches_find_their_witnesses() {
        let domain = 16;
        let m = 48;
        let marked: Vec<Vec<usize>> = (0..m).map(|s| vec![s % domain]).collect();
        let beta = 9.0 * m as f64 / domain as f64; // comfortably above m/|X|
        let mut oracle = ToyMultiOracle::new(domain, &marked, beta);
        let mut rng = StdRng::seed_from_u64(21);
        let out = multi_grover_search(&mut oracle, repetitions_for_target(m), &mut rng);
        for (s, f) in out.found.iter().enumerate() {
            assert_eq!(*f, Some(s % domain), "search {s}");
        }
        assert_eq!(
            out.typicality_violations, 0,
            "sampled tuples should be typical"
        );
    }

    #[test]
    fn searches_without_solutions_return_none() {
        let domain = 8;
        let marked = vec![vec![3], vec![], vec![5]];
        let mut oracle = ToyMultiOracle::new(domain, &marked, 1e9);
        let mut rng = StdRng::seed_from_u64(22);
        let out = multi_grover_search(&mut oracle, 20, &mut rng);
        assert_eq!(out.found[0], Some(3));
        assert_eq!(out.found[1], None);
        assert_eq!(out.found[2], Some(5));
    }

    #[test]
    fn shared_iterations_do_not_scale_with_m() {
        // Iterations depend on |X|, not on m: doubling m leaves the
        // iteration budget unchanged.
        let domain = 64;
        let mut totals = Vec::new();
        for &m in &[8usize, 16] {
            let marked: Vec<Vec<usize>> = (0..m).map(|s| vec![(3 * s) % domain]).collect();
            let mut oracle = ToyMultiOracle::new(domain, &marked, 1e9);
            let mut rng = StdRng::seed_from_u64(23);
            // One repetition: k is drawn before any tuple sampling, so the
            // iteration count is a function of |X| and the seed only.
            let out = multi_grover_search(&mut oracle, 1, &mut rng);
            totals.push(out.iterations);
        }
        assert_eq!(totals[0], totals[1]);
    }

    #[test]
    fn classical_baseline_scans_whole_domain() {
        let domain = 32;
        let marked = vec![vec![31], vec![0]];
        let mut oracle = ToyMultiOracle::new(domain, &marked, 1e9);
        let out = classical_multi_search(&mut oracle);
        assert_eq!(out.found, vec![Some(31), Some(0)]);
        assert_eq!(out.eval_calls, 32);
        assert_eq!(oracle.classical_calls, 32);
    }

    #[test]
    fn tight_beta_rejects_constant_tuples() {
        let domain = 4;
        let m = 64;
        let marked: Vec<Vec<usize>> = (0..m).map(|_| vec![0]).collect();
        let beta = 2.0; // far below m/|X| = 16: everything is atypical
        let mut oracle = ToyMultiOracle::new(domain, &marked, beta);
        let mut rng = StdRng::seed_from_u64(24);
        let out = multi_grover_search(&mut oracle, 3, &mut rng);
        assert!(out.typicality_violations > 0);
    }

    #[test]
    fn repetition_targets_grow_logarithmically() {
        let r10 = repetitions_for_target(10);
        let r100 = repetitions_for_target(100);
        let r10000 = repetitions_for_target(10_000);
        assert!(r10 < r100 && r100 < r10000);
        assert!(r10000 < 150, "repetitions stay polylogarithmic: {r10000}");
    }

    #[test]
    fn success_rate_meets_theorem3_target() {
        // Empirical check of the 1 − 2/m² guarantee on a small instance.
        let domain = 8;
        let m = 12;
        let marked: Vec<Vec<usize>> = (0..m).map(|s| vec![(5 * s + 1) % domain]).collect();
        let beta = 9.0 * m as f64 / domain as f64;
        let reps = repetitions_for_target(m);
        let mut rng = StdRng::seed_from_u64(25);
        let trials = 60;
        let mut full_success = 0;
        for _ in 0..trials {
            let mut oracle = ToyMultiOracle::new(domain, &marked, beta);
            let out = multi_grover_search(&mut oracle, reps, &mut rng);
            if out.success_count() == m {
                full_success += 1;
            }
        }
        // target 1 - 2/144 ≈ 0.986; allow sampling slack
        assert!(full_success >= trials - 3, "{full_success}/{trials}");
    }

    #[test]
    fn atypical_error_displays_frequencies() {
        let e = AtypicalInputError {
            max_frequency: 9,
            beta: 4.0,
        };
        let s = e.to_string();
        assert!(s.contains('9') && s.contains('4'));
    }
}
