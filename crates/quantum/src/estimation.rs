//! Quantum amplitude estimation and quantum counting (exact simulation).
//!
//! An extension of the paper's toolbox: Brassard–Høyer–Mosca–Tapp
//! amplitude estimation applies phase estimation to the Grover iterate and
//! measures an `m`-bit register whose outcome `y` encodes the rotation
//! angle: `θ̃ = π·y/M` with `M = 2^m`, using `M − 1` oracle applications.
//! Counting the solutions of a search problem to within
//! `O(√(t(X−t))/M + X/M²)` follows immediately — a quadratic speedup over
//! classical sampling.
//!
//! Because the eigenphases of the Grover iterate are `±2θ` exactly, the
//! outcome distribution of the phase-estimation register is known in
//! closed form (the Fejér kernel), so the simulation below is *exact*:
//! it computes the true outcome distribution and samples from it.

use rand::Rng;

/// Exact simulation of canonical amplitude estimation.
///
/// # Examples
///
/// ```
/// use qcc_quantum::AmplitudeEstimator;
/// use rand::SeedableRng;
///
/// // 12 solutions among 64 items, 7-bit register
/// let est = AmplitudeEstimator::new(64, 12);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let out = est.estimate(7, &mut rng);
/// let err = (out.amplitude_estimate - 12.0 / 64.0).abs();
/// assert!(err < est.error_bound(7) + 1e-9);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AmplitudeEstimator {
    domain_size: usize,
    solution_count: usize,
}

/// One amplitude-estimation measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EstimateOutcome {
    /// The measured register value `y ∈ 0..2^m`.
    pub register: usize,
    /// The amplitude estimate `ã = sin²(π y / M)`.
    pub amplitude_estimate: f64,
    /// Estimated solution count `ã · |X|`.
    pub count_estimate: f64,
    /// Grover-iterate applications consumed (`M − 1`).
    pub oracle_queries: u64,
}

impl AmplitudeEstimator {
    /// Creates an estimator for `solution_count` solutions among
    /// `domain_size` items.
    ///
    /// # Panics
    ///
    /// Panics if `domain_size == 0` or `solution_count > domain_size`.
    pub fn new(domain_size: usize, solution_count: usize) -> Self {
        assert!(domain_size > 0);
        assert!(solution_count <= domain_size);
        AmplitudeEstimator {
            domain_size,
            solution_count,
        }
    }

    /// The true amplitude `a = |A¹|/|X|`.
    pub fn true_amplitude(&self) -> f64 {
        self.solution_count as f64 / self.domain_size as f64
    }

    /// The exact outcome distribution of the `m`-bit register.
    ///
    /// Entry `y` is the probability of measuring `y`. The distribution is
    /// the average of two Fejér kernels centred at `±ω M` where
    /// `ω = θ/π` (they coincide for `a ∈ {0, 1}`).
    pub fn outcome_distribution(&self, m_bits: u32) -> Vec<f64> {
        let m = 1usize << m_bits;
        let theta = self.true_amplitude().sqrt().asin();
        let omega = theta / std::f64::consts::PI; // in [0, 1/2]
        let fejer = |x: f64| -> f64 {
            // sin²(Mπx) / (M² sin²(πx)), continuous at integers
            let frac = x - x.round();
            if frac.abs() < 1e-15 {
                return 1.0;
            }
            let num = (m as f64 * std::f64::consts::PI * x).sin().powi(2);
            let den = (m as f64).powi(2) * (std::f64::consts::PI * x).sin().powi(2);
            num / den
        };
        let mut dist: Vec<f64> = (0..m)
            .map(|y| {
                let yy = y as f64 / m as f64;
                0.5 * (fejer(yy - omega) + fejer(yy + omega))
            })
            .collect();
        let total: f64 = dist.iter().sum();
        debug_assert!((total - 1.0).abs() < 1e-6, "distribution sums to {total}");
        for p in &mut dist {
            *p /= total;
        }
        dist
    }

    /// Samples one amplitude-estimation measurement with an `m`-bit
    /// register (`2^m − 1` oracle queries).
    pub fn estimate<R: Rng>(&self, m_bits: u32, rng: &mut R) -> EstimateOutcome {
        let dist = self.outcome_distribution(m_bits);
        let mut u: f64 = rng.gen();
        let mut register = dist.len() - 1;
        for (y, &p) in dist.iter().enumerate() {
            if u < p {
                register = y;
                break;
            }
            u -= p;
        }
        let m = dist.len() as f64;
        let angle = std::f64::consts::PI * register as f64 / m;
        let amplitude_estimate = angle.sin().powi(2);
        EstimateOutcome {
            register,
            amplitude_estimate,
            count_estimate: amplitude_estimate * self.domain_size as f64,
            oracle_queries: (dist.len() - 1) as u64,
        }
    }

    /// The canonical error bound: with probability `≥ 8/π²`,
    /// `|ã − a| ≤ 2π√(a(1−a))/M + π²/M²`.
    pub fn error_bound(&self, m_bits: u32) -> f64 {
        let m = (1u64 << m_bits) as f64;
        let a = self.true_amplitude();
        2.0 * std::f64::consts::PI * (a * (1.0 - a)).sqrt() / m
            + std::f64::consts::PI.powi(2) / (m * m)
    }

    /// Register size sufficient for *exact* counting with constant
    /// probability: the count error `X·error_bound < 1/2`.
    pub fn bits_for_exact_count(&self) -> u32 {
        let x = self.domain_size as f64;
        let a = self.true_amplitude();
        // X·(2π√(a(1−a))/M) < 1/2 ⟸ M > 4π√(t(X−t)); add slack bits
        let target = 4.0 * std::f64::consts::PI * (a * (1.0 - a)).sqrt() * x + 2.0;
        (target.log2().ceil() as u32 + 1).max(1)
    }
}

/// Quantum counting: estimates the number of solutions, rounding the
/// amplitude estimate, and repeats `repetitions` times taking the median
/// register (majority amplification of the `8/π²` guarantee).
///
/// Returns `(count estimate, total oracle queries)`.
///
/// # Examples
///
/// ```
/// use qcc_quantum::quantum_count;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let (count, _queries) = quantum_count(256, 17, 9, 5, &mut rng);
/// assert!((count as i64 - 17).abs() <= 1);
/// ```
pub fn quantum_count<R: Rng>(
    domain_size: usize,
    solution_count: usize,
    m_bits: u32,
    repetitions: u32,
    rng: &mut R,
) -> (u64, u64) {
    assert!(repetitions > 0);
    let est = AmplitudeEstimator::new(domain_size, solution_count);
    let mut estimates = Vec::with_capacity(repetitions as usize);
    let mut queries = 0;
    for _ in 0..repetitions {
        let out = est.estimate(m_bits, rng);
        estimates.push(out.count_estimate);
        queries += out.oracle_queries;
    }
    estimates.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let median = estimates[estimates.len() / 2];
    (median.round().max(0.0) as u64, queries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn distribution_is_normalized_and_concentrated() {
        for &(x, t) in &[(64usize, 1usize), (64, 12), (100, 50), (16, 0), (16, 16)] {
            let est = AmplitudeEstimator::new(x, t);
            let dist = est.outcome_distribution(8);
            let total: f64 = dist.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "({x},{t}) sums to {total}");
            // mass within the canonical error bound around the true angle
            let theta = est.true_amplitude().sqrt().asin();
            let m = dist.len() as f64;
            let mass: f64 = dist
                .iter()
                .enumerate()
                .filter(|(y, _)| {
                    let angle = std::f64::consts::PI * *y as f64 / m;
                    let est_a = angle.sin().powi(2);
                    (est_a - theta.sin().powi(2)).abs() <= est.error_bound(8) + 1e-12
                })
                .map(|(_, p)| p)
                .sum();
            assert!(
                mass >= 8.0 / std::f64::consts::PI.powi(2) - 1e-9,
                "({x},{t}): {mass}"
            );
        }
    }

    #[test]
    fn zero_and_full_amplitudes_are_exact() {
        let mut rng = StdRng::seed_from_u64(61);
        let est0 = AmplitudeEstimator::new(32, 0);
        assert_eq!(est0.estimate(6, &mut rng).register, 0);
        let est1 = AmplitudeEstimator::new(32, 32);
        let out = est1.estimate(6, &mut rng);
        assert!((out.amplitude_estimate - 1.0).abs() < 1e-9);
    }

    #[test]
    fn estimates_concentrate_within_the_bound() {
        let mut rng = StdRng::seed_from_u64(62);
        let est = AmplitudeEstimator::new(128, 24);
        let bound = est.error_bound(8);
        let trials = 500;
        let within = (0..trials)
            .filter(|_| {
                let out = est.estimate(8, &mut rng);
                (out.amplitude_estimate - est.true_amplitude()).abs() <= bound
            })
            .count();
        // canonical guarantee is 8/π² ≈ 0.81
        assert!(within as f64 / trials as f64 > 0.75, "{within}/{trials}");
    }

    #[test]
    fn quantum_count_is_near_exact_with_enough_bits() {
        let mut rng = StdRng::seed_from_u64(63);
        for &(x, t) in &[(64usize, 7usize), (256, 17), (256, 100)] {
            let est = AmplitudeEstimator::new(x, t);
            let bits = est.bits_for_exact_count();
            let (count, queries) = quantum_count(x, t, bits, 7, &mut rng);
            assert!(
                (count as i64 - t as i64).abs() <= 1,
                "({x},{t}): counted {count} with {bits} bits"
            );
            assert!(queries > 0);
        }
    }

    #[test]
    fn query_cost_is_m_minus_one_per_repetition() {
        let mut rng = StdRng::seed_from_u64(64);
        let est = AmplitudeEstimator::new(32, 4);
        let out = est.estimate(5, &mut rng);
        assert_eq!(out.oracle_queries, 31);
    }

    #[test]
    fn error_bound_shrinks_with_register_size() {
        let est = AmplitudeEstimator::new(1000, 300);
        assert!(est.error_bound(10) < est.error_bound(6));
        assert!(est.error_bound(14) < 0.002);
    }
}
