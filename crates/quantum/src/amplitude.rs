//! Exact amplitude evolution of Grover's algorithm.
//!
//! Grover's search over a domain `X` with solution set `A¹` stays, for its
//! entire run, inside the two-dimensional subspace spanned by the uniform
//! superpositions `|ψ⁰⟩` (non-solutions) and `|ψ¹⟩` (solutions) — see
//! Section 4.1 of the paper. Each iteration is a rotation by `2θ` where
//! `sin θ = √(|A¹| / |X|)`. The state after `k` iterations is therefore
//! known *exactly*:
//!
//! ```text
//! |Φ_k⟩ = cos((2k+1)θ)·|ψ⁰⟩ + sin((2k+1)θ)·|ψ¹⟩
//! ```
//!
//! This module tracks that rotation with ordinary floating point — no
//! state-vector simulation is needed, which is what makes the reproduction
//! exact rather than approximate.

use rand::Rng;

/// The exact quantum state of one Grover search, identified by its rotation
/// angle.
///
/// # Examples
///
/// ```
/// use qcc_quantum::GroverAmplitudes;
///
/// // 1 solution among 64 items
/// let g = GroverAmplitudes::new(64, 1);
/// let k = g.optimal_iterations();
/// assert!(g.success_probability(k) > 0.99);
/// assert!(g.success_probability(0) < 0.05);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GroverAmplitudes {
    domain_size: usize,
    solution_count: usize,
    theta: f64,
}

impl GroverAmplitudes {
    /// Creates the amplitude tracker for `solution_count` solutions in a
    /// domain of `domain_size` items.
    ///
    /// # Panics
    ///
    /// Panics if `domain_size == 0` or `solution_count > domain_size`.
    pub fn new(domain_size: usize, solution_count: usize) -> Self {
        assert!(domain_size > 0, "empty search domain");
        assert!(solution_count <= domain_size);
        let theta = ((solution_count as f64) / (domain_size as f64))
            .sqrt()
            .asin();
        GroverAmplitudes {
            domain_size,
            solution_count,
            theta,
        }
    }

    /// `|X|`, the size of the search domain.
    pub fn domain_size(&self) -> usize {
        self.domain_size
    }

    /// `|A¹|`, the number of solutions.
    pub fn solution_count(&self) -> usize {
        self.solution_count
    }

    /// The rotation half-angle `θ` with `sin θ = √(|A¹|/|X|)`.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Probability that measuring after `k` iterations yields a solution:
    /// `sin²((2k+1)θ)`.
    pub fn success_probability(&self, k: u64) -> f64 {
        if self.solution_count == 0 {
            return 0.0;
        }
        let angle = (2.0 * k as f64 + 1.0) * self.theta;
        angle.sin().powi(2)
    }

    /// The iteration count maximizing the success probability:
    /// `⌊π / (4θ)⌋` (0 when there are no solutions, or when solutions are
    /// so plentiful that the initial state already measures well).
    pub fn optimal_iterations(&self) -> u64 {
        if self.solution_count == 0 || self.theta >= std::f64::consts::FRAC_PI_4 {
            return 0;
        }
        (std::f64::consts::FRAC_PI_4 / self.theta).floor() as u64
    }

    /// Upper bound on the iterations any search over this domain needs:
    /// `⌈(π/4)·√|X|⌉` (the single-solution worst case).
    pub fn max_useful_iterations(domain_size: usize) -> u64 {
        (std::f64::consts::FRAC_PI_4 * (domain_size as f64).sqrt()).ceil() as u64
    }

    /// Samples a measurement outcome after `k` iterations: `true` means
    /// "a solution was observed".
    pub fn measure<R: Rng>(&self, k: u64, rng: &mut R) -> bool {
        rng.gen_bool(self.success_probability(k).clamp(0.0, 1.0))
    }

    /// Probability that a *query* sampled from the state after `k`
    /// iterations addresses a solution item. Identical to
    /// [`Self::success_probability`]; exposed separately because queries
    /// are sampled *during* the run while measurement happens at the end.
    pub fn query_solution_probability(&self, k: u64) -> f64 {
        self.success_probability(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_domain_is_rejected() {
        GroverAmplitudes::new(0, 0);
    }

    #[test]
    fn no_solution_never_succeeds() {
        let g = GroverAmplitudes::new(100, 0);
        assert_eq!(g.success_probability(0), 0.0);
        assert_eq!(g.success_probability(57), 0.0);
        assert_eq!(g.optimal_iterations(), 0);
    }

    #[test]
    fn all_solutions_always_succeed() {
        let g = GroverAmplitudes::new(8, 8);
        assert!((g.success_probability(0) - 1.0).abs() < 1e-12);
        assert_eq!(g.optimal_iterations(), 0);
    }

    #[test]
    fn single_solution_quadratic_speedup() {
        for &n in &[16usize, 64, 256, 1024] {
            let g = GroverAmplitudes::new(n, 1);
            let k = g.optimal_iterations();
            // k ≈ (π/4)√n
            let expected = std::f64::consts::FRAC_PI_4 * (n as f64).sqrt();
            assert!((k as f64 - expected).abs() <= 1.0, "n = {n}: k = {k}");
            assert!(g.success_probability(k) > 1.0 - 1.0 / n as f64);
        }
    }

    #[test]
    fn initial_probability_matches_uniform_sampling() {
        let g = GroverAmplitudes::new(50, 5);
        assert!((g.success_probability(0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn probability_oscillates_past_the_optimum() {
        let g = GroverAmplitudes::new(64, 1);
        let k = g.optimal_iterations();
        // overshooting by ~k rotates past the solution state
        assert!(g.success_probability(2 * k + 1) < g.success_probability(k));
    }

    #[test]
    fn majority_solutions_measure_immediately() {
        let g = GroverAmplitudes::new(10, 8);
        assert_eq!(g.optimal_iterations(), 0);
        assert!(g.success_probability(0) >= 0.8 - 1e-12);
    }

    #[test]
    fn measurement_frequency_tracks_probability() {
        let g = GroverAmplitudes::new(32, 2);
        let k = g.optimal_iterations();
        let p = g.success_probability(k);
        let mut rng = StdRng::seed_from_u64(99);
        let trials = 20_000;
        let hits = (0..trials).filter(|_| g.measure(k, &mut rng)).count();
        let freq = hits as f64 / trials as f64;
        assert!((freq - p).abs() < 0.02, "freq {freq} vs p {p}");
    }

    #[test]
    fn max_useful_iterations_covers_optimum() {
        for &n in &[4usize, 100, 900] {
            let g = GroverAmplitudes::new(n, 1);
            assert!(g.optimal_iterations() <= GroverAmplitudes::max_useful_iterations(n));
        }
    }
}
