//! Dürr–Høyer quantum minimum finding (exact simulation).
//!
//! The Le Gall–Magniez framework the paper builds on (Section 4.1) was
//! introduced for the *diameter*, i.e. a maximum over node-held values.
//! The underlying primitive is Dürr–Høyer: repeatedly Grover-search for an
//! item below the current threshold; the expected total query cost is
//! `O(√|X|)`. This module simulates it exactly (per-stage Grover
//! amplitudes are exact; the threshold walk is the real randomized walk)
//! and is used by the distance-parameter suite (`qcc diameter` / `radius`
//! / `ecc`) and the extremum experiments.
//!
//! ## Las-Vegas contract
//!
//! [`quantum_minimum`] and [`quantum_maximum`] are *Las Vegas*: the answer
//! is always a true extremum; only the running time is random. A BBHT
//! stage (random iteration count, then measure) succeeds with constant
//! probability, so the per-stage attempt loop is unbounded — it terminates
//! with probability 1 and in expectation after `O(1)` attempts.
//!
//! Callers that need a *bounded* per-stage budget — e.g. the distributed
//! driver, which would rather retry a whole search with fresh randomness
//! than spin on one unlucky stage — use [`quantum_minimum_bounded`] /
//! [`quantum_maximum_bounded`]. When a stage exhausts its budget while
//! strictly better items are known to exist, those return a typed
//! [`StageExhausted`] instead of an answer: the search **never** silently
//! reports a non-extremum. (An earlier revision returned the stale
//! threshold after 64 failed attempts as if it were the minimum; the
//! seeded statistics suite in `tests/quantum_statistics.rs` now pins the
//! fixed behavior.)

use crate::amplitude::GroverAmplitudes;
use rand::Rng;
use std::cmp::Reverse;
use std::fmt;

/// Default per-stage BBHT attempt budget of the bounded searches.
///
/// Each attempt succeeds with constant probability (≳ 0.39 for a random
/// iteration count), so 64 attempts fail together with probability
/// ≈ `2⁻⁶⁴` per stage — astronomically rare, but *representable*, which is
/// why the bounded API surfaces it as [`StageExhausted`] rather than
/// guessing.
pub const DEFAULT_STAGE_ATTEMPTS: u32 = 64;

/// Result of a quantum extremum search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExtremumOutcome {
    /// Index of the found extremum.
    pub index: usize,
    /// Total Grover iterations across all threshold stages. Only nonzero
    /// iteration counts charge: a `k = 0` draw measures the uniform
    /// superposition directly.
    pub iterations: u64,
    /// Number of threshold improvements (stages). Thresholds only ever
    /// move to *strictly* better items, so equal-valued duplicates never
    /// consume a stage.
    pub stages: u32,
    /// BBHT measurement attempts across all stages. Every attempt counts,
    /// including `k = 0` draws that charged no iterations.
    pub attempts: u64,
}

/// A bounded search's per-stage attempt budget ran out while strictly
/// better items were known to exist.
///
/// Carries the best threshold reached so the caller can account for the
/// work, but deliberately *not* as an `ExtremumOutcome`: the carried index
/// is known to be non-extremal and must not be mistaken for an answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageExhausted {
    /// The threshold index the walk had reached (not an extremum).
    pub best_index: usize,
    /// Grover iterations charged before giving up.
    pub iterations: u64,
    /// Completed threshold improvements.
    pub stages: u32,
    /// BBHT attempts consumed, the exhausted stage's included.
    pub attempts: u64,
}

impl fmt::Display for StageExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "extremum search stage exhausted its attempt budget after {} attempts \
             ({} iterations, {} completed stages); best threshold so far is index {} \
             but strictly better items exist",
            self.attempts, self.iterations, self.stages, self.best_index
        )
    }
}

impl std::error::Error for StageExhausted {}

/// The Dürr–Høyer threshold walk, generic over an `Ord` key so that
/// maximization wraps keys in [`Reverse`] instead of negating (which would
/// overflow on `i64::MIN`). `stage_attempts = None` retries each stage
/// until it succeeds (Las Vegas); `Some(b)` returns [`StageExhausted`]
/// when a stage fails `b` consecutive attempts.
fn duerr_hoyer<K, F, R>(
    domain_size: usize,
    key: F,
    stage_attempts: Option<u32>,
    rng: &mut R,
) -> Result<ExtremumOutcome, StageExhausted>
where
    K: Ord,
    F: Fn(usize) -> K,
    R: Rng,
{
    assert!(domain_size > 0, "empty domain");
    let mut threshold_idx = rng.gen_range(0..domain_size);
    let mut iterations = 0u64;
    let mut stages = 0u32;
    let mut attempts = 0u64;
    loop {
        let t = key(threshold_idx);
        // Strict improvement census: ties with the threshold are not
        // solutions, so the walk can only move to strictly better items
        // and the returned index is always *a* minimizer (any one of the
        // duplicates achieving the minimum is acceptable).
        let below: Vec<usize> = (0..domain_size).filter(|&i| key(i) < t).collect();
        if below.is_empty() {
            return Ok(ExtremumOutcome {
                index: threshold_idx,
                iterations,
                stages,
                attempts,
            });
        }
        // BBHT stages: random iteration count, then measure; the amplitude
        // math is exact, the measurement genuinely sampled. Expected O(1)
        // attempts per stage.
        let amp = GroverAmplitudes::new(domain_size, below.len());
        let k_max = GroverAmplitudes::max_useful_iterations(domain_size);
        let mut stage_attempt = 0u32;
        loop {
            let k = rng.gen_range(0..=k_max);
            iterations += k;
            attempts += 1;
            stage_attempt += 1;
            if rng.gen_bool(amp.success_probability(k).clamp(0.0, 1.0)) {
                threshold_idx = below[rng.gen_range(0..below.len())];
                stages += 1;
                break;
            }
            if stage_attempts.is_some_and(|budget| stage_attempt >= budget) {
                // Strictly better items exist but the budget is spent:
                // surface the failure instead of returning the stale
                // threshold as if it were the extremum.
                return Err(StageExhausted {
                    best_index: threshold_idx,
                    iterations,
                    stages,
                    attempts,
                });
            }
        }
    }
}

/// Finds an index minimizing `value`, with `O(√|X|)` expected iterations
/// (Dürr–Høyer). Las Vegas: the result is always a true minimizer.
///
/// # Panics
///
/// Panics if `domain_size == 0`.
///
/// # Examples
///
/// ```
/// use qcc_quantum::quantum_minimum;
/// use rand::SeedableRng;
///
/// let values = [5i64, 3, 9, -2, 7];
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let out = quantum_minimum(values.len(), |i| values[i], &mut rng);
/// assert_eq!(out.index, 3);
/// ```
pub fn quantum_minimum<K, F, R>(domain_size: usize, value: F, rng: &mut R) -> ExtremumOutcome
where
    K: Ord,
    F: Fn(usize) -> K,
    R: Rng,
{
    match duerr_hoyer(domain_size, value, None, rng) {
        Ok(out) => out,
        Err(_) => unreachable!("unbounded stages retry until success"),
    }
}

/// [`quantum_minimum`] with a per-stage attempt budget.
///
/// # Errors
///
/// Returns [`StageExhausted`] when a stage fails `stage_attempts`
/// consecutive BBHT attempts while strictly better items exist. An `Ok`
/// outcome is always a true minimizer.
///
/// # Panics
///
/// Panics if `domain_size == 0` or `stage_attempts == 0`.
pub fn quantum_minimum_bounded<K, F, R>(
    domain_size: usize,
    value: F,
    stage_attempts: u32,
    rng: &mut R,
) -> Result<ExtremumOutcome, StageExhausted>
where
    K: Ord,
    F: Fn(usize) -> K,
    R: Rng,
{
    assert!(stage_attempts > 0, "zero attempt budget");
    duerr_hoyer(domain_size, value, Some(stage_attempts), rng)
}

/// Finds an index maximizing `value` (minimum under the reversed order;
/// no negation, so `i64::MIN` values are safe). Las Vegas.
///
/// # Examples
///
/// ```
/// use qcc_quantum::quantum_maximum;
/// use rand::SeedableRng;
///
/// let values = [5i64, 3, 9, -2, 7];
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let out = quantum_maximum(values.len(), |i| values[i], &mut rng);
/// assert_eq!(out.index, 2);
/// ```
pub fn quantum_maximum<K, F, R>(domain_size: usize, value: F, rng: &mut R) -> ExtremumOutcome
where
    K: Ord,
    F: Fn(usize) -> K,
    R: Rng,
{
    quantum_minimum(domain_size, |i| Reverse(value(i)), rng)
}

/// [`quantum_maximum`] with a per-stage attempt budget.
///
/// # Errors
///
/// Returns [`StageExhausted`] when a stage exhausts its budget; see
/// [`quantum_minimum_bounded`].
///
/// # Panics
///
/// Panics if `domain_size == 0` or `stage_attempts == 0`.
pub fn quantum_maximum_bounded<K, F, R>(
    domain_size: usize,
    value: F,
    stage_attempts: u32,
    rng: &mut R,
) -> Result<ExtremumOutcome, StageExhausted>
where
    K: Ord,
    F: Fn(usize) -> K,
    R: Rng,
{
    quantum_minimum_bounded(domain_size, |i| Reverse(value(i)), stage_attempts, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn finds_the_minimum_on_random_arrays() {
        let mut rng = StdRng::seed_from_u64(71);
        for trial in 0..50 {
            let n = 1 + (trial % 64);
            let values: Vec<i64> = (0..n).map(|_| rng.gen_range(-100..100)).collect();
            let min = *values.iter().min().unwrap();
            let out = quantum_minimum(n, |i| values[i], &mut rng);
            assert_eq!(values[out.index], min, "trial {trial}");
        }
    }

    #[test]
    fn maximum_mirrors_minimum() {
        let mut rng = StdRng::seed_from_u64(72);
        let values: Vec<i64> = (0..40).map(|_| rng.gen_range(-50..50)).collect();
        let out = quantum_maximum(values.len(), |i| values[i], &mut rng);
        assert_eq!(values[out.index], *values.iter().max().unwrap());
    }

    #[test]
    fn maximum_handles_extreme_values_without_overflow() {
        // The old negation-based maximum would overflow on i64::MIN.
        let mut rng = StdRng::seed_from_u64(78);
        let values = [i64::MIN, -7, i64::MAX, 0, i64::MIN];
        let out = quantum_maximum(values.len(), |i| values[i], &mut rng);
        assert_eq!(out.index, 2);
        let out = quantum_minimum(values.len(), |i| values[i], &mut rng);
        assert!(out.index == 0 || out.index == 4);
    }

    #[test]
    fn singleton_domain_is_trivial() {
        let mut rng = StdRng::seed_from_u64(73);
        let out = quantum_minimum(1, |_| 42, &mut rng);
        assert_eq!(out.index, 0);
        assert_eq!(out.stages, 0);
        // The single census is conclusive: no attempts, no iterations.
        assert_eq!((out.attempts, out.iterations), (0, 0));
    }

    #[test]
    fn duplicate_minima_are_acceptable() {
        let mut rng = StdRng::seed_from_u64(74);
        let values = [3i64, 1, 4, 1, 5];
        for _ in 0..20 {
            let out = quantum_minimum(values.len(), |i| values[i], &mut rng);
            assert!(out.index == 1 || out.index == 3);
        }
    }

    #[test]
    fn ties_with_the_threshold_are_not_improvements() {
        // All-equal values: wherever the walk starts, nothing is strictly
        // below, so the search ends in 0 stages with 0 attempts — ties must
        // not be counted as solutions (that would loop forever).
        let mut rng = StdRng::seed_from_u64(79);
        let out = quantum_minimum(16, |_| 5i64, &mut rng);
        assert_eq!((out.stages, out.attempts, out.iterations), (0, 0, 0));
    }

    #[test]
    fn attempts_count_zero_iteration_draws() {
        // Pin the accounting contract: every BBHT measurement consumes an
        // attempt, but only k > 0 draws charge iterations — so across many
        // runs attempts ≥ stages and iterations can be smaller than
        // attempts (k = 0 draws are free in iterations, not in attempts).
        let mut rng = StdRng::seed_from_u64(80);
        // Domain of 2: k is drawn from {0, 1, 2}, so k = 0 measurements are
        // frequent and some run resolves with attempts > 0, iterations = 0.
        let values = [7i64, 3];
        let mut saw_free_attempt = false;
        for _ in 0..50 {
            let out = quantum_minimum(values.len(), |i| values[i], &mut rng);
            assert_eq!(out.index, 1);
            assert!(out.attempts >= u64::from(out.stages));
            if out.attempts > 0 && out.iterations == 0 {
                saw_free_attempt = true;
            }
        }
        assert!(saw_free_attempt, "k = 0 draws should occur at this size");
    }

    #[test]
    fn bounded_search_surfaces_exhaustion_instead_of_guessing() {
        // With a budget of 1 the stage fails whenever the single BBHT
        // measurement misses — common by design. The contract under test:
        // an Ok is always a true minimum and a miss is a typed error, never
        // a silently returned non-extremum (the pre-fix bailout behavior).
        let mut rng = StdRng::seed_from_u64(81);
        let n = 64;
        let values: Vec<i64> = (0..n).map(|i| (i * 31 % n) as i64).collect();
        let mut exhausted = 0;
        for trial in 0..200 {
            match quantum_minimum_bounded(n, |i| values[i], 1, &mut rng) {
                Ok(out) => assert_eq!(values[out.index], 0, "trial {trial}"),
                Err(e) => {
                    exhausted += 1;
                    assert!(values[e.best_index] > 0, "exhaustion implies non-extremum");
                    assert!(e.attempts >= 1);
                    assert!(e.to_string().contains("strictly better"));
                }
            }
        }
        assert!(exhausted > 0, "budget 1 must exhaust sometimes");
    }

    #[test]
    fn bounded_search_with_default_budget_behaves_like_unbounded() {
        let mut rng = StdRng::seed_from_u64(82);
        let values: Vec<i64> = (0..48).map(|i| (i * 7 % 48) as i64).collect();
        for _ in 0..20 {
            let out = quantum_minimum_bounded(
                values.len(),
                |i| values[i],
                DEFAULT_STAGE_ATTEMPTS,
                &mut rng,
            )
            .expect("2^-64 per stage: effectively never");
            assert_eq!(values[out.index], 0);
        }
    }

    #[test]
    fn iteration_count_scales_sublinearly() {
        let mut rng = StdRng::seed_from_u64(75);
        let mut mean_iters = Vec::new();
        for &n in &[256usize, 4096] {
            let values: Vec<i64> = (0..n).map(|i| (7919 * i % n) as i64).collect();
            let trials = 30;
            let total: u64 = (0..trials)
                .map(|_| quantum_minimum(n, |i| values[i], &mut rng).iterations)
                .sum();
            mean_iters.push(total as f64 / f64::from(trials));
        }
        // 16x the domain: well under 16x the iterations (theory: 4x)
        assert!(mean_iters[1] < 8.0 * mean_iters[0], "iters {mean_iters:?}");
    }

    #[test]
    fn stages_grow_slowly() {
        // expected O(log n) threshold improvements
        let mut rng = StdRng::seed_from_u64(76);
        let n = 1024;
        let values: Vec<i64> = (0..n).map(|i| i as i64).collect();
        let trials = 20;
        let total_stages: u32 = (0..trials)
            .map(|_| quantum_minimum(n, |i| values[i], &mut rng).stages)
            .sum();
        let mean = f64::from(total_stages) / f64::from(trials);
        assert!(mean < 30.0, "mean stages {mean}");
    }
}
