//! Dürr–Høyer quantum minimum finding (exact simulation).
//!
//! The Le Gall–Magniez framework the paper builds on (Section 4.1) was
//! introduced for the *diameter*, i.e. a maximum over node-held values.
//! The underlying primitive is Dürr–Høyer: repeatedly Grover-search for an
//! item below the current threshold; the expected total query cost is
//! `O(√|X|)`. This module simulates it exactly (per-stage Grover
//! amplitudes are exact; the threshold walk is the real randomized walk)
//! and is used by the diameter example and the extremum experiments.

use crate::amplitude::GroverAmplitudes;
use rand::Rng;

/// Result of a quantum extremum search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExtremumOutcome {
    /// Index of the found extremum.
    pub index: usize,
    /// Total Grover iterations across all threshold stages.
    pub iterations: u64,
    /// Number of threshold improvements (stages).
    pub stages: u32,
}

/// Finds an index minimizing `value`, with `O(√|X|)` expected iterations
/// (Dürr–Høyer).
///
/// # Panics
///
/// Panics if `domain_size == 0`.
///
/// # Examples
///
/// ```
/// use qcc_quantum::quantum_minimum;
/// use rand::SeedableRng;
///
/// let values = [5i64, 3, 9, -2, 7];
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let out = quantum_minimum(values.len(), |i| values[i], &mut rng);
/// assert_eq!(out.index, 3);
/// ```
pub fn quantum_minimum<F, R>(domain_size: usize, value: F, rng: &mut R) -> ExtremumOutcome
where
    F: Fn(usize) -> i64,
    R: Rng,
{
    assert!(domain_size > 0, "empty domain");
    let mut threshold_idx = rng.gen_range(0..domain_size);
    let mut iterations = 0u64;
    let mut stages = 0u32;
    loop {
        let t = value(threshold_idx);
        let below: Vec<usize> = (0..domain_size).filter(|&i| value(i) < t).collect();
        if below.is_empty() {
            return ExtremumOutcome {
                index: threshold_idx,
                iterations,
                stages,
            };
        }
        // One BBHT stage: random iteration count, then measure; the
        // amplitude math is exact, the measurement genuinely sampled.
        let amp = GroverAmplitudes::new(domain_size, below.len());
        let k_max = GroverAmplitudes::max_useful_iterations(domain_size);
        let mut found = None;
        // expected O(1) attempts per stage; bounded for safety
        for _ in 0..64 {
            let k = rng.gen_range(0..=k_max);
            iterations += k;
            if rng.gen_bool(amp.success_probability(k).clamp(0.0, 1.0)) {
                found = Some(below[rng.gen_range(0..below.len())]);
                break;
            }
        }
        match found {
            Some(idx) => {
                threshold_idx = idx;
                stages += 1;
            }
            None => {
                return ExtremumOutcome {
                    index: threshold_idx,
                    iterations,
                    stages,
                }
            }
        }
    }
}

/// Finds an index maximizing `value` (minimum of the negation).
///
/// # Examples
///
/// ```
/// use qcc_quantum::quantum_maximum;
/// use rand::SeedableRng;
///
/// let values = [5i64, 3, 9, -2, 7];
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let out = quantum_maximum(values.len(), |i| values[i], &mut rng);
/// assert_eq!(out.index, 2);
/// ```
pub fn quantum_maximum<F, R>(domain_size: usize, value: F, rng: &mut R) -> ExtremumOutcome
where
    F: Fn(usize) -> i64,
    R: Rng,
{
    quantum_minimum(domain_size, |i| -value(i), rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn finds_the_minimum_on_random_arrays() {
        let mut rng = StdRng::seed_from_u64(71);
        for trial in 0..50 {
            let n = 1 + (trial % 64);
            let values: Vec<i64> = (0..n).map(|_| rng.gen_range(-100..100)).collect();
            let min = *values.iter().min().unwrap();
            let out = quantum_minimum(n, |i| values[i], &mut rng);
            assert_eq!(values[out.index], min, "trial {trial}");
        }
    }

    #[test]
    fn maximum_mirrors_minimum() {
        let mut rng = StdRng::seed_from_u64(72);
        let values: Vec<i64> = (0..40).map(|_| rng.gen_range(-50..50)).collect();
        let out = quantum_maximum(values.len(), |i| values[i], &mut rng);
        assert_eq!(values[out.index], *values.iter().max().unwrap());
    }

    #[test]
    fn singleton_domain_is_trivial() {
        let mut rng = StdRng::seed_from_u64(73);
        let out = quantum_minimum(1, |_| 42, &mut rng);
        assert_eq!(out.index, 0);
        assert_eq!(out.stages, 0);
    }

    #[test]
    fn duplicate_minima_are_acceptable() {
        let mut rng = StdRng::seed_from_u64(74);
        let values = [3i64, 1, 4, 1, 5];
        let out = quantum_minimum(values.len(), |i| values[i], &mut rng);
        assert!(out.index == 1 || out.index == 3);
    }

    #[test]
    fn iteration_count_scales_sublinearly() {
        let mut rng = StdRng::seed_from_u64(75);
        let mut mean_iters = Vec::new();
        for &n in &[256usize, 4096] {
            let values: Vec<i64> = (0..n).map(|i| (7919 * i % n) as i64).collect();
            let trials = 30;
            let total: u64 = (0..trials)
                .map(|_| quantum_minimum(n, |i| values[i], &mut rng).iterations)
                .sum();
            mean_iters.push(total as f64 / f64::from(trials));
        }
        // 16x the domain: well under 16x the iterations (theory: 4x)
        assert!(mean_iters[1] < 8.0 * mean_iters[0], "iters {mean_iters:?}");
    }

    #[test]
    fn stages_grow_slowly() {
        // expected O(log n) threshold improvements
        let mut rng = StdRng::seed_from_u64(76);
        let n = 1024;
        let values: Vec<i64> = (0..n).map(|i| i as i64).collect();
        let trials = 20;
        let total_stages: u32 = (0..trials)
            .map(|_| quantum_minimum(n, |i| values[i], &mut rng).stages)
            .sum();
        let mean = f64::from(total_stages) / f64::from(trials);
        assert!(mean < 30.0, "mean stages {mean}");
    }
}
