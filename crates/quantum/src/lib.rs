//! # qcc-quantum — exact simulation of distributed quantum search
//!
//! Quantum substrate for the reproduction of *"Quantum Distributed
//! Algorithm for the All-Pairs Shortest Path Problem in the CONGEST-CLIQUE
//! Model"* (Izumi & Le Gall, PODC 2019).
//!
//! A classical machine cannot run superposed network queries, but it does
//! not need to: Grover's algorithm never leaves the two-dimensional
//! subspace spanned by the uniform superpositions over solutions and
//! non-solutions, so its state is a single rotation angle that
//! [`GroverAmplitudes`] tracks *exactly*. The communication side stays
//! honest by executing the distributed evaluation procedure once per
//! Grover iteration on a query sampled from the current superposition (see
//! the "Honesty note" in `DESIGN.md`).
//!
//! * [`grover_search`] / [`grover_search_amplified`] — the single
//!   distributed search of Section 4.1 (Le Gall–Magniez framework).
//! * [`multi_grover_search`] — `m` parallel searches in lockstep with a
//!   joint truncated evaluator, Theorem 3's "multiple searches only using
//!   typical inputs".
//! * [`typicality`] — the `Υ_β(m, X)` membership test and the analytic
//!   bounds of Lemma 5 / Theorem 3.
//! * [`classical_search`] / [`classical_multi_search`] — linear-scan
//!   baselines for the quadratic-speedup experiments.
//!
//! ## Example
//!
//! ```
//! use qcc_quantum::{grover_search_amplified, SearchOracle};
//! use rand::SeedableRng;
//!
//! struct Toy;
//! impl SearchOracle for Toy {
//!     fn domain_size(&self) -> usize { 64 }
//!     fn truth(&self, item: usize) -> bool { item == 37 }
//!     fn evaluate_distributed(&mut self, item: usize) -> bool { item == 37 }
//! }
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let out = grover_search_amplified(&mut Toy, 10, &mut rng);
//! assert_eq!(out.found, Some(37));
//! // O(sqrt(64)) iterations per repetition, not 64
//! assert!(out.iterations < 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod amplitude;
mod estimation;
mod grover;
mod minimum;
mod multi_search;
pub mod typicality;

pub use amplitude::GroverAmplitudes;
pub use estimation::{quantum_count, AmplitudeEstimator, EstimateOutcome};
pub use grover::{
    classical_search, grover_search, grover_search_amplified, GroverOutcome, SearchOracle,
};
pub use minimum::{
    quantum_maximum, quantum_maximum_bounded, quantum_minimum, quantum_minimum_bounded,
    ExtremumOutcome, StageExhausted, DEFAULT_STAGE_ATTEMPTS,
};
pub use multi_search::{
    classical_multi_search, multi_grover_search, repetitions_for_target, AtypicalInputError,
    MultiOracle, MultiSearchOutcome,
};
pub use typicality::{frequency_histogram, is_typical, max_frequency, TypicalityBounds};
