//! Distributed single quantum search (the Le Gall–Magniez framework).
//!
//! Section 4.1 of the paper: a node `u` holds a function `g : X → {0, 1}`
//! whose evaluation on one input takes `r` rounds of a classical
//! distributed procedure `C`. Grover's algorithm finds an `x` with
//! `g(x) = 1` in `O~(r·√|X|)` rounds instead of the classical `r·|X|`.
//!
//! The simulation is exact at the amplitude level (see
//! [`GroverAmplitudes`](crate::GroverAmplitudes)) and *honest* at the
//! communication level: every Grover iteration invokes the distributed
//! evaluation procedure once, on a query sampled from the current
//! superposition, so the network sees exactly the per-iteration traffic the
//! quantum algorithm would generate, and the reported round counts come
//! from executed schedules.

use crate::amplitude::GroverAmplitudes;
use rand::Rng;

/// A search problem whose predicate is evaluated by a distributed procedure.
///
/// Items are indices `0 .. domain_size()`. [`SearchOracle::truth`] is the
/// ground-truth predicate used for the exact amplitude census (never
/// charged to the network — see "Honesty note" in `DESIGN.md`); it takes
/// `&self` so the census can be fanned out over host worker threads
/// (`QCC_THREADS`). [`SearchOracle::evaluate_distributed`] must run the
/// real message schedule on the simulated network and agree with `truth`.
pub trait SearchOracle {
    /// `|X|`, the size of the search domain.
    fn domain_size(&self) -> usize;

    /// Ground-truth predicate `g(x)` (local, free, side-effect free).
    fn truth(&self, item: usize) -> bool;

    /// Batched ground truth over a contiguous item range, in item order.
    ///
    /// The census calls this once per worker band instead of once per item,
    /// so oracles whose predicate reduces to a bulk kernel (e.g. a min-plus
    /// sweep over a weight table) can answer the whole band in one
    /// vectorized evaluation. The default falls back to per-item
    /// [`SearchOracle::truth`]; overrides must return exactly the same bits.
    fn truth_block(&self, items: std::ops::Range<usize>) -> Vec<bool> {
        items.map(|item| self.truth(item)).collect()
    }

    /// Distributed evaluation of `g(x)`; must charge its network and agree
    /// with [`SearchOracle::truth`].
    fn evaluate_distributed(&mut self, item: usize) -> bool;
}

/// Result of a distributed Grover search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroverOutcome {
    /// A verified solution item, if the search succeeded.
    pub found: Option<usize>,
    /// Total Grover iterations executed (across repetitions).
    pub iterations: u64,
    /// Number of distributed evaluation calls (= iterations + one
    /// verification per repetition).
    pub distributed_calls: u64,
    /// Repetitions used until success (or the configured maximum).
    pub repetitions: u64,
}

/// Runs one repetition of Grover's algorithm with the optimal iteration
/// count for the (exactly known) solution census.
///
/// Returns a verified solution with probability `sin²((2k+1)θ) ≈ 1` when
/// solutions exist; always returns `None` when none exist.
pub fn grover_search<O: SearchOracle + Sync, R: Rng>(oracle: &mut O, rng: &mut R) -> GroverOutcome {
    grover_search_amplified(oracle, 1, rng)
}

/// Runs up to `max_repetitions` repetitions of Grover's algorithm,
/// stopping at the first verified solution.
///
/// With `t` repetitions the failure probability given a nonempty solution
/// set is at most `(1 − p)^t` where `p` is the single-run success
/// probability (close to 1 for exact iteration counts), matching the
/// paper's "repeat a logarithmic number of times" amplification.
///
/// # Panics
///
/// Panics if `max_repetitions == 0` or the oracle's distributed evaluation
/// disagrees with its ground truth.
pub fn grover_search_amplified<O: SearchOracle + Sync, R: Rng>(
    oracle: &mut O,
    max_repetitions: u64,
    rng: &mut R,
) -> GroverOutcome {
    assert!(max_repetitions > 0);
    let x = oracle.domain_size();
    // Census over the whole domain, fanned out over host worker threads as
    // one bulk `truth_block` evaluation per contiguous band (the predicate
    // is local and free; bands keep the item order, so the census is
    // identical for any worker count).
    let marks: Vec<bool> = {
        let oracle: &O = oracle;
        qcc_perf::map_bands(x, qcc_perf::resolve_threads(None), |band| {
            oracle.truth_block(band)
        })
        .into_iter()
        .flatten()
        .collect()
    };
    let mut solutions = Vec::new();
    let mut non_solutions = Vec::new();
    for (item, marked) in marks.into_iter().enumerate() {
        if marked {
            solutions.push(item);
        } else {
            non_solutions.push(item);
        }
    }
    let amp = GroverAmplitudes::new(x.max(1), solutions.len());
    let k = amp.optimal_iterations();

    let mut iterations = 0;
    let mut distributed_calls = 0;
    for rep in 1..=max_repetitions {
        // Execute k Grover iterations; each queries the distributed
        // evaluation procedure on an input sampled from the current state.
        for i in 0..k {
            let query = sample_side(
                &solutions,
                &non_solutions,
                amp.query_solution_probability(i),
                rng,
            );
            let answer = oracle.evaluate_distributed(query);
            assert_eq!(
                answer,
                oracle.truth(query),
                "distributed evaluation disagrees with ground truth on item {query}"
            );
            iterations += 1;
            distributed_calls += 1;
        }
        // Measure, then classically verify the measured candidate.
        let candidate = sample_side(&solutions, &non_solutions, amp.success_probability(k), rng);
        distributed_calls += 1;
        if oracle.evaluate_distributed(candidate) {
            return GroverOutcome {
                found: Some(candidate),
                iterations,
                distributed_calls,
                repetitions: rep,
            };
        }
        if solutions.is_empty() && rep >= 2 {
            // Two failed verifications with an empty census: report absence
            // early (the caller's analysis already tolerates 1/poly error).
            return GroverOutcome {
                found: None,
                iterations,
                distributed_calls,
                repetitions: rep,
            };
        }
    }
    GroverOutcome {
        found: None,
        iterations,
        distributed_calls,
        repetitions: max_repetitions,
    }
}

fn sample_side<R: Rng>(
    solutions: &[usize],
    non_solutions: &[usize],
    p_solution: f64,
    rng: &mut R,
) -> usize {
    let take_solution = if solutions.is_empty() {
        false
    } else if non_solutions.is_empty() {
        true
    } else {
        rng.gen_bool(p_solution.clamp(0.0, 1.0))
    };
    let side = if take_solution {
        solutions
    } else {
        non_solutions
    };
    side[rng.gen_range(0..side.len())]
}

/// Classical exhaustive search baseline: evaluates every domain item with
/// the distributed procedure, in order, stopping at the first hit.
///
/// Costs `r·|X|` rounds in the worst case versus Grover's `O~(r·√|X|)` —
/// the quadratic gap measured by experiment E10.
pub fn classical_search<O: SearchOracle>(oracle: &mut O) -> GroverOutcome {
    let mut calls = 0;
    for item in 0..oracle.domain_size() {
        calls += 1;
        if oracle.evaluate_distributed(item) {
            return GroverOutcome {
                found: Some(item),
                iterations: calls,
                distributed_calls: calls,
                repetitions: 1,
            };
        }
    }
    GroverOutcome {
        found: None,
        iterations: calls,
        distributed_calls: calls,
        repetitions: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Toy oracle: marked items, counts calls, no real network.
    struct ToyOracle {
        marked: Vec<bool>,
        distributed_calls: u64,
    }

    impl ToyOracle {
        fn new(n: usize, marked: &[usize]) -> Self {
            let mut m = vec![false; n];
            for &i in marked {
                m[i] = true;
            }
            ToyOracle {
                marked: m,
                distributed_calls: 0,
            }
        }
    }

    impl SearchOracle for ToyOracle {
        fn domain_size(&self) -> usize {
            self.marked.len()
        }
        fn truth(&self, item: usize) -> bool {
            self.marked[item]
        }
        fn evaluate_distributed(&mut self, item: usize) -> bool {
            self.distributed_calls += 1;
            self.marked[item]
        }
    }

    #[test]
    fn finds_the_unique_solution() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut oracle = ToyOracle::new(64, &[37]);
        let out = grover_search_amplified(&mut oracle, 10, &mut rng);
        assert_eq!(out.found, Some(37));
    }

    #[test]
    fn reports_absence_when_no_solution() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut oracle = ToyOracle::new(32, &[]);
        let out = grover_search_amplified(&mut oracle, 5, &mut rng);
        assert_eq!(out.found, None);
        // early exit after two failed repetitions
        assert!(out.repetitions <= 2);
    }

    #[test]
    fn iteration_count_is_quadratically_smaller() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 1024;
        let mut oracle = ToyOracle::new(n, &[100]);
        let out = grover_search_amplified(&mut oracle, 20, &mut rng);
        assert_eq!(out.found, Some(100));
        // O(√n) iterations per repetition: allow a few repetitions' slack
        assert!(
            out.iterations <= 5 * (n as f64).sqrt() as u64,
            "iterations = {}",
            out.iterations
        );
    }

    #[test]
    fn many_solutions_found_quickly() {
        let mut rng = StdRng::seed_from_u64(8);
        let marked: Vec<usize> = (0..32).map(|i| i * 2).collect();
        let mut oracle = ToyOracle::new(64, &marked);
        let out = grover_search_amplified(&mut oracle, 10, &mut rng);
        let found = out.found.expect("half the domain is marked");
        assert!(found % 2 == 0);
        assert!(out.iterations <= 2 * 10);
    }

    #[test]
    fn classical_search_scans_linearly() {
        let mut oracle = ToyOracle::new(50, &[49]);
        let out = classical_search(&mut oracle);
        assert_eq!(out.found, Some(49));
        assert_eq!(out.distributed_calls, 50);
    }

    #[test]
    fn classical_search_reports_absence() {
        let mut oracle = ToyOracle::new(10, &[]);
        let out = classical_search(&mut oracle);
        assert_eq!(out.found, None);
        assert_eq!(out.distributed_calls, 10);
    }

    #[test]
    fn success_rate_matches_amplitude_prediction() {
        // statistical check: single repetition success frequency ≈ sin²((2k+1)θ)
        let n = 64;
        let solution = 11;
        let mut hits = 0;
        let trials = 500;
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..trials {
            let mut oracle = ToyOracle::new(n, &[solution]);
            let out = grover_search(&mut oracle, &mut rng);
            if out.found == Some(solution) {
                hits += 1;
            }
        }
        let amp = GroverAmplitudes::new(n, 1);
        let p = amp.success_probability(amp.optimal_iterations());
        let freq = f64::from(hits) / trials as f64;
        assert!((freq - p).abs() < 0.05, "freq {freq} vs p {p}");
    }
}
