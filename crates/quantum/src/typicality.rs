//! The "typical inputs" machinery of Section 4.2 and the appendix.
//!
//! A query tuple `x = (x₁, …, x_m) ∈ X^m` is *β-typical* — a member of
//! `Υ_β(m, X)` — if no element of `X` appears more than `β` times in it.
//! Theorem 3 shows that a truncated evaluator `C̃m`, correct only on
//! `Υ_β(m, X)`, suffices for the parallel Grover searches provided
//!
//! * `|X| < m / (36 log m)`,
//! * `β > 8m / |X|`, and
//! * every solution tuple lies in `Υ_{β/2}(m, X)`;
//!
//! the run deviates from the untruncated algorithm by at most
//! `2k·√|X|·exp(−m/(9|X|))` in ℓ₂ norm after `k` iterations, so the final
//! measurement is unchanged with probability `≥ 1 − 1/m²`.
//!
//! This module provides the membership test, the analytic bounds, and a
//! histogram helper used by the evaluation procedures to detect (and
//! refuse) atypical tuples exactly as `C̃m` does.

/// Frequency histogram of a query tuple over a domain of size `domain_size`.
///
/// # Panics
///
/// Panics if any tuple entry is `≥ domain_size`.
pub fn frequency_histogram(tuple: &[usize], domain_size: usize) -> Vec<u64> {
    let mut hist = vec![0u64; domain_size];
    for &x in tuple {
        assert!(
            x < domain_size,
            "tuple entry {x} outside domain of size {domain_size}"
        );
        hist[x] += 1;
    }
    hist
}

/// The largest frequency of any single element in the tuple.
pub fn max_frequency(tuple: &[usize], domain_size: usize) -> u64 {
    frequency_histogram(tuple, domain_size)
        .into_iter()
        .max()
        .unwrap_or(0)
}

/// Whether `tuple ∈ Υ_β(m, X)`: every element appears at most `β` times.
///
/// # Examples
///
/// ```
/// use qcc_quantum::is_typical;
///
/// assert!(is_typical(&[0, 1, 2, 0], 3, 2.0));
/// assert!(!is_typical(&[0, 0, 0, 1], 3, 2.0));
/// ```
pub fn is_typical(tuple: &[usize], domain_size: usize, beta: f64) -> bool {
    max_frequency(tuple, domain_size) as f64 <= beta
}

/// Analytic bounds of Theorem 3 and Lemma 5 for a multi-search instance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TypicalityBounds {
    /// Number of parallel searches `m`.
    pub m: usize,
    /// Domain size `|X|`.
    pub domain_size: usize,
    /// Frequency cap `β` of the truncated evaluator.
    pub beta: f64,
}

impl TypicalityBounds {
    /// Creates the bound calculator.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `domain_size == 0`.
    pub fn new(m: usize, domain_size: usize, beta: f64) -> Self {
        assert!(m > 0 && domain_size > 0);
        TypicalityBounds {
            m,
            domain_size,
            beta,
        }
    }

    /// Whether the quantitative assumptions of Theorem 3 hold:
    /// `|X| < m / (36 log m)` and `β > 8m / |X|`.
    pub fn assumptions_hold(&self) -> bool {
        let m = self.m as f64;
        let x = self.domain_size as f64;
        x < m / (36.0 * m.ln().max(1.0)) && self.beta > 8.0 * m / x
    }

    /// Lemma 5: for any state in the invariant subspace, the squared mass
    /// outside `Υ_β(m, X)` is below `|X| · exp(−2m / (9|X|))`.
    pub fn projection_mass_bound(&self) -> f64 {
        let m = self.m as f64;
        let x = self.domain_size as f64;
        x * (-2.0 * m / (9.0 * x)).exp()
    }

    /// Theorem 3 proof: ℓ₂ deviation between the truncated and exact runs
    /// after `k` iterations is at most `2k·√|X|·exp(−m / (9|X|))`.
    pub fn deviation_bound(&self, k: u64) -> f64 {
        let m = self.m as f64;
        let x = self.domain_size as f64;
        2.0 * k as f64 * x.sqrt() * (-m / (9.0 * x)).exp()
    }

    /// Theorem 3: success probability of the truncated multi-search, when
    /// the assumptions hold, is at least `1 − 2/m²`.
    pub fn success_lower_bound(&self) -> f64 {
        1.0 - 2.0 / (self.m as f64).powi(2)
    }

    /// Expected maximum frequency of a uniformly random tuple, `m / |X|` —
    /// the "typical" frequency scale that `β` must dominate.
    pub fn expected_frequency(&self) -> f64 {
        self.m as f64 / self.domain_size as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn histogram_counts_occurrences() {
        assert_eq!(frequency_histogram(&[0, 2, 2, 1, 2], 3), vec![1, 1, 3]);
        assert_eq!(max_frequency(&[0, 2, 2, 1, 2], 3), 3);
        assert_eq!(max_frequency(&[], 3), 0);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_entries_are_rejected() {
        frequency_histogram(&[3], 3);
    }

    #[test]
    fn typicality_boundary_is_inclusive() {
        assert!(is_typical(&[1, 1], 2, 2.0));
        assert!(!is_typical(&[1, 1, 1], 2, 2.0));
    }

    #[test]
    fn uniform_random_tuples_are_typical_with_generous_beta() {
        // m = 8·|X|·log: β = 8m/|X| should admit almost all random tuples
        let domain = 16usize;
        let m = 16 * 200;
        let beta = 8.0 * m as f64 / domain as f64;
        let mut rng = StdRng::seed_from_u64(7);
        let violations = (0..200)
            .filter(|_| {
                let tuple: Vec<usize> = (0..m).map(|_| rng.gen_range(0..domain)).collect();
                !is_typical(&tuple, domain, beta)
            })
            .count();
        assert_eq!(violations, 0);
    }

    #[test]
    fn assumptions_hold_in_the_paper_regime() {
        // ComputePairs regime: m = 100 n log n, |X| ≤ √n
        let n: usize = 256;
        let m = 100 * n * (n as f64).log2() as usize;
        let x = (n as f64).sqrt() as usize;
        let beta = 9.0 * m as f64 / x as f64;
        let b = TypicalityBounds::new(m, x, beta);
        assert!(b.assumptions_hold());
        assert!(b.projection_mass_bound() < 1e-300);
        assert!(b.deviation_bound(1000) < 1e-250);
        assert!(b.success_lower_bound() > 0.999_999);
    }

    #[test]
    fn assumptions_fail_when_domain_is_too_large() {
        let b = TypicalityBounds::new(100, 100, 1e9);
        assert!(!b.assumptions_hold());
    }

    #[test]
    fn assumptions_fail_when_beta_is_too_small() {
        let m = 100_000;
        let x = 10;
        let b = TypicalityBounds::new(m, x, 4.0 * m as f64 / x as f64);
        assert!(!b.assumptions_hold());
    }

    #[test]
    fn deviation_grows_linearly_in_k() {
        let b = TypicalityBounds::new(10_000, 16, 1e4);
        let d1 = b.deviation_bound(10);
        let d2 = b.deviation_bound(20);
        assert!((d2 / d1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn expected_frequency_is_m_over_x() {
        let b = TypicalityBounds::new(800, 16, 100.0);
        assert!((b.expected_frequency() - 50.0).abs() < 1e-12);
    }
}
