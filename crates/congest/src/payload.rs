//! Bit-size accounting for message payloads.
//!
//! The CONGEST-CLIQUE model charges communication in *bits*: each round,
//! every ordered pair of nodes may exchange one message of `O(log n)` bits.
//! Every payload type sent through the simulator therefore reports its size
//! in bits via [`Payload::bit_size`], and the network schedules transmissions
//! (possibly fragmenting large payloads across several rounds) accordingly.

/// A message payload with a well-defined size in bits.
///
/// Implementations should report the size of the *information content* of
/// the value as it would be serialized on the wire, not the in-memory size.
/// The helpers [`bits_for_count`] and [`bits_for_weight_range`] compute the
/// standard field widths used throughout the crate stack.
///
/// # Examples
///
/// ```
/// use qcc_congest::Payload;
///
/// #[derive(Clone, Debug)]
/// struct PairAndWeight { u: u32, v: u32, w: i64 }
///
/// impl Payload for PairAndWeight {
///     fn bit_size(&self) -> u64 { 32 + 32 + 64 }
/// }
///
/// assert_eq!(PairAndWeight { u: 0, v: 1, w: -5 }.bit_size(), 128);
/// ```
pub trait Payload: Clone {
    /// Size of this payload in bits when transmitted.
    fn bit_size(&self) -> u64;
}

/// Number of bits needed to address one of `count` distinct values.
///
/// Returns 1 for `count <= 1` so that even trivial fields occupy a bit,
/// keeping round accounting strictly positive.
///
/// # Examples
///
/// ```
/// assert_eq!(qcc_congest::bits_for_count(256), 8);
/// assert_eq!(qcc_congest::bits_for_count(257), 9);
/// assert_eq!(qcc_congest::bits_for_count(1), 1);
/// ```
pub fn bits_for_count(count: usize) -> u64 {
    if count <= 1 {
        1
    } else {
        (usize::BITS - (count - 1).leading_zeros()) as u64
    }
}

/// Number of bits needed for a signed integer weight in `[-magnitude, magnitude]`,
/// plus one sentinel pattern for "infinity" (absent edge).
///
/// The pattern count saturates at `u64::MAX`, so huge magnitudes report the
/// full 64 bits instead of wrapping (and then underflowing) in the
/// intermediate `2·magnitude + 2` arithmetic.
///
/// # Examples
///
/// ```
/// // weights in [-8, 8]: 17 values + infinity = 18 patterns -> 5 bits
/// assert_eq!(qcc_congest::bits_for_weight_range(8), 5);
/// assert_eq!(qcc_congest::bits_for_weight_range(u64::MAX), 64);
/// ```
pub fn bits_for_weight_range(magnitude: u64) -> u64 {
    // [-M, M] plus infinity sentinel; saturate instead of wrapping for
    // M >= (u64::MAX - 1) / 2.
    let patterns = magnitude.saturating_mul(2).saturating_add(2);
    64 - (patterns - 1).leading_zeros() as u64
}

/// Payload wrapper carrying an explicit bit size.
///
/// Useful for synthetic workloads (routing benchmarks, congestion tests)
/// where only the *size* of the message matters, not its content.
///
/// # Examples
///
/// ```
/// use qcc_congest::{Payload, RawBits};
///
/// let msg = RawBits::new(42, 96);
/// assert_eq!(msg.bit_size(), 96);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawBits {
    /// Opaque content tag, available to the receiver.
    pub tag: u64,
    /// Declared size of this message in bits.
    pub bits: u64,
}

impl RawBits {
    /// Creates a raw payload with the given content tag and bit size.
    pub fn new(tag: u64, bits: u64) -> Self {
        RawBits { tag, bits }
    }
}

impl Payload for RawBits {
    fn bit_size(&self) -> u64 {
        self.bits
    }
}

impl Payload for u64 {
    fn bit_size(&self) -> u64 {
        64
    }
}

impl Payload for u32 {
    fn bit_size(&self) -> u64 {
        32
    }
}

impl Payload for i64 {
    fn bit_size(&self) -> u64 {
        64
    }
}

impl Payload for bool {
    fn bit_size(&self) -> u64 {
        1
    }
}

impl<A: Payload, B: Payload> Payload for (A, B) {
    fn bit_size(&self) -> u64 {
        self.0.bit_size() + self.1.bit_size()
    }
}

impl<A: Payload, B: Payload, C: Payload> Payload for (A, B, C) {
    fn bit_size(&self) -> u64 {
        self.0.bit_size() + self.1.bit_size() + self.2.bit_size()
    }
}

impl<T: Payload> Payload for Vec<T> {
    fn bit_size(&self) -> u64 {
        self.iter().map(Payload::bit_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_count_edge_cases() {
        assert_eq!(bits_for_count(0), 1);
        assert_eq!(bits_for_count(1), 1);
        assert_eq!(bits_for_count(2), 1);
        assert_eq!(bits_for_count(3), 2);
        assert_eq!(bits_for_count(4), 2);
        assert_eq!(bits_for_count(5), 3);
        assert_eq!(bits_for_count(1 << 20), 20);
    }

    #[test]
    fn bits_for_weight_range_includes_infinity() {
        // [-1, 1]: 3 values + inf = 4 patterns -> 2 bits
        assert_eq!(bits_for_weight_range(1), 2);
        // [0, 0]: 1 value + inf = 2 patterns -> 1 bit
        assert_eq!(bits_for_weight_range(0), 1);
    }

    #[test]
    fn bits_for_weight_range_saturates_at_huge_magnitudes() {
        // 2 * magnitude + 2 would wrap for magnitude >= (u64::MAX - 1) / 2
        // (and then underflow `patterns - 1` at the wrap point). The
        // saturating form reports the full 64 bits instead.
        assert_eq!(bits_for_weight_range(u64::MAX), 64);
        assert_eq!(bits_for_weight_range(u64::MAX / 2), 64);
        assert_eq!(bits_for_weight_range((u64::MAX - 1) / 2), 64);
        assert_eq!(bits_for_weight_range(u64::MAX / 2 - 1), 64);
        // Monotonicity across the former wrap boundary: growing the
        // magnitude never shrinks the reported width.
        assert!(bits_for_weight_range(u64::MAX / 4) <= bits_for_weight_range(u64::MAX / 2));
        // Largest magnitude whose pattern count still fits: 2^62 - 1 gives
        // 2^63 patterns -> 63 bits.
        assert_eq!(bits_for_weight_range((1u64 << 62) - 1), 63);
    }

    #[test]
    fn tuple_and_vec_sizes_add_up() {
        let v = vec![(1u32, true), (2u32, false)];
        assert_eq!(v.bit_size(), 2 * 33);
    }

    #[test]
    fn raw_bits_reports_declared_size() {
        assert_eq!(RawBits::new(7, 100).bit_size(), 100);
    }
}
