//! The synchronous CONGEST-CLIQUE network.
//!
//! [`Clique`] simulates `n` nodes connected by a complete graph of reliable
//! links. Time advances in synchronous rounds; in each round every ordered
//! pair of nodes may carry one message of at most `B = Θ(log n)` bits.
//! The simulator executes message schedules exactly and charges rounds
//! according to the model's rules:
//!
//! * **Direct exchange** ([`Clique::exchange`]): messages travel on the
//!   `(src, dst)` link; a phase in which the busiest link carries `L` bits
//!   takes `⌈L / B⌉` rounds (all links operate in parallel).
//! * **Routed exchange** ([`Clique::route`]): implements Lemma 1 of the
//!   paper (Dolev, Lenzen & Peled): any message set in which no node sends
//!   or receives more than `n` message units is delivered in 2 rounds via
//!   intermediate relays, chosen by an exact König edge coloring of the
//!   demand multigraph. Heavier sets take `2·⌈Δ/n⌉` rounds where `Δ` is the
//!   maximum per-node unit load.
//!
//! Local computation is free, as in the model. Messages from a node to
//! itself are local and cost nothing.
//!
//! # Host performance
//!
//! A simulation run makes one `exchange`/`route` call per communication
//! phase, often many thousands per experiment, so the accounting paths are
//! written to be allocation-free after warm-up: link-bit and relay-load
//! tallies live in dense `n²` scratch vectors indexed by `src · n + dst`
//! (cleared sparsely through touched-index lists), payload bit-sizes are
//! computed once per envelope into a reusable buffer, inboxes are pre-sized
//! from a counting pass, and the König coloring reuses its slot tables
//! across calls ([`ColoringScratch`]). None of this affects the *model*:
//! charged rounds and all other metrics are byte-identical to the
//! straightforward implementation, which `tests/determinism.rs` pins
//! against recorded counts.

use crate::coloring::{color_bipartite_into, is_proper_colors, ColoringScratch};
use crate::envelope::{Envelope, Inboxes};
use crate::error::CongestError;
use crate::fault::{FaultCounts, FaultKind, FaultPlan, FaultState, MsgFate};
use crate::metrics::Metrics;
use crate::node::NodeId;
use crate::payload::{bits_for_count, Payload};
use crate::reliable::{ReliableConfig, Wave};
use crate::trace::TraceSink;

/// Default multiplier: one message carries `DEFAULT_BANDWIDTH_FACTOR · ⌈log₂ n⌉` bits.
///
/// The model allows `O(log n)` bits per message; the factor of 16 lets one
/// message carry a small constant number of (vertex id, vertex id, weight)
/// records, which keeps the constants of the simulated algorithms close to
/// the paper's presentation.
pub const DEFAULT_BANDWIDTH_FACTOR: u64 = 16;

/// Unit-count threshold up to which [`Clique::route`] constructs (and, in
/// debug builds, verifies) the explicit König relay schedule. Larger
/// routings use the degree bound directly — the schedule's existence is
/// König's theorem.
pub const EXPLICIT_SCHEDULE_LIMIT: usize = 50_000;

/// Reusable per-call working memory of a [`Clique`].
///
/// Every buffer is either fixed-size (allocated once in the constructor)
/// or grows to the largest phase seen and is then reused. The dense `n²`
/// tallies are cleared sparsely: each write records its index in a touched
/// list, and the tally is zeroed through that list after the maximum is
/// read, so a phase touching `m` links costs `O(m)`, not `O(n²)`.
#[derive(Clone, Debug, Default)]
struct Scratch {
    /// Dense `n²` per-link bit tally for `exchange`, indexed `src · n + dst`.
    link_bits: Vec<u64>,
    /// Indices of `link_bits` written this call.
    touched_links: Vec<usize>,
    /// Dense `n²` per-link unit tally for `route`'s relay schedule.
    relay_units: Vec<u64>,
    /// Indices of `relay_units` written this call.
    touched_relays: Vec<usize>,
    /// Per-node outgoing bits (or units, in `route`).
    out_load: Vec<u64>,
    /// Per-node incoming bits (or units, in `route`).
    in_load: Vec<u64>,
    /// Dense `n²` per-`(dst, src)` message tally for arena placement,
    /// indexed `dst · n + src`; doubles as the write-cursor table during
    /// the placement pass.
    pair_counts: Vec<u32>,
    /// Copies of each send that arrive under the armed fault plan (0–2).
    fate_copies: Vec<u8>,
    /// Bit size of each envelope, computed once per call.
    bit_sizes: Vec<u64>,
    /// `route`'s demand multigraph, one entry per fragment unit.
    units: Vec<(usize, usize)>,
    /// Colors assigned to `units` by the König coloring.
    colors: Vec<usize>,
    /// Slot tables of the König coloring.
    coloring: ColoringScratch,
}

impl Scratch {
    fn new(n: usize) -> Self {
        Scratch {
            link_bits: vec![0; n * n],
            relay_units: vec![0; n * n],
            out_load: vec![0; n],
            in_load: vec![0; n],
            pair_counts: vec![0; n * n],
            ..Scratch::default()
        }
    }
}

/// A synchronous fully connected network of `n` nodes with `O(log n)`-bit links.
///
/// # Examples
///
/// ```
/// use qcc_congest::{Clique, Envelope, NodeId};
///
/// let mut net = Clique::new(4)?;
/// let sends = vec![Envelope::new(NodeId::new(0), NodeId::new(1), 7u64)];
/// let inboxes = net.exchange(sends)?;
/// assert_eq!(inboxes.of(NodeId::new(1)), &[(NodeId::new(0), 7u64)]);
/// assert!(net.rounds() >= 1);
/// # Ok::<(), qcc_congest::CongestError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Clique {
    n: usize,
    bandwidth_bits: u64,
    pub(crate) metrics: Metrics,
    scratch: Scratch,
    /// Active fault injection, `None` for a perfectly reliable network.
    /// With `None` every primitive keeps its exact raw code path, so
    /// round counts stay byte-identical to a fault-free build.
    pub(crate) faults: Option<FaultState>,
    /// Ack/retransmit envelope configuration; engages only together with
    /// `faults` (see [`Clique::envelope_active`]).
    pub(crate) reliable: Option<ReliableConfig>,
    /// When true, delivery stages `(dst, src, payload)` records and stable
    /// sorts them — the straightforward reference path. The default arena
    /// path places records by counting; `tests/` pin the two byte-identical.
    legacy_delivery: bool,
}

impl Clique {
    /// Creates an `n`-node network with the default bandwidth
    /// `DEFAULT_BANDWIDTH_FACTOR · ⌈log₂ n⌉` bits per link per round.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::EmptyNetwork`] if `n == 0`.
    pub fn new(n: usize) -> Result<Self, CongestError> {
        Self::with_bandwidth(n, DEFAULT_BANDWIDTH_FACTOR * bits_for_count(n.max(2)))
    }

    /// Creates an `n`-node network with an explicit per-link bandwidth in bits.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::EmptyNetwork`] if `n == 0`.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bits == 0`.
    pub fn with_bandwidth(n: usize, bandwidth_bits: u64) -> Result<Self, CongestError> {
        if n == 0 {
            return Err(CongestError::EmptyNetwork);
        }
        assert!(bandwidth_bits > 0, "bandwidth must be positive");
        Ok(Clique {
            n,
            bandwidth_bits,
            metrics: Metrics::new(),
            scratch: Scratch::new(n),
            faults: None,
            reliable: None,
            legacy_delivery: false,
        })
    }

    /// Number of nodes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Per-link bandwidth in bits per round.
    #[must_use]
    pub fn bandwidth_bits(&self) -> u64 {
        self.bandwidth_bits
    }

    /// Total rounds consumed so far.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.metrics.total_rounds()
    }

    /// Accumulated communication metrics.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Starts a new named accounting phase (see [`Metrics::begin_phase`]).
    pub fn begin_phase(&mut self, label: &str) {
        self.metrics.begin_phase(label);
    }

    /// Ends the current phase's leaf span (see [`Metrics::end_phase`]).
    pub fn end_phase(&mut self) {
        self.metrics.end_phase();
    }

    /// Opens an explicit grouping span (see [`Metrics::push_span`]).
    pub fn push_span(&mut self, label: &str) {
        self.metrics.push_span(label);
    }

    /// Closes the innermost grouping span (see [`Metrics::pop_span`]).
    pub fn pop_span(&mut self) {
        self.metrics.pop_span();
    }

    /// Closes every open span so an attached trace is well formed
    /// (see [`Metrics::close_all_spans`]).
    pub fn close_all_spans(&mut self) {
        self.metrics.close_all_spans();
    }

    /// Attaches an NDJSON trace sink (see [`Metrics::set_trace_sink`]).
    /// Tracing is pure observation: charged rounds are byte-identical with
    /// and without a sink.
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.metrics.set_trace_sink(sink);
    }

    /// Resets round and metric counters, keeping the topology.
    ///
    /// Any attached trace sink is dropped with the metrics.
    pub fn reset_metrics(&mut self) {
        self.metrics = Metrics::new();
    }

    /// Arms deterministic fault injection from `plan`.
    ///
    /// An empty plan (no rates, no crashes) stores nothing at all, so the
    /// primitives keep their exact raw code path and round accounting stays
    /// byte-identical to a network that never heard of faults.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = if plan.is_empty() {
            None
        } else {
            Some(FaultState::new(plan, self.n))
        };
    }

    /// Enables the ack/retransmit envelope (see [`crate::ReliableConfig`]).
    ///
    /// The envelope only changes behaviour while a non-empty fault plan is
    /// armed; on a reliable network it is configuration without effect.
    pub fn set_reliable_delivery(&mut self, cfg: ReliableConfig) {
        self.reliable = Some(cfg);
    }

    /// The armed fault plan, if any.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(|f| &f.plan)
    }

    /// The configured reliable-delivery envelope, if any.
    #[must_use]
    pub fn reliable_config(&self) -> Option<ReliableConfig> {
        self.reliable
    }

    /// Global tally of injected faults.
    #[must_use]
    pub fn fault_counts(&self) -> &FaultCounts {
        self.metrics.fault_counts()
    }

    /// True when communication runs through the reliable-delivery envelope:
    /// faults are armed *and* an envelope is configured.
    #[must_use]
    pub fn envelope_active(&self) -> bool {
        self.faults.is_some() && self.reliable.is_some()
    }

    /// True when the network delivers exactly what is sent: no fault plan
    /// armed and no reliable-delivery envelope. Bulk evaluators use this to
    /// decide whether a phase may be charged analytically via
    /// [`Clique::charge_exchange_tally`] with answers computed locally;
    /// lossy or enveloped networks need real payloads on the wire.
    #[must_use]
    pub fn is_transparent(&self) -> bool {
        self.faults.is_none() && self.reliable.is_none()
    }

    /// Label of the innermost open accounting phase, for fault diagnostics.
    pub(crate) fn phase_label(&self) -> String {
        self.metrics
            .current_phase()
            .unwrap_or("(unlabelled)")
            .to_string()
    }

    /// Per-communication-call fault bookkeeping: advances the fate stream
    /// and fires crash events whose round has arrived. No-op without faults.
    fn fault_call_begin(&mut self) {
        let Some(faults) = &mut self.faults else {
            return;
        };
        faults.begin_call();
        let newly_crashed = faults.update_crashes(self.metrics.total_rounds());
        for _ in 0..newly_crashed {
            self.metrics.record_fault(FaultKind::Crash);
        }
    }

    /// Enables (or disables) the staged-and-sorted reference delivery path.
    ///
    /// Both paths produce byte-identical inboxes, rounds, and metrics; the
    /// arena path is the fast default. The switch exists so equivalence
    /// tests can run the same schedule through both engines.
    pub fn set_legacy_delivery(&mut self, on: bool) {
        self.legacy_delivery = on;
    }

    /// Copies of message `idx` on `src → dst` that arrive under the armed
    /// fault plan, recording per-message fault events exactly as legacy
    /// per-message delivery did. Local messages never fault; messages
    /// touching a crashed endpoint vanish silently (the crash itself was
    /// recorded once by [`Clique::fault_call_begin`]).
    fn message_fate(&mut self, idx: usize, src: NodeId, dst: NodeId) -> u8 {
        if src == dst {
            return 1;
        }
        let fate = {
            let faults = self.faults.as_ref().expect("message_fate needs faults");
            if faults.is_crashed(src) || faults.is_crashed(dst) {
                return 0;
            }
            faults.fate(idx as u64, src, dst)
        };
        match fate {
            MsgFate::Deliver => 1,
            MsgFate::Drop => {
                self.metrics.record_fault(FaultKind::Drop);
                0
            }
            // Links are checksummed: a corrupted message is detected and
            // discarded by the receiver, not delivered mangled.
            MsgFate::Corrupt => {
                self.metrics.record_fault(FaultKind::Corrupt);
                0
            }
            MsgFate::Duplicate => {
                self.metrics.record_fault(FaultKind::Duplicate);
                2
            }
        }
    }

    /// Delivers `sends` into per-node inboxes, preserving the model's
    /// delivery order (destination; sender; submission order).
    ///
    /// The default engine places each record directly at its final arena
    /// offset via a `(dst, src)` counting pass — no per-node vectors and no
    /// sort. The legacy engine stages records and stable-sorts them; both
    /// are byte-identical (pinned by the inbox-equivalence tests).
    fn deliver<T: Payload>(&mut self, sends: Vec<Envelope<T>>) -> Inboxes<T> {
        let n = self.n;
        let faulty = self.faults.is_some();
        // Resolve fates first (recording fault events in submission order,
        // right after the comm event, as the trace format expects).
        self.scratch.fate_copies.clear();
        if faulty {
            for (idx, e) in sends.iter().enumerate() {
                let copies = self.message_fate(idx, e.src, e.dst);
                self.scratch.fate_copies.push(copies);
            }
        }

        if self.legacy_delivery {
            let mut staged: Vec<(NodeId, NodeId, T)> = Vec::with_capacity(sends.len());
            for (idx, e) in sends.into_iter().enumerate() {
                let copies = if faulty {
                    self.scratch.fate_copies[idx]
                } else {
                    1
                };
                if copies == 2 {
                    staged.push((e.dst, e.src, e.payload.clone()));
                }
                if copies >= 1 {
                    staged.push((e.dst, e.src, e.payload));
                }
            }
            return Inboxes::from_staged(n, staged);
        }

        let s = &mut self.scratch;
        // Pass 1: per-(dst, src) tallies of arriving copies.
        s.pair_counts.fill(0);
        let mut total = 0usize;
        for (idx, e) in sends.iter().enumerate() {
            let copies = if faulty {
                usize::from(s.fate_copies[idx])
            } else {
                1
            };
            s.pair_counts[e.dst.index() * n + e.src.index()] += copies as u32;
            total += copies;
        }
        // Pass 2: exclusive prefix sum in (dst, src) order turns the tally
        // into write cursors and yields the per-destination offsets.
        let mut starts = Vec::with_capacity(n + 1);
        starts.push(0usize);
        let mut run = 0usize;
        for d in 0..n {
            for src in 0..n {
                let cell = &mut s.pair_counts[d * n + src];
                let count = *cell as usize;
                *cell = run as u32;
                run += count;
            }
            starts.push(run);
        }
        debug_assert_eq!(run, total);
        // Pass 3: place each send (in submission order) at its cursor.
        // Within a (dst, src) pair cursors advance with submission order,
        // so the placement reproduces the stable sort without sorting.
        let mut slots: Vec<Option<(NodeId, T)>> = Vec::new();
        slots.resize_with(total, || None);
        for (idx, e) in sends.into_iter().enumerate() {
            let copies = if faulty {
                usize::from(s.fate_copies[idx])
            } else {
                1
            };
            if copies == 0 {
                continue;
            }
            let cell = e.dst.index() * n + e.src.index();
            for _ in 1..copies {
                let pos = s.pair_counts[cell] as usize;
                s.pair_counts[cell] += 1;
                slots[pos] = Some((e.src, e.payload.clone()));
            }
            let pos = s.pair_counts[cell] as usize;
            s.pair_counts[cell] += 1;
            slots[pos] = Some((e.src, e.payload));
        }
        let data: Vec<(NodeId, T)> = slots
            .into_iter()
            .map(|slot| slot.expect("tally placed every arriving copy"))
            .collect();
        Inboxes::from_parts(data, starts)
    }

    fn validate<T>(&self, sends: &[Envelope<T>]) -> Result<(), CongestError> {
        for e in sends {
            for node in [e.src, e.dst] {
                if node.index() >= self.n {
                    return Err(CongestError::UnknownNode { node, n: self.n });
                }
            }
        }
        Ok(())
    }

    /// Fills the bit-size cache for `sends`, one `bit_size()` call each.
    pub(crate) fn cache_bit_sizes<T: Payload>(&mut self, sends: &[Envelope<T>]) {
        self.scratch.bit_sizes.clear();
        self.scratch
            .bit_sizes
            .extend(sends.iter().map(|e| e.payload.bit_size()));
    }

    /// Delivers messages directly on their `(src, dst)` links.
    ///
    /// The phase costs `max over ordered pairs (u,v) of ⌈bits(u→v) / B⌉`
    /// rounds: links operate in parallel, and consecutive rounds on the same
    /// link transmit fragments of the queued payloads in order. Messages
    /// with `src == dst` are local and free.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::UnknownNode`] if any endpoint is out of range.
    pub fn exchange<T: Payload>(
        &mut self,
        sends: Vec<Envelope<T>>,
    ) -> Result<Inboxes<T>, CongestError> {
        self.validate(&sends)?;
        if self.envelope_active() {
            return self.deliver_reliably(sends, Wave::Exchange("exchange"));
        }
        self.cache_bit_sizes(&sends);
        Ok(self.exchange_presized(sends, "exchange"))
    }

    /// `exchange` body, assuming endpoints are validated and
    /// `scratch.bit_sizes[i]` already holds the size of `sends[i]`.
    /// `kind` tags the trace event (`broadcast` and `gossip` funnel here).
    pub(crate) fn exchange_presized<T: Payload>(
        &mut self,
        sends: Vec<Envelope<T>>,
        kind: &'static str,
    ) -> Inboxes<T> {
        self.fault_call_begin();
        let n = self.n;
        let s = &mut self.scratch;
        let faults = self.faults.as_ref();
        debug_assert_eq!(s.bit_sizes.len(), sends.len());
        s.out_load.fill(0);
        s.in_load.fill(0);
        let mut total_bits = 0u64;
        let mut message_count = 0u64;
        for (e, &bits) in sends.iter().zip(&s.bit_sizes) {
            // A fail-stopped sender emits nothing, so its messages are not
            // charged; a crashed *receiver*'s inbound links still carry the
            // (wasted) bits.
            let sender_up = faults.is_none_or(|f| !f.is_crashed(e.src));
            if e.src != e.dst && sender_up {
                let link = e.src.index() * n + e.dst.index();
                if s.link_bits[link] == 0 && bits > 0 {
                    s.touched_links.push(link);
                }
                s.link_bits[link] += bits;
                s.out_load[e.src.index()] += bits;
                s.in_load[e.dst.index()] += bits;
                total_bits += bits;
                message_count += 1;
            }
        }
        let max_link = s
            .touched_links
            .iter()
            .map(|&l| s.link_bits[l])
            .max()
            .unwrap_or(0);
        for &l in &s.touched_links {
            s.link_bits[l] = 0;
        }
        s.touched_links.clear();
        let rounds = max_link.div_ceil(self.bandwidth_bits);
        let max_out = s.out_load.iter().copied().max().unwrap_or(0);
        let max_in = s.in_load.iter().copied().max().unwrap_or(0);
        // Record the comm event before delivery so per-message fault events
        // in the trace follow the call that carried them.
        self.metrics.record_comm(
            kind,
            rounds,
            message_count,
            total_bits,
            max_link,
            max_out,
            max_in,
        );
        self.deliver(sends)
    }

    /// Charges one `exchange` phase from a pre-tallied link table instead of
    /// materialized envelopes: `link_msgs[src·n + dst]` is the number of
    /// messages queued on each ordered link, every message exactly
    /// `bits_per_msg` bits wide. Rounds, message and bit totals, per-link and
    /// per-node maxima, and the emitted trace event are byte-identical to
    /// [`Clique::exchange`] over the same traffic; diagonal cells are local
    /// messages and free, as in the materialized path. Returns the rounds
    /// charged.
    ///
    /// Only available on a transparent network ([`Clique::is_transparent`]):
    /// faulty or enveloped networks need real payloads on the wire to drop,
    /// duplicate, or acknowledge, so callers must fall back to
    /// [`Clique::exchange`] there.
    ///
    /// # Panics
    ///
    /// Panics if the network is not transparent or `link_msgs.len() ≠ n²`.
    pub fn charge_exchange_tally(
        &mut self,
        link_msgs: &[u32],
        bits_per_msg: u64,
        kind: &'static str,
    ) -> u64 {
        assert!(
            self.is_transparent(),
            "charge-only exchange requires a transparent network"
        );
        let n = self.n;
        assert_eq!(link_msgs.len(), n * n, "link table must be n × n");
        let s = &mut self.scratch;
        s.out_load.fill(0);
        s.in_load.fill(0);
        let mut total_bits = 0u64;
        let mut message_count = 0u64;
        let mut max_link = 0u64;
        for src in 0..n {
            let row = &link_msgs[src * n..(src + 1) * n];
            for (dst, &count) in row.iter().enumerate() {
                if count == 0 || src == dst {
                    continue;
                }
                let bits = u64::from(count) * bits_per_msg;
                message_count += u64::from(count);
                total_bits += bits;
                max_link = max_link.max(bits);
                s.out_load[src] += bits;
                s.in_load[dst] += bits;
            }
        }
        let rounds = max_link.div_ceil(self.bandwidth_bits);
        let max_out = s.out_load.iter().copied().max().unwrap_or(0);
        let max_in = s.in_load.iter().copied().max().unwrap_or(0);
        self.metrics.record_comm(
            kind,
            rounds,
            message_count,
            total_bits,
            max_link,
            max_out,
            max_in,
        );
        rounds
    }

    /// Charges one `route` phase from a pre-tallied link table instead of
    /// materialized envelopes, every message exactly `bits_per_msg` bits
    /// wide — but only when the fragment-unit multiset is past
    /// [`EXPLICIT_SCHEDULE_LIMIT`], where the materialized path also skips
    /// the explicit König schedule and records the degree bound `⌈Δ/n⌉` as
    /// the relay-link maximum. Below the limit the relay maximum comes from
    /// the actual coloring of the submission-ordered unit list, which a
    /// tally cannot reproduce: the call records **nothing** and returns
    /// `None`, and the caller must fall back to [`Clique::route`].
    ///
    /// On `Some(rounds)`, the recorded rounds, totals, maxima, and trace
    /// event are byte-identical to [`Clique::route`] over the same traffic.
    ///
    /// # Panics
    ///
    /// Panics if the network is not transparent or `link_msgs.len() ≠ n²`.
    pub fn charge_route_tally(&mut self, link_msgs: &[u32], bits_per_msg: u64) -> Option<u64> {
        assert!(
            self.is_transparent(),
            "charge-only route requires a transparent network"
        );
        let n = self.n;
        assert_eq!(link_msgs.len(), n * n, "link table must be n × n");
        let units_per_msg = bits_per_msg.div_ceil(self.bandwidth_bits).max(1);
        let s = &mut self.scratch;
        s.out_load.fill(0);
        s.in_load.fill(0);
        let mut unit_count = 0u64;
        let mut message_count = 0u64;
        for src in 0..n {
            let row = &link_msgs[src * n..(src + 1) * n];
            for (dst, &count) in row.iter().enumerate() {
                if count == 0 || src == dst {
                    continue;
                }
                let units = u64::from(count) * units_per_msg;
                message_count += u64::from(count);
                unit_count += units;
                s.out_load[src] += units;
                s.in_load[dst] += units;
            }
        }
        if unit_count as usize <= EXPLICIT_SCHEDULE_LIMIT {
            return None;
        }
        let total_bits = message_count * bits_per_msg;
        let max_out = s.out_load.iter().copied().max().unwrap_or(0);
        let max_in = s.in_load.iter().copied().max().unwrap_or(0);
        let delta = max_out.max(max_in);
        let batches = delta.div_ceil(n as u64);
        let rounds = 2 * batches;
        self.metrics.record_comm(
            "route",
            rounds,
            2 * unit_count,
            2 * total_bits,
            batches * self.bandwidth_bits,
            max_out * self.bandwidth_bits,
            max_in * self.bandwidth_bits,
        );
        Some(rounds)
    }

    /// Delivers messages through intermediate relays (Lemma 1 of the paper).
    ///
    /// Each payload is fragmented into *units* of at most `B` bits. The
    /// demand multigraph over units is edge-colored with `Δ` colors (the
    /// maximum per-node unit load) via König's theorem; color `c` routes its
    /// unit through relay node `c mod n` during batch `⌊c / n⌋`. Every batch
    /// takes exactly 2 rounds (one hop to the relay, one hop onward), so the
    /// phase costs `2·⌈Δ/n⌉` rounds.
    ///
    /// When no node sources or sinks more than `n` units this is the
    /// textbook 2-round guarantee.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::UnknownNode`] if any endpoint is out of range.
    pub fn route<T: Payload>(
        &mut self,
        sends: Vec<Envelope<T>>,
    ) -> Result<Inboxes<T>, CongestError> {
        self.validate(&sends)?;
        if self.envelope_active() {
            return self.deliver_reliably(sends, Wave::Route);
        }
        Ok(self.route_raw(sends))
    }

    /// `route` body, assuming endpoints are validated. Faults (if armed)
    /// apply per message after charging; the envelope is *not* consulted.
    pub(crate) fn route_raw<T: Payload>(&mut self, sends: Vec<Envelope<T>>) -> Inboxes<T> {
        self.fault_call_begin();
        self.cache_bit_sizes(&sends);
        let n = self.n;
        let s = &mut self.scratch;
        let faults = self.faults.as_ref();
        s.units.clear();
        s.out_load.fill(0);
        s.in_load.fill(0);
        let mut total_bits = 0u64;
        let mut unit_count = 0u64;
        for (e, &bits) in sends.iter().zip(&s.bit_sizes) {
            if e.src == e.dst || faults.is_some_and(|f| f.is_crashed(e.src)) {
                continue;
            }
            total_bits += bits;
            let k = bits.div_ceil(self.bandwidth_bits).max(1);
            unit_count += k;
            s.out_load[e.src.index()] += k;
            s.in_load[e.dst.index()] += k;
        }
        // The per-node unit loads are exactly the left/right degrees of the
        // demand multigraph, so Δ is their maximum.
        let max_out = s.out_load.iter().copied().max().unwrap_or(0);
        let max_in = s.in_load.iter().copied().max().unwrap_or(0);
        let delta = max_out.max(max_in);
        let batches = delta.div_ceil(n as u64);
        let rounds = 2 * batches;
        // Relay-link load: within one batch each (src, relay) and
        // (relay, dst) pair carries at most one unit, so the busiest link
        // carries at most `batches` units of ≤ B bits each. The explicit
        // König schedule is constructed (and checked) up to a size limit;
        // beyond it only the degree bound is computed — the coloring's
        // existence is König's theorem, and its cost (`O(m·Δ)`) is a
        // simulator-host concern, not a model concern. The unit multiset is
        // only materialized when the schedule actually gets built.
        let max_link_units = if unit_count as usize <= EXPLICIT_SCHEDULE_LIMIT {
            s.units.reserve(unit_count as usize);
            for (e, &bits) in sends.iter().zip(&s.bit_sizes) {
                if e.src == e.dst || faults.is_some_and(|f| f.is_crashed(e.src)) {
                    continue;
                }
                let k = bits.div_ceil(self.bandwidth_bits).max(1);
                let (src, dst) = (e.src.index(), e.dst.index());
                for _ in 0..k {
                    s.units.push((src, dst));
                }
            }
            let num_colors = color_bipartite_into(&s.units, n, n, &mut s.coloring, &mut s.colors);
            debug_assert!(is_proper_colors(&s.units, &s.colors, num_colors, n, n));
            for (i, &(src, dst)) in s.units.iter().enumerate() {
                let relay = s.colors[i] % n;
                for link in [src * n + relay, relay * n + dst] {
                    if s.relay_units[link] == 0 {
                        s.touched_relays.push(link);
                    }
                    s.relay_units[link] += 1;
                }
            }
            let max = s
                .touched_relays
                .iter()
                .map(|&l| s.relay_units[l])
                .max()
                .unwrap_or(0);
            for &l in &s.touched_relays {
                s.relay_units[l] = 0;
            }
            s.touched_relays.clear();
            max
        } else {
            batches
        };
        self.metrics.record_comm(
            "route",
            rounds,
            2 * unit_count,
            2 * total_bits,
            max_link_units * self.bandwidth_bits,
            max_out * self.bandwidth_bits,
            max_in * self.bandwidth_bits,
        );
        self.deliver(sends)
    }

    /// One node sends the same payload to every other node.
    ///
    /// Costs `⌈bits / B⌉` rounds: the broadcaster writes the same fragment
    /// on all of its `n − 1` links each round.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::UnknownNode`] if `src` is out of range.
    pub fn broadcast<T: Payload>(
        &mut self,
        src: NodeId,
        payload: T,
    ) -> Result<Inboxes<T>, CongestError> {
        if src.index() >= self.n {
            return Err(CongestError::UnknownNode {
                node: src,
                n: self.n,
            });
        }
        // The payload is identical on every link: size it once, not n − 1
        // times.
        let bits = payload.bit_size();
        let sends: Vec<Envelope<T>> = NodeId::all(self.n)
            .filter(|&dst| dst != src)
            .map(|dst| Envelope::new(src, dst, payload.clone()))
            .collect();
        if self.envelope_active() {
            return self.deliver_reliably(sends, Wave::Exchange("broadcast"));
        }
        self.scratch.bit_sizes.clear();
        self.scratch.bit_sizes.resize(sends.len(), bits);
        Ok(self.exchange_presized(sends, "broadcast"))
    }

    /// Every node broadcasts its own list of items to every other node.
    ///
    /// Returns, for each node, the concatenation of all nodes' lists as
    /// `(origin, item)` pairs (including its own items). Costs
    /// `⌈max node list bits / B⌉` rounds.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::UnknownNode`] if `items.len() != n` (reported
    /// as an unknown node at index `n`).
    pub fn gossip<T: Payload>(
        &mut self,
        items: Vec<Vec<T>>,
    ) -> Result<Vec<Vec<(NodeId, T)>>, CongestError> {
        if items.len() != self.n {
            return Err(CongestError::UnknownNode {
                node: NodeId::new(items.len()),
                n: self.n,
            });
        }
        // Each list is replicated to n − 1 destinations: size it once per
        // source and pre-fill the bit-size cache in send order.
        let mut sends = Vec::with_capacity(self.n.saturating_sub(1) * self.n);
        self.scratch.bit_sizes.clear();
        for (i, list) in items.iter().enumerate() {
            let src = NodeId::new(i);
            let bits = list.bit_size();
            for dst in NodeId::all(self.n) {
                if dst == src {
                    continue;
                }
                sends.push(Envelope::new(src, dst, list.clone()));
                self.scratch.bit_sizes.push(bits);
            }
        }
        let inboxes = if self.envelope_active() {
            self.deliver_reliably(sends, Wave::Exchange("gossip"))?
        } else {
            self.exchange_presized(sends, "gossip")
        };
        let mut out: Vec<Vec<(NodeId, T)>> = Vec::with_capacity(self.n);
        for (i, own) in items.into_iter().enumerate() {
            let me = NodeId::new(i);
            let inbox = inboxes.of(me);
            let mut all: Vec<(NodeId, T)> = Vec::with_capacity(
                own.len() + inbox.iter().map(|(_, list)| list.len()).sum::<usize>(),
            );
            all.extend(own.into_iter().map(|item| (me, item)));
            for (src, list) in inbox {
                for item in list {
                    all.push((*src, item.clone()));
                }
            }
            all.sort_by_key(|(src, _)| *src);
            out.push(all);
        }
        Ok(out)
    }

    /// Charges `rounds` synchronous rounds without moving data.
    ///
    /// Reserved for algorithm steps whose communication is analyzed
    /// analytically rather than executed (currently only used by tests and
    /// calibration code; every shipped algorithm executes its messages).
    pub fn charge_rounds(&mut self, rounds: u64) {
        self.metrics.record_comm("charge", rounds, 0, 0, 0, 0, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::RawBits;

    fn net(n: usize) -> Clique {
        Clique::new(n).expect("nonzero n")
    }

    #[test]
    fn empty_network_is_rejected() {
        assert_eq!(Clique::new(0).unwrap_err(), CongestError::EmptyNetwork);
    }

    #[test]
    fn unknown_node_is_rejected() {
        let mut c = net(2);
        let bad = vec![Envelope::new(NodeId::new(0), NodeId::new(5), 1u64)];
        assert!(matches!(
            c.exchange(bad),
            Err(CongestError::UnknownNode { .. })
        ));
    }

    #[test]
    fn broadcast_from_unknown_node_is_rejected() {
        let mut c = net(2);
        assert!(matches!(
            c.broadcast(NodeId::new(7), 1u64),
            Err(CongestError::UnknownNode { .. })
        ));
    }

    #[test]
    fn single_small_message_takes_one_round() {
        let mut c = net(4);
        let sends = vec![Envelope::new(NodeId::new(0), NodeId::new(1), true)];
        let inboxes = c.exchange(sends).unwrap();
        assert_eq!(c.rounds(), 1);
        assert_eq!(inboxes.of(NodeId::new(1)).len(), 1);
    }

    #[test]
    fn local_messages_are_free() {
        let mut c = net(4);
        let sends = vec![Envelope::new(NodeId::new(2), NodeId::new(2), 9u64)];
        let inboxes = c.exchange(sends).unwrap();
        assert_eq!(c.rounds(), 0);
        assert_eq!(inboxes.of(NodeId::new(2)), &[(NodeId::new(2), 9u64)]);
    }

    #[test]
    fn link_rounds_scale_with_queued_bits() {
        let mut c = Clique::with_bandwidth(3, 32).unwrap();
        // 5 messages of 32 bits on the same link: 5 rounds
        let sends: Vec<_> = (0..5)
            .map(|_| Envelope::new(NodeId::new(0), NodeId::new(1), 7u32))
            .collect();
        c.exchange(sends).unwrap();
        assert_eq!(c.rounds(), 5);
    }

    #[test]
    fn parallel_links_do_not_add_rounds() {
        let mut c = Clique::with_bandwidth(4, 32).unwrap();
        // every node sends one 32-bit message to its successor: 1 round
        let sends: Vec<_> = (0..4)
            .map(|u| Envelope::new(NodeId::new(u), NodeId::new((u + 1) % 4), 7u32))
            .collect();
        c.exchange(sends).unwrap();
        assert_eq!(c.rounds(), 1);
    }

    #[test]
    fn oversized_message_fragments_across_rounds() {
        let mut c = Clique::with_bandwidth(2, 10).unwrap();
        let sends = vec![Envelope::new(
            NodeId::new(0),
            NodeId::new(1),
            RawBits::new(0, 35),
        )];
        c.exchange(sends).unwrap();
        assert_eq!(c.rounds(), 4); // ceil(35/10)
    }

    #[test]
    fn lemma1_balanced_set_takes_two_rounds() {
        // every node sends exactly n unit messages, one per destination,
        // but all concentrated through the demand graph: still 2 rounds.
        let n = 8;
        let mut c = Clique::with_bandwidth(n, 16).unwrap();
        let mut sends = Vec::new();
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    sends.push(Envelope::new(
                        NodeId::new(u),
                        NodeId::new(v),
                        RawBits::new(0, 16),
                    ));
                }
            }
        }
        c.route(sends).unwrap();
        assert_eq!(c.rounds(), 2);
    }

    #[test]
    fn lemma1_hot_pair_still_takes_two_rounds() {
        // n messages from node 0 all destined to node 1: direct delivery
        // would take n rounds, Lemma 1 relays them in 2.
        let n = 8;
        let mut c = Clique::with_bandwidth(n, 16).unwrap();
        let sends: Vec<_> = (0..n)
            .map(|i| Envelope::new(NodeId::new(0), NodeId::new(1), RawBits::new(i as u64, 16)))
            .collect();
        let inboxes = c.route(sends).unwrap();
        assert_eq!(c.rounds(), 2);
        assert_eq!(inboxes.of(NodeId::new(1)).len(), n);
    }

    #[test]
    fn lemma1_overloaded_set_scales_linearly() {
        // 3n units out of one node: 2 * ceil(3n/n) = 6 rounds
        let n = 4;
        let mut c = Clique::with_bandwidth(n, 16).unwrap();
        let mut sends = Vec::new();
        for rep in 0..3 {
            for v in 1..n {
                sends.push(Envelope::new(
                    NodeId::new(0),
                    NodeId::new(v),
                    RawBits::new(rep, 16),
                ));
            }
            sends.push(Envelope::new(
                NodeId::new(0),
                NodeId::new(1),
                RawBits::new(rep, 16),
            ));
        }
        // loads: out(0) = 3 * n = 12 units -> delta = 12 -> 2*ceil(12/4)=6
        c.route(sends).unwrap();
        assert_eq!(c.rounds(), 6);
    }

    #[test]
    fn route_delivers_every_payload() {
        let n = 5;
        let mut c = net(n);
        let mut sends = Vec::new();
        for u in 0..n {
            for v in 0..n {
                sends.push(Envelope::new(
                    NodeId::new(u),
                    NodeId::new(v),
                    (u as u64) * 100 + v as u64,
                ));
            }
        }
        let inboxes = c.route(sends).unwrap();
        for v in 0..n {
            let inbox = inboxes.of(NodeId::new(v));
            assert_eq!(inbox.len(), n);
            for (src, payload) in inbox {
                assert_eq!(*payload, (src.index() as u64) * 100 + v as u64);
            }
        }
    }

    #[test]
    fn broadcast_reaches_everyone_in_fragment_rounds() {
        let mut c = Clique::with_bandwidth(6, 8).unwrap();
        let inboxes = c.broadcast(NodeId::new(2), RawBits::new(1, 20)).unwrap();
        assert_eq!(c.rounds(), 3); // ceil(20/8)
        for v in 0..6 {
            if v == 2 {
                assert!(inboxes.of(NodeId::new(v)).is_empty());
            } else {
                assert_eq!(inboxes.of(NodeId::new(v)).len(), 1);
            }
        }
    }

    #[test]
    fn gossip_distributes_all_lists() {
        let mut c = net(3);
        let items = vec![vec![10u64], vec![20u64, 21u64], vec![]];
        let all = c.gossip(items).unwrap();
        for node_view in &all {
            let values: Vec<u64> = node_view.iter().map(|(_, x)| *x).collect();
            assert_eq!(values, vec![10, 20, 21]);
        }
    }

    #[test]
    fn gossip_wrong_arity_is_rejected() {
        let mut c = net(3);
        assert!(c.gossip(vec![vec![1u64]]).is_err());
    }

    #[test]
    fn phases_capture_round_breakdown() {
        let mut c = net(4);
        c.begin_phase("first");
        c.exchange(vec![Envelope::new(NodeId::new(0), NodeId::new(1), 1u64)])
            .unwrap();
        c.begin_phase("second");
        c.exchange(vec![Envelope::new(NodeId::new(1), NodeId::new(2), 1u64)])
            .unwrap();
        assert_eq!(c.metrics().phases().len(), 2);
        assert_eq!(
            c.metrics().rounds_with_prefix("first"),
            c.metrics().phases()[0].rounds
        );
    }

    #[test]
    fn reset_clears_counters() {
        let mut c = net(4);
        c.exchange(vec![Envelope::new(NodeId::new(0), NodeId::new(1), 1u64)])
            .unwrap();
        assert!(c.rounds() > 0);
        c.reset_metrics();
        assert_eq!(c.rounds(), 0);
    }

    #[test]
    fn scratch_does_not_leak_between_calls() {
        // two identical exchanges on one network must each charge the same
        // rounds: a stale link tally would inflate the second.
        let mut c = Clique::with_bandwidth(3, 32).unwrap();
        let mk = || vec![Envelope::new(NodeId::new(0), NodeId::new(1), 7u32)];
        c.exchange(mk()).unwrap();
        assert_eq!(c.rounds(), 1);
        c.exchange(mk()).unwrap();
        assert_eq!(c.rounds(), 2);
        c.route(mk()).unwrap();
        let after_route = c.rounds();
        c.route(mk()).unwrap();
        assert_eq!(c.rounds() - after_route, after_route - 2);
    }

    /// One 32-bit message per node to its successor: a single round at the
    /// default bandwidth for every `n` used in these tests.
    fn all_to_successor(n: usize) -> Vec<Envelope<u32>> {
        (0..n)
            .map(|u| Envelope::new(NodeId::new(u), NodeId::new((u + 1) % n), u as u32))
            .collect()
    }

    fn drop_plan(rate: f64, seed: u64) -> FaultPlan {
        FaultPlan {
            drop_rate: rate,
            seed,
            ..FaultPlan::default()
        }
    }

    #[test]
    fn empty_fault_plan_arms_nothing() {
        let mut c = net(4);
        c.set_fault_plan(FaultPlan::default());
        assert!(c.fault_plan().is_none());
        assert!(!c.envelope_active());
        c.exchange(all_to_successor(4)).unwrap();
        assert_eq!(c.fault_counts().total(), 0);
    }

    #[test]
    fn dropped_messages_are_charged_but_not_delivered() {
        let n = 8;
        let run = |seed: u64| {
            let mut c = net(n);
            c.set_fault_plan(drop_plan(0.5, seed));
            let inboxes = c.exchange(all_to_successor(n)).unwrap();
            (c.rounds(), inboxes.message_count(), c.fault_counts().drops)
        };
        let (rounds, delivered, drops) = run(7);
        // The wire carried every message even though some never arrived.
        assert_eq!(rounds, 1);
        assert_eq!(delivered as u64 + drops, n as u64);
        assert!(drops > 0, "rate 0.5 over 8 messages should drop something");
        // Same seed, same fates; this is what makes failures replayable.
        assert_eq!(run(7), (rounds, delivered, drops));
        assert_ne!(run(7).1, run(8).1, "different seeds should differ here");
    }

    #[test]
    fn duplicated_messages_arrive_twice() {
        let n = 4;
        let mut c = net(n);
        c.set_fault_plan(FaultPlan {
            duplicate_rate: 1.0,
            ..FaultPlan::default()
        });
        let inboxes = c.exchange(all_to_successor(n)).unwrap();
        assert_eq!(inboxes.message_count(), 2 * n);
        assert_eq!(c.fault_counts().duplications, n as u64);
        assert_eq!(c.rounds(), 1, "duplication is delivery-level, not wire");
    }

    #[test]
    fn crashed_sender_is_silent_and_free() {
        let n = 4;
        let mut c = net(n);
        c.set_fault_plan(FaultPlan {
            crashes: vec![(NodeId::new(0), 0)],
            ..FaultPlan::default()
        });
        let sends = vec![Envelope::new(NodeId::new(0), NodeId::new(1), 5u32)];
        let inboxes = c.exchange(sends).unwrap();
        assert_eq!(c.rounds(), 0, "a fail-stopped sender emits nothing");
        assert_eq!(inboxes.message_count(), 0);
        assert_eq!(c.fault_counts().crashes, 1);
        // The crash is recorded once, not once per subsequent call.
        c.exchange(vec![Envelope::new(NodeId::new(1), NodeId::new(2), 5u64)])
            .unwrap();
        assert_eq!(c.fault_counts().crashes, 1);
    }

    #[test]
    fn crashed_receiver_still_costs_the_sender() {
        let n = 4;
        let mut c = net(n);
        c.set_fault_plan(FaultPlan {
            crashes: vec![(NodeId::new(1), 0)],
            ..FaultPlan::default()
        });
        let sends = vec![Envelope::new(NodeId::new(0), NodeId::new(1), 5u32)];
        let inboxes = c.exchange(sends).unwrap();
        assert_eq!(c.rounds(), 1, "bits to a dead node still occupy the link");
        assert_eq!(inboxes.message_count(), 0);
    }

    #[test]
    fn route_applies_fates_per_message() {
        let n = 8;
        let mut c = net(n);
        c.set_fault_plan(drop_plan(0.5, 3));
        let inboxes = c.route(all_to_successor(n)).unwrap();
        assert_eq!(c.rounds(), 2, "Lemma 1 charge is fault-independent");
        assert_eq!(
            inboxes.message_count() as u64 + c.fault_counts().drops,
            n as u64
        );
        assert!(c.fault_counts().drops > 0);
    }

    #[test]
    fn envelope_masks_heavy_drop_rates() {
        let n = 8;
        let mut raw = net(n);
        raw.exchange(all_to_successor(n)).unwrap();
        let raw_rounds = raw.rounds();

        let mut c = net(n);
        c.set_fault_plan(drop_plan(0.4, 11));
        c.set_reliable_delivery(ReliableConfig::default());
        assert!(c.envelope_active());
        let inboxes = c.exchange(all_to_successor(n)).unwrap();
        for u in 0..n {
            let inbox = inboxes.of(NodeId::new((u + 1) % n));
            assert_eq!(inbox, &[(NodeId::new(u), u as u32)]);
        }
        assert!(
            c.rounds() > raw_rounds,
            "retransmits and acks must cost extra rounds ({} vs {raw_rounds})",
            c.rounds()
        );
        assert!(c.fault_counts().drops > 0);
    }

    #[test]
    fn envelope_reports_delivery_failure_when_budget_runs_out() {
        let mut c = net(4);
        c.set_fault_plan(drop_plan(1.0, 1));
        c.set_reliable_delivery(ReliableConfig {
            max_retries: 2,
            backoff_base: 1,
        });
        c.begin_phase("doomed");
        let err = c.exchange(all_to_successor(4)).unwrap_err();
        match err {
            CongestError::DeliveryFailed {
                phase,
                undelivered,
                attempts,
            } => {
                assert_eq!(phase, "doomed");
                assert_eq!(undelivered, 4);
                assert_eq!(attempts, 3, "initial wave plus two retries");
            }
            other => panic!("expected DeliveryFailed, got {other:?}"),
        }
        // Backoff before waves 1 and 2 is charged: 1 + 2 idle rounds on top
        // of 3 data waves of ⌈(32 + 2 seq bits) / 32⌉ = 2 rounds each (acks
        // never fire — nothing arrives).
        assert_eq!(c.rounds(), 3 * 2 + 1 + 2);
    }

    #[test]
    fn envelope_blames_a_crashed_endpoint() {
        let mut c = net(4);
        c.set_fault_plan(FaultPlan {
            crashes: vec![(NodeId::new(2), 0)],
            ..FaultPlan::default()
        });
        c.set_reliable_delivery(ReliableConfig {
            max_retries: 1,
            backoff_base: 0,
        });
        c.begin_phase("gather");
        let err = c
            .exchange(vec![Envelope::new(NodeId::new(0), NodeId::new(2), 9u64)])
            .unwrap_err();
        assert_eq!(
            err,
            CongestError::NodeCrashed {
                node: NodeId::new(2),
                phase: "gather".into()
            }
        );
    }

    #[test]
    fn envelope_preserves_gossip_and_broadcast_semantics() {
        let n = 5;
        let mut c = net(n);
        c.set_fault_plan(drop_plan(0.3, 21));
        c.set_reliable_delivery(ReliableConfig::default());
        let items: Vec<Vec<u64>> = (0..n).map(|i| vec![i as u64 * 10]).collect();
        let all = c.gossip(items).unwrap();
        for view in &all {
            let values: Vec<u64> = view.iter().map(|(_, x)| *x).collect();
            assert_eq!(values, vec![0, 10, 20, 30, 40]);
        }
        let inboxes = c.broadcast(NodeId::new(0), 7u64).unwrap();
        for v in 1..n {
            assert_eq!(inboxes.of(NodeId::new(v)), &[(NodeId::new(0), 7u64)]);
        }
    }

    #[test]
    fn faults_are_visible_in_metrics_spans() {
        let mut c = net(6);
        c.set_fault_plan(drop_plan(0.5, 2));
        c.push_span("phase-a");
        c.exchange(all_to_successor(6)).unwrap();
        c.pop_span();
        let drops = c.fault_counts().drops;
        assert!(drops > 0);
        let span = &c.metrics().spans()[0];
        assert_eq!(span.faults.drops, drops);
    }

    #[test]
    fn zero_bit_payloads_cost_nothing() {
        let mut c = Clique::with_bandwidth(4, 16).unwrap();
        let sends = vec![Envelope::new(
            NodeId::new(0),
            NodeId::new(1),
            RawBits::new(0, 0),
        )];
        let inboxes = c.exchange(sends).unwrap();
        assert_eq!(c.rounds(), 0);
        assert_eq!(inboxes.of(NodeId::new(1)).len(), 1);
    }
}
