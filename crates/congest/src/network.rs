//! The synchronous CONGEST-CLIQUE network.
//!
//! [`Clique`] simulates `n` nodes connected by a complete graph of reliable
//! links. Time advances in synchronous rounds; in each round every ordered
//! pair of nodes may carry one message of at most `B = Θ(log n)` bits.
//! The simulator executes message schedules exactly and charges rounds
//! according to the model's rules:
//!
//! * **Direct exchange** ([`Clique::exchange`]): messages travel on the
//!   `(src, dst)` link; a phase in which the busiest link carries `L` bits
//!   takes `⌈L / B⌉` rounds (all links operate in parallel).
//! * **Routed exchange** ([`Clique::route`]): implements Lemma 1 of the
//!   paper (Dolev, Lenzen & Peled): any message set in which no node sends
//!   or receives more than `n` message units is delivered in 2 rounds via
//!   intermediate relays, chosen by an exact König edge coloring of the
//!   demand multigraph. Heavier sets take `2·⌈Δ/n⌉` rounds where `Δ` is the
//!   maximum per-node unit load.
//!
//! Local computation is free, as in the model. Messages from a node to
//! itself are local and cost nothing.

use crate::coloring::{color_bipartite, max_degree};
use crate::envelope::{Envelope, Inboxes};
use crate::error::CongestError;
use crate::metrics::Metrics;
use crate::node::NodeId;
use crate::payload::{bits_for_count, Payload};
use std::collections::HashMap;

/// Default multiplier: one message carries `DEFAULT_BANDWIDTH_FACTOR · ⌈log₂ n⌉` bits.
///
/// The model allows `O(log n)` bits per message; the factor of 16 lets one
/// message carry a small constant number of (vertex id, vertex id, weight)
/// records, which keeps the constants of the simulated algorithms close to
/// the paper's presentation.
pub const DEFAULT_BANDWIDTH_FACTOR: u64 = 16;

/// Unit-count threshold up to which [`Clique::route`] constructs (and, in
/// debug builds, verifies) the explicit König relay schedule. Larger
/// routings use the degree bound directly — the schedule's existence is
/// König's theorem.
pub const EXPLICIT_SCHEDULE_LIMIT: usize = 50_000;

/// A synchronous fully connected network of `n` nodes with `O(log n)`-bit links.
///
/// # Examples
///
/// ```
/// use qcc_congest::{Clique, Envelope, NodeId};
///
/// let mut net = Clique::new(4)?;
/// let sends = vec![Envelope::new(NodeId::new(0), NodeId::new(1), 7u64)];
/// let inboxes = net.exchange(sends)?;
/// assert_eq!(inboxes.of(NodeId::new(1)), &[(NodeId::new(0), 7u64)]);
/// assert!(net.rounds() >= 1);
/// # Ok::<(), qcc_congest::CongestError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Clique {
    n: usize,
    bandwidth_bits: u64,
    metrics: Metrics,
}

impl Clique {
    /// Creates an `n`-node network with the default bandwidth
    /// `DEFAULT_BANDWIDTH_FACTOR · ⌈log₂ n⌉` bits per link per round.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::EmptyNetwork`] if `n == 0`.
    pub fn new(n: usize) -> Result<Self, CongestError> {
        Self::with_bandwidth(n, DEFAULT_BANDWIDTH_FACTOR * bits_for_count(n.max(2)))
    }

    /// Creates an `n`-node network with an explicit per-link bandwidth in bits.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::EmptyNetwork`] if `n == 0`.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bits == 0`.
    pub fn with_bandwidth(n: usize, bandwidth_bits: u64) -> Result<Self, CongestError> {
        if n == 0 {
            return Err(CongestError::EmptyNetwork);
        }
        assert!(bandwidth_bits > 0, "bandwidth must be positive");
        Ok(Clique { n, bandwidth_bits, metrics: Metrics::new() })
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Per-link bandwidth in bits per round.
    pub fn bandwidth_bits(&self) -> u64 {
        self.bandwidth_bits
    }

    /// Total rounds consumed so far.
    pub fn rounds(&self) -> u64 {
        self.metrics.total_rounds()
    }

    /// Accumulated communication metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Starts a new named accounting phase (see [`Metrics::begin_phase`]).
    pub fn begin_phase(&mut self, label: &str) {
        self.metrics.begin_phase(label);
    }

    /// Resets round and metric counters, keeping the topology.
    pub fn reset_metrics(&mut self) {
        self.metrics = Metrics::new();
    }

    fn validate<T>(&self, sends: &[Envelope<T>]) -> Result<(), CongestError> {
        for e in sends {
            for node in [e.src, e.dst] {
                if node.index() >= self.n {
                    return Err(CongestError::UnknownNode { node, n: self.n });
                }
            }
        }
        Ok(())
    }

    /// Delivers messages directly on their `(src, dst)` links.
    ///
    /// The phase costs `max over ordered pairs (u,v) of ⌈bits(u→v) / B⌉`
    /// rounds: links operate in parallel, and consecutive rounds on the same
    /// link transmit fragments of the queued payloads in order. Messages
    /// with `src == dst` are local and free.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::UnknownNode`] if any endpoint is out of range.
    pub fn exchange<T: Payload>(
        &mut self,
        sends: Vec<Envelope<T>>,
    ) -> Result<Inboxes<T>, CongestError> {
        self.validate(&sends)?;
        let mut link_bits: HashMap<(usize, usize), u64> = HashMap::new();
        let mut out_bits = vec![0u64; self.n];
        let mut in_bits = vec![0u64; self.n];
        let mut total_bits = 0u64;
        let mut message_count = 0u64;
        let mut inboxes = Inboxes::empty(self.n);
        for e in sends {
            let bits = e.payload.bit_size();
            if e.src != e.dst {
                *link_bits.entry((e.src.index(), e.dst.index())).or_insert(0) += bits;
                out_bits[e.src.index()] += bits;
                in_bits[e.dst.index()] += bits;
                total_bits += bits;
                message_count += 1;
            }
            inboxes.push(e.dst, e.src, e.payload);
        }
        inboxes.sort();
        let max_link = link_bits.values().copied().max().unwrap_or(0);
        let rounds = max_link.div_ceil(self.bandwidth_bits);
        self.metrics.record_exchange(
            rounds,
            message_count,
            total_bits,
            max_link,
            out_bits.iter().copied().max().unwrap_or(0),
            in_bits.iter().copied().max().unwrap_or(0),
        );
        Ok(inboxes)
    }

    /// Delivers messages through intermediate relays (Lemma 1 of the paper).
    ///
    /// Each payload is fragmented into *units* of at most `B` bits. The
    /// demand multigraph over units is edge-colored with `Δ` colors (the
    /// maximum per-node unit load) via König's theorem; color `c` routes its
    /// unit through relay node `c mod n` during batch `⌊c / n⌋`. Every batch
    /// takes exactly 2 rounds (one hop to the relay, one hop onward), so the
    /// phase costs `2·⌈Δ/n⌉` rounds.
    ///
    /// When no node sources or sinks more than `n` units this is the
    /// textbook 2-round guarantee.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::UnknownNode`] if any endpoint is out of range.
    pub fn route<T: Payload>(
        &mut self,
        sends: Vec<Envelope<T>>,
    ) -> Result<Inboxes<T>, CongestError> {
        self.validate(&sends)?;
        let mut units: Vec<(usize, usize)> = Vec::new();
        let mut total_bits = 0u64;
        let mut inboxes = Inboxes::empty(self.n);
        for e in &sends {
            if e.src == e.dst {
                continue;
            }
            let bits = e.payload.bit_size();
            total_bits += bits;
            let k = bits.div_ceil(self.bandwidth_bits).max(1);
            for _ in 0..k {
                units.push((e.src.index(), e.dst.index()));
            }
        }
        let delta = max_degree(&units, self.n, self.n);
        let batches = (delta as u64).div_ceil(self.n as u64);
        let rounds = 2 * batches;
        // Relay-link load: within one batch each (src, relay) and
        // (relay, dst) pair carries at most one unit, so the busiest link
        // carries at most `batches` units of ≤ B bits each. The explicit
        // König schedule is constructed (and checked) up to a size limit;
        // beyond it only the degree bound is computed — the coloring's
        // existence is König's theorem, and its cost (`O(m·Δ)`) is a
        // simulator-host concern, not a model concern.
        let max_link_units = if units.len() <= EXPLICIT_SCHEDULE_LIMIT {
            let coloring = color_bipartite(&units, self.n, self.n);
            debug_assert!(crate::coloring::is_proper(&units, &coloring, self.n, self.n));
            let mut relay_link_units: HashMap<(usize, usize), u64> = HashMap::new();
            for (i, &(src, dst)) in units.iter().enumerate() {
                let relay = coloring.colors[i] % self.n;
                *relay_link_units.entry((src, relay)).or_insert(0) += 1;
                *relay_link_units.entry((relay, dst)).or_insert(0) += 1;
            }
            relay_link_units.values().copied().max().unwrap_or(0)
        } else {
            batches
        };
        let unit_count = units.len() as u64;
        let mut out_units = vec![0u64; self.n];
        let mut in_units = vec![0u64; self.n];
        for &(src, dst) in &units {
            out_units[src] += 1;
            in_units[dst] += 1;
        }
        self.metrics.record_exchange(
            rounds,
            2 * unit_count,
            2 * total_bits,
            max_link_units * self.bandwidth_bits,
            out_units.iter().copied().max().unwrap_or(0) * self.bandwidth_bits,
            in_units.iter().copied().max().unwrap_or(0) * self.bandwidth_bits,
        );
        for e in sends {
            inboxes.push(e.dst, e.src, e.payload);
        }
        inboxes.sort();
        Ok(inboxes)
    }

    /// One node sends the same payload to every other node.
    ///
    /// Costs `⌈bits / B⌉` rounds: the broadcaster writes the same fragment
    /// on all of its `n − 1` links each round.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::UnknownNode`] if `src` is out of range.
    pub fn broadcast<T: Payload>(
        &mut self,
        src: NodeId,
        payload: T,
    ) -> Result<Inboxes<T>, CongestError> {
        let sends: Vec<Envelope<T>> = NodeId::all(self.n)
            .filter(|&dst| dst != src)
            .map(|dst| Envelope::new(src, dst, payload.clone()))
            .collect();
        self.exchange(sends)
    }

    /// Every node broadcasts its own list of items to every other node.
    ///
    /// Returns, for each node, the concatenation of all nodes' lists as
    /// `(origin, item)` pairs (including its own items). Costs
    /// `⌈max node list bits / B⌉` rounds.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::UnknownNode`] if `items.len() != n` (reported
    /// as an unknown node at index `n`).
    pub fn gossip<T: Payload>(
        &mut self,
        items: Vec<Vec<T>>,
    ) -> Result<Vec<Vec<(NodeId, T)>>, CongestError> {
        if items.len() != self.n {
            return Err(CongestError::UnknownNode { node: NodeId::new(items.len()), n: self.n });
        }
        let mut sends = Vec::new();
        for (i, list) in items.iter().enumerate() {
            let src = NodeId::new(i);
            for dst in NodeId::all(self.n) {
                if dst == src {
                    continue;
                }
                sends.push(Envelope::new(src, dst, list.clone()));
            }
        }
        let inboxes = self.exchange(sends)?;
        let mut out: Vec<Vec<(NodeId, T)>> = Vec::with_capacity(self.n);
        for (i, own) in items.into_iter().enumerate() {
            let me = NodeId::new(i);
            let mut all: Vec<(NodeId, T)> =
                own.into_iter().map(|item| (me, item)).collect();
            for (src, list) in inboxes.of(me) {
                for item in list {
                    all.push((*src, item.clone()));
                }
            }
            all.sort_by_key(|(src, _)| *src);
            out.push(all);
        }
        Ok(out)
    }

    /// Charges `rounds` synchronous rounds without moving data.
    ///
    /// Reserved for algorithm steps whose communication is analyzed
    /// analytically rather than executed (currently only used by tests and
    /// calibration code; every shipped algorithm executes its messages).
    pub fn charge_rounds(&mut self, rounds: u64) {
        self.metrics.record_exchange(rounds, 0, 0, 0, 0, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::RawBits;

    fn net(n: usize) -> Clique {
        Clique::new(n).expect("nonzero n")
    }

    #[test]
    fn empty_network_is_rejected() {
        assert_eq!(Clique::new(0).unwrap_err(), CongestError::EmptyNetwork);
    }

    #[test]
    fn unknown_node_is_rejected() {
        let mut c = net(2);
        let bad = vec![Envelope::new(NodeId::new(0), NodeId::new(5), 1u64)];
        assert!(matches!(c.exchange(bad), Err(CongestError::UnknownNode { .. })));
    }

    #[test]
    fn single_small_message_takes_one_round() {
        let mut c = net(4);
        let sends = vec![Envelope::new(NodeId::new(0), NodeId::new(1), true)];
        let inboxes = c.exchange(sends).unwrap();
        assert_eq!(c.rounds(), 1);
        assert_eq!(inboxes.of(NodeId::new(1)).len(), 1);
    }

    #[test]
    fn local_messages_are_free() {
        let mut c = net(4);
        let sends = vec![Envelope::new(NodeId::new(2), NodeId::new(2), 9u64)];
        let inboxes = c.exchange(sends).unwrap();
        assert_eq!(c.rounds(), 0);
        assert_eq!(inboxes.of(NodeId::new(2)), &[(NodeId::new(2), 9u64)]);
    }

    #[test]
    fn link_rounds_scale_with_queued_bits() {
        let mut c = Clique::with_bandwidth(3, 32).unwrap();
        // 5 messages of 32 bits on the same link: 5 rounds
        let sends: Vec<_> = (0..5)
            .map(|_| Envelope::new(NodeId::new(0), NodeId::new(1), 7u32))
            .collect();
        c.exchange(sends).unwrap();
        assert_eq!(c.rounds(), 5);
    }

    #[test]
    fn parallel_links_do_not_add_rounds() {
        let mut c = Clique::with_bandwidth(4, 32).unwrap();
        // every node sends one 32-bit message to its successor: 1 round
        let sends: Vec<_> = (0..4)
            .map(|u| Envelope::new(NodeId::new(u), NodeId::new((u + 1) % 4), 7u32))
            .collect();
        c.exchange(sends).unwrap();
        assert_eq!(c.rounds(), 1);
    }

    #[test]
    fn oversized_message_fragments_across_rounds() {
        let mut c = Clique::with_bandwidth(2, 10).unwrap();
        let sends = vec![Envelope::new(NodeId::new(0), NodeId::new(1), RawBits::new(0, 35))];
        c.exchange(sends).unwrap();
        assert_eq!(c.rounds(), 4); // ceil(35/10)
    }

    #[test]
    fn lemma1_balanced_set_takes_two_rounds() {
        // every node sends exactly n unit messages, one per destination,
        // but all concentrated through the demand graph: still 2 rounds.
        let n = 8;
        let mut c = Clique::with_bandwidth(n, 16).unwrap();
        let mut sends = Vec::new();
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    sends.push(Envelope::new(NodeId::new(u), NodeId::new(v), RawBits::new(0, 16)));
                }
            }
        }
        c.route(sends).unwrap();
        assert_eq!(c.rounds(), 2);
    }

    #[test]
    fn lemma1_hot_pair_still_takes_two_rounds() {
        // n messages from node 0 all destined to node 1: direct delivery
        // would take n rounds, Lemma 1 relays them in 2.
        let n = 8;
        let mut c = Clique::with_bandwidth(n, 16).unwrap();
        let sends: Vec<_> = (0..n)
            .map(|i| Envelope::new(NodeId::new(0), NodeId::new(1), RawBits::new(i as u64, 16)))
            .collect();
        let inboxes = c.route(sends).unwrap();
        assert_eq!(c.rounds(), 2);
        assert_eq!(inboxes.of(NodeId::new(1)).len(), n);
    }

    #[test]
    fn lemma1_overloaded_set_scales_linearly() {
        // 3n units out of one node: 2 * ceil(3n/n) = 6 rounds
        let n = 4;
        let mut c = Clique::with_bandwidth(n, 16).unwrap();
        let mut sends = Vec::new();
        for rep in 0..3 {
            for v in 1..n {
                sends.push(Envelope::new(NodeId::new(0), NodeId::new(v), RawBits::new(rep, 16)));
            }
            sends.push(Envelope::new(NodeId::new(0), NodeId::new(1), RawBits::new(rep, 16)));
        }
        // loads: out(0) = 3 * n = 12 units -> delta = 12 -> 2*ceil(12/4)=6
        c.route(sends).unwrap();
        assert_eq!(c.rounds(), 6);
    }

    #[test]
    fn route_delivers_every_payload() {
        let n = 5;
        let mut c = net(n);
        let mut sends = Vec::new();
        for u in 0..n {
            for v in 0..n {
                sends.push(Envelope::new(
                    NodeId::new(u),
                    NodeId::new(v),
                    (u as u64) * 100 + v as u64,
                ));
            }
        }
        let inboxes = c.route(sends).unwrap();
        for v in 0..n {
            let inbox = inboxes.of(NodeId::new(v));
            assert_eq!(inbox.len(), n);
            for (src, payload) in inbox {
                assert_eq!(*payload, (src.index() as u64) * 100 + v as u64);
            }
        }
    }

    #[test]
    fn broadcast_reaches_everyone_in_fragment_rounds() {
        let mut c = Clique::with_bandwidth(6, 8).unwrap();
        let inboxes = c.broadcast(NodeId::new(2), RawBits::new(1, 20)).unwrap();
        assert_eq!(c.rounds(), 3); // ceil(20/8)
        for v in 0..6 {
            if v == 2 {
                assert!(inboxes.of(NodeId::new(v)).is_empty());
            } else {
                assert_eq!(inboxes.of(NodeId::new(v)).len(), 1);
            }
        }
    }

    #[test]
    fn gossip_distributes_all_lists() {
        let mut c = net(3);
        let items = vec![vec![10u64], vec![20u64, 21u64], vec![]];
        let all = c.gossip(items).unwrap();
        for node_view in &all {
            let values: Vec<u64> = node_view.iter().map(|(_, x)| *x).collect();
            assert_eq!(values, vec![10, 20, 21]);
        }
    }

    #[test]
    fn gossip_wrong_arity_is_rejected() {
        let mut c = net(3);
        assert!(c.gossip(vec![vec![1u64]]).is_err());
    }

    #[test]
    fn phases_capture_round_breakdown() {
        let mut c = net(4);
        c.begin_phase("first");
        c.exchange(vec![Envelope::new(NodeId::new(0), NodeId::new(1), 1u64)]).unwrap();
        c.begin_phase("second");
        c.exchange(vec![Envelope::new(NodeId::new(1), NodeId::new(2), 1u64)]).unwrap();
        assert_eq!(c.metrics().phases().len(), 2);
        assert_eq!(c.metrics().rounds_with_prefix("first"), c.metrics().phases()[0].rounds);
    }

    #[test]
    fn reset_clears_counters() {
        let mut c = net(4);
        c.exchange(vec![Envelope::new(NodeId::new(0), NodeId::new(1), 1u64)]).unwrap();
        assert!(c.rounds() > 0);
        c.reset_metrics();
        assert_eq!(c.rounds(), 0);
    }
}
