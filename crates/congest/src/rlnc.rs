//! Random linear network coding over GF(256).
//!
//! The gossip transport broadcasts a byte block by splitting it into `k`
//! chunks and letting every node forward *random linear combinations* of
//! the chunks it has heard, with coefficients drawn from GF(2⁸). Any `k`
//! linearly independent packets reconstruct the block, so receivers do
//! not care *which* packets arrive — redundancy replaces retransmission,
//! which is exactly the degradation mode the transport matrix compares
//! against the ack/retransmit envelope.
//!
//! The field is GF(2⁸) with the AES reduction polynomial `x⁸+x⁴+x³+x+1`
//! (0x11b). Multiplication is the peasant (Russian) algorithm — no
//! lookup tables, a handful of nanoseconds per byte, and trivially
//! auditable. Inverses use `a⁻¹ = a²⁵⁴` (Fermat on the 255-element
//! multiplicative group).
//!
//! Decoding is incremental Gaussian elimination: [`Decoder::absorb`]
//! reduces each arriving packet against the pivots held so far and
//! reports whether it was *innovative* (raised the rank). The
//! non-innovative count is the `wasted_bandwidth` statistic reported by
//! [`crate::transport::GossipStats`].

/// GF(256) addition (and subtraction): XOR.
#[inline]
#[must_use]
pub fn gf_add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// GF(256) multiplication with the 0x11b reduction polynomial.
#[inline]
#[must_use]
pub fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        let carry = a & 0x80;
        a <<= 1;
        if carry != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    acc
}

/// GF(256) multiplicative inverse via `a²⁵⁴` (254 = 0b1111_1110).
///
/// # Panics
///
/// Panics on `a == 0`, which has no inverse; the decoder only inverts
/// pivot elements, which are nonzero by construction.
#[must_use]
pub fn gf_inv(a: u8) -> u8 {
    assert_ne!(a, 0, "zero has no inverse in GF(256)");
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u32;
    while exp != 0 {
        if exp & 1 != 0 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        exp >>= 1;
    }
    result
}

/// A coded packet: `data = Σ coeffs[i] · chunk[i]` over GF(256).
///
/// `coeffs` always has length `chunks` and `data` length `chunk_bytes`,
/// so the wire size of every packet in a block is identical — the
/// simulator charges rounds off the uniform `bit_size`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodedPacket {
    /// Combination coefficients, one per source chunk.
    pub coeffs: Vec<u8>,
    /// The combined payload bytes.
    pub data: Vec<u8>,
}

impl crate::payload::Payload for CodedPacket {
    fn bit_size(&self) -> u64 {
        8 * (self.coeffs.len() as u64 + self.data.len() as u64)
    }
}

/// Frames `block` with a 4-byte little-endian length header and splits it
/// into exactly `chunks` zero-padded chunks of equal size. Returns the
/// chunk list; the header lets [`unframe`] trim the padding after decode.
///
/// # Panics
///
/// Panics if `chunks == 0` or the block length exceeds `u32::MAX`.
#[must_use]
pub fn split_block(block: &[u8], chunks: usize) -> Vec<Vec<u8>> {
    assert!(chunks > 0, "need at least one chunk");
    let len = u32::try_from(block.len()).expect("block longer than u32::MAX bytes");
    let mut framed = Vec::with_capacity(4 + block.len());
    framed.extend_from_slice(&len.to_le_bytes());
    framed.extend_from_slice(block);
    let chunk_bytes = framed.len().div_ceil(chunks).max(1);
    framed.resize(chunks * chunk_bytes, 0);
    framed.chunks(chunk_bytes).map(<[u8]>::to_vec).collect()
}

/// Strips the 4-byte length frame applied by [`split_block`], returning
/// the original block. Returns `None` when the buffer is too short or the
/// header claims more bytes than are present (corrupted decode).
#[must_use]
pub fn unframe(framed: &[u8]) -> Option<Vec<u8>> {
    if framed.len() < 4 {
        return None;
    }
    let len = u32::from_le_bytes([framed[0], framed[1], framed[2], framed[3]]) as usize;
    if 4 + len > framed.len() {
        return None;
    }
    Some(framed[4..4 + len].to_vec())
}

/// Deterministic coefficient generator (SplitMix64 → bytes). Each node
/// seeds its own generator from the transport seed and its id, keeping
/// gossip replayable without touching the algorithm or fault RNGs.
#[derive(Clone, Debug)]
pub struct PacketRng {
    state: u64,
}

impl PacketRng {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        PacketRng {
            state: seed ^ 0xc0de_c0de_c0de_c0de,
        }
    }

    /// Next pseudo-random 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next pseudo-random byte.
    pub fn next_byte(&mut self) -> u8 {
        (self.next_u64() & 0xff) as u8
    }
}

/// Incremental GF(256) Gaussian-elimination decoder.
///
/// Holds up to `chunks` pivot rows in reduced form. [`Decoder::absorb`]
/// folds in a received packet; once the rank reaches `chunks`,
/// [`Decoder::decode`] reconstructs the framed block.
///
/// # Examples
///
/// ```
/// use qcc_congest::rlnc::{split_block, unframe, Decoder, PacketRng};
///
/// let block = b"the quick brown fox".to_vec();
/// let chunks = split_block(&block, 4);
/// let src = Decoder::source(&chunks);
/// let mut rng = PacketRng::new(7);
/// let mut sink = Decoder::new(4, chunks[0].len());
/// while !sink.is_full() {
///     let p = src.emit(&mut rng).unwrap();
///     sink.absorb(&p.coeffs, &p.data);
/// }
/// let framed = sink.decode().unwrap();
/// assert_eq!(unframe(&framed).unwrap(), block);
/// ```
#[derive(Clone, Debug)]
pub struct Decoder {
    chunks: usize,
    chunk_bytes: usize,
    /// Pivot rows: `rows[i]`, when present, has its leading nonzero
    /// coefficient (normalized to 1) in column `i`.
    rows: Vec<Option<(Vec<u8>, Vec<u8>)>>,
    rank: usize,
}

impl Decoder {
    /// An empty decoder expecting `chunks` chunks of `chunk_bytes` each.
    ///
    /// # Panics
    ///
    /// Panics when `chunks == 0`.
    #[must_use]
    pub fn new(chunks: usize, chunk_bytes: usize) -> Self {
        assert!(chunks > 0, "need at least one chunk");
        Decoder {
            chunks,
            chunk_bytes,
            rows: vec![None; chunks],
            rank: 0,
        }
    }

    /// A full-rank decoder seeded with the source chunks themselves
    /// (identity coefficient rows) — how the broadcast source starts.
    #[must_use]
    pub fn source(chunks: &[Vec<u8>]) -> Self {
        let k = chunks.len();
        let chunk_bytes = chunks.first().map_or(0, Vec::len);
        let mut d = Decoder::new(k, chunk_bytes);
        for (i, chunk) in chunks.iter().enumerate() {
            let mut coeffs = vec![0u8; k];
            coeffs[i] = 1;
            d.absorb(&coeffs, chunk);
        }
        debug_assert!(d.is_full());
        d
    }

    /// Number of source chunks this decoder expects.
    #[must_use]
    pub fn chunks(&self) -> usize {
        self.chunks
    }

    /// Linearly independent packets held so far.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Whether the decoder can reconstruct the block.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.rank == self.chunks
    }

    /// Folds in a received packet. Returns `true` iff the packet was
    /// *innovative* (raised the rank); redundant packets return `false`
    /// and are counted as wasted bandwidth by the transport.
    pub fn absorb(&mut self, coeffs: &[u8], data: &[u8]) -> bool {
        if coeffs.len() != self.chunks || data.len() != self.chunk_bytes {
            return false; // malformed packet: wrong geometry for this block
        }
        let mut c = coeffs.to_vec();
        let mut d = data.to_vec();
        for col in 0..self.chunks {
            if c[col] == 0 {
                continue;
            }
            match &self.rows[col] {
                Some((pc, pd)) => {
                    // Eliminate this column against the stored pivot.
                    let factor = c[col];
                    for (x, p) in c.iter_mut().zip(pc) {
                        *x = gf_add(*x, gf_mul(factor, *p));
                    }
                    for (x, p) in d.iter_mut().zip(pd) {
                        *x = gf_add(*x, gf_mul(factor, *p));
                    }
                }
                None => {
                    // New pivot: normalize the leading coefficient to 1.
                    let inv = gf_inv(c[col]);
                    for x in &mut c {
                        *x = gf_mul(*x, inv);
                    }
                    for x in &mut d {
                        *x = gf_mul(*x, inv);
                    }
                    self.rows[col] = Some((c, d));
                    self.rank += 1;
                    return true;
                }
            }
        }
        false
    }

    /// Emits a fresh random combination of the rows held so far, or
    /// `None` when the decoder has heard nothing yet. At least one
    /// nonzero weight is forced so the packet is never the zero vector.
    #[must_use]
    pub fn emit(&self, rng: &mut PacketRng) -> Option<CodedPacket> {
        let held: Vec<&(Vec<u8>, Vec<u8>)> = self.rows.iter().flatten().collect();
        if held.is_empty() {
            return None;
        }
        let mut weights: Vec<u8> = held.iter().map(|_| rng.next_byte()).collect();
        if weights.iter().all(|&w| w == 0) {
            weights[0] = 1;
        }
        let mut coeffs = vec![0u8; self.chunks];
        let mut data = vec![0u8; self.chunk_bytes];
        for (&w, (pc, pd)) in weights.iter().zip(&held) {
            if w == 0 {
                continue;
            }
            for (x, p) in coeffs.iter_mut().zip(pc) {
                *x = gf_add(*x, gf_mul(w, *p));
            }
            for (x, p) in data.iter_mut().zip(pd) {
                *x = gf_add(*x, gf_mul(w, *p));
            }
        }
        Some(CodedPacket { coeffs, data })
    }

    /// Reconstructs the framed block by back-substitution, or `None`
    /// before full rank.
    #[must_use]
    pub fn decode(&self) -> Option<Vec<u8>> {
        if !self.is_full() {
            return None;
        }
        // Back-substitute from the last pivot upward so every row ends as
        // a pure unit vector, then concatenate the payloads in order.
        let mut rows: Vec<(Vec<u8>, Vec<u8>)> =
            self.rows.iter().map(|r| r.clone().unwrap()).collect();
        for col in (0..self.chunks).rev() {
            let (pc, pd) = rows[col].clone();
            debug_assert_eq!(pc[col], 1);
            for (above_c, above_d) in rows.iter_mut().take(col) {
                let factor = above_c[col];
                if factor == 0 {
                    continue;
                }
                for (x, p) in above_c.iter_mut().zip(&pc) {
                    *x = gf_add(*x, gf_mul(factor, *p));
                }
                for (x, p) in above_d.iter_mut().zip(&pd) {
                    *x = gf_add(*x, gf_mul(factor, *p));
                }
            }
        }
        let mut out = Vec::with_capacity(self.chunks * self.chunk_bytes);
        for (_, d) in rows {
            out.extend_from_slice(&d);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_hold() {
        // Spot-check associativity/distributivity on a few triples and
        // verify every nonzero element has a working inverse.
        for a in [1u8, 2, 7, 0x53, 0xca, 0xff] {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "a = {a}");
            assert_eq!(gf_mul(a, 1), a);
            assert_eq!(gf_mul(a, 0), 0);
        }
        // The AES textbook example: 0x53 · 0xca = 0x01.
        assert_eq!(gf_mul(0x53, 0xca), 0x01);
        for (a, b, c) in [(3u8, 5u8, 9u8), (0x1c, 0x2d, 0x3e)] {
            assert_eq!(gf_mul(a, gf_mul(b, c)), gf_mul(gf_mul(a, b), c));
            assert_eq!(gf_mul(a, gf_add(b, c)), gf_add(gf_mul(a, b), gf_mul(a, c)));
        }
    }

    #[test]
    fn split_and_unframe_round_trip() {
        for (len, chunks) in [(0usize, 1usize), (1, 1), (5, 3), (19, 4), (64, 10)] {
            let block: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let parts = split_block(&block, chunks);
            assert_eq!(parts.len(), chunks);
            let width = parts[0].len();
            assert!(parts.iter().all(|p| p.len() == width));
            let framed: Vec<u8> = parts.concat();
            assert_eq!(
                unframe(&framed).unwrap(),
                block,
                "len={len} chunks={chunks}"
            );
        }
        assert!(unframe(&[1, 2]).is_none(), "too short");
        assert!(
            unframe(&[200, 0, 0, 0, 1]).is_none(),
            "header claims more than present"
        );
    }

    #[test]
    fn source_decoder_is_full_and_decodes_identically() {
        let block = b"hello coded world".to_vec();
        let parts = split_block(&block, 5);
        let src = Decoder::source(&parts);
        assert!(src.is_full());
        assert_eq!(unframe(&src.decode().unwrap()).unwrap(), block);
    }

    #[test]
    fn random_combinations_reach_full_rank() {
        let block: Vec<u8> = (0..100).map(|i| (i * 13) as u8).collect();
        let parts = split_block(&block, 8);
        let src = Decoder::source(&parts);
        let mut rng = PacketRng::new(42);
        let mut sink = Decoder::new(8, parts[0].len());
        let mut packets = 0;
        let mut wasted = 0;
        while !sink.is_full() {
            let p = src.emit(&mut rng).unwrap();
            if !sink.absorb(&p.coeffs, &p.data) {
                wasted += 1;
            }
            packets += 1;
            assert!(packets < 1000, "must converge quickly");
        }
        assert_eq!(unframe(&sink.decode().unwrap()).unwrap(), block);
        // Random GF(256) combinations are innovative with prob ≥ 255/256,
        // so waste should be tiny here.
        assert!(wasted <= 2, "wasted {wasted} of {packets}");
    }

    #[test]
    fn redundant_packets_are_not_innovative() {
        let parts = split_block(b"abcdef", 2);
        let src = Decoder::source(&parts);
        let mut rng = PacketRng::new(1);
        let mut sink = Decoder::new(2, parts[0].len());
        let p = src.emit(&mut rng).unwrap();
        assert!(sink.absorb(&p.coeffs, &p.data), "first packet innovative");
        assert!(
            !sink.absorb(&p.coeffs, &p.data),
            "same packet again is redundant"
        );
        assert_eq!(sink.rank(), 1);
    }

    #[test]
    fn malformed_geometry_is_rejected() {
        let mut d = Decoder::new(3, 4);
        assert!(!d.absorb(&[1, 0], &[0, 0, 0, 0]), "short coeffs");
        assert!(!d.absorb(&[1, 0, 0], &[0, 0]), "short data");
        assert_eq!(d.rank(), 0);
    }

    #[test]
    fn single_chunk_degenerates_to_flooding() {
        // chunks=1 means every packet is a scalar multiple of the block;
        // absorb normalizes the scalar away, so one packet decodes it.
        let block = b"flood me".to_vec();
        let parts = split_block(&block, 1);
        let src = Decoder::source(&parts);
        let mut rng = PacketRng::new(9);
        let mut sink = Decoder::new(1, parts[0].len());
        let p = src.emit(&mut rng).unwrap();
        assert!(sink.absorb(&p.coeffs, &p.data));
        assert!(sink.is_full());
        assert_eq!(unframe(&sink.decode().unwrap()).unwrap(), block);
    }

    #[test]
    fn emit_before_any_rank_is_none() {
        let d = Decoder::new(4, 8);
        let mut rng = PacketRng::new(3);
        assert!(d.emit(&mut rng).is_none());
    }

    #[test]
    fn packet_bit_size_counts_coeffs_and_data() {
        use crate::payload::Payload;
        let p = CodedPacket {
            coeffs: vec![0; 4],
            data: vec![0; 16],
        };
        assert_eq!(p.bit_size(), 8 * 20);
    }
}
