//! Bipartite multigraph edge coloring (König's theorem, constructive).
//!
//! The routing primitive of Dolev, Lenzen and Peled ("Tri, Tri Again",
//! DISC 2012) — Lemma 1 of Izumi & Le Gall — delivers any message set in
//! which no node sources or sinks more than `n` messages within two rounds.
//! The constructive core is an edge coloring of the *demand multigraph*
//! (one edge per message, sources on the left, destinations on the right):
//! by König's edge-coloring theorem a bipartite multigraph of maximum
//! degree `Δ` admits a proper coloring with exactly `Δ` colors, and a color
//! class is precisely a set of messages in which every (source, color) and
//! (destination, color) pair appears at most once — i.e. a valid assignment
//! of messages to intermediate relay nodes.
//!
//! This module implements the classic alternating-path (Kempe chain)
//! algorithm: `O(m · Δ)` time, exact `Δ` colors. The hot entry point is
//! [`color_bipartite_into`], which writes into caller-owned buffers
//! ([`ColoringScratch`]) so that a simulator calling it once per
//! communication phase performs no per-call allocation after warm-up;
//! [`color_bipartite`] is the convenient allocating wrapper.

/// An edge of the demand multigraph: `(left, right)` with multiplicity
/// expressed by repetition.
pub type DemandEdge = (usize, usize);

/// A proper edge coloring of a bipartite multigraph.
#[derive(Clone, Debug)]
#[must_use]
pub struct EdgeColoring {
    /// `colors[i]` is the color assigned to input edge `i`.
    pub colors: Vec<usize>,
    /// Number of colors used (equals the maximum degree).
    pub num_colors: usize,
}

/// Reusable working memory for [`color_bipartite_into`].
///
/// Holds the per-(node, color) slot tables and the degree counters. Buffers
/// grow to the largest instance seen and are then reused, so a long-lived
/// scratch makes repeated colorings allocation-free.
#[derive(Clone, Debug, Default)]
pub struct ColoringScratch {
    /// Flat `n_left × Δ` slot table: `left_at[u · Δ + c]` is the edge of
    /// color `c` at left node `u`, or `u32::MAX`. Edge indices are `u32` so
    /// the tables stay small enough to be cache-resident — the Kempe walk
    /// is a chain of dependent random accesses into them.
    left_at: Vec<u32>,
    /// Flat `n_right × Δ` slot table, as `left_at`.
    right_at: Vec<u32>,
    /// Occupancy bitmask mirror of `left_at`, `⌈Δ/64⌉` words per node: bit
    /// `c` set ⟺ `left_at[u · Δ + c] != u32::MAX`. Lets the free-color
    /// scan test 64 slots per word instead of one slot per load, without
    /// changing which color it finds (always the lowest free one).
    left_mask: Vec<u64>,
    /// Bitmask mirror of `right_at`, as `left_mask`.
    right_mask: Vec<u64>,
    /// Per-left-node lower bound on the first non-full mask word (every
    /// word strictly below it is `!0`), so the free-color scan skips the
    /// saturated prefix.
    left_hint: Vec<usize>,
    /// Per-right-node first-non-full-word bound, as `left_hint`.
    right_hint: Vec<usize>,
    /// `u32` copy of the input edges, halving the walk's lookup footprint.
    edg: Vec<(u32, u32)>,
    left_deg: Vec<usize>,
    right_deg: Vec<usize>,
}

impl ColoringScratch {
    /// Creates an empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Computes the maximum degree of the bipartite demand multigraph.
#[must_use]
pub fn max_degree(edges: &[DemandEdge], n_left: usize, n_right: usize) -> usize {
    let mut scratch = ColoringScratch::new();
    max_degree_into(edges, n_left, n_right, &mut scratch)
}

/// [`max_degree`] writing its degree counters into reusable scratch.
pub fn max_degree_into(
    edges: &[DemandEdge],
    n_left: usize,
    n_right: usize,
    scratch: &mut ColoringScratch,
) -> usize {
    scratch.left_deg.clear();
    scratch.left_deg.resize(n_left, 0);
    scratch.right_deg.clear();
    scratch.right_deg.resize(n_right, 0);
    for &(u, v) in edges {
        scratch.left_deg[u] += 1;
        scratch.right_deg[v] += 1;
    }
    scratch
        .left_deg
        .iter()
        .chain(scratch.right_deg.iter())
        .copied()
        .max()
        .unwrap_or(0)
}

/// Properly edge-colors a bipartite multigraph with `Δ` colors.
///
/// `edges` lists `(left, right)` endpoints; parallel edges are allowed and
/// receive distinct colors. The returned coloring uses exactly
/// `max_degree(edges)` colors (König's theorem), the optimum.
///
/// # Panics
///
/// Panics if an endpoint is out of range.
///
/// # Examples
///
/// ```
/// use qcc_congest::coloring::{color_bipartite, max_degree};
///
/// // two parallel edges (0,0) plus (0,1),(1,0): max degree 3
/// let edges = vec![(0, 0), (0, 0), (0, 1), (1, 0)];
/// let coloring = color_bipartite(&edges, 2, 2);
/// assert_eq!(coloring.num_colors, max_degree(&edges, 2, 2));
/// ```
pub fn color_bipartite(edges: &[DemandEdge], n_left: usize, n_right: usize) -> EdgeColoring {
    let mut scratch = ColoringScratch::new();
    let mut colors = Vec::new();
    let num_colors = color_bipartite_into(edges, n_left, n_right, &mut scratch, &mut colors);
    EdgeColoring { colors, num_colors }
}

/// [`color_bipartite`] writing into caller-owned buffers.
///
/// `colors` is cleared and filled with one color per input edge; the number
/// of colors (the maximum degree `Δ`) is returned. All working memory lives
/// in `scratch`, so a caller holding both across invocations performs no
/// allocation once the buffers have grown to the instance size.
///
/// # Panics
///
/// Panics if an endpoint is out of range.
pub fn color_bipartite_into(
    edges: &[DemandEdge],
    n_left: usize,
    n_right: usize,
    scratch: &mut ColoringScratch,
    colors: &mut Vec<usize>,
) -> usize {
    let delta = max_degree_into(edges, n_left, n_right, scratch);
    colors.clear();
    if delta == 0 {
        return 0;
    }
    assert!(
        edges.len() < u32::MAX as usize,
        "demand multigraph too large for u32 edge indices"
    );
    colors.resize(edges.len(), usize::MAX);
    // at[node · Δ + color] = edge index carrying that color at that node,
    // or u32::MAX. Flat layout keeps the tables in two contiguous
    // reusable buffers. The mask tables mirror occupancy one bit per slot;
    // padding bits at indices ≥ Δ in each node's last word are pre-set so
    // the free-color scan never selects them.
    let words = delta.div_ceil(64);
    let pad = if delta.is_multiple_of(64) {
        0
    } else {
        !0u64 << (delta % 64)
    };
    scratch.left_at.clear();
    scratch.left_at.resize(n_left * delta, u32::MAX);
    scratch.right_at.clear();
    scratch.right_at.resize(n_right * delta, u32::MAX);
    scratch.left_mask.clear();
    scratch.left_mask.resize(n_left * words, 0);
    scratch.right_mask.clear();
    scratch.right_mask.resize(n_right * words, 0);
    for u in 0..n_left {
        scratch.left_mask[u * words + words - 1] = pad;
    }
    for v in 0..n_right {
        scratch.right_mask[v * words + words - 1] = pad;
    }
    scratch.left_hint.clear();
    scratch.left_hint.resize(n_left, 0);
    scratch.right_hint.clear();
    scratch.right_hint.resize(n_right, 0);
    scratch.edg.clear();
    scratch
        .edg
        .extend(edges.iter().map(|&(eu, ev)| (eu as u32, ev as u32)));
    let left_at = &mut scratch.left_at;
    let right_at = &mut scratch.right_at;
    let left_mask = &mut scratch.left_mask;
    let right_mask = &mut scratch.right_mask;
    let left_hint = &mut scratch.left_hint;
    let right_hint = &mut scratch.right_hint;
    let edg = &scratch.edg;

    for (idx, &(u, v)) in edges.iter().enumerate() {
        assert!(u < n_left && v < n_right, "edge endpoint out of range");
        let a = free_color(left_mask, left_hint, words, u);
        let b = free_color(right_mask, right_hint, words, v);
        debug_assert_eq!(left_at[u * delta + a], u32::MAX);
        debug_assert_eq!(right_at[v * delta + b], u32::MAX);
        if a == b {
            colors[idx] = a;
            left_at[u * delta + a] = idx as u32;
            right_at[v * delta + a] = idx as u32;
            set_bit(left_mask, words, u, a);
            set_bit(right_mask, words, v, a);
            continue;
        }
        // Make color `a` free at `v` by flipping the (a, b)-alternating path
        // starting from `v`. The path cannot reach `u` because `u` has no
        // `a`-colored edge, and left vertices are entered via `a`.
        //
        // The flip happens during the walk itself: recoloring the path swaps
        // the contents of slots `a` and `b` at every visited node (for the
        // ends, one of the two is empty), and since the path never revisits
        // a node the swap at the current node cannot disturb a later lookup.
        // Occupancy only changes at the two path ends — interior nodes keep
        // both colors — so the masks stay untouched in the loop body.
        let mut node = v;
        let mut on_right = true;
        let mut want = a;
        let mut steps = 0usize;
        loop {
            let at: &mut Vec<u32> = if on_right { right_at } else { left_at };
            let slot_w = node * delta + want;
            let e = at[slot_w];
            if e == u32::MAX {
                break;
            }
            let other = a + b - want;
            let slot_o = node * delta + other;
            at[slot_w] = at[slot_o];
            at[slot_o] = e;
            if steps == 0 {
                // The start node `v` gains color `b` (its `a`-edge flips);
                // its bit `a` stays set because the final assignment below
                // re-occupies it.
                set_bit(right_mask, words, node, b);
            }
            // The traversed edge had color `want` and flips to the other.
            colors[e as usize] = other;
            let (eu, ev) = edg[e as usize];
            node = if on_right { eu as usize } else { ev as usize };
            on_right = !on_right;
            want = other;
            steps += 1;
        }
        if steps > 0 {
            // Path end: the incoming edge moves from slot `other` to the
            // free slot `want`, the only occupancy change besides `v`.
            let other = a + b - want;
            let (at, mask, hint) = if on_right {
                (&mut *right_at, &mut *right_mask, &mut *right_hint)
            } else {
                (&mut *left_at, &mut *left_mask, &mut *left_hint)
            };
            at[node * delta + want] = at[node * delta + other];
            at[node * delta + other] = u32::MAX;
            clear_bit(mask, hint, words, node, other);
            set_bit(mask, words, node, want);
        }
        debug_assert_eq!(left_at[u * delta + a], u32::MAX);
        debug_assert_eq!(right_at[v * delta + a], u32::MAX);
        colors[idx] = a;
        left_at[u * delta + a] = idx as u32;
        right_at[v * delta + a] = idx as u32;
        set_bit(left_mask, words, u, a);
        set_bit(right_mask, words, v, a);
    }

    delta
}

/// First free color at `node`: the lowest zero bit in its occupancy mask.
/// `hint[node]` is a lazy lower bound — every word strictly below it is
/// full — so the scan starts there instead of at word 0, and the found
/// word becomes the new hint. The result is identical to a linear scan of
/// the slot table for the first `usize::MAX` entry.
fn free_color(mask: &[u64], hint: &mut [usize], words: usize, node: usize) -> usize {
    let row = &mask[node * words..(node + 1) * words];
    debug_assert!(row[..hint[node]].iter().all(|&w| w == !0));
    for (w, &bits) in row.iter().enumerate().skip(hint[node]) {
        if bits != !0 {
            hint[node] = w;
            return w * 64 + bits.trailing_ones() as usize;
        }
    }
    panic!("a free color always exists below the maximum degree");
}

/// Marks color `c` occupied at `node`. The hint stays a valid lower bound:
/// filling a word only moves the true first-free word up, never down.
fn set_bit(mask: &mut [u64], words: usize, node: usize, c: usize) {
    mask[node * words + c / 64] |= 1 << (c % 64);
}

/// Marks color `c` free at `node`, pulling the hint back if the freed word
/// is below it.
fn clear_bit(mask: &mut [u64], hint: &mut [usize], words: usize, node: usize, c: usize) {
    let w = c / 64;
    mask[node * words + w] &= !(1 << (c % 64));
    if w < hint[node] {
        hint[node] = w;
    }
}

/// Verifies that a coloring is proper: no two edges sharing a left or right
/// endpoint have the same color. Used by tests and debug assertions.
#[must_use]
pub fn is_proper(
    edges: &[DemandEdge],
    coloring: &EdgeColoring,
    n_left: usize,
    n_right: usize,
) -> bool {
    is_proper_colors(
        edges,
        &coloring.colors,
        coloring.num_colors,
        n_left,
        n_right,
    )
}

/// [`is_proper`] over a raw color slice, for callers using
/// [`color_bipartite_into`].
#[must_use]
pub fn is_proper_colors(
    edges: &[DemandEdge],
    colors: &[usize],
    num_colors: usize,
    n_left: usize,
    n_right: usize,
) -> bool {
    let mut left_seen = vec![false; n_left * num_colors.max(1)];
    let mut right_seen = vec![false; n_right * num_colors.max(1)];
    for (idx, &(u, v)) in edges.iter().enumerate() {
        let c = colors[idx];
        if c >= num_colors {
            return false;
        }
        let lu = u * num_colors + c;
        let rv = v * num_colors + c;
        if left_seen[lu] || right_seen[rv] {
            return false;
        }
        left_seen[lu] = true;
        right_seen[rv] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn empty_graph_uses_zero_colors() {
        let coloring = color_bipartite(&[], 4, 4);
        assert_eq!(coloring.num_colors, 0);
        assert!(coloring.colors.is_empty());
    }

    #[test]
    fn single_edge_uses_one_color() {
        let edges = vec![(0, 1)];
        let c = color_bipartite(&edges, 2, 2);
        assert_eq!(c.num_colors, 1);
        assert!(is_proper(&edges, &c, 2, 2));
    }

    #[test]
    fn parallel_edges_get_distinct_colors() {
        let edges = vec![(0, 0), (0, 0), (0, 0)];
        let c = color_bipartite(&edges, 1, 1);
        assert_eq!(c.num_colors, 3);
        assert!(is_proper(&edges, &c, 1, 1));
        let mut cs = c.colors.clone();
        cs.sort_unstable();
        assert_eq!(cs, vec![0, 1, 2]);
    }

    #[test]
    fn complete_bipartite_uses_n_colors() {
        let n = 6;
        let mut edges = Vec::new();
        for u in 0..n {
            for v in 0..n {
                edges.push((u, v));
            }
        }
        let c = color_bipartite(&edges, n, n);
        assert_eq!(c.num_colors, n);
        assert!(is_proper(&edges, &c, n, n));
    }

    #[test]
    fn random_multigraphs_are_colored_optimally() {
        let mut rng = StdRng::seed_from_u64(0xC01);
        for trial in 0..40 {
            let n = 2 + (trial % 7);
            let m = rng.gen_range(0..60);
            let edges: Vec<DemandEdge> = (0..m)
                .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
                .collect();
            let delta = max_degree(&edges, n, n);
            let c = color_bipartite(&edges, n, n);
            assert_eq!(c.num_colors, delta, "trial {trial}");
            assert!(is_proper(&edges, &c, n, n), "trial {trial}");
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        let mut rng = StdRng::seed_from_u64(0x5C4A7C);
        let mut scratch = ColoringScratch::new();
        let mut colors = Vec::new();
        for trial in 0..30 {
            let n = 2 + (trial % 5);
            let m = rng.gen_range(0..80);
            let edges: Vec<DemandEdge> = (0..m)
                .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
                .collect();
            let reused = color_bipartite_into(&edges, n, n, &mut scratch, &mut colors);
            let fresh = color_bipartite(&edges, n, n);
            assert_eq!(reused, fresh.num_colors, "trial {trial}");
            assert!(
                is_proper_colors(&edges, &colors, reused, n, n),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn star_needs_degree_colors() {
        // node 0 sends to everyone: degree n on the left
        let n = 9;
        let edges: Vec<DemandEdge> = (0..n).map(|v| (0, v)).collect();
        let c = color_bipartite(&edges, 1, n);
        assert_eq!(c.num_colors, n);
        assert!(is_proper(&edges, &c, 1, n));
    }

    #[test]
    fn gather_needs_degree_colors() {
        // everyone sends to node 0: degree n on the right
        let n = 9;
        let edges: Vec<DemandEdge> = (0..n).map(|u| (u, 0)).collect();
        let c = color_bipartite(&edges, n, 1);
        assert_eq!(c.num_colors, n);
        assert!(is_proper(&edges, &c, n, 1));
    }
}
