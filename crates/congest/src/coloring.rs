//! Bipartite multigraph edge coloring (König's theorem, constructive).
//!
//! The routing primitive of Dolev, Lenzen and Peled ("Tri, Tri Again",
//! DISC 2012) — Lemma 1 of Izumi & Le Gall — delivers any message set in
//! which no node sources or sinks more than `n` messages within two rounds.
//! The constructive core is an edge coloring of the *demand multigraph*
//! (one edge per message, sources on the left, destinations on the right):
//! by König's edge-coloring theorem a bipartite multigraph of maximum
//! degree `Δ` admits a proper coloring with exactly `Δ` colors, and a color
//! class is precisely a set of messages in which every (source, color) and
//! (destination, color) pair appears at most once — i.e. a valid assignment
//! of messages to intermediate relay nodes.
//!
//! This module implements the classic alternating-path (Kempe chain)
//! algorithm: `O(m · Δ)` time, exact `Δ` colors.

/// An edge of the demand multigraph: `(left, right)` with multiplicity
/// expressed by repetition.
pub type DemandEdge = (usize, usize);

/// A proper edge coloring of a bipartite multigraph.
#[derive(Clone, Debug)]
pub struct EdgeColoring {
    /// `colors[i]` is the color assigned to input edge `i`.
    pub colors: Vec<usize>,
    /// Number of colors used (equals the maximum degree).
    pub num_colors: usize,
}

/// Computes the maximum degree of the bipartite demand multigraph.
pub fn max_degree(edges: &[DemandEdge], n_left: usize, n_right: usize) -> usize {
    let mut left = vec![0usize; n_left];
    let mut right = vec![0usize; n_right];
    for &(u, v) in edges {
        left[u] += 1;
        right[v] += 1;
    }
    left.iter().chain(right.iter()).copied().max().unwrap_or(0)
}

/// Properly edge-colors a bipartite multigraph with `Δ` colors.
///
/// `edges` lists `(left, right)` endpoints; parallel edges are allowed and
/// receive distinct colors. The returned coloring uses exactly
/// `max_degree(edges)` colors (König's theorem), the optimum.
///
/// # Panics
///
/// Panics if an endpoint is out of range.
///
/// # Examples
///
/// ```
/// use qcc_congest::coloring::{color_bipartite, max_degree};
///
/// // two parallel edges (0,0) plus (0,1),(1,0): max degree 3
/// let edges = vec![(0, 0), (0, 0), (0, 1), (1, 0)];
/// let coloring = color_bipartite(&edges, 2, 2);
/// assert_eq!(coloring.num_colors, max_degree(&edges, 2, 2));
/// ```
pub fn color_bipartite(edges: &[DemandEdge], n_left: usize, n_right: usize) -> EdgeColoring {
    let delta = max_degree(edges, n_left, n_right);
    if delta == 0 {
        return EdgeColoring { colors: Vec::new(), num_colors: 0 };
    }
    // at[side][node][color] = Some(edge index) if that node has an edge of
    // that color. Sides: 0 = left, 1 = right.
    let mut left_at = vec![vec![usize::MAX; delta]; n_left];
    let mut right_at = vec![vec![usize::MAX; delta]; n_right];
    let mut colors = vec![usize::MAX; edges.len()];

    for (idx, &(u, v)) in edges.iter().enumerate() {
        assert!(u < n_left && v < n_right, "edge endpoint out of range");
        let a = free_color(&left_at[u]);
        let b = free_color(&right_at[v]);
        if a == b {
            assign(&mut left_at, &mut right_at, &mut colors, edges, idx, a);
            continue;
        }
        // Make color `a` free at `v` by flipping the (a, b)-alternating path
        // starting from `v`. The path cannot reach `u` because `u` has no
        // `a`-colored edge, and left vertices are entered via `a`.
        let mut path = Vec::new();
        let mut on_right = true;
        let mut node = v;
        let mut want = a;
        loop {
            let slot = if on_right { &right_at[node] } else { &left_at[node] };
            let e = slot[want];
            if e == usize::MAX {
                break;
            }
            path.push(e);
            let (eu, ev) = edges[e];
            node = if on_right { eu } else { ev };
            on_right = !on_right;
            want = if want == a { b } else { a };
        }
        // Unset the path, then re-set with swapped colors.
        for &e in &path {
            let (eu, ev) = edges[e];
            let c = colors[e];
            left_at[eu][c] = usize::MAX;
            right_at[ev][c] = usize::MAX;
        }
        for &e in &path {
            let (eu, ev) = edges[e];
            let c = if colors[e] == a { b } else { a };
            colors[e] = c;
            left_at[eu][c] = e;
            right_at[ev][c] = e;
        }
        debug_assert_eq!(left_at[u][a], usize::MAX);
        debug_assert_eq!(right_at[v][a], usize::MAX);
        assign(&mut left_at, &mut right_at, &mut colors, edges, idx, a);
    }

    EdgeColoring { colors, num_colors: delta }
}

fn free_color(slots: &[usize]) -> usize {
    slots
        .iter()
        .position(|&e| e == usize::MAX)
        .expect("a free color always exists below the maximum degree")
}

fn assign(
    left_at: &mut [Vec<usize>],
    right_at: &mut [Vec<usize>],
    colors: &mut [usize],
    edges: &[DemandEdge],
    idx: usize,
    color: usize,
) {
    let (u, v) = edges[idx];
    colors[idx] = color;
    left_at[u][color] = idx;
    right_at[v][color] = idx;
}

/// Verifies that a coloring is proper: no two edges sharing a left or right
/// endpoint have the same color. Used by tests and debug assertions.
pub fn is_proper(edges: &[DemandEdge], coloring: &EdgeColoring, n_left: usize, n_right: usize) -> bool {
    let mut left_seen = vec![false; n_left * coloring.num_colors.max(1)];
    let mut right_seen = vec![false; n_right * coloring.num_colors.max(1)];
    for (idx, &(u, v)) in edges.iter().enumerate() {
        let c = coloring.colors[idx];
        if c >= coloring.num_colors {
            return false;
        }
        let lu = u * coloring.num_colors + c;
        let rv = v * coloring.num_colors + c;
        if left_seen[lu] || right_seen[rv] {
            return false;
        }
        left_seen[lu] = true;
        right_seen[rv] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn empty_graph_uses_zero_colors() {
        let coloring = color_bipartite(&[], 4, 4);
        assert_eq!(coloring.num_colors, 0);
        assert!(coloring.colors.is_empty());
    }

    #[test]
    fn single_edge_uses_one_color() {
        let edges = vec![(0, 1)];
        let c = color_bipartite(&edges, 2, 2);
        assert_eq!(c.num_colors, 1);
        assert!(is_proper(&edges, &c, 2, 2));
    }

    #[test]
    fn parallel_edges_get_distinct_colors() {
        let edges = vec![(0, 0), (0, 0), (0, 0)];
        let c = color_bipartite(&edges, 1, 1);
        assert_eq!(c.num_colors, 3);
        assert!(is_proper(&edges, &c, 1, 1));
        let mut cs = c.colors.clone();
        cs.sort_unstable();
        assert_eq!(cs, vec![0, 1, 2]);
    }

    #[test]
    fn complete_bipartite_uses_n_colors() {
        let n = 6;
        let mut edges = Vec::new();
        for u in 0..n {
            for v in 0..n {
                edges.push((u, v));
            }
        }
        let c = color_bipartite(&edges, n, n);
        assert_eq!(c.num_colors, n);
        assert!(is_proper(&edges, &c, n, n));
    }

    #[test]
    fn random_multigraphs_are_colored_optimally() {
        let mut rng = StdRng::seed_from_u64(0xC01);
        for trial in 0..40 {
            let n = 2 + (trial % 7);
            let m = rng.gen_range(0..60);
            let edges: Vec<DemandEdge> =
                (0..m).map(|_| (rng.gen_range(0..n), rng.gen_range(0..n))).collect();
            let delta = max_degree(&edges, n, n);
            let c = color_bipartite(&edges, n, n);
            assert_eq!(c.num_colors, delta, "trial {trial}");
            assert!(is_proper(&edges, &c, n, n), "trial {trial}");
        }
    }

    #[test]
    fn star_needs_degree_colors() {
        // node 0 sends to everyone: degree n on the left
        let n = 9;
        let edges: Vec<DemandEdge> = (0..n).map(|v| (0, v)).collect();
        let c = color_bipartite(&edges, 1, n);
        assert_eq!(c.num_colors, n);
        assert!(is_proper(&edges, &c, 1, n));
    }

    #[test]
    fn gather_needs_degree_colors() {
        // everyone sends to node 0: degree n on the right
        let n = 9;
        let edges: Vec<DemandEdge> = (0..n).map(|u| (u, 0)).collect();
        let c = color_bipartite(&edges, n, 1);
        assert_eq!(c.num_colors, n);
        assert!(is_proper(&edges, &c, n, 1));
    }
}
