//! The transport abstraction: clique routing vs coded gossip.
//!
//! [`Transport`] abstracts the communication substrate behind the three
//! collective shapes the APSP pipeline uses — point-to-point exchange,
//! relayed routing, and block broadcast/gossip — so algorithms can run
//! unchanged over either:
//!
//! * [`CliqueTransport`] (an alias for [`Clique`]): the Lenzen-routed
//!   complete graph. Going through the trait charges rounds
//!   byte-identically to calling the [`Clique`] primitives directly —
//!   the trait impl is pure delegation, pinned by the determinism suite.
//! * [`GossipTransport`]: collective operations over a general
//!   [`Topology`] (ring, torus, random mesh) as RLNC-coded gossip.
//!   A broadcast source commits a block of [`crate::rlnc`] chunks and
//!   every node forwards fresh random linear combinations to its
//!   neighbors each wave until all nodes reach full decoding rank.
//!   Redundancy replaces retransmission: the transport deliberately does
//!   *not* use the ack/retransmit envelope, so the transport matrix can
//!   compare coded degradation against retry-based recovery under the
//!   same [`FaultPlan`].
//!
//! Both transports drive all traffic through the inner [`Clique`]
//! engine, so fault injection, round charging, the metrics span tree,
//! and the NDJSON trace compose for free. Failure is always typed —
//! [`CongestError::Partitioned`] for disconnected topologies (rejected
//! at construction), [`CongestError::DecodeFailed`] when coding
//! redundancy is outrun by losses, [`CongestError::NodeCrashed`] /
//! [`CongestError::DeliveryFailed`] for fail-stop and exhausted
//! forwarding — never a silently wrong result.
//!
//! ## Wasted-bandwidth accounting
//!
//! A coded packet a node receives is *innovative* when it raises the
//! node's decoding rank, otherwise *wasted*. [`GossipStats`] counts both
//! (in packets and bits), plus `full_nodes` per wave — the
//! redundancy-overhead curve the transport matrix reports. A dropped
//! packet's bits were still charged on the wire (the fault model charges
//! a crashed receiver's inbound links too) but are counted by the fault
//! tally, not as gossip waste: waste here means "arrived but taught the
//! receiver nothing".

use crate::envelope::{Envelope, Inboxes};
use crate::error::CongestError;
use crate::fault::{FaultCounts, FaultPlan};
use crate::metrics::Metrics;
use crate::network::Clique;
use crate::node::NodeId;
use crate::payload::{Payload, RawBits};
use crate::rlnc::{split_block, unframe, Decoder, PacketRng};
use crate::topology::Topology;
use crate::trace::TraceSink;

/// An opaque byte block as a wire payload: `8 · len` bits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ByteBlock(pub Vec<u8>);

impl Payload for ByteBlock {
    fn bit_size(&self) -> u64 {
        8 * self.0.len() as u64
    }
}

/// The communication substrate, abstracted.
///
/// Object-safe: algorithm entry points take `&mut dyn Transport` and run
/// unchanged over the clique or a coded-gossip mesh. Every method that
/// moves data reports failure through typed [`CongestError`] variants —
/// a transport never silently delivers a partial or wrong result.
pub trait Transport {
    /// Number of nodes.
    fn n(&self) -> usize;

    /// Stable transport kind label (`"clique"` or `"gossip"`).
    fn kind(&self) -> &'static str;

    /// Total synchronous rounds charged so far.
    fn rounds(&self) -> u64;

    /// The accumulated metrics (span tree, comm events, fault tallies).
    fn metrics(&self) -> &Metrics;

    /// Global tally of injected faults.
    fn fault_counts(&self) -> FaultCounts;

    /// Opens a top-level accounting phase.
    fn begin_phase(&mut self, label: &str);

    /// Closes the current accounting phase.
    fn end_phase(&mut self);

    /// Opens a nested span inside the current phase.
    fn push_span(&mut self, label: &str);

    /// Closes the innermost span.
    fn pop_span(&mut self);

    /// Closes any spans left open (error-path cleanup).
    fn close_all_spans(&mut self);

    /// Attaches an NDJSON trace sink.
    fn set_trace_sink(&mut self, sink: TraceSink);

    /// Arms deterministic fault injection.
    fn set_fault_plan(&mut self, plan: FaultPlan);

    /// Point-to-point delivery of sized messages.
    ///
    /// # Errors
    ///
    /// [`CongestError::UnknownNode`] for out-of-range endpoints;
    /// [`CongestError::DeliveryFailed`] when injected faults leave
    /// messages undelivered.
    fn exchange_bits(
        &mut self,
        sends: Vec<Envelope<RawBits>>,
    ) -> Result<Inboxes<RawBits>, CongestError>;

    /// Relayed delivery (Lenzen routing on the clique; shortest-hop
    /// forwarding on general topologies).
    ///
    /// # Errors
    ///
    /// As [`Transport::exchange_bits`].
    fn route_bits(
        &mut self,
        sends: Vec<Envelope<RawBits>>,
    ) -> Result<Inboxes<RawBits>, CongestError>;

    /// One node delivers `block` to every node; returns each node's copy
    /// (index = node id), all byte-identical to `block` on success.
    ///
    /// # Errors
    ///
    /// [`CongestError::DeliveryFailed`], [`CongestError::NodeCrashed`],
    /// or [`CongestError::DecodeFailed`] when faults defeat delivery.
    fn broadcast_block(&mut self, src: NodeId, block: &[u8]) -> Result<Vec<Vec<u8>>, CongestError>;

    /// Every node contributes one block; returns `views[node][src]` =
    /// node's copy of `src`'s block, complete on every node or a typed
    /// error.
    ///
    /// # Errors
    ///
    /// As [`Transport::broadcast_block`].
    fn gossip_blocks(&mut self, blocks: &[Vec<u8>]) -> Result<Vec<Vec<Vec<u8>>>, CongestError>;

    /// Coded-gossip statistics, when this transport gossips (`None` on
    /// the clique).
    fn gossip_stats(&self) -> Option<&GossipStats> {
        None
    }
}

/// The Lenzen-routed complete graph behind the [`Transport`] trait.
///
/// A type alias, not a wrapper: the trait impl on [`Clique`] is pure
/// delegation to the existing primitives, so charged rounds through the
/// trait are byte-identical to the direct path (the determinism suite
/// pins this).
pub type CliqueTransport = Clique;

impl Transport for Clique {
    fn n(&self) -> usize {
        Clique::n(self)
    }

    fn kind(&self) -> &'static str {
        "clique"
    }

    fn rounds(&self) -> u64 {
        Clique::rounds(self)
    }

    fn metrics(&self) -> &Metrics {
        Clique::metrics(self)
    }

    fn fault_counts(&self) -> FaultCounts {
        *Clique::fault_counts(self)
    }

    fn begin_phase(&mut self, label: &str) {
        Clique::begin_phase(self, label);
    }

    fn end_phase(&mut self) {
        Clique::end_phase(self);
    }

    fn push_span(&mut self, label: &str) {
        Clique::push_span(self, label);
    }

    fn pop_span(&mut self) {
        Clique::pop_span(self);
    }

    fn close_all_spans(&mut self) {
        Clique::close_all_spans(self);
    }

    fn set_trace_sink(&mut self, sink: TraceSink) {
        Clique::set_trace_sink(self, sink);
    }

    fn set_fault_plan(&mut self, plan: FaultPlan) {
        Clique::set_fault_plan(self, plan);
    }

    fn exchange_bits(
        &mut self,
        sends: Vec<Envelope<RawBits>>,
    ) -> Result<Inboxes<RawBits>, CongestError> {
        self.exchange(sends)
    }

    fn route_bits(
        &mut self,
        sends: Vec<Envelope<RawBits>>,
    ) -> Result<Inboxes<RawBits>, CongestError> {
        self.route(sends)
    }

    fn broadcast_block(&mut self, src: NodeId, block: &[u8]) -> Result<Vec<Vec<u8>>, CongestError> {
        let n = Clique::n(self);
        let inboxes = self.broadcast(src, ByteBlock(block.to_vec()))?;
        let mut out: Vec<Vec<u8>> = Vec::with_capacity(n);
        let mut undelivered = 0u64;
        for node in NodeId::all(n) {
            if node == src {
                out.push(block.to_vec());
                continue;
            }
            match inboxes.of(node).iter().find(|(from, _)| *from == src) {
                Some((_, b)) => out.push(b.0.clone()),
                None => {
                    undelivered += 1;
                    out.push(Vec::new());
                }
            }
        }
        if undelivered > 0 {
            // Raw (un-enveloped) faults dropped broadcast copies: surface
            // the partial delivery as a typed error, never a short view.
            return Err(CongestError::DeliveryFailed {
                phase: self.phase_label(),
                undelivered,
                attempts: 1,
            });
        }
        Ok(out)
    }

    fn gossip_blocks(&mut self, blocks: &[Vec<u8>]) -> Result<Vec<Vec<Vec<u8>>>, CongestError> {
        let n = Clique::n(self);
        let items: Vec<Vec<ByteBlock>> =
            blocks.iter().map(|b| vec![ByteBlock(b.clone())]).collect();
        let views = self.gossip(items)?;
        let mut out: Vec<Vec<Vec<u8>>> = Vec::with_capacity(n);
        let mut undelivered = 0u64;
        for view in views {
            let mut per_src: Vec<Option<Vec<u8>>> = vec![None; n];
            for (src, block) in view {
                per_src[src.index()] = Some(block.0);
            }
            undelivered += per_src.iter().filter(|s| s.is_none()).count() as u64;
            out.push(per_src.into_iter().map(Option::unwrap_or_default).collect());
        }
        if undelivered > 0 {
            return Err(CongestError::DeliveryFailed {
                phase: self.phase_label(),
                undelivered,
                attempts: 1,
            });
        }
        Ok(out)
    }
}

/// Per-wave coded-gossip accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WaveStats {
    /// Wave index within its broadcast (0-based).
    pub wave: u64,
    /// Coded packets put on the wire this wave.
    pub sent: u64,
    /// Received packets that raised a decoder's rank.
    pub innovative: u64,
    /// Received packets that taught the receiver nothing.
    pub wasted: u64,
    /// Nodes at full decoding rank after this wave.
    pub full_nodes: usize,
}

/// Cumulative coded-gossip statistics for a [`GossipTransport`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GossipStats {
    /// Completed block broadcasts.
    pub broadcasts: u64,
    /// Total gossip waves across all broadcasts.
    pub waves: u64,
    /// Coded packets put on the wire.
    pub packets_sent: u64,
    /// Packets that raised some decoder's rank on arrival.
    pub innovative_packets: u64,
    /// Packets that arrived but were linearly dependent — the wasted
    /// bandwidth of coded redundancy.
    pub wasted_packets: u64,
    /// Bits of those wasted packets.
    pub wasted_bits: u64,
    /// Nodes at full rank when the most recent broadcast finished.
    pub full_nodes: usize,
    /// Per-wave breakdown, in execution order across broadcasts.
    pub per_wave: Vec<WaveStats>,
}

impl GossipStats {
    /// Wasted packets as a fraction of all packets sent (0 when nothing
    /// was sent).
    #[must_use]
    pub fn waste_fraction(&self) -> f64 {
        if self.packets_sent == 0 {
            0.0
        } else {
            self.wasted_packets as f64 / self.packets_sent as f64
        }
    }
}

/// RLNC-coded gossip over a general [`Topology`].
///
/// All traffic flows through an inner [`Clique`] engine restricted to
/// topology edges, so fault injection, round charging, and tracing are
/// shared with the clique transport. See the module docs for the
/// protocol and failure semantics.
///
/// # Examples
///
/// ```
/// use qcc_congest::{GossipTransport, NodeId, Topology, Transport};
///
/// let topo = Topology::ring(6);
/// let mut t = GossipTransport::new(topo, 7).unwrap();
/// let views = t.broadcast_block(NodeId::new(0), b"hello mesh").unwrap();
/// assert!(views.iter().all(|v| v == b"hello mesh"));
/// assert!(t.gossip_stats().unwrap().packets_sent > 0);
/// ```
#[derive(Clone, Debug)]
pub struct GossipTransport {
    topo: Topology,
    net: Clique,
    /// `next_hops()[dst][u]` = neighbor of `u` toward `dst`.
    hops: Vec<Vec<usize>>,
    chunks: usize,
    seed: u64,
    wave_cap: Option<u64>,
    broadcast_counter: u64,
    stats: GossipStats,
}

/// Default chunks per broadcast block (the SNIPPETS exemplar's 10,
/// rounded to a power of two).
pub const DEFAULT_GOSSIP_CHUNKS: usize = 8;

impl GossipTransport {
    /// Builds a coded-gossip transport over `topo`; `seed` drives the
    /// coding coefficients (independent of algorithm and fault RNGs).
    ///
    /// # Errors
    ///
    /// [`CongestError::Partitioned`] when `topo` is disconnected — a
    /// typed rejection before any round is charged.
    pub fn new(topo: Topology, seed: u64) -> Result<Self, CongestError> {
        topo.require_connected()?;
        let net = Clique::new(topo.n())?;
        let hops = topo.next_hops();
        Ok(GossipTransport {
            topo,
            net,
            hops,
            chunks: DEFAULT_GOSSIP_CHUNKS,
            seed,
            wave_cap: None,
            broadcast_counter: 0,
            stats: GossipStats::default(),
        })
    }

    /// Sets the chunks per block. `1` degenerates to uncoded flooding —
    /// every packet is the whole block — which is the "retry by
    /// repetition" baseline the transport matrix calls *flood*.
    ///
    /// # Panics
    ///
    /// Panics when `chunks == 0`.
    #[must_use]
    pub fn with_chunks(mut self, chunks: usize) -> Self {
        assert!(chunks > 0, "need at least one chunk");
        self.chunks = chunks;
        self
    }

    /// Caps the waves a single broadcast may take before it fails with
    /// [`CongestError::DecodeFailed`]. Defaults to
    /// `8 · (chunks + hop diameter) + 40`.
    #[must_use]
    pub fn with_wave_cap(mut self, cap: u64) -> Self {
        self.wave_cap = Some(cap);
        self
    }

    /// The underlying topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Chunks per broadcast block.
    #[must_use]
    pub fn chunks(&self) -> usize {
        self.chunks
    }

    /// Read access to the inner round/metrics engine.
    #[must_use]
    pub fn network(&self) -> &Clique {
        &self.net
    }

    fn effective_wave_cap(&self) -> u64 {
        self.wave_cap.unwrap_or_else(|| {
            let diameter = self.topo.hop_diameter().unwrap_or(0);
            8 * (self.chunks as u64 + diameter) + 40
        })
    }

    fn is_crashed(&self, node: usize) -> bool {
        self.net
            .faults
            .as_ref()
            .is_some_and(|f| f.is_crashed(NodeId::new(node)))
    }

    /// One RLNC broadcast: spray coded packets along topology edges until
    /// every node decodes, a node crashes, or the wave cap runs out.
    fn broadcast_inner(&mut self, src: NodeId, block: &[u8]) -> Result<Vec<Vec<u8>>, CongestError> {
        let n = self.topo.n();
        if src.index() >= n {
            return Err(CongestError::UnknownNode { node: src, n });
        }
        let parts = split_block(block, self.chunks);
        let chunk_bytes = parts[0].len();
        self.broadcast_counter += 1;
        let epoch = self.broadcast_counter;
        let mut decoders: Vec<Decoder> = (0..n)
            .map(|i| {
                if i == src.index() {
                    Decoder::source(&parts)
                } else {
                    Decoder::new(self.chunks, chunk_bytes)
                }
            })
            .collect();
        let mut rngs: Vec<PacketRng> = (0..n)
            .map(|i| PacketRng::new(self.seed ^ (epoch << 24) ^ (i as u64)))
            .collect();
        let rounds_before = Clique::rounds(&self.net);
        let cap = self.effective_wave_cap();
        let mut wave = 0u64;
        loop {
            // Fail-stop is unrecoverable for gossip: a crashed node can
            // never decode, so surface it as the typed error immediately.
            if let Some(node) = (0..n).find(|&i| self.is_crashed(i)) {
                return Err(CongestError::NodeCrashed {
                    node: NodeId::new(node),
                    phase: self.net.phase_label(),
                });
            }
            let full = decoders.iter().filter(|d| d.is_full()).count();
            if full == n {
                break;
            }
            if wave >= cap {
                return Err(CongestError::DecodeFailed {
                    phase: self.net.phase_label(),
                    undecoded: n - full,
                    rounds: Clique::rounds(&self.net) - rounds_before,
                });
            }
            // Every informed node sprays one fresh combination per
            // neighbor — no acks, no feedback; the redundancy is the
            // mechanism and the waste is measured, not hidden.
            let mut sends = Vec::new();
            for u in 0..n {
                if decoders[u].rank() == 0 || self.is_crashed(u) {
                    continue;
                }
                for &v in self.topo.neighbors(u) {
                    let packet = decoders[u]
                        .emit(&mut rngs[u])
                        .expect("rank > 0 emits a packet");
                    sends.push(Envelope::new(NodeId::new(u), NodeId::new(v), packet));
                }
            }
            if sends.is_empty() {
                // Unreachable with a connected topology and a live source,
                // but guard against looping forever.
                return Err(CongestError::DecodeFailed {
                    phase: self.net.phase_label(),
                    undecoded: n - full,
                    rounds: Clique::rounds(&self.net) - rounds_before,
                });
            }
            let sent = sends.len() as u64;
            let inboxes = self.net.exchange(sends)?;
            wave += 1;
            let mut innovative = 0u64;
            let mut wasted = 0u64;
            let mut wasted_bits = 0u64;
            for (v, decoder) in decoders.iter_mut().enumerate() {
                let me = NodeId::new(v);
                for (_, packet) in inboxes.of(me) {
                    if decoder.absorb(&packet.coeffs, &packet.data) {
                        innovative += 1;
                    } else {
                        wasted += 1;
                        wasted_bits += packet.bit_size();
                    }
                }
            }
            let full_now = decoders.iter().filter(|d| d.is_full()).count();
            self.stats.waves += 1;
            self.stats.packets_sent += sent;
            self.stats.innovative_packets += innovative;
            self.stats.wasted_packets += wasted;
            self.stats.wasted_bits += wasted_bits;
            self.stats.full_nodes = full_now;
            self.stats.per_wave.push(WaveStats {
                wave: wave - 1,
                sent,
                innovative,
                wasted,
                full_nodes: full_now,
            });
        }
        self.stats.broadcasts += 1;
        self.stats.full_nodes = n;
        let mut out = Vec::with_capacity(n);
        for (i, d) in decoders.iter().enumerate() {
            let framed = d.decode().ok_or_else(|| CongestError::DecodeFailed {
                phase: self.net.phase_label(),
                undecoded: 1,
                rounds: Clique::rounds(&self.net) - rounds_before,
            })?;
            let block = unframe(&framed).ok_or_else(|| CongestError::DecodeFailed {
                phase: self.net.phase_label(),
                undecoded: 1,
                rounds: Clique::rounds(&self.net) - rounds_before,
            })?;
            debug_assert_eq!(
                block.len(),
                out.first().map_or(block.len(), Vec::len),
                "{i}"
            );
            out.push(block);
        }
        Ok(out)
    }

    /// Multi-hop store-and-forward exchange along BFS next-hop paths.
    ///
    /// Each hop is one [`Clique::exchange`] wave restricted to topology
    /// edges; a forwarded message carries `(id, final-dst, payload)` so
    /// relays know where to send it next. Messages dropped by faults
    /// vanish permanently (no retransmission) and surface as a typed
    /// [`CongestError::DeliveryFailed`].
    fn exchange_inner(
        &mut self,
        sends: Vec<Envelope<RawBits>>,
    ) -> Result<Inboxes<RawBits>, CongestError> {
        let n = self.topo.n();
        for e in &sends {
            for node in [e.src, e.dst] {
                if node.index() >= n {
                    return Err(CongestError::UnknownNode { node, n });
                }
            }
        }
        let mut staged: Vec<(NodeId, NodeId, RawBits)> = Vec::new();
        // In flight: (id, current node, final dst, payload).
        let mut inflight: Vec<(usize, usize, usize, RawBits)> = Vec::new();
        let mut origin_of: Vec<NodeId> = Vec::new();
        let mut delivered: Vec<bool> = Vec::new();
        for e in sends {
            if e.src == e.dst {
                // Local messages are free, exactly as on the clique.
                staged.push((e.dst, e.src, e.payload));
                continue;
            }
            let id = origin_of.len();
            origin_of.push(e.src);
            delivered.push(false);
            inflight.push((id, e.src.index(), e.dst.index(), e.payload));
        }
        let mut hop = 0u32;
        // Shortest-hop paths are at most n − 1 hops; duplicates ride the
        // same paths, so n hops always drains the network.
        while !inflight.is_empty() && hop < n as u32 {
            let wire: Vec<Envelope<(u64, u64, RawBits)>> = inflight
                .iter()
                .map(|(id, cur, dst, raw)| {
                    let next = self.hops[*dst][*cur];
                    Envelope::new(
                        NodeId::new(*cur),
                        NodeId::new(next),
                        (*id as u64, *dst as u64, raw.clone()),
                    )
                })
                .collect();
            let inboxes = self.net.exchange(wire)?;
            hop += 1;
            inflight.clear();
            for v in 0..n {
                let me = NodeId::new(v);
                for (_, (id, dst, raw)) in inboxes.of(me) {
                    let id = *id as usize;
                    if *dst == v as u64 {
                        delivered[id] = true;
                        staged.push((me, origin_of[id], raw.clone()));
                    } else {
                        inflight.push((id, v, *dst as usize, raw.clone()));
                    }
                }
            }
        }
        let undelivered = delivered.iter().filter(|&&d| !d).count() as u64;
        if undelivered > 0 {
            return Err(CongestError::DeliveryFailed {
                phase: self.net.phase_label(),
                undelivered,
                attempts: hop,
            });
        }
        Ok(Inboxes::from_staged(n, staged))
    }
}

impl Transport for GossipTransport {
    fn n(&self) -> usize {
        self.topo.n()
    }

    fn kind(&self) -> &'static str {
        "gossip"
    }

    fn rounds(&self) -> u64 {
        Clique::rounds(&self.net)
    }

    fn metrics(&self) -> &Metrics {
        Clique::metrics(&self.net)
    }

    fn fault_counts(&self) -> FaultCounts {
        *Clique::fault_counts(&self.net)
    }

    fn begin_phase(&mut self, label: &str) {
        self.net.begin_phase(label);
    }

    fn end_phase(&mut self) {
        self.net.end_phase();
    }

    fn push_span(&mut self, label: &str) {
        self.net.push_span(label);
    }

    fn pop_span(&mut self) {
        self.net.pop_span();
    }

    fn close_all_spans(&mut self) {
        self.net.close_all_spans();
    }

    fn set_trace_sink(&mut self, sink: TraceSink) {
        self.net.set_trace_sink(sink);
    }

    fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.net.set_fault_plan(plan);
    }

    fn exchange_bits(
        &mut self,
        sends: Vec<Envelope<RawBits>>,
    ) -> Result<Inboxes<RawBits>, CongestError> {
        self.exchange_inner(sends)
    }

    fn route_bits(
        &mut self,
        sends: Vec<Envelope<RawBits>>,
    ) -> Result<Inboxes<RawBits>, CongestError> {
        // No Lenzen relays without all-to-all links: relayed routing is
        // the same store-and-forward walk as the plain exchange.
        self.exchange_inner(sends)
    }

    fn broadcast_block(&mut self, src: NodeId, block: &[u8]) -> Result<Vec<Vec<u8>>, CongestError> {
        self.net.push_span(&format!("rlnc/src{}", src.index()));
        let result = self.broadcast_inner(src, block);
        self.net.pop_span();
        result
    }

    fn gossip_blocks(&mut self, blocks: &[Vec<u8>]) -> Result<Vec<Vec<Vec<u8>>>, CongestError> {
        let n = self.topo.n();
        if blocks.len() != n {
            return Err(CongestError::UnknownNode {
                node: NodeId::new(blocks.len()),
                n,
            });
        }
        // A conservative sequential schedule: one coded broadcast per
        // source. Rounds add up source by source, which upper-bounds any
        // interleaved schedule and keeps the accounting legible.
        let mut views: Vec<Vec<Vec<u8>>> = vec![Vec::with_capacity(n); n];
        for (i, block) in blocks.iter().enumerate() {
            let copies = self.broadcast_block(NodeId::new(i), block)?;
            for (view, copy) in views.iter_mut().zip(copies) {
                view.push(copy);
            }
        }
        Ok(views)
    }

    fn gossip_stats(&self) -> Option<&GossipStats> {
        Some(&self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw_sends(n: usize) -> Vec<Envelope<RawBits>> {
        let mut sends = Vec::new();
        for src in 0..n {
            for dst in 0..n {
                sends.push(Envelope::new(
                    NodeId::new(src),
                    NodeId::new(dst),
                    RawBits::new((src * n + dst) as u64, 32),
                ));
            }
        }
        sends
    }

    #[test]
    fn clique_transport_is_pure_delegation() {
        let mut direct = Clique::new(6).unwrap();
        let mut traited = Clique::new(6).unwrap();
        direct.exchange(raw_sends(6)).unwrap();
        {
            let t: &mut dyn Transport = &mut traited;
            t.exchange_bits(raw_sends(6)).unwrap();
            assert_eq!(t.kind(), "clique");
        }
        assert_eq!(Clique::rounds(&direct), Clique::rounds(&traited));
        assert_eq!(
            direct.metrics().total_bits(),
            traited.metrics().total_bits()
        );
    }

    #[test]
    fn clique_broadcast_block_reaches_everyone() {
        let mut net = Clique::new(5).unwrap();
        let t: &mut dyn Transport = &mut net;
        let views = t.broadcast_block(NodeId::new(2), b"payload").unwrap();
        assert_eq!(views.len(), 5);
        assert!(views.iter().all(|v| v == b"payload"));
        assert!(t.rounds() > 0);
        assert!(t.gossip_stats().is_none());
    }

    #[test]
    fn clique_gossip_blocks_builds_per_source_views() {
        let mut net = Clique::new(4).unwrap();
        let blocks: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 3]).collect();
        let views = Transport::gossip_blocks(&mut net, &blocks).unwrap();
        for view in &views {
            assert_eq!(view, &blocks);
        }
    }

    #[test]
    fn gossip_broadcast_decodes_on_every_topology() {
        let block: Vec<u8> = (0..50).map(|i| (i * 7) as u8).collect();
        for topo in [
            Topology::clique(6),
            Topology::ring(6),
            Topology::torus(6),
            Topology::random_mesh(9, 4, 3),
        ] {
            let n = topo.n();
            let label = topo.label().to_string();
            let mut t = GossipTransport::new(topo, 11).unwrap();
            let views = t.broadcast_block(NodeId::new(1), &block).unwrap();
            assert_eq!(views.len(), n, "{label}");
            assert!(views.iter().all(|v| v == &block), "{label}");
            let stats = t.gossip_stats().unwrap();
            assert_eq!(stats.full_nodes, n, "{label}");
            assert!(stats.packets_sent > 0, "{label}");
            assert!(stats.innovative_packets >= (n as u64 - 1), "{label}");
            assert!(t.rounds() > 0, "{label}");
        }
    }

    #[test]
    fn flood_mode_is_chunks_one() {
        let mut t = GossipTransport::new(Topology::ring(5), 2)
            .unwrap()
            .with_chunks(1);
        let views = t.broadcast_block(NodeId::new(0), b"flood").unwrap();
        assert!(views.iter().all(|v| v == b"flood"));
        // One chunk: a ring needs about diameter waves to cover.
        let stats = t.gossip_stats().unwrap();
        assert!(stats.waves >= 2, "waves = {}", stats.waves);
    }

    #[test]
    fn partitioned_topology_is_rejected_at_construction() {
        let topo = Topology::from_edges(6, &[(0, 1), (2, 3), (4, 5)], "islands");
        let err = GossipTransport::new(topo, 0).unwrap_err();
        assert_eq!(err, CongestError::Partitioned { reachable: 2, n: 6 });
    }

    #[test]
    fn crash_surfaces_as_typed_error() {
        let mut t = GossipTransport::new(Topology::ring(6), 4).unwrap();
        let mut plan = FaultPlan::parse("crash=3@0,seed=1").unwrap();
        plan.seed = 1;
        Transport::set_fault_plan(&mut t, plan);
        let err = t.broadcast_block(NodeId::new(0), b"doomed").unwrap_err();
        match err {
            CongestError::NodeCrashed { node, .. } => assert_eq!(node.index(), 3),
            other => panic!("expected NodeCrashed, got {other:?}"),
        }
    }

    #[test]
    fn exhausted_wave_cap_is_decode_failed() {
        // Cap of zero: the first wave never happens, so the broadcast
        // must fail with the typed decode error, never hang or lie.
        let mut t = GossipTransport::new(Topology::ring(5), 4)
            .unwrap()
            .with_wave_cap(0);
        let err = t.broadcast_block(NodeId::new(0), b"never").unwrap_err();
        match err {
            CongestError::DecodeFailed { undecoded, .. } => assert_eq!(undecoded, 4),
            other => panic!("expected DecodeFailed, got {other:?}"),
        }
    }

    #[test]
    fn gossip_exchange_forwards_multi_hop() {
        let n = 6;
        let mut gossip = GossipTransport::new(Topology::ring(n), 9).unwrap();
        let mut clique = Clique::new(n).unwrap();
        let got = gossip.exchange_inner(raw_sends(n)).unwrap();
        let want = clique.exchange(raw_sends(n)).unwrap();
        // Same messages arrive at the same destinations (the ring charges
        // more rounds, but content and grouping agree).
        for node in NodeId::all(n) {
            let mut g: Vec<(NodeId, u64)> = got.of(node).iter().map(|(s, r)| (*s, r.tag)).collect();
            let mut w: Vec<(NodeId, u64)> =
                want.of(node).iter().map(|(s, r)| (*s, r.tag)).collect();
            g.sort_unstable();
            w.sort_unstable();
            assert_eq!(g, w, "inbox of {node}");
        }
        assert!(
            Transport::rounds(&gossip) > Clique::rounds(&clique),
            "multi-hop forwarding must cost more rounds than the clique"
        );
    }

    #[test]
    fn gossip_exchange_surfaces_losses_as_typed_error() {
        let mut t = GossipTransport::new(Topology::ring(6), 1).unwrap();
        Transport::set_fault_plan(&mut t, FaultPlan::parse("drop=1.0,seed=5").unwrap());
        let err = t.exchange_inner(raw_sends(6)).unwrap_err();
        match err {
            CongestError::DeliveryFailed { undelivered, .. } => assert!(undelivered > 0),
            other => panic!("expected DeliveryFailed, got {other:?}"),
        }
    }

    #[test]
    fn gossip_blocks_all_sources_all_views() {
        let n = 5;
        let mut t = GossipTransport::new(Topology::torus(n), 8).unwrap();
        let blocks: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 8 + i]).collect();
        let views = Transport::gossip_blocks(&mut t, &blocks).unwrap();
        for view in &views {
            assert_eq!(view, &blocks);
        }
        assert_eq!(t.gossip_stats().unwrap().broadcasts, n as u64);
        // Activity landed in the metrics span tree under the rlnc spans.
        let spans = Transport::metrics(&t).spans();
        assert!(
            spans
                .iter()
                .any(|s| s.label.starts_with("rlnc/") && s.totals.rounds > 0),
            "expected rlnc/srcN spans with charged rounds"
        );
    }

    #[test]
    fn gossip_survives_mild_drop_rates() {
        let mut t = GossipTransport::new(Topology::random_mesh(8, 4, 2), 6).unwrap();
        Transport::set_fault_plan(&mut t, FaultPlan::parse("drop=0.05,seed=3").unwrap());
        let block: Vec<u8> = (0..40).collect();
        let views = t.broadcast_block(NodeId::new(0), &block).unwrap();
        assert!(views.iter().all(|v| v == &block));
        let stats = t.gossip_stats().unwrap();
        assert!(
            stats.innovative_packets + stats.wasted_packets <= stats.packets_sent,
            "drops mean fewer arrivals than sends"
        );
    }

    #[test]
    fn stats_waste_fraction_is_bounded() {
        let mut s = GossipStats::default();
        assert_eq!(s.waste_fraction(), 0.0);
        s.packets_sent = 10;
        s.wasted_packets = 3;
        assert!((s.waste_fraction() - 0.3).abs() < 1e-12);
    }
}
