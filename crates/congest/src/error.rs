//! Error types for the network simulator.

use std::error::Error;
use std::fmt;

use crate::node::NodeId;

/// Errors raised by the CONGEST-CLIQUE simulator.
///
/// All variants indicate *programming errors in the simulated algorithm*
/// (addressing a node outside the network, self-loops where the model
/// forbids them), not runtime faults: the model assumes reliable links.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CongestError {
    /// A message referenced a node outside `0..n`.
    UnknownNode {
        /// The offending node id.
        node: NodeId,
        /// The network size.
        n: usize,
    },
    /// A routing request exceeded the declared per-node load bound.
    LoadExceeded {
        /// The overloaded node.
        node: NodeId,
        /// Number of message units at that node.
        load: u64,
        /// Declared bound.
        bound: u64,
    },
    /// The network was constructed with zero nodes.
    EmptyNetwork,
}

impl fmt::Display for CongestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CongestError::UnknownNode { node, n } => {
                write!(f, "message references {node} but the network has {n} nodes")
            }
            CongestError::LoadExceeded { node, load, bound } => {
                write!(
                    f,
                    "{node} carries {load} message units, exceeding bound {bound}"
                )
            }
            CongestError::EmptyNetwork => write!(f, "network must contain at least one node"),
        }
    }
}

impl Error for CongestError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CongestError::UnknownNode {
            node: NodeId::new(9),
            n: 4,
        };
        assert!(e.to_string().contains("node9"));
        assert!(e.to_string().contains('4'));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CongestError>();
    }
}
