//! Error types for the network simulator.

use std::error::Error;
use std::fmt;

use crate::node::NodeId;

/// Errors raised by the CONGEST-CLIQUE simulator.
///
/// The addressing variants ([`CongestError::UnknownNode`],
/// [`CongestError::LoadExceeded`], [`CongestError::EmptyNetwork`]) indicate
/// *programming errors in the simulated algorithm*. By default the model
/// assumes reliable links, but when a [`crate::FaultPlan`] is active the
/// runtime-fault variants ([`CongestError::DeliveryFailed`],
/// [`CongestError::NodeCrashed`]) report injected faults that the
/// reliable-delivery envelope could not mask.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CongestError {
    /// A message referenced a node outside `0..n`.
    UnknownNode {
        /// The offending node id.
        node: NodeId,
        /// The network size.
        n: usize,
    },
    /// A routing request exceeded the declared per-node load bound.
    LoadExceeded {
        /// The overloaded node.
        node: NodeId,
        /// Number of message units at that node.
        load: u64,
        /// Declared bound.
        bound: u64,
    },
    /// The network was constructed with zero nodes.
    EmptyNetwork,
    /// The reliable-delivery envelope exhausted its retry budget with
    /// messages still undelivered.
    DeliveryFailed {
        /// Label of the accounting phase that was active.
        phase: String,
        /// Messages still undelivered when the budget ran out.
        undelivered: u64,
        /// Delivery waves attempted (initial send plus retransmits).
        attempts: u32,
    },
    /// A fail-stopped node made delivery impossible.
    NodeCrashed {
        /// The crashed node.
        node: NodeId,
        /// Label of the accounting phase that was active.
        phase: String,
    },
    /// A transport was asked to run over a disconnected topology: some
    /// nodes can never hear from the rest, so collective operations are
    /// impossible by construction (not a runtime fault — rejected before
    /// any round is charged).
    Partitioned {
        /// Nodes reachable from node 0.
        reachable: usize,
        /// The network size.
        n: usize,
    },
    /// A coded-gossip collective exhausted its round budget with nodes
    /// still unable to decode the block (injected losses outran the
    /// coding redundancy).
    DecodeFailed {
        /// Label of the accounting phase that was active.
        phase: String,
        /// Nodes still short of full decoding rank.
        undecoded: usize,
        /// Rounds charged before giving up.
        rounds: u64,
    },
}

impl fmt::Display for CongestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CongestError::UnknownNode { node, n } => {
                write!(f, "message references {node} but the network has {n} nodes")
            }
            CongestError::LoadExceeded { node, load, bound } => {
                write!(
                    f,
                    "{node} carries {load} message units, exceeding bound {bound}"
                )
            }
            CongestError::EmptyNetwork => write!(f, "network must contain at least one node"),
            CongestError::DeliveryFailed {
                phase,
                undelivered,
                attempts,
            } => {
                write!(
                    f,
                    "reliable delivery failed in phase {phase:?}: {undelivered} messages \
                     undelivered after {attempts} attempts"
                )
            }
            CongestError::NodeCrashed { node, phase } => {
                write!(f, "{node} crashed during phase {phase:?}")
            }
            CongestError::Partitioned { reachable, n } => {
                write!(
                    f,
                    "topology is disconnected: only {reachable} of {n} nodes \
                     reachable from node 0"
                )
            }
            CongestError::DecodeFailed {
                phase,
                undecoded,
                rounds,
            } => {
                write!(
                    f,
                    "coded gossip failed in phase {phase:?}: {undecoded} node(s) \
                     could not decode after {rounds} rounds"
                )
            }
        }
    }
}

impl Error for CongestError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CongestError::UnknownNode {
            node: NodeId::new(9),
            n: 4,
        };
        assert!(e.to_string().contains("node9"));
        assert!(e.to_string().contains('4'));
    }

    #[test]
    fn fault_variants_name_the_phase() {
        let e = CongestError::DeliveryFailed {
            phase: "semiring/distribute".into(),
            undelivered: 3,
            attempts: 9,
        };
        let text = e.to_string();
        assert!(text.contains("semiring/distribute"), "{text}");
        assert!(text.contains('3') && text.contains('9'), "{text}");
        let e = CongestError::NodeCrashed {
            node: NodeId::new(2),
            phase: "step3".into(),
        };
        assert!(e.to_string().contains("node2"));
        assert!(e.to_string().contains("step3"));
    }

    #[test]
    fn transport_variants_are_informative() {
        let e = CongestError::Partitioned { reachable: 3, n: 8 };
        let text = e.to_string();
        assert!(text.contains('3') && text.contains('8'), "{text}");
        assert!(text.contains("disconnected"), "{text}");
        let e = CongestError::DecodeFailed {
            phase: "gossip/src2".into(),
            undecoded: 2,
            rounds: 41,
        };
        let text = e.to_string();
        assert!(text.contains("gossip/src2"), "{text}");
        assert!(text.contains('2') && text.contains("41"), "{text}");
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CongestError>();
    }
}
