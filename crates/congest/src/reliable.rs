//! Reliable delivery over a faulty network: ack/retransmit with bounded
//! retries and deterministic backoff.
//!
//! When a [`crate::Clique`] has both a non-empty [`crate::FaultPlan`] and a
//! [`ReliableConfig`], every communication primitive transparently runs
//! this envelope protocol instead of raw delivery:
//!
//! 1. each payload is sealed with a per-call sequence number
//!    ([`Sealed`], costing `⌈log₂ #messages⌉` extra bits on the wire);
//! 2. the sealed wave is transmitted with the raw primitive (faults
//!    apply); receivers deduplicate by sequence number and return one ack
//!    (the sequence number) per received copy — the ack wave is itself
//!    subject to faults;
//! 3. the sender retransmits every unacked message, after charging
//!    `backoff_base · wave` idle rounds of deterministic backoff;
//! 4. after `1 + max_retries` waves with survivors, the call fails with
//!    [`crate::CongestError::NodeCrashed`] (some undelivered message has a
//!    fail-stopped endpoint — no retry count can save it) or
//!    [`crate::CongestError::DeliveryFailed`].
//!
//! Every wave is charged honestly through the normal accounting path:
//! retry rounds, ack rounds, and backoff rounds all land in the metrics
//! and the trace. The envelope only engages when faults are present; with
//! an empty fault plan the primitives keep their exact raw code path, so
//! round counts stay byte-identical (pinned by `tests/determinism.rs`).

use crate::envelope::{Envelope, Inboxes};
use crate::error::CongestError;
use crate::network::Clique;
use crate::node::NodeId;
use crate::payload::{bits_for_count, Payload, RawBits};

/// Configuration of the ack/retransmit envelope.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReliableConfig {
    /// Retransmit waves allowed after the initial send.
    pub max_retries: u32,
    /// Idle rounds charged before retransmit wave `w` are
    /// `backoff_base · w` (linear, deterministic backoff).
    pub backoff_base: u64,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        ReliableConfig {
            max_retries: 8,
            backoff_base: 1,
        }
    }
}

/// A payload sealed with the envelope's per-call sequence number.
#[derive(Clone, Debug)]
pub(crate) struct Sealed<T> {
    /// Index of the original message within the call.
    pub(crate) seq: u64,
    /// Wire width of the sequence-number field.
    pub(crate) seq_bits: u64,
    /// The original payload.
    pub(crate) payload: T,
}

impl<T: Payload> Payload for Sealed<T> {
    fn bit_size(&self) -> u64 {
        self.seq_bits + self.payload.bit_size()
    }
}

/// Which raw primitive carries the envelope's data waves.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Wave {
    /// Direct link delivery, tagged with the original call kind
    /// (`"exchange"`, `"broadcast"`, `"gossip"`).
    Exchange(&'static str),
    /// Lemma 1 relay routing.
    Route,
}

impl Clique {
    /// Runs one communication call through the ack/retransmit envelope.
    ///
    /// Preconditions: endpoints are validated and [`Clique::envelope_active`]
    /// is true. Returns the same inboxes the raw primitive would produce on
    /// a reliable network (payloads in send order per `(dst, src)` pair), or
    /// [`CongestError::NodeCrashed`] / [`CongestError::DeliveryFailed`] when
    /// the retry budget runs out.
    pub(crate) fn deliver_reliably<T: Payload>(
        &mut self,
        sends: Vec<Envelope<T>>,
        wave: Wave,
    ) -> Result<Inboxes<T>, CongestError> {
        let cfg = self.reliable.expect("envelope_active implies a config");
        let total = sends.len();
        let seq_bits = bits_for_count(total.max(2));
        let mut pending: Vec<Envelope<Sealed<T>>> = sends
            .into_iter()
            .enumerate()
            .map(|(i, e)| {
                Envelope::new(
                    e.src,
                    e.dst,
                    Sealed {
                        seq: i as u64,
                        seq_bits,
                        payload: e.payload,
                    },
                )
            })
            .collect();
        // Receiver-side dedup and sender-side ack bookkeeping, indexed by
        // the per-call sequence number.
        let mut delivered = vec![false; total];
        let mut acked = vec![false; total];
        let mut accepted: Vec<(u64, NodeId, NodeId, T)> = Vec::with_capacity(total);
        let mut waves = 0u32;
        while !pending.is_empty() && waves <= cfg.max_retries {
            if waves > 0 {
                // Deterministic linear backoff before each retransmit wave,
                // charged as idle rounds.
                self.charge_rounds(cfg.backoff_base * u64::from(waves));
            }
            waves += 1;
            let data = pending.clone();
            let inboxes = match wave {
                Wave::Exchange(kind) => {
                    self.cache_bit_sizes(&data);
                    self.exchange_presized(data, kind)
                }
                Wave::Route => self.route_raw(data),
            };
            // Receivers accept the first copy of each sequence number and
            // ack every copy they see (re-acking tells a sender whose
            // earlier ack was lost).
            let mut acks: Vec<Envelope<RawBits>> = Vec::new();
            for (receiver, inbox) in inboxes.into_vec().into_iter().enumerate() {
                let me = NodeId::new(receiver);
                for (src, sealed) in inbox {
                    let seq = sealed.seq as usize;
                    if !delivered[seq] {
                        delivered[seq] = true;
                        accepted.push((sealed.seq, src, me, sealed.payload));
                    }
                    acks.push(Envelope::new(me, src, RawBits::new(sealed.seq, seq_bits)));
                }
            }
            // The ack wave rides the direct links and is itself faultable.
            if !acks.is_empty() {
                self.cache_bit_sizes(&acks);
                let ack_inboxes = self.exchange_presized(acks, "ack");
                for inbox in ack_inboxes.into_vec() {
                    for (_, ack) in inbox {
                        acked[ack.tag as usize] = true;
                    }
                }
            }
            pending.retain(|e| !acked[e.payload.seq as usize]);
        }
        if !pending.is_empty() {
            if let Some(faults) = &self.faults {
                for e in &pending {
                    for node in [e.src, e.dst] {
                        if faults.is_crashed(node) {
                            return Err(CongestError::NodeCrashed {
                                node,
                                phase: self.phase_label(),
                            });
                        }
                    }
                }
            }
            return Err(CongestError::DeliveryFailed {
                phase: self.phase_label(),
                undelivered: pending.len() as u64,
                attempts: waves,
            });
        }
        // Rebuild the raw primitive's inbox layout: ordering by sequence
        // number restores send order, and the staged build's stable sort
        // then yields the usual destination/sender/submission order.
        accepted.sort_by_key(|&(seq, _, _, _)| seq);
        let n = self.n();
        let staged = accepted
            .into_iter()
            .map(|(_, src, dst, payload)| (dst, src, payload))
            .collect();
        Ok(Inboxes::from_staged(n, staged))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_bounds_retries() {
        let cfg = ReliableConfig::default();
        assert_eq!(cfg.max_retries, 8);
        assert_eq!(cfg.backoff_base, 1);
    }

    #[test]
    fn sealing_adds_the_sequence_field_width() {
        let sealed = Sealed {
            seq: 3,
            seq_bits: 7,
            payload: 5u64,
        };
        assert_eq!(sealed.bit_size(), 7 + 64);
    }
}
