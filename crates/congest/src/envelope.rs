//! Addressed messages and per-node inboxes.

use crate::node::NodeId;
use crate::payload::Payload;

/// A message addressed from one node to another.
///
/// # Examples
///
/// ```
/// use qcc_congest::{Envelope, NodeId};
///
/// let e = Envelope::new(NodeId::new(0), NodeId::new(3), 42u64);
/// assert_eq!(e.src, NodeId::new(0));
/// assert_eq!(e.dst, NodeId::new(3));
/// assert_eq!(e.payload, 42);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<T> {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Message content.
    pub payload: T,
}

impl<T> Envelope<T> {
    /// Creates a new addressed message.
    pub fn new(src: NodeId, dst: NodeId, payload: T) -> Self {
        Envelope { src, dst, payload }
    }
}

/// The messages received by each node after a communication phase.
///
/// Inbox `i` holds `(sender, payload)` pairs for node `i`. Delivery order
/// within an inbox is deterministic (sorted by sender, then by submission
/// order) so that simulations are reproducible.
///
/// Storage is a single flat arena: all messages of a phase live in one
/// contiguous buffer grouped by destination, with a per-destination offset
/// table. A phase delivering `m` messages costs two allocations total
/// instead of one vector per node, and the hot construction path places
/// records by counting instead of sorting (see `Clique::deliver`).
#[derive(Clone, Debug)]
pub struct Inboxes<T> {
    /// All delivered `(sender, payload)` records, grouped by destination;
    /// within a destination, sorted by sender then submission order.
    data: Vec<(NodeId, T)>,
    /// Inbox `d` is `data[starts[d] .. starts[d + 1]]` (length `n + 1`).
    starts: Vec<usize>,
}

impl<T> Inboxes<T> {
    /// Creates empty inboxes for an `n`-node network.
    pub fn empty(n: usize) -> Self {
        Inboxes {
            data: Vec::new(),
            starts: vec![0; n + 1],
        }
    }

    /// Builds inboxes from `(dst, src, payload)` records in submission
    /// order: the stable sort groups by destination and orders each inbox
    /// by sender then submission — the model's delivery order.
    pub(crate) fn from_staged(n: usize, mut staged: Vec<(NodeId, NodeId, T)>) -> Self {
        staged.sort_by_key(|&(dst, src, _)| (dst, src));
        let mut starts = vec![0usize; n + 1];
        for &(dst, _, _) in &staged {
            starts[dst.index() + 1] += 1;
        }
        for d in 0..n {
            starts[d + 1] += starts[d];
        }
        Inboxes {
            data: staged.into_iter().map(|(_, src, p)| (src, p)).collect(),
            starts,
        }
    }

    /// Builds inboxes from pre-placed parts: `data` already grouped by
    /// destination per `starts`, each group sender-then-submission ordered.
    pub(crate) fn from_parts(data: Vec<(NodeId, T)>, starts: Vec<usize>) -> Self {
        debug_assert_eq!(*starts.last().expect("offsets non-empty"), data.len());
        Inboxes { data, starts }
    }

    /// Messages received by `node`, as `(sender, payload)` pairs.
    #[must_use]
    pub fn of(&self, node: NodeId) -> &[(NodeId, T)] {
        &self.data[self.starts[node.index()]..self.starts[node.index() + 1]]
    }

    /// Number of nodes in the network these inboxes belong to.
    #[must_use]
    pub fn len(&self) -> usize {
        self.starts.len() - 1
    }

    /// Whether there are no nodes (degenerate network).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of messages across all inboxes.
    #[must_use]
    pub fn message_count(&self) -> usize {
        self.data.len()
    }

    /// Consumes the inboxes, yielding one `Vec<(sender, payload)>` per node.
    pub fn into_vec(self) -> Vec<Vec<(NodeId, T)>> {
        let n = self.len();
        let mut out = Vec::with_capacity(n);
        let mut items = self.data.into_iter();
        for d in 0..n {
            let count = self.starts[d + 1] - self.starts[d];
            out.push(items.by_ref().take(count).collect());
        }
        out
    }

    /// Iterates over `(node, inbox)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &[(NodeId, T)])> {
        (0..self.len()).map(|i| (NodeId::new(i), self.of(NodeId::new(i))))
    }
}

/// Builds the sends of every node by applying `f` to each node id.
///
/// This is the idiomatic way to express "each node, based on its local
/// state, enqueues messages" without letting node `i` read node `j`'s state:
/// the closure receives only the node id and must capture per-node state
/// through indexed access.
///
/// # Examples
///
/// ```
/// use qcc_congest::{collect_sends, Envelope, NodeId};
///
/// // every node sends its own index to node 0
/// let sends = collect_sends(4, |u| {
///     vec![Envelope::new(u, NodeId::new(0), u.index() as u64)]
/// });
/// assert_eq!(sends.len(), 4);
/// ```
pub fn collect_sends<T, F>(n: usize, mut f: F) -> Vec<Envelope<T>>
where
    F: FnMut(NodeId) -> Vec<Envelope<T>>,
{
    let mut out = Vec::new();
    for u in NodeId::all(n) {
        let mut sends = f(u);
        debug_assert!(
            sends.iter().all(|e| e.src == u),
            "node {u} attempted to forge a message from another source"
        );
        out.append(&mut sends);
    }
    out
}

/// Total bit volume of a set of sends.
pub fn total_bits<T: Payload>(sends: &[Envelope<T>]) -> u64 {
    sends.iter().map(|e| e.payload.bit_size()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inboxes_start_empty() {
        let boxes: Inboxes<u64> = Inboxes::empty(3);
        assert_eq!(boxes.len(), 3);
        assert_eq!(boxes.message_count(), 0);
        assert!(boxes.of(NodeId::new(1)).is_empty());
    }

    #[test]
    fn staged_records_order_by_destination_then_sender() {
        let boxes = Inboxes::from_staged(
            2,
            vec![
                (NodeId::new(0), NodeId::new(1), 10u64),
                (NodeId::new(1), NodeId::new(0), 30u64),
                (NodeId::new(0), NodeId::new(0), 20u64),
                (NodeId::new(0), NodeId::new(1), 11u64),
            ],
        );
        let inbox = boxes.of(NodeId::new(0));
        assert_eq!(inbox[0], (NodeId::new(0), 20));
        assert_eq!(inbox[1], (NodeId::new(1), 10));
        assert_eq!(inbox[2], (NodeId::new(1), 11), "submission order kept");
        assert_eq!(boxes.of(NodeId::new(1)), &[(NodeId::new(0), 30)]);
        assert_eq!(boxes.message_count(), 4);
    }

    #[test]
    fn collect_sends_gathers_all_nodes() {
        let sends = collect_sends(3, |u| {
            vec![Envelope::new(u, NodeId::new((u.index() + 1) % 3), 1u64)]
        });
        assert_eq!(sends.len(), 3);
        assert_eq!(total_bits(&sends), 3 * 64);
    }

    #[test]
    fn iter_visits_every_node() {
        let boxes: Inboxes<u64> = Inboxes::empty(4);
        assert_eq!(boxes.iter().count(), 4);
    }
}
