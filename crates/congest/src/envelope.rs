//! Addressed messages and per-node inboxes.

use crate::node::NodeId;
use crate::payload::Payload;

/// A message addressed from one node to another.
///
/// # Examples
///
/// ```
/// use qcc_congest::{Envelope, NodeId};
///
/// let e = Envelope::new(NodeId::new(0), NodeId::new(3), 42u64);
/// assert_eq!(e.src, NodeId::new(0));
/// assert_eq!(e.dst, NodeId::new(3));
/// assert_eq!(e.payload, 42);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<T> {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Message content.
    pub payload: T,
}

impl<T> Envelope<T> {
    /// Creates a new addressed message.
    pub fn new(src: NodeId, dst: NodeId, payload: T) -> Self {
        Envelope { src, dst, payload }
    }
}

/// The messages received by each node after a communication phase.
///
/// Inbox `i` holds `(sender, payload)` pairs for node `i`. Delivery order
/// within an inbox is deterministic (sorted by sender, then by submission
/// order) so that simulations are reproducible.
#[derive(Clone, Debug)]
pub struct Inboxes<T> {
    boxes: Vec<Vec<(NodeId, T)>>,
}

impl<T> Inboxes<T> {
    /// Creates empty inboxes for an `n`-node network.
    pub fn empty(n: usize) -> Self {
        Inboxes {
            boxes: (0..n).map(|_| Vec::new()).collect(),
        }
    }

    /// Creates empty inboxes pre-sized to the known per-node message
    /// counts, so that delivery never reallocates.
    pub(crate) fn with_capacities(counts: &[usize]) -> Self {
        Inboxes {
            boxes: counts.iter().map(|&c| Vec::with_capacity(c)).collect(),
        }
    }

    pub(crate) fn push(&mut self, dst: NodeId, src: NodeId, payload: T) {
        self.boxes[dst.index()].push((src, payload));
    }

    pub(crate) fn sort(&mut self) {
        for inbox in &mut self.boxes {
            inbox.sort_by_key(|(src, _)| *src);
        }
    }

    /// Messages received by `node`, as `(sender, payload)` pairs.
    #[must_use]
    pub fn of(&self, node: NodeId) -> &[(NodeId, T)] {
        &self.boxes[node.index()]
    }

    /// Number of nodes in the network these inboxes belong to.
    #[must_use]
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// Whether there are no nodes (degenerate network).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// Total number of messages across all inboxes.
    #[must_use]
    pub fn message_count(&self) -> usize {
        self.boxes.iter().map(Vec::len).sum()
    }

    /// Consumes the inboxes, yielding one `Vec<(sender, payload)>` per node.
    pub fn into_vec(self) -> Vec<Vec<(NodeId, T)>> {
        self.boxes
    }

    /// Iterates over `(node, inbox)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &[(NodeId, T)])> {
        self.boxes
            .iter()
            .enumerate()
            .map(|(i, inbox)| (NodeId::new(i), inbox.as_slice()))
    }
}

/// Builds the sends of every node by applying `f` to each node id.
///
/// This is the idiomatic way to express "each node, based on its local
/// state, enqueues messages" without letting node `i` read node `j`'s state:
/// the closure receives only the node id and must capture per-node state
/// through indexed access.
///
/// # Examples
///
/// ```
/// use qcc_congest::{collect_sends, Envelope, NodeId};
///
/// // every node sends its own index to node 0
/// let sends = collect_sends(4, |u| {
///     vec![Envelope::new(u, NodeId::new(0), u.index() as u64)]
/// });
/// assert_eq!(sends.len(), 4);
/// ```
pub fn collect_sends<T, F>(n: usize, mut f: F) -> Vec<Envelope<T>>
where
    F: FnMut(NodeId) -> Vec<Envelope<T>>,
{
    let mut out = Vec::new();
    for u in NodeId::all(n) {
        let mut sends = f(u);
        debug_assert!(
            sends.iter().all(|e| e.src == u),
            "node {u} attempted to forge a message from another source"
        );
        out.append(&mut sends);
    }
    out
}

/// Total bit volume of a set of sends.
pub fn total_bits<T: Payload>(sends: &[Envelope<T>]) -> u64 {
    sends.iter().map(|e| e.payload.bit_size()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inboxes_start_empty() {
        let boxes: Inboxes<u64> = Inboxes::empty(3);
        assert_eq!(boxes.len(), 3);
        assert_eq!(boxes.message_count(), 0);
        assert!(boxes.of(NodeId::new(1)).is_empty());
    }

    #[test]
    fn push_and_sort_orders_by_sender() {
        let mut boxes = Inboxes::empty(2);
        boxes.push(NodeId::new(0), NodeId::new(1), 10u64);
        boxes.push(NodeId::new(0), NodeId::new(0), 20u64);
        boxes.sort();
        let inbox = boxes.of(NodeId::new(0));
        assert_eq!(inbox[0], (NodeId::new(0), 20));
        assert_eq!(inbox[1], (NodeId::new(1), 10));
    }

    #[test]
    fn collect_sends_gathers_all_nodes() {
        let sends = collect_sends(3, |u| {
            vec![Envelope::new(u, NodeId::new((u.index() + 1) % 3), 1u64)]
        });
        assert_eq!(sends.len(), 3);
        assert_eq!(total_bits(&sends), 3 * 64);
    }

    #[test]
    fn iter_visits_every_node() {
        let boxes: Inboxes<u64> = Inboxes::empty(4);
        assert_eq!(boxes.iter().count(), 4);
    }
}
