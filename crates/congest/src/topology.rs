//! General communication topologies for the transport layer.
//!
//! The CONGEST-CLIQUE simulator assumes a complete graph; the related
//! CONGEST literature (Le Gall–Magniez diameter, Wang–Wu–Yao
//! eccentricities) lives on arbitrary networks. A [`Topology`] describes
//! which ordered pairs of nodes share a physical link, and the
//! [`crate::transport::GossipTransport`] restricts its traffic to those
//! links. All topologies here are undirected (a link carries messages
//! both ways) and self-loop-free.
//!
//! Generators are *seeded*: [`Topology::random_mesh`] derives every edge
//! from a SplitMix64 stream over its seed, so experiments are replayable
//! without touching the simulated algorithm's RNG. Connectivity is
//! checked up front — a transport handed a disconnected topology fails
//! with the typed [`CongestError::Partitioned`] before charging a round,
//! never by silently losing the unreachable component.

use crate::error::CongestError;

/// An undirected communication topology on `n` nodes.
///
/// # Examples
///
/// ```
/// use qcc_congest::Topology;
///
/// let t = Topology::ring(5);
/// assert_eq!(t.n(), 5);
/// assert_eq!(t.neighbors(0), &[1, 4]);
/// assert!(t.is_connected());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topology {
    n: usize,
    /// Sorted neighbor lists, one per node.
    adj: Vec<Vec<usize>>,
    label: String,
}

impl Topology {
    /// Builds a topology from an explicit undirected edge list. Duplicate
    /// edges, self-loops, and orientation are normalized away.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a node outside `0..n`.
    #[must_use]
    pub fn from_edges(n: usize, edges: &[(usize, usize)], label: &str) -> Self {
        let mut adj = vec![Vec::new(); n];
        for &(u, v) in edges {
            assert!(u < n && v < n, "edge ({u}, {v}) outside 0..{n}");
            if u == v {
                continue;
            }
            adj[u].push(v);
            adj[v].push(u);
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        Topology {
            n,
            adj,
            label: label.to_string(),
        }
    }

    /// The complete graph: every pair of nodes shares a link (the classic
    /// CONGEST-CLIQUE substrate, useful as a gossip baseline).
    #[must_use]
    pub fn clique(n: usize) -> Self {
        let edges: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| (u + 1..n).map(move |v| (u, v)))
            .collect();
        Topology::from_edges(n, &edges, "clique")
    }

    /// The cycle `0 — 1 — ⋯ — (n−1) — 0` (diameter `⌊n/2⌋`, the
    /// worst-case sparse connected topology).
    #[must_use]
    pub fn ring(n: usize) -> Self {
        let edges: Vec<(usize, usize)> = (0..n).map(|u| (u, (u + 1) % n)).collect();
        Topology::from_edges(n, &edges, "ring")
    }

    /// A 2-D torus grid on `rows × cols = n` nodes, with `rows` chosen as
    /// the largest divisor of `n` at most `⌊√n⌋` (a prime `n` degenerates
    /// to the ring). Node `(r, c)` sits at index `r · cols + c` and links
    /// to its four wrap-around grid neighbors.
    #[must_use]
    pub fn torus(n: usize) -> Self {
        let mut rows = 1;
        let mut d = 1;
        while d * d <= n {
            if n.is_multiple_of(d) {
                rows = d;
            }
            d += 1;
        }
        let cols = n / rows.max(1);
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let idx = r * cols + c;
                edges.push((idx, r * cols + (c + 1) % cols));
                edges.push((idx, ((r + 1) % rows) * cols + c));
            }
        }
        Topology::from_edges(n, &edges, "torus")
    }

    /// A seeded random mesh: a random Hamiltonian cycle (guaranteeing
    /// connectivity) plus random chords until the average degree reaches
    /// `degree`. Every edge is a pure function of `(n, degree, seed)`.
    #[must_use]
    pub fn random_mesh(n: usize, degree: usize, seed: u64) -> Self {
        let mut rng = TopoRng::new(seed);
        // Fisher–Yates permutation → random Hamiltonian cycle backbone.
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (perm[i], perm[(i + 1) % n])).collect();
        if n > 2 {
            // Chords until the average degree target; the dedup in
            // `from_edges` makes re-drawn duplicates harmless, so cap the
            // attempts to keep termination unconditional.
            let target_edges = n * degree.max(2) / 2;
            let mut attempts = 0;
            while edges.len() < target_edges && attempts < 16 * target_edges {
                attempts += 1;
                let u = (rng.next_u64() % n as u64) as usize;
                let v = (rng.next_u64() % n as u64) as usize;
                if u != v
                    && !edges
                        .iter()
                        .any(|&(a, b)| (a, b) == (u, v) || (a, b) == (v, u))
                {
                    edges.push((u, v));
                }
            }
        }
        Topology::from_edges(
            n,
            &edges,
            &format!("mesh(d={}, seed={seed})", degree.max(2)),
        )
    }

    /// Number of nodes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Human-readable label (`clique`, `ring`, `mesh(d=…, seed=…)`, …).
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The sorted neighbor list of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u ≥ n`.
    #[must_use]
    pub fn neighbors(&self, u: usize) -> &[usize] {
        &self.adj[u]
    }

    /// Number of undirected edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Whether `u` and `v` share a link.
    #[must_use]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u < self.n && self.adj[u].binary_search(&v).is_ok()
    }

    /// Number of nodes reachable from node 0 (BFS).
    #[must_use]
    pub fn reachable_from_zero(&self) -> usize {
        if self.n == 0 {
            return 0;
        }
        let mut seen = vec![false; self.n];
        let mut queue = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = queue.pop() {
            for &v in &self.adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    queue.push(v);
                }
            }
        }
        count
    }

    /// Whether every node is reachable from node 0 (equivalently, from
    /// every node — the topology is undirected).
    #[must_use]
    pub fn is_connected(&self) -> bool {
        self.reachable_from_zero() == self.n
    }

    /// Rejects disconnected topologies with the typed
    /// [`CongestError::Partitioned`].
    ///
    /// # Errors
    ///
    /// [`CongestError::Partitioned`] when some node is unreachable.
    pub fn require_connected(&self) -> Result<(), CongestError> {
        let reachable = self.reachable_from_zero();
        if reachable == self.n {
            Ok(())
        } else {
            Err(CongestError::Partitioned {
                reachable,
                n: self.n,
            })
        }
    }

    /// BFS next-hop table for shortest-hop forwarding: entry `[v][u]` is
    /// the neighbor of `u` on a shortest path toward `v` (ties broken by
    /// smallest node index; `u` itself when `u == v`). Requires a
    /// connected topology (checked by the transports before use).
    #[must_use]
    pub fn next_hops(&self) -> Vec<Vec<usize>> {
        let n = self.n;
        let mut table = Vec::with_capacity(n);
        for dst in 0..n {
            // BFS from the destination: each discovered node's parent is
            // its next hop toward `dst`.
            let mut hop = vec![usize::MAX; n];
            hop[dst] = dst;
            let mut frontier = vec![dst];
            while !frontier.is_empty() {
                let mut next = Vec::new();
                for &u in &frontier {
                    for &v in &self.adj[u] {
                        if hop[v] == usize::MAX {
                            hop[v] = u;
                            next.push(v);
                        }
                    }
                }
                frontier = next;
            }
            table.push(hop);
        }
        table
    }

    /// The longest shortest-hop distance between any pair, or `None` when
    /// disconnected.
    #[must_use]
    pub fn hop_diameter(&self) -> Option<u64> {
        let n = self.n;
        let mut best = 0u64;
        for start in 0..n {
            let mut dist = vec![u64::MAX; n];
            dist[start] = 0;
            let mut frontier = vec![start];
            let mut seen = 1;
            while !frontier.is_empty() {
                let mut next = Vec::new();
                for &u in &frontier {
                    for &v in &self.adj[u] {
                        if dist[v] == u64::MAX {
                            dist[v] = dist[u] + 1;
                            best = best.max(dist[v]);
                            seen += 1;
                            next.push(v);
                        }
                    }
                }
                frontier = next;
            }
            if seen != n {
                return None;
            }
        }
        Some(best)
    }
}

/// The parseable CLI/bench topology selector; `build` instantiates it at
/// a concrete size.
///
/// # Examples
///
/// ```
/// use qcc_congest::TopologySpec;
///
/// let spec = TopologySpec::parse("mesh:4").unwrap();
/// let t = spec.build(10, 7);
/// assert!(t.is_connected());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologySpec {
    /// Complete graph.
    Clique,
    /// Single cycle.
    Ring,
    /// Seeded random mesh with the given average degree.
    Mesh {
        /// Average degree target (≥ 2; the backbone cycle guarantees 2).
        degree: usize,
    },
    /// 2-D wrap-around grid.
    Torus,
}

impl TopologySpec {
    /// Parses `clique`, `ring`, `mesh`, `mesh:DEGREE`, or `torus`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown topology or malformed degree.
    pub fn parse(text: &str) -> Result<TopologySpec, String> {
        match text {
            "clique" => Ok(TopologySpec::Clique),
            "ring" => Ok(TopologySpec::Ring),
            "mesh" => Ok(TopologySpec::Mesh { degree: 4 }),
            "torus" => Ok(TopologySpec::Torus),
            other => {
                if let Some(d) = other.strip_prefix("mesh:") {
                    let degree: usize = d
                        .parse()
                        .map_err(|_| format!("mesh degree {d:?} is not a number"))?;
                    if degree < 2 {
                        return Err(format!("mesh degree must be at least 2, got {degree}"));
                    }
                    Ok(TopologySpec::Mesh { degree })
                } else {
                    Err(format!(
                        "unknown topology {other:?} (expected clique|ring|mesh[:D]|torus)"
                    ))
                }
            }
        }
    }

    /// The canonical spelling accepted back by [`TopologySpec::parse`].
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            TopologySpec::Clique => "clique".into(),
            TopologySpec::Ring => "ring".into(),
            TopologySpec::Mesh { degree } => format!("mesh:{degree}"),
            TopologySpec::Torus => "torus".into(),
        }
    }

    /// Instantiates the topology on `n` nodes; `seed` feeds the mesh
    /// generator (the deterministic topologies ignore it).
    #[must_use]
    pub fn build(&self, n: usize, seed: u64) -> Topology {
        match *self {
            TopologySpec::Clique => Topology::clique(n),
            TopologySpec::Ring => Topology::ring(n),
            TopologySpec::Mesh { degree } => Topology::random_mesh(n, degree, seed),
            TopologySpec::Torus => Topology::torus(n),
        }
    }
}

impl std::fmt::Display for TopologySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// SplitMix64 generator for topology construction, independent of both
/// the algorithm RNG and the fault stream.
struct TopoRng {
    state: u64,
}

impl TopoRng {
    fn new(seed: u64) -> Self {
        TopoRng {
            state: seed ^ 0x7097_0109_7097_0109,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clique_is_complete_and_connected() {
        let t = Topology::clique(6);
        assert_eq!(t.edge_count(), 15);
        assert!(t.is_connected());
        assert!(t.has_edge(0, 5) && t.has_edge(5, 0));
        assert!(!t.has_edge(3, 3));
    }

    #[test]
    fn ring_has_n_edges_and_degree_two() {
        let t = Topology::ring(7);
        assert_eq!(t.edge_count(), 7);
        for u in 0..7 {
            assert_eq!(t.neighbors(u).len(), 2, "node {u}");
        }
        assert!(t.is_connected());
        assert_eq!(t.hop_diameter(), Some(3));
    }

    #[test]
    fn torus_factors_into_a_grid() {
        let t = Topology::torus(12); // 3 × 4
        assert!(t.is_connected());
        // Interior torus nodes have degree 4 (wrap-around on both axes).
        assert!(t.neighbors(0).len() >= 3);
        // Prime n degenerates to the ring.
        let p = Topology::torus(7);
        assert_eq!(p.edge_count(), 7);
        assert!(p.is_connected());
    }

    #[test]
    fn random_mesh_is_seeded_and_connected() {
        let a = Topology::random_mesh(12, 4, 7);
        let b = Topology::random_mesh(12, 4, 7);
        assert_eq!(a, b, "same seed, same mesh");
        let c = Topology::random_mesh(12, 4, 8);
        assert_ne!(a, c, "different seed should differ here");
        assert!(a.is_connected(), "backbone cycle guarantees connectivity");
        assert!(a.edge_count() >= 12, "chords on top of the cycle");
    }

    #[test]
    fn disconnection_is_a_typed_error() {
        let t = Topology::from_edges(4, &[(0, 1), (2, 3)], "split");
        assert!(!t.is_connected());
        assert_eq!(
            t.require_connected().unwrap_err(),
            CongestError::Partitioned { reachable: 2, n: 4 }
        );
        assert!(Topology::ring(4).require_connected().is_ok());
    }

    #[test]
    fn next_hops_follow_shortest_paths() {
        let t = Topology::ring(6);
        let hops = t.next_hops();
        // Toward node 3 from node 0: either way is 3 hops; the tie breaks
        // toward the smaller-index neighbor discovered first.
        assert!(hops[3][0] == 1 || hops[3][0] == 5);
        assert_eq!(hops[3][2], 3, "one hop out");
        assert_eq!(hops[3][3], 3, "self");
        // Walking the table always reaches the destination.
        for (dst, toward) in hops.iter().enumerate() {
            for start in 0..6 {
                let mut cur = start;
                let mut steps = 0;
                while cur != dst {
                    cur = toward[cur];
                    steps += 1;
                    assert!(steps <= 6, "next-hop walk must terminate");
                }
            }
        }
    }

    #[test]
    fn spec_parses_and_round_trips() {
        for text in ["clique", "ring", "mesh", "mesh:6", "torus"] {
            let spec = TopologySpec::parse(text).unwrap();
            assert_eq!(TopologySpec::parse(&spec.label()).unwrap(), spec);
        }
        assert_eq!(
            TopologySpec::parse("mesh").unwrap(),
            TopologySpec::Mesh { degree: 4 }
        );
        assert!(TopologySpec::parse("hypercube").is_err());
        assert!(TopologySpec::parse("mesh:1").is_err());
        assert!(TopologySpec::parse("mesh:x").is_err());
        let t = TopologySpec::parse("torus").unwrap().build(9, 0);
        assert_eq!(t.n(), 9);
        assert!(t.is_connected());
    }

    #[test]
    fn from_edges_normalizes_duplicates_and_loops() {
        let t = Topology::from_edges(3, &[(0, 1), (1, 0), (2, 2), (1, 2)], "x");
        assert_eq!(t.edge_count(), 2);
        assert_eq!(t.neighbors(1), &[0, 2]);
    }
}
