//! Node identities for the CONGEST-CLIQUE network.

use std::fmt;

/// Identity of a node in the fully connected network.
///
/// Nodes are numbered `0..n`. The newtype keeps node indices from being
/// confused with vertex labels, partition indices, or other `usize` values
/// that circulate through the algorithms built on top of the simulator.
///
/// # Examples
///
/// ```
/// use qcc_congest::NodeId;
///
/// let u = NodeId::new(3);
/// assert_eq!(u.index(), 3);
/// assert_eq!(format!("{u}"), "node3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a node identity from a raw index.
    pub const fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// Returns the raw index of this node.
    pub const fn index(self) -> usize {
        self.0
    }

    /// Iterates over all node identities of an `n`-node network.
    ///
    /// # Examples
    ///
    /// ```
    /// use qcc_congest::NodeId;
    ///
    /// let ids: Vec<_> = NodeId::all(3).collect();
    /// assert_eq!(ids, vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
    /// ```
    pub fn all(n: usize) -> impl Iterator<Item = NodeId> {
        (0..n).map(NodeId)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId(index)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_usize() {
        let id = NodeId::from(17usize);
        assert_eq!(usize::from(id), 17);
        assert_eq!(id.index(), 17);
    }

    #[test]
    fn all_enumerates_in_order() {
        let ids: Vec<usize> = NodeId::all(5).map(NodeId::index).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(NodeId::new(0).to_string(), "node0");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
    }
}
