//! Round and congestion accounting.
//!
//! The simulator records, per named phase, how many synchronous rounds were
//! consumed and how heavily the busiest link and the busiest node were
//! loaded. These metrics back the congestion experiments (E8, E12, E13 in
//! `DESIGN.md`): the paper's central technical device is *avoiding* hot
//! links, so the simulator must be able to observe them.

use std::fmt;

/// Communication statistics for one named phase of an algorithm.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Label supplied by the algorithm (e.g. `"compute-pairs/step1"`).
    pub label: String,
    /// Synchronous rounds consumed by the phase.
    pub rounds: u64,
    /// Number of messages transmitted.
    pub messages: u64,
    /// Total bits transmitted.
    pub bits: u64,
    /// Maximum bits carried by a single ordered link over the whole phase.
    pub max_link_bits: u64,
    /// Maximum bits sent by a single node over the whole phase.
    pub max_node_out_bits: u64,
    /// Maximum bits received by a single node over the whole phase.
    pub max_node_in_bits: u64,
}

impl fmt::Display for PhaseStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} rounds, {} msgs, {} bits (max link {}, max out {}, max in {})",
            self.label,
            self.rounds,
            self.messages,
            self.bits,
            self.max_link_bits,
            self.max_node_out_bits,
            self.max_node_in_bits
        )
    }
}

/// Cumulative metrics for a simulation run.
///
/// # Examples
///
/// ```
/// use qcc_congest::Metrics;
///
/// let mut m = Metrics::new();
/// m.begin_phase("setup");
/// m.record_exchange(3, 10, 640, 64, 320, 128);
/// assert_eq!(m.total_rounds(), 3);
/// assert_eq!(m.phases().len(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    phases: Vec<PhaseStats>,
    total_rounds: u64,
    total_messages: u64,
    total_bits: u64,
}

impl Metrics {
    /// Creates empty metrics.
    #[must_use]
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Starts a new named phase; subsequent exchanges accumulate into it.
    ///
    /// If no phase was ever begun, exchanges accumulate into an implicit
    /// phase labelled `"(unlabelled)"`.
    pub fn begin_phase(&mut self, label: &str) {
        self.phases.push(PhaseStats {
            label: label.to_owned(),
            ..PhaseStats::default()
        });
    }

    fn current_phase(&mut self) -> &mut PhaseStats {
        if self.phases.is_empty() {
            self.begin_phase("(unlabelled)");
        }
        self.phases.last_mut().expect("phase exists")
    }

    /// Records one communication step.
    pub fn record_exchange(
        &mut self,
        rounds: u64,
        messages: u64,
        bits: u64,
        max_link_bits: u64,
        max_node_out_bits: u64,
        max_node_in_bits: u64,
    ) {
        self.total_rounds += rounds;
        self.total_messages += messages;
        self.total_bits += bits;
        let phase = self.current_phase();
        phase.rounds += rounds;
        phase.messages += messages;
        phase.bits += bits;
        phase.max_link_bits = phase.max_link_bits.max(max_link_bits);
        phase.max_node_out_bits = phase.max_node_out_bits.max(max_node_out_bits);
        phase.max_node_in_bits = phase.max_node_in_bits.max(max_node_in_bits);
    }

    /// Total synchronous rounds consumed so far.
    #[must_use]
    pub fn total_rounds(&self) -> u64 {
        self.total_rounds
    }

    /// Total messages transmitted so far.
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.total_messages
    }

    /// Total bits transmitted so far.
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        self.total_bits
    }

    /// Per-phase breakdown, in execution order.
    #[must_use]
    pub fn phases(&self) -> &[PhaseStats] {
        &self.phases
    }

    /// Largest per-link bit volume observed in any phase.
    #[must_use]
    pub fn max_link_bits(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| p.max_link_bits)
            .max()
            .unwrap_or(0)
    }

    /// Merges rounds from phases whose label starts with `prefix`.
    #[must_use]
    pub fn rounds_with_prefix(&self, prefix: &str) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.label.starts_with(prefix))
            .map(|p| p.rounds)
            .sum()
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "total: {} rounds, {} msgs, {} bits",
            self.total_rounds, self.total_messages, self.total_bits
        )?;
        for phase in &self.phases {
            writeln!(f, "  {phase}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implicit_phase_is_created() {
        let mut m = Metrics::new();
        m.record_exchange(1, 1, 8, 8, 8, 8);
        assert_eq!(m.phases().len(), 1);
        assert_eq!(m.phases()[0].label, "(unlabelled)");
    }

    #[test]
    fn phases_accumulate_independently() {
        let mut m = Metrics::new();
        m.begin_phase("a");
        m.record_exchange(2, 5, 100, 50, 80, 60);
        m.begin_phase("b");
        m.record_exchange(3, 7, 200, 90, 150, 110);
        assert_eq!(m.total_rounds(), 5);
        assert_eq!(m.phases()[0].rounds, 2);
        assert_eq!(m.phases()[1].rounds, 3);
        assert_eq!(m.max_link_bits(), 90);
    }

    #[test]
    fn max_stats_take_componentwise_max() {
        let mut m = Metrics::new();
        m.begin_phase("a");
        m.record_exchange(1, 1, 10, 10, 5, 3);
        m.record_exchange(1, 1, 10, 4, 9, 8);
        let p = &m.phases()[0];
        assert_eq!(p.max_link_bits, 10);
        assert_eq!(p.max_node_out_bits, 9);
        assert_eq!(p.max_node_in_bits, 8);
    }

    #[test]
    fn prefix_sums_select_phases() {
        let mut m = Metrics::new();
        m.begin_phase("grover/iter0");
        m.record_exchange(2, 0, 0, 0, 0, 0);
        m.begin_phase("grover/iter1");
        m.record_exchange(2, 0, 0, 0, 0, 0);
        m.begin_phase("setup");
        m.record_exchange(7, 0, 0, 0, 0, 0);
        assert_eq!(m.rounds_with_prefix("grover/"), 4);
        assert_eq!(m.rounds_with_prefix("setup"), 7);
    }

    #[test]
    fn display_contains_totals() {
        let mut m = Metrics::new();
        m.record_exchange(1, 2, 3, 3, 3, 3);
        let s = m.to_string();
        assert!(s.contains("1 rounds"));
        assert!(s.contains("2 msgs"));
    }
}
