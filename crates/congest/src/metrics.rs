//! Round and congestion accounting.
//!
//! The simulator records, per named phase, how many synchronous rounds were
//! consumed and how heavily the busiest link and the busiest node were
//! loaded. These metrics back the congestion experiments (E8, E12, E13 in
//! `DESIGN.md`): the paper's central technical device is *avoiding* hot
//! links, so the simulator must be able to observe them.
//!
//! Two views are maintained simultaneously:
//!
//! * the **flat** per-phase list ([`Metrics::phases`]) driven by
//!   [`Metrics::begin_phase`] — every communication call is attributed to
//!   the most recently begun phase, so summing phase rounds always
//!   reproduces [`Metrics::total_rounds`];
//! * a **hierarchical span tree** ([`Metrics::spans`]) in which
//!   [`Metrics::push_span`]/[`Metrics::pop_span`] open nested grouping
//!   spans and each `begin_phase` opens a leaf span under the innermost
//!   group (closed by the next `begin_phase`, [`Metrics::end_phase`], or an
//!   enclosing pop). Every open span accumulates the calls that run inside
//!   it, so a span's rounds are the sum over its subtree and child rounds
//!   can never exceed the parent's.
//!
//! When a [`TraceSink`] is attached ([`Metrics::set_trace_sink`]) every
//! span open/close and every communication call is additionally emitted as
//! an NDJSON event (see [`crate::trace`]). Tracing is pure observation:
//! charged round counts are byte-identical with and without a sink.

use crate::fault::{FaultCounts, FaultKind};
use crate::trace::{CommTotals, TraceSink};
use std::fmt;

/// Communication statistics for one named phase of an algorithm.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Label supplied by the algorithm (e.g. `"compute-pairs/step1"`).
    pub label: String,
    /// Synchronous rounds consumed by the phase.
    pub rounds: u64,
    /// Number of messages transmitted.
    pub messages: u64,
    /// Total bits transmitted.
    pub bits: u64,
    /// Maximum bits carried by a single ordered link over the whole phase.
    pub max_link_bits: u64,
    /// Maximum bits sent by a single node over the whole phase.
    pub max_node_out_bits: u64,
    /// Maximum bits received by a single node over the whole phase.
    pub max_node_in_bits: u64,
}

impl fmt::Display for PhaseStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} rounds, {} msgs, {} bits (max link {}, max out {}, max in {})",
            self.label,
            self.rounds,
            self.messages,
            self.bits,
            self.max_link_bits,
            self.max_node_out_bits,
            self.max_node_in_bits
        )
    }
}

/// Histogram of per-call round charges, bucketed by bit length.
///
/// Bucket 0 counts zero-round calls; bucket `b ≥ 1` counts calls charging
/// `2^(b-1) ..= 2^b - 1` rounds (the last bucket is open-ended). This keeps
/// the histogram tiny while still separating the free, cheap, and hot calls
/// the congestion experiments care about.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundHistogram {
    counts: [u64; Self::BUCKETS],
}

impl RoundHistogram {
    /// Number of buckets (bit lengths 0..=16, last open-ended).
    pub const BUCKETS: usize = 17;

    fn bucket_of(rounds: u64) -> usize {
        if rounds == 0 {
            0
        } else {
            ((64 - rounds.leading_zeros()) as usize).min(Self::BUCKETS - 1)
        }
    }

    /// Records one call that charged `rounds` rounds.
    pub fn record(&mut self, rounds: u64) {
        self.counts[Self::bucket_of(rounds)] += 1;
    }

    /// Per-bucket call counts.
    #[must_use]
    pub fn counts(&self) -> &[u64; Self::BUCKETS] {
        &self.counts
    }

    /// Total calls recorded.
    #[must_use]
    pub fn total_calls(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Compact `floor:count` rendering of the non-empty buckets (e.g.
    /// `"0:2 1:5 4:1"` — two free calls, five charging 1 round, one
    /// charging 4–7), as embedded in trace `close` events.
    #[must_use]
    pub fn compact(&self) -> String {
        let mut parts = Vec::new();
        for (b, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                let floor = if b == 0 { 0 } else { 1u64 << (b - 1) };
                parts.push(format!("{floor}:{c}"));
            }
        }
        parts.join(" ")
    }
}

/// One node of the hierarchical span tree (see the module docs).
#[derive(Clone, Debug)]
pub struct Span {
    /// Label supplied by the algorithm.
    pub label: String,
    /// Index of the enclosing span in [`Metrics::spans`], if any.
    pub parent: Option<usize>,
    /// `true` for `push_span` groups, `false` for `begin_phase` leaves.
    pub explicit: bool,
    /// Whether the span is still open.
    pub open: bool,
    /// Totals over every communication call in this span's subtree.
    pub totals: CommTotals,
    /// Per-call round histogram over this span's subtree.
    pub histogram: RoundHistogram,
    /// Injected faults recorded while this span was open.
    pub faults: FaultCounts,
    /// Indices of child spans, in open order.
    pub children: Vec<usize>,
}

/// Cumulative metrics for a simulation run.
///
/// # Examples
///
/// ```
/// use qcc_congest::Metrics;
///
/// let mut m = Metrics::new();
/// m.begin_phase("setup");
/// m.record_exchange(3, 10, 640, 64, 320, 128);
/// assert_eq!(m.total_rounds(), 3);
/// assert_eq!(m.phases().len(), 1);
/// ```
///
/// Nested spans group phases hierarchically without changing the flat view:
///
/// ```
/// use qcc_congest::Metrics;
///
/// let mut m = Metrics::new();
/// m.push_span("product-0");
/// m.begin_phase("step1");
/// m.record_exchange(2, 1, 64, 64, 64, 64);
/// m.begin_phase("step2");
/// m.record_exchange(5, 1, 64, 64, 64, 64);
/// m.pop_span();
/// assert_eq!(m.spans()[0].totals.rounds, 7); // the "product-0" group
/// assert_eq!(m.phases().len(), 2);           // flat view unchanged
/// ```
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    phases: Vec<PhaseStats>,
    total_rounds: u64,
    total_messages: u64,
    total_bits: u64,
    spans: Vec<Span>,
    open_stack: Vec<usize>,
    histogram: RoundHistogram,
    faults: FaultCounts,
    sink: Option<TraceSink>,
}

impl Metrics {
    /// Creates empty metrics.
    #[must_use]
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Attaches an NDJSON trace sink; subsequent span opens/closes and
    /// communication calls are mirrored to it.
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.sink = Some(sink);
    }

    /// The attached trace sink, if any.
    #[must_use]
    pub fn trace_sink(&self) -> Option<&TraceSink> {
        self.sink.as_ref()
    }

    /// Starts a new named phase; subsequent exchanges accumulate into it.
    ///
    /// If no phase was ever begun, exchanges accumulate into an implicit
    /// phase labelled `"(unlabelled)"`.
    ///
    /// In the span tree a phase is a leaf span: beginning a phase closes
    /// the previous phase's span (phases are siblings) and opens a new one
    /// under the innermost [`Metrics::push_span`] group.
    pub fn begin_phase(&mut self, label: &str) {
        self.close_open_leaf();
        self.open_span(label, false);
        self.phases.push(PhaseStats {
            label: label.to_owned(),
            ..PhaseStats::default()
        });
    }

    /// Ends the current phase's leaf span (the flat view is unaffected; a
    /// later exchange without a new `begin_phase` still accumulates into
    /// the last flat phase, but into the enclosing group span only).
    pub fn end_phase(&mut self) {
        self.close_open_leaf();
    }

    /// Opens an explicit grouping span nested under the innermost open
    /// group. Closes the current phase's leaf span first — a group never
    /// hangs off a phase leaf.
    pub fn push_span(&mut self, label: &str) {
        self.close_open_leaf();
        self.open_span(label, true);
    }

    /// Closes the innermost explicit grouping span (and the current
    /// phase's leaf span, if one is open inside it).
    pub fn pop_span(&mut self) {
        self.close_open_leaf();
        if self
            .open_stack
            .last()
            .is_some_and(|&idx| self.spans[idx].explicit)
        {
            self.close_top_span();
        }
    }

    /// Closes every open span (leaves and groups). Call before dropping a
    /// traced network so the emitted NDJSON is well formed.
    pub fn close_all_spans(&mut self) {
        while !self.open_stack.is_empty() {
            self.close_top_span();
        }
    }

    fn open_span(&mut self, label: &str, explicit: bool) {
        let parent = self.open_stack.last().copied();
        let idx = self.spans.len();
        self.spans.push(Span {
            label: label.to_owned(),
            parent,
            explicit,
            open: true,
            totals: CommTotals::default(),
            histogram: RoundHistogram::default(),
            faults: FaultCounts::default(),
            children: Vec::new(),
        });
        if let Some(p) = parent {
            self.spans[p].children.push(idx);
        }
        self.open_stack.push(idx);
        if let Some(sink) = &self.sink {
            sink.open_span(label);
        }
    }

    /// Closes the innermost span if it is a phase leaf.
    fn close_open_leaf(&mut self) {
        if self
            .open_stack
            .last()
            .is_some_and(|&idx| !self.spans[idx].explicit)
        {
            self.close_top_span();
        }
    }

    fn close_top_span(&mut self) {
        if let Some(idx) = self.open_stack.pop() {
            self.spans[idx].open = false;
            if let Some(sink) = &self.sink {
                sink.close_span_with_stats(
                    &self.spans[idx].totals,
                    &self.spans[idx].histogram.compact(),
                );
            }
        }
    }

    /// Records one communication step.
    pub fn record_exchange(
        &mut self,
        rounds: u64,
        messages: u64,
        bits: u64,
        max_link_bits: u64,
        max_node_out_bits: u64,
        max_node_in_bits: u64,
    ) {
        self.record_comm(
            "exchange",
            rounds,
            messages,
            bits,
            max_link_bits,
            max_node_out_bits,
            max_node_in_bits,
        );
    }

    /// Records one communication call of the given kind (`"exchange"`,
    /// `"route"`, `"broadcast"`, `"gossip"`, `"charge"`), updating the flat
    /// phase view, every open span, the histograms, and the trace sink.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record_comm(
        &mut self,
        kind: &str,
        rounds: u64,
        messages: u64,
        bits: u64,
        max_link_bits: u64,
        max_node_out_bits: u64,
        max_node_in_bits: u64,
    ) {
        self.total_rounds += rounds;
        self.total_messages += messages;
        self.total_bits += bits;
        if self.phases.is_empty() {
            // Preserve the legacy implicit phase: the pushed phase also
            // opens a leaf span so the call below lands in the tree too.
            self.begin_phase("(unlabelled)");
        }
        let phase = self.phases.last_mut().expect("phase exists");
        phase.rounds += rounds;
        phase.messages += messages;
        phase.bits += bits;
        phase.max_link_bits = phase.max_link_bits.max(max_link_bits);
        phase.max_node_out_bits = phase.max_node_out_bits.max(max_node_out_bits);
        phase.max_node_in_bits = phase.max_node_in_bits.max(max_node_in_bits);
        for &idx in &self.open_stack {
            let span = &mut self.spans[idx];
            span.totals.record_call(
                rounds,
                messages,
                bits,
                max_link_bits,
                max_node_out_bits,
                max_node_in_bits,
            );
            span.histogram.record(rounds);
        }
        self.histogram.record(rounds);
        if let Some(sink) = &self.sink {
            sink.emit_comm(
                kind,
                rounds,
                messages,
                bits,
                max_link_bits,
                max_node_out_bits,
                max_node_in_bits,
            );
        }
    }

    /// Records one injected fault against the global tally, every open
    /// span, and the trace sink (as an NDJSON `fault` event).
    pub(crate) fn record_fault(&mut self, kind: FaultKind) {
        self.faults.record(kind);
        for &idx in &self.open_stack {
            self.spans[idx].faults.record(kind);
        }
        if let Some(sink) = &self.sink {
            sink.emit_fault(kind.label());
        }
    }

    /// Injected-fault totals over the whole run.
    #[must_use]
    pub fn fault_counts(&self) -> &FaultCounts {
        &self.faults
    }

    /// Label of the most recently begun phase, if any.
    #[must_use]
    pub fn current_phase(&self) -> Option<&str> {
        self.phases.last().map(|p| p.label.as_str())
    }

    /// Total synchronous rounds consumed so far.
    #[must_use]
    pub fn total_rounds(&self) -> u64 {
        self.total_rounds
    }

    /// Total messages transmitted so far.
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.total_messages
    }

    /// Total bits transmitted so far.
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        self.total_bits
    }

    /// Per-phase breakdown, in execution order.
    #[must_use]
    pub fn phases(&self) -> &[PhaseStats] {
        &self.phases
    }

    /// The hierarchical span tree, in open (preorder) order. Leaf spans
    /// mirror the flat phases; explicit spans group them.
    #[must_use]
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Global per-call round histogram.
    #[must_use]
    pub fn histogram(&self) -> &RoundHistogram {
        &self.histogram
    }

    /// Largest per-link bit volume observed in any phase.
    #[must_use]
    pub fn max_link_bits(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| p.max_link_bits)
            .max()
            .unwrap_or(0)
    }

    /// Merges rounds from phases whose label starts with `prefix`.
    #[must_use]
    pub fn rounds_with_prefix(&self, prefix: &str) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.label.starts_with(prefix))
            .map(|p| p.rounds)
            .sum()
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "total: {} rounds, {} msgs, {} bits",
            self.total_rounds, self.total_messages, self.total_bits
        )?;
        for phase in &self.phases {
            writeln!(f, "  {phase}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implicit_phase_is_created() {
        let mut m = Metrics::new();
        m.record_exchange(1, 1, 8, 8, 8, 8);
        assert_eq!(m.phases().len(), 1);
        assert_eq!(m.phases()[0].label, "(unlabelled)");
        // And the implicit phase exists in the span tree as well.
        assert_eq!(m.spans().len(), 1);
        assert_eq!(m.spans()[0].label, "(unlabelled)");
        assert_eq!(m.spans()[0].totals.rounds, 1);
    }

    #[test]
    fn phases_accumulate_independently() {
        let mut m = Metrics::new();
        m.begin_phase("a");
        m.record_exchange(2, 5, 100, 50, 80, 60);
        m.begin_phase("b");
        m.record_exchange(3, 7, 200, 90, 150, 110);
        assert_eq!(m.total_rounds(), 5);
        assert_eq!(m.phases()[0].rounds, 2);
        assert_eq!(m.phases()[1].rounds, 3);
        assert_eq!(m.max_link_bits(), 90);
    }

    #[test]
    fn max_stats_take_componentwise_max() {
        let mut m = Metrics::new();
        m.begin_phase("a");
        m.record_exchange(1, 1, 10, 10, 5, 3);
        m.record_exchange(1, 1, 10, 4, 9, 8);
        let p = &m.phases()[0];
        assert_eq!(p.max_link_bits, 10);
        assert_eq!(p.max_node_out_bits, 9);
        assert_eq!(p.max_node_in_bits, 8);
    }

    #[test]
    fn prefix_sums_select_phases() {
        let mut m = Metrics::new();
        m.begin_phase("grover/iter0");
        m.record_exchange(2, 0, 0, 0, 0, 0);
        m.begin_phase("grover/iter1");
        m.record_exchange(2, 0, 0, 0, 0, 0);
        m.begin_phase("setup");
        m.record_exchange(7, 0, 0, 0, 0, 0);
        assert_eq!(m.rounds_with_prefix("grover/"), 4);
        assert_eq!(m.rounds_with_prefix("setup"), 7);
    }

    #[test]
    fn display_contains_totals() {
        let mut m = Metrics::new();
        m.record_exchange(1, 2, 3, 3, 3, 3);
        let s = m.to_string();
        assert!(s.contains("1 rounds"));
        assert!(s.contains("2 msgs"));
    }

    #[test]
    fn spans_nest_and_aggregate() {
        let mut m = Metrics::new();
        m.push_span("outer");
        m.begin_phase("a");
        m.record_exchange(2, 1, 10, 10, 10, 10);
        m.push_span("inner");
        m.begin_phase("b");
        m.record_exchange(3, 1, 20, 20, 20, 20);
        m.pop_span();
        m.pop_span();
        let spans = m.spans();
        // outer, a, inner, b — preorder.
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].label, "outer");
        assert_eq!(spans[0].totals.rounds, 5);
        assert_eq!(spans[1].label, "a");
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[1].totals.rounds, 2);
        assert_eq!(spans[2].label, "inner");
        assert_eq!(spans[2].parent, Some(0));
        assert_eq!(spans[2].totals.rounds, 3);
        assert_eq!(spans[3].parent, Some(2));
        assert!(spans.iter().all(|s| !s.open));
        // Flat view is unaffected by the nesting.
        assert_eq!(m.phases().len(), 2);
        assert_eq!(m.total_rounds(), 5);
    }

    #[test]
    fn begin_phase_closes_the_previous_leaf() {
        let mut m = Metrics::new();
        m.begin_phase("a");
        m.record_exchange(1, 0, 0, 0, 0, 0);
        m.begin_phase("b");
        m.record_exchange(4, 0, 0, 0, 0, 0);
        // Phases are siblings at the root, not nested.
        assert_eq!(m.spans()[0].parent, None);
        assert_eq!(m.spans()[1].parent, None);
        assert_eq!(m.spans()[0].totals.rounds, 1);
        assert_eq!(m.spans()[1].totals.rounds, 4);
    }

    #[test]
    fn end_phase_stops_leaf_attribution() {
        let mut m = Metrics::new();
        m.push_span("group");
        m.begin_phase("a");
        m.record_exchange(1, 0, 0, 0, 0, 0);
        m.end_phase();
        m.record_exchange(2, 0, 0, 0, 0, 0); // group only
        m.pop_span();
        assert_eq!(m.spans()[0].totals.rounds, 3);
        assert_eq!(m.spans()[1].totals.rounds, 1);
        // The flat view still charges the last begun phase.
        assert_eq!(m.phases()[0].rounds, 3);
    }

    #[test]
    fn child_rounds_sum_to_at_most_parent_rounds() {
        let mut m = Metrics::new();
        m.push_span("parent");
        m.begin_phase("c1");
        m.record_exchange(3, 0, 0, 0, 0, 0);
        m.begin_phase("c2");
        m.record_exchange(4, 0, 0, 0, 0, 0);
        m.end_phase();
        m.record_exchange(2, 0, 0, 0, 0, 0); // parent-only rounds
        m.pop_span();
        let parent = &m.spans()[0];
        let child_sum: u64 = parent
            .children
            .iter()
            .map(|&c| m.spans()[c].totals.rounds)
            .sum();
        assert_eq!(child_sum, 7);
        assert_eq!(parent.totals.rounds, 9);
        assert!(child_sum <= parent.totals.rounds);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut h = RoundHistogram::default();
        h.record(0);
        h.record(1);
        h.record(1);
        h.record(3);
        h.record(4);
        h.record(u64::MAX);
        assert_eq!(h.counts()[0], 1); // zero-round calls
        assert_eq!(h.counts()[1], 2); // rounds == 1
        assert_eq!(h.counts()[2], 1); // rounds in 2..=3
        assert_eq!(h.counts()[3], 1); // rounds in 4..=7
        assert_eq!(h.counts()[RoundHistogram::BUCKETS - 1], 1); // open-ended
        assert_eq!(h.total_calls(), 6);
        assert_eq!(h.compact(), "0:1 1:2 2:1 4:1 32768:1");
    }

    #[test]
    fn faults_land_in_open_spans_and_the_global_tally() {
        let mut m = Metrics::new();
        m.push_span("outer");
        m.begin_phase("a");
        m.record_fault(FaultKind::Drop);
        m.record_fault(FaultKind::Corrupt);
        m.end_phase();
        m.record_fault(FaultKind::Crash); // outer only
        m.pop_span();
        assert_eq!(m.fault_counts().total(), 3);
        assert_eq!(m.spans()[0].faults.total(), 3);
        assert_eq!(m.spans()[1].faults.drops, 1);
        assert_eq!(m.spans()[1].faults.crashes, 0);
        assert_eq!(m.current_phase(), Some("a"));
    }

    #[test]
    fn close_all_spans_closes_groups_and_leaves() {
        let mut m = Metrics::new();
        m.push_span("g");
        m.begin_phase("p");
        m.close_all_spans();
        assert!(m.spans().iter().all(|s| !s.open));
        // Recording afterwards still feeds the flat phase.
        m.record_exchange(1, 0, 0, 0, 0, 0);
        assert_eq!(m.phases()[0].rounds, 1);
        assert_eq!(m.spans()[1].totals.rounds, 0);
    }
}
