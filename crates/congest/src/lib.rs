//! # qcc-congest — a CONGEST-CLIQUE network simulator
//!
//! This crate simulates the **CONGEST-CLIQUE** model of distributed
//! computing: `n` nodes communicate over a fully connected network by
//! exchanging messages of `O(log n)` bits in synchronous rounds. It is the
//! communication substrate of the reproduction of *"Quantum Distributed
//! Algorithm for the All-Pairs Shortest Path Problem in the CONGEST-CLIQUE
//! Model"* (Izumi & Le Gall, PODC 2019).
//!
//! The simulator is *bit-accounted*: every payload reports its wire size via
//! the [`Payload`] trait, every ordered link carries at most
//! [`Clique::bandwidth_bits`] bits per round, and round charges are derived
//! from the executed message schedule — never assumed.
//!
//! ## Primitives
//!
//! * [`Clique::exchange`] — direct delivery on `(src, dst)` links.
//! * [`Clique::route`] — Lemma 1 of the paper (Dolev, Lenzen & Peled): any
//!   message set with per-node load at most `n` units is delivered in two
//!   rounds through relays chosen by an exact König edge coloring
//!   ([`coloring`]).
//! * [`Clique::broadcast`] / [`Clique::gossip`] — one-to-all and all-to-all
//!   broadcast.
//!
//! ## Example
//!
//! ```
//! use qcc_congest::{collect_sends, Clique, Envelope, NodeId};
//!
//! # fn main() -> Result<(), qcc_congest::CongestError> {
//! let n = 8;
//! let mut net = Clique::new(n)?;
//!
//! // Every node sends its id to node 0; Lemma 1 routes the gather.
//! let sends = collect_sends(n, |u| {
//!     vec![Envelope::new(u, NodeId::new(0), u.index() as u64)]
//! });
//! let inboxes = net.route(sends)?;
//! assert_eq!(inboxes.of(NodeId::new(0)).len(), n);
//! println!("gather took {} rounds", net.rounds());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregate;
pub mod coloring;
mod envelope;
mod error;
mod fault;
mod metrics;
mod network;
mod node;
mod payload;
mod reliable;
pub mod rlnc;
pub mod topology;
pub mod trace;
mod transport;

pub use envelope::{collect_sends, total_bits, Envelope, Inboxes};
pub use error::CongestError;
pub use fault::{FaultCounts, FaultKind, FaultPlan, NetConfig};
pub use metrics::{Metrics, PhaseStats, RoundHistogram, Span};
pub use network::{Clique, DEFAULT_BANDWIDTH_FACTOR, EXPLICIT_SCHEDULE_LIMIT};
pub use node::NodeId;
pub use payload::{bits_for_count, bits_for_weight_range, Payload, RawBits};
pub use reliable::ReliableConfig;
pub use topology::{Topology, TopologySpec};
pub use transport::{
    ByteBlock, CliqueTransport, GossipStats, GossipTransport, Transport, WaveStats,
    DEFAULT_GOSSIP_CHUNKS,
};

pub use trace::{
    parse_trace, parse_trace_line, CommEvent, CommTotals, SpanSummary, TraceBuffer, TraceError,
    TraceEvent, TraceSink, TraceSummary,
};
