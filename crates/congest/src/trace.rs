//! NDJSON congestion tracing: sink, parser, and tree summary.
//!
//! The simulator's metrics answer "how many rounds did this run take";
//! traces answer "*which step* burned them and *which link* ran hot". A
//! [`TraceSink`] receives one event per span open/close and one per
//! communication call (`exchange`/`route`/`broadcast`/`gossip`), written as
//! newline-delimited JSON so external tools can stream it. The sink is a
//! cheap shared handle: an algorithm that builds several [`crate::Clique`]s
//! in sequence (e.g. one per distance product) attaches the same sink to
//! each, and driver code can open its own grouping spans around them
//! ([`TraceSink::open_span`]) so the final tree reads
//! `apsp/product-3/step3/...` end to end.
//!
//! Three event kinds appear in a trace file:
//!
//! * `{"ev":"open","id":3,"parent":1,"label":"product-0","factor":9}` —
//!   a span opened (`parent` omitted for roots, `factor` omitted when 1;
//!   a factor scales the whole subtree when rolled into parents, used for
//!   the paper's virtual-node simulation constants).
//! * `{"ev":"close","id":3,"rounds":12,...}` — a span closed; spans closed
//!   by [`crate::Metrics`] carry their recorded statistics (`rounds`,
//!   `messages`, `bits`, `max_link_bits`, `max_node_out_bits`,
//!   `max_node_in_bits`, `calls`, `hist`), driver spans close bare.
//! * `{"ev":"comm","kind":"route","span":3,"rounds":2,...}` — one
//!   communication call, attributed to the innermost open span (`span`
//!   omitted if none was open).
//! * `{"ev":"fault","kind":"drop","span":3}` — one injected network fault
//!   (`drop`, `corrupt`, `duplicate`, or `crash`; see [`crate::FaultPlan`]),
//!   attributed like a `comm` event. Fault events carry no round charges —
//!   the wire cost of a faulted message is already in its `comm` event.
//!
//! Spans are strictly nested (the file is a preorder walk of the tree) and
//! ids are unique and increasing. [`parse_trace`] reads a file back,
//! [`TraceSummary`] rebuilds the tree, checks it against the per-span
//! closing statistics, and renders the rounds/bits/max-link breakdown shown
//! by `qcc trace-summary`.

use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Totals accumulated from `comm` events attributed to one span.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommTotals {
    /// Rounds charged (unscaled; ancestors' factors are applied on rollup).
    pub rounds: u64,
    /// Messages transmitted.
    pub messages: u64,
    /// Bits transmitted.
    pub bits: u64,
    /// Largest per-link bit volume of any single call.
    pub max_link_bits: u64,
    /// Largest per-node outgoing bit volume of any single call.
    pub max_node_out_bits: u64,
    /// Largest per-node incoming bit volume of any single call.
    pub max_node_in_bits: u64,
    /// Number of communication calls.
    pub calls: u64,
}

impl CommTotals {
    /// Folds one communication call into the totals.
    pub(crate) fn record_call(
        &mut self,
        rounds: u64,
        messages: u64,
        bits: u64,
        max_link_bits: u64,
        max_node_out_bits: u64,
        max_node_in_bits: u64,
    ) {
        self.rounds += rounds;
        self.messages += messages;
        self.bits += bits;
        self.max_link_bits = self.max_link_bits.max(max_link_bits);
        self.max_node_out_bits = self.max_node_out_bits.max(max_node_out_bits);
        self.max_node_in_bits = self.max_node_in_bits.max(max_node_in_bits);
        self.calls += 1;
    }

    fn absorb(&mut self, e: &CommEvent) {
        self.record_call(
            e.rounds,
            e.messages,
            e.bits,
            e.max_link_bits,
            e.max_node_out_bits,
            e.max_node_in_bits,
        );
    }
}

// ---------------------------------------------------------------------------
// Sink
// ---------------------------------------------------------------------------

struct SinkInner {
    out: Box<dyn Write + Send>,
    /// Stack of open span ids — the sink-global nesting, shared by every
    /// `Metrics` attached to this sink plus any driver-opened spans.
    stack: Vec<u64>,
    next_id: u64,
    events: u64,
    /// First write error, kept sticky so `flush` can report it.
    error: Option<String>,
}

impl SinkInner {
    fn emit(&mut self, line: &str) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self
            .out
            .write_all(line.as_bytes())
            .and_then(|()| self.out.write_all(b"\n"))
        {
            self.error = Some(e.to_string());
            return;
        }
        self.events += 1;
    }
}

/// A shared NDJSON trace writer (see the module docs for the schema).
///
/// Cloning is cheap and clones share the underlying stream and span-id
/// space. All methods take `&self`; the sink is internally synchronized.
///
/// # Examples
///
/// ```
/// use qcc_congest::{parse_trace, Clique, Envelope, NodeId, TraceSink};
///
/// let (sink, buffer) = TraceSink::in_memory();
/// let mut net = Clique::new(4)?;
/// net.set_trace_sink(sink.clone());
/// net.begin_phase("setup");
/// net.exchange(vec![Envelope::new(NodeId::new(0), NodeId::new(1), 7u64)])?;
/// net.close_all_spans();
/// let events = parse_trace(&buffer.contents()).unwrap();
/// assert_eq!(events.len(), 3); // open + comm + close
/// # Ok::<(), qcc_congest::CongestError>(())
/// ```
#[derive(Clone)]
pub struct TraceSink {
    inner: Arc<Mutex<SinkInner>>,
    /// Events dropped because the mutex was poisoned (see
    /// [`TraceSink::dropped_events`]).
    dropped: Arc<AtomicU64>,
}

impl fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.lock_read();
        f.debug_struct("TraceSink")
            .field("events", &inner.events)
            .field("open_spans", &inner.stack.len())
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish()
    }
}

/// In-memory capture buffer returned by [`TraceSink::in_memory`].
#[derive(Clone, Debug, Default)]
pub struct TraceBuffer(Arc<Mutex<Vec<u8>>>);

impl TraceBuffer {
    /// The NDJSON text written so far.
    #[must_use]
    pub fn contents(&self) -> String {
        let bytes = self.0.lock().unwrap_or_else(|e| e.into_inner());
        String::from_utf8_lossy(&bytes).into_owned()
    }
}

impl Write for TraceBuffer {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl TraceSink {
    /// Creates a sink writing to an arbitrary stream.
    #[must_use]
    pub fn to_writer(out: Box<dyn Write + Send>) -> Self {
        TraceSink {
            inner: Arc::new(Mutex::new(SinkInner {
                out,
                stack: Vec::new(),
                next_id: 1,
                events: 0,
                error: None,
            })),
            dropped: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Creates a sink writing NDJSON to a (buffered) file.
    ///
    /// # Errors
    ///
    /// Propagates the file-creation error.
    pub fn to_file<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::to_writer(Box::new(BufWriter::new(file))))
    }

    /// Creates a sink capturing into memory, for tests and tooling.
    #[must_use]
    pub fn in_memory() -> (Self, TraceBuffer) {
        let buffer = TraceBuffer::default();
        (Self::to_writer(Box::new(buffer.clone())), buffer)
    }

    /// Write-path lock. A poisoned mutex (a clique thread panicked while
    /// holding the sink) degrades to dropping the event and bumping the
    /// dropped-event counter, instead of propagating the poison panic into
    /// unrelated cliques sharing the sink.
    fn lock_mut(&self) -> Option<MutexGuard<'_, SinkInner>> {
        match self.inner.lock() {
            Ok(guard) => Some(guard),
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Read-path lock: observing state left by a panicked writer is
    /// harmless (every write either completed a whole line or set the
    /// sticky error first).
    fn lock_read(&self) -> MutexGuard<'_, SinkInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Opens a span as a child of the innermost open span; returns its id.
    pub fn open_span(&self, label: &str) -> u64 {
        self.open_span_scaled(label, 1)
    }

    /// Opens a span whose subtree counts `factor`-fold toward its parent —
    /// the paper's virtual-network simulation constants (a `Clique(3n)`
    /// product run on `n` physical nodes costs 9 physical rounds per
    /// virtual round).
    pub fn open_span_scaled(&self, label: &str, factor: u64) -> u64 {
        let Some(mut inner) = self.lock_mut() else {
            return 0;
        };
        let id = inner.next_id;
        inner.next_id += 1;
        let mut line = format!("{{\"ev\":\"open\",\"id\":{id}");
        if let Some(&parent) = inner.stack.last() {
            line.push_str(&format!(",\"parent\":{parent}"));
        }
        line.push_str(",\"label\":\"");
        escape_into(label, &mut line);
        line.push('"');
        if factor != 1 {
            line.push_str(&format!(",\"factor\":{factor}"));
        }
        line.push('}');
        inner.emit(&line);
        inner.stack.push(id);
        id
    }

    /// Closes the innermost open span without statistics (driver spans).
    pub fn close_span(&self) {
        let Some(mut inner) = self.lock_mut() else {
            return;
        };
        if let Some(id) = inner.stack.pop() {
            inner.emit(&format!("{{\"ev\":\"close\",\"id\":{id}}}"));
        }
    }

    /// Closes the innermost open span, recording its final statistics.
    /// Called by [`crate::Metrics`]; the fields mirror [`CommTotals`] plus
    /// a compact `floor:count` histogram of per-call round charges.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn close_span_with_stats(&self, totals: &CommTotals, hist: &str) {
        let Some(mut inner) = self.lock_mut() else {
            return;
        };
        if let Some(id) = inner.stack.pop() {
            let mut line = format!(
                "{{\"ev\":\"close\",\"id\":{id},\"rounds\":{},\"messages\":{},\"bits\":{},\
                 \"max_link_bits\":{},\"max_node_out_bits\":{},\"max_node_in_bits\":{},\
                 \"calls\":{}",
                totals.rounds,
                totals.messages,
                totals.bits,
                totals.max_link_bits,
                totals.max_node_out_bits,
                totals.max_node_in_bits,
                totals.calls,
            );
            line.push_str(",\"hist\":\"");
            escape_into(hist, &mut line);
            line.push_str("\"}");
            inner.emit(&line);
        }
    }

    /// Records one communication call against the innermost open span.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn emit_comm(
        &self,
        kind: &str,
        rounds: u64,
        messages: u64,
        bits: u64,
        max_link_bits: u64,
        max_node_out_bits: u64,
        max_node_in_bits: u64,
    ) {
        let Some(mut inner) = self.lock_mut() else {
            return;
        };
        let mut line = String::from("{\"ev\":\"comm\",\"kind\":\"");
        escape_into(kind, &mut line);
        line.push('"');
        if let Some(&span) = inner.stack.last() {
            line.push_str(&format!(",\"span\":{span}"));
        }
        line.push_str(&format!(
            ",\"rounds\":{rounds},\"messages\":{messages},\"bits\":{bits},\
             \"max_link_bits\":{max_link_bits},\"max_node_out_bits\":{max_node_out_bits},\
             \"max_node_in_bits\":{max_node_in_bits}}}"
        ));
        inner.emit(&line);
    }

    /// Records one injected network fault against the innermost open span.
    pub(crate) fn emit_fault(&self, kind: &str) {
        let Some(mut inner) = self.lock_mut() else {
            return;
        };
        let mut line = String::from("{\"ev\":\"fault\",\"kind\":\"");
        escape_into(kind, &mut line);
        line.push('"');
        if let Some(&span) = inner.stack.last() {
            line.push_str(&format!(",\"span\":{span}"));
        }
        line.push('}');
        inner.emit(&line);
    }

    /// Number of events successfully written.
    #[must_use]
    pub fn events_written(&self) -> u64 {
        self.lock_read().events
    }

    /// Events silently dropped because the sink's mutex was poisoned by a
    /// panicking writer thread.
    #[must_use]
    pub fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Flushes the underlying stream.
    ///
    /// # Errors
    ///
    /// Reports the first write error encountered (writes are otherwise
    /// fire-and-forget so tracing never aborts a simulation mid-run), or an
    /// error describing how many events were dropped on a poisoned sink.
    pub fn flush(&self) -> Result<(), std::io::Error> {
        let mut inner = self.lock_read();
        if let Some(e) = inner.error.take() {
            return Err(std::io::Error::other(e));
        }
        inner.out.flush()?;
        let dropped = self.dropped.load(Ordering::Relaxed);
        if dropped > 0 {
            return Err(std::io::Error::other(format!(
                "{dropped} trace events dropped: sink mutex was poisoned by a panicking writer"
            )));
        }
        Ok(())
    }
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// A parsed `comm` event (one `exchange`/`route`/`broadcast`/`gossip` call).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommEvent {
    /// Which primitive ran (`"exchange"`, `"route"`, `"broadcast"`,
    /// `"gossip"`, `"charge"`).
    pub kind: String,
    /// Innermost open span when the call ran, if any.
    pub span: Option<u64>,
    /// Rounds charged by the call.
    pub rounds: u64,
    /// Messages transmitted.
    pub messages: u64,
    /// Bits transmitted.
    pub bits: u64,
    /// Busiest-link bits of the call.
    pub max_link_bits: u64,
    /// Busiest outgoing node bits of the call.
    pub max_node_out_bits: u64,
    /// Busiest incoming node bits of the call.
    pub max_node_in_bits: u64,
}

/// One parsed trace event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A span opened.
    Open {
        /// Unique increasing span id.
        id: u64,
        /// Enclosing span, if any.
        parent: Option<u64>,
        /// Step label (e.g. `"step3/alpha0/eval-queries"`).
        label: String,
        /// Subtree multiplier toward the parent (1 = none).
        factor: u64,
    },
    /// A span closed; `rounds` is present when the span was closed by a
    /// [`crate::Metrics`] with its recorded statistics.
    Close {
        /// Id of the span being closed.
        id: u64,
        /// Recorded subtree rounds, for cross-checking.
        rounds: Option<u64>,
    },
    /// One communication call.
    Comm(CommEvent),
    /// One injected network fault (carries no round charges).
    Fault {
        /// Fault kind (`"drop"`, `"corrupt"`, `"duplicate"`, `"crash"`).
        kind: String,
        /// Innermost open span when the fault was injected, if any.
        span: Option<u64>,
    },
}

/// A trace parsing or consistency error, with the 1-based line number when
/// it arose from a specific line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based NDJSON line (0 when the error is about the whole trace).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "trace error: {}", self.message)
        } else {
            write!(f, "trace error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for TraceError {}

fn err(line: usize, message: impl Into<String>) -> TraceError {
    TraceError {
        line,
        message: message.into(),
    }
}

#[derive(Clone, Debug, PartialEq)]
enum JsonValue {
    Num(u64),
    Str(String),
}

/// Minimal parser for the flat one-line objects this module emits: string
/// keys mapping to unsigned integers or strings. Anything else is rejected
/// — a malformed trace should fail loudly, not best-effort.
fn parse_flat_object(line: &str, line_no: usize) -> Result<Vec<(String, JsonValue)>, TraceError> {
    let bytes: Vec<char> = line.trim().chars().collect();
    let mut pos = 0usize;
    let mut pairs = Vec::new();
    let expect = |pos: &mut usize, want: char, bytes: &[char]| -> Result<(), TraceError> {
        if bytes.get(*pos) == Some(&want) {
            *pos += 1;
            Ok(())
        } else {
            Err(err(
                line_no,
                format!("expected '{want}' at column {}", *pos + 1),
            ))
        }
    };
    expect(&mut pos, '{', &bytes)?;
    if bytes.get(pos) == Some(&'}') {
        return Ok(pairs);
    }
    loop {
        let key = parse_json_string(&bytes, &mut pos, line_no)?;
        expect(&mut pos, ':', &bytes)?;
        let value = match bytes.get(pos) {
            Some('"') => JsonValue::Str(parse_json_string(&bytes, &mut pos, line_no)?),
            Some(c) if c.is_ascii_digit() => {
                let mut v: u64 = 0;
                while let Some(c) = bytes.get(pos).filter(|c| c.is_ascii_digit()) {
                    v = v
                        .checked_mul(10)
                        .and_then(|v| v.checked_add(*c as u64 - '0' as u64))
                        .ok_or_else(|| err(line_no, "integer overflow"))?;
                    pos += 1;
                }
                JsonValue::Num(v)
            }
            _ => {
                return Err(err(
                    line_no,
                    format!("expected value at column {}", pos + 1),
                ))
            }
        };
        pairs.push((key, value));
        match bytes.get(pos) {
            Some(',') => pos += 1,
            Some('}') => {
                pos += 1;
                break;
            }
            _ => {
                return Err(err(
                    line_no,
                    format!("expected ',' or '}}' at column {}", pos + 1),
                ))
            }
        }
    }
    if pos != bytes.len() {
        return Err(err(line_no, "trailing characters after object"));
    }
    Ok(pairs)
}

fn parse_json_string(
    bytes: &[char],
    pos: &mut usize,
    line_no: usize,
) -> Result<String, TraceError> {
    if bytes.get(*pos) != Some(&'"') {
        return Err(err(
            line_no,
            format!("expected string at column {}", *pos + 1),
        ));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(line_no, "unterminated string")),
            Some('"') => {
                *pos += 1;
                return Ok(out);
            }
            Some('\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('u') => {
                        let hex: String = bytes
                            .get(*pos + 1..*pos + 5)
                            .unwrap_or(&[])
                            .iter()
                            .collect();
                        let code = u32::from_str_radix(&hex, 16)
                            .ok()
                            .and_then(char::from_u32)
                            .ok_or_else(|| err(line_no, "bad \\u escape"))?;
                        out.push(code);
                        *pos += 4;
                    }
                    _ => return Err(err(line_no, "bad escape")),
                }
                *pos += 1;
            }
            Some(c) => {
                out.push(*c);
                *pos += 1;
            }
        }
    }
}

fn take_num(pairs: &[(String, JsonValue)], key: &str, line_no: usize) -> Result<u64, TraceError> {
    opt_num(pairs, key, line_no)?.ok_or_else(|| err(line_no, format!("missing field {key}")))
}

fn opt_num(
    pairs: &[(String, JsonValue)],
    key: &str,
    line_no: usize,
) -> Result<Option<u64>, TraceError> {
    match pairs.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, JsonValue::Num(v))) => Ok(Some(*v)),
        Some((_, JsonValue::Str(_))) => Err(err(line_no, format!("field {key} must be a number"))),
    }
}

fn take_str(
    pairs: &[(String, JsonValue)],
    key: &str,
    line_no: usize,
) -> Result<String, TraceError> {
    match pairs.iter().find(|(k, _)| k == key) {
        Some((_, JsonValue::Str(v))) => Ok(v.clone()),
        Some((_, JsonValue::Num(_))) => Err(err(line_no, format!("field {key} must be a string"))),
        None => Err(err(line_no, format!("missing field {key}"))),
    }
}

/// Parses one NDJSON line into a [`TraceEvent`].
///
/// # Errors
///
/// Returns a [`TraceError`] describing the first malformation.
pub fn parse_trace_line(line: &str, line_no: usize) -> Result<TraceEvent, TraceError> {
    let pairs = parse_flat_object(line, line_no)?;
    match take_str(&pairs, "ev", line_no)?.as_str() {
        "open" => Ok(TraceEvent::Open {
            id: take_num(&pairs, "id", line_no)?,
            parent: opt_num(&pairs, "parent", line_no)?,
            label: take_str(&pairs, "label", line_no)?,
            factor: opt_num(&pairs, "factor", line_no)?.unwrap_or(1),
        }),
        "close" => Ok(TraceEvent::Close {
            id: take_num(&pairs, "id", line_no)?,
            rounds: opt_num(&pairs, "rounds", line_no)?,
        }),
        "comm" => Ok(TraceEvent::Comm(CommEvent {
            kind: take_str(&pairs, "kind", line_no)?,
            span: opt_num(&pairs, "span", line_no)?,
            rounds: take_num(&pairs, "rounds", line_no)?,
            messages: take_num(&pairs, "messages", line_no)?,
            bits: take_num(&pairs, "bits", line_no)?,
            max_link_bits: take_num(&pairs, "max_link_bits", line_no)?,
            max_node_out_bits: take_num(&pairs, "max_node_out_bits", line_no)?,
            max_node_in_bits: take_num(&pairs, "max_node_in_bits", line_no)?,
        })),
        "fault" => Ok(TraceEvent::Fault {
            kind: take_str(&pairs, "kind", line_no)?,
            span: opt_num(&pairs, "span", line_no)?,
        }),
        other => Err(err(line_no, format!("unknown event kind: {other}"))),
    }
}

/// Parses a whole NDJSON trace, skipping blank lines.
///
/// # Errors
///
/// Returns the first [`TraceError`] with its line number.
pub fn parse_trace(text: &str) -> Result<Vec<TraceEvent>, TraceError> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        events.push(parse_trace_line(line, i + 1)?);
    }
    Ok(events)
}

// ---------------------------------------------------------------------------
// Summary
// ---------------------------------------------------------------------------

/// One reconstructed span of a [`TraceSummary`].
#[derive(Clone, Debug)]
pub struct SpanSummary {
    /// Span id from the trace.
    pub id: u64,
    /// Step label.
    pub label: String,
    /// Subtree multiplier toward the parent.
    pub factor: u64,
    /// Nesting depth (roots are 0).
    pub depth: usize,
    /// Comm totals attributed directly to this span (children excluded).
    pub own: CommTotals,
    /// Fault events attributed directly to this span (children excluded).
    pub faults: u64,
    /// Whether a close event was seen.
    pub closed: bool,
    /// Rounds recorded by the closing `Metrics`, for cross-checking.
    pub closed_rounds: Option<u64>,
    children: Vec<usize>,
}

/// The reconstructed span tree of one trace file.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    spans: Vec<SpanSummary>,
    roots: Vec<usize>,
    /// Comm events that ran with no span open.
    pub unspanned: CommTotals,
    /// Fault events injected with no span open.
    pub unspanned_faults: u64,
}

impl TraceSummary {
    /// Rebuilds the span tree from parsed events.
    ///
    /// # Errors
    ///
    /// Rejects duplicate ids, unknown parents or spans, and comm events
    /// attributed to spans that were never opened.
    pub fn from_events(events: &[TraceEvent]) -> Result<Self, TraceError> {
        let mut summary = TraceSummary::default();
        let mut index_of: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for event in events {
            match event {
                TraceEvent::Open {
                    id,
                    parent,
                    label,
                    factor,
                } => {
                    if index_of.contains_key(id) {
                        return Err(err(0, format!("duplicate span id {id}")));
                    }
                    let (depth, parent_idx) = match parent {
                        None => (0, None),
                        Some(p) => {
                            let &idx = index_of.get(p).ok_or_else(|| {
                                err(0, format!("span {id} has unknown parent {p}"))
                            })?;
                            (summary.spans[idx].depth + 1, Some(idx))
                        }
                    };
                    let idx = summary.spans.len();
                    summary.spans.push(SpanSummary {
                        id: *id,
                        label: label.clone(),
                        factor: *factor,
                        depth,
                        own: CommTotals::default(),
                        faults: 0,
                        closed: false,
                        closed_rounds: None,
                        children: Vec::new(),
                    });
                    match parent_idx {
                        Some(p) => summary.spans[p].children.push(idx),
                        None => summary.roots.push(idx),
                    }
                    index_of.insert(*id, idx);
                }
                TraceEvent::Close { id, rounds } => {
                    let &idx = index_of
                        .get(id)
                        .ok_or_else(|| err(0, format!("close of unknown span {id}")))?;
                    let span = &mut summary.spans[idx];
                    if span.closed {
                        return Err(err(0, format!("span {id} closed twice")));
                    }
                    span.closed = true;
                    span.closed_rounds = *rounds;
                }
                TraceEvent::Comm(comm) => match comm.span {
                    None => summary.unspanned.absorb(comm),
                    Some(id) => {
                        let &idx = index_of
                            .get(&id)
                            .ok_or_else(|| err(0, format!("comm in unknown span {id}")))?;
                        summary.spans[idx].own.absorb(comm);
                    }
                },
                TraceEvent::Fault { span, .. } => match span {
                    None => summary.unspanned_faults += 1,
                    Some(id) => {
                        let &idx = index_of
                            .get(id)
                            .ok_or_else(|| err(0, format!("fault in unknown span {id}")))?;
                        summary.spans[idx].faults += 1;
                    }
                },
            }
        }
        Ok(summary)
    }

    /// The spans, in open (preorder) order.
    #[must_use]
    pub fn spans(&self) -> &[SpanSummary] {
        &self.spans
    }

    /// Indices of the root spans, in open order.
    #[must_use]
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// Subtree rounds of span `idx`, *unscaled* at its own level: own
    /// rounds plus each child's subtree scaled by the child's factor.
    #[must_use]
    pub fn subtree_rounds(&self, idx: usize) -> u64 {
        let span = &self.spans[idx];
        span.own.rounds
            + span
                .children
                .iter()
                .map(|&c| self.spans[c].factor * self.subtree_rounds(c))
                .sum::<u64>()
    }

    fn subtree_rounds_unscaled(&self, idx: usize) -> u64 {
        let span = &self.spans[idx];
        span.own.rounds
            + span
                .children
                .iter()
                .map(|&c| self.subtree_rounds_unscaled(c))
                .sum::<u64>()
    }

    /// Total fault events in the subtree of span `idx`.
    #[must_use]
    pub fn subtree_faults(&self, idx: usize) -> u64 {
        let span = &self.spans[idx];
        span.faults
            + span
                .children
                .iter()
                .map(|&c| self.subtree_faults(c))
                .sum::<u64>()
    }

    /// Total fault events in the whole trace.
    #[must_use]
    pub fn total_faults(&self) -> u64 {
        self.unspanned_faults
            + self
                .roots
                .iter()
                .map(|&r| self.subtree_faults(r))
                .sum::<u64>()
    }

    /// Subtree max-link high-water mark of span `idx`.
    #[must_use]
    pub fn subtree_max_link_bits(&self, idx: usize) -> u64 {
        let span = &self.spans[idx];
        span.children
            .iter()
            .map(|&c| self.subtree_max_link_bits(c))
            .fold(span.own.max_link_bits, u64::max)
    }

    fn subtree_bits(&self, idx: usize) -> u64 {
        let span = &self.spans[idx];
        span.own.bits
            + span
                .children
                .iter()
                .map(|&c| self.subtree_bits(c))
                .sum::<u64>()
    }

    /// Total rounds of the whole trace, with every span's factor applied:
    /// for a traced APSP run this equals the *physical* round count the
    /// algorithm reports.
    #[must_use]
    pub fn total_rounds(&self) -> u64 {
        self.unspanned.rounds
            + self
                .roots
                .iter()
                .map(|&r| self.spans[r].factor * self.subtree_rounds(r))
                .sum::<u64>()
    }

    /// Checks internal consistency: every span closed, and every span whose
    /// close event carried recorded rounds agrees with the sum of the comm
    /// events in its subtree.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] naming the first offending span.
    pub fn verify(&self) -> Result<(), TraceError> {
        for (idx, span) in self.spans.iter().enumerate() {
            if !span.closed {
                return Err(err(
                    0,
                    format!("span {} (\"{}\") was never closed", span.id, span.label),
                ));
            }
            if let Some(recorded) = span.closed_rounds {
                let summed = self.subtree_rounds_unscaled(idx);
                if summed != recorded {
                    return Err(err(
                        0,
                        format!(
                            "span {} (\"{}\"): close event records {recorded} rounds but its \
                             comm events sum to {summed}",
                            span.id, span.label
                        ),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Renders the tree (rounds, calls, bits, max-link per span) down to
    /// `max_depth` levels, ending with the scaled grand total.
    #[must_use]
    pub fn render(&self, max_depth: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:>12} {:>8} {:>14} {:>12}  {}\n",
            "rounds", "calls", "bits", "max-link", "span"
        ));
        for &root in &self.roots {
            self.render_span(root, max_depth, &mut out);
        }
        if self.unspanned.calls > 0 {
            out.push_str(&format!(
                "{:>12} {:>8} {:>14} {:>12}  {}\n",
                self.unspanned.rounds,
                self.unspanned.calls,
                self.unspanned.bits,
                self.unspanned.max_link_bits,
                "(no span)"
            ));
        }
        out.push_str(&format!("total rounds (scaled): {}\n", self.total_rounds()));
        out
    }

    fn render_span(&self, idx: usize, max_depth: usize, out: &mut String) {
        let span = &self.spans[idx];
        if span.depth >= max_depth {
            return;
        }
        let rounds = self.subtree_rounds(idx);
        let rounds_cell = if span.factor == 1 {
            rounds.to_string()
        } else {
            format!("{rounds}x{}", span.factor)
        };
        let calls: u64 = self.subtree_calls(idx);
        let faults = self.subtree_faults(idx);
        let fault_cell = if faults == 0 {
            String::new()
        } else {
            format!(" [{faults} faults]")
        };
        out.push_str(&format!(
            "{:>12} {:>8} {:>14} {:>12}  {}{}{}\n",
            rounds_cell,
            calls,
            self.subtree_bits(idx),
            self.subtree_max_link_bits(idx),
            "  ".repeat(span.depth),
            span.label,
            fault_cell
        ));
        for &child in &span.children {
            self.render_span(child, max_depth, out);
        }
    }

    fn subtree_calls(&self, idx: usize) -> u64 {
        let span = &self.spans[idx];
        span.own.calls
            + span
                .children
                .iter()
                .map(|&c| self.subtree_calls(c))
                .sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_the_parser() {
        let (sink, buffer) = TraceSink::in_memory();
        let outer = sink.open_span_scaled("apsp", 1);
        let inner = sink.open_span_scaled("product-0", 9);
        sink.emit_comm("route", 2, 16, 256, 32, 128, 128);
        sink.close_span();
        sink.close_span();
        let events = parse_trace(&buffer.contents()).unwrap();
        assert_eq!(
            events[0],
            TraceEvent::Open {
                id: outer,
                parent: None,
                label: "apsp".into(),
                factor: 1
            }
        );
        assert_eq!(
            events[1],
            TraceEvent::Open {
                id: inner,
                parent: Some(outer),
                label: "product-0".into(),
                factor: 9
            }
        );
        assert!(matches!(&events[2], TraceEvent::Comm(c) if c.span == Some(inner)));
        assert_eq!(
            events[3],
            TraceEvent::Close {
                id: inner,
                rounds: None
            }
        );
    }

    #[test]
    fn labels_with_quotes_and_backslashes_survive() {
        let (sink, buffer) = TraceSink::in_memory();
        sink.open_span("a\"b\\c\nd");
        sink.close_span();
        let events = parse_trace(&buffer.contents()).unwrap();
        assert_eq!(
            events[0],
            TraceEvent::Open {
                id: 1,
                parent: None,
                label: "a\"b\\c\nd".into(),
                factor: 1
            }
        );
    }

    #[test]
    fn malformed_lines_are_rejected_with_line_numbers() {
        for bad in [
            "not json",
            "{\"ev\":\"open\"}",
            "{\"ev\":\"warp\",\"id\":1}",
            "{\"ev\":\"comm\",\"kind\":\"route\",\"rounds\":1}",
            "{\"ev\":\"open\",\"id\":1,\"label\":\"x\"} extra",
        ] {
            let text = format!("{{\"ev\":\"close\",\"id\":9}}\n{bad}\n");
            let e = parse_trace(&text).unwrap_err();
            assert_eq!(e.line, 2, "case {bad:?}: {e}");
        }
    }

    #[test]
    fn summary_scales_factors_into_the_total() {
        let (sink, buffer) = TraceSink::in_memory();
        sink.open_span("apsp");
        sink.open_span_scaled("product-0", 9);
        sink.emit_comm("route", 3, 1, 16, 16, 16, 16);
        sink.close_span();
        sink.open_span_scaled("product-1", 9);
        sink.emit_comm("route", 4, 1, 16, 16, 16, 16);
        sink.close_span();
        sink.close_span();
        let events = parse_trace(&buffer.contents()).unwrap();
        let summary = TraceSummary::from_events(&events).unwrap();
        summary.verify().unwrap();
        assert_eq!(summary.total_rounds(), 9 * 3 + 9 * 4);
        assert_eq!(summary.roots().len(), 1);
        assert_eq!(summary.subtree_rounds(0), 9 * 3 + 9 * 4);
    }

    #[test]
    fn verify_rejects_unclosed_and_inconsistent_spans() {
        let (sink, buffer) = TraceSink::in_memory();
        sink.open_span("dangling");
        let events = parse_trace(&buffer.contents()).unwrap();
        let summary = TraceSummary::from_events(&events).unwrap();
        assert!(summary.verify().is_err());

        let text = "{\"ev\":\"open\",\"id\":1,\"label\":\"x\"}\n\
                    {\"ev\":\"comm\",\"kind\":\"route\",\"span\":1,\"rounds\":2,\"messages\":1,\
                     \"bits\":8,\"max_link_bits\":8,\"max_node_out_bits\":8,\"max_node_in_bits\":8}\n\
                    {\"ev\":\"close\",\"id\":1,\"rounds\":99}\n";
        let summary = TraceSummary::from_events(&parse_trace(text).unwrap()).unwrap();
        let e = summary.verify().unwrap_err();
        assert!(e.message.contains("99"), "{e}");
    }

    #[test]
    fn comm_without_span_lands_in_unspanned() {
        let (sink, buffer) = TraceSink::in_memory();
        sink.emit_comm("exchange", 5, 1, 64, 64, 64, 64);
        let events = parse_trace(&buffer.contents()).unwrap();
        let summary = TraceSummary::from_events(&events).unwrap();
        assert_eq!(summary.unspanned.rounds, 5);
        assert_eq!(summary.total_rounds(), 5);
        assert!(summary.render(4).contains("(no span)"));
    }

    #[test]
    fn fault_events_round_trip_and_attribute_to_spans() {
        let (sink, buffer) = TraceSink::in_memory();
        sink.emit_fault("drop");
        let apsp = sink.open_span("apsp");
        sink.emit_fault("corrupt");
        sink.emit_fault("crash");
        sink.close_span();
        let events = parse_trace(&buffer.contents()).unwrap();
        assert_eq!(
            events[0],
            TraceEvent::Fault {
                kind: "drop".into(),
                span: None
            }
        );
        assert_eq!(
            events[2],
            TraceEvent::Fault {
                kind: "corrupt".into(),
                span: Some(apsp)
            }
        );
        let summary = TraceSummary::from_events(&events).unwrap();
        assert_eq!(summary.unspanned_faults, 1);
        assert_eq!(summary.spans()[0].faults, 2);
        assert_eq!(summary.total_faults(), 3);
        assert!(summary.render(4).contains("[2 faults]"));
    }

    #[test]
    fn poisoned_sink_degrades_to_dropped_events() {
        let (sink, buffer) = TraceSink::in_memory();
        sink.open_span("before");
        sink.close_span();
        let clone = sink.clone();
        std::thread::spawn(move || {
            let _guard = clone.inner.lock().unwrap();
            panic!("poison the sink on purpose");
        })
        .join()
        .unwrap_err();
        // Writes now degrade to counted drops instead of propagating the
        // poison panic.
        assert_eq!(sink.open_span("after"), 0);
        sink.emit_comm("exchange", 1, 1, 8, 8, 8, 8);
        sink.emit_fault("drop");
        sink.close_span();
        assert!(sink.dropped_events() >= 3);
        let err = sink.flush().unwrap_err();
        assert!(err.to_string().contains("dropped"), "{err}");
        // Events written before the poison are still parseable.
        let events = parse_trace(&buffer.contents()).unwrap();
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn render_respects_max_depth() {
        let (sink, buffer) = TraceSink::in_memory();
        sink.open_span("top");
        sink.open_span("middle");
        sink.open_span("leaf");
        sink.close_span();
        sink.close_span();
        sink.close_span();
        let summary = TraceSummary::from_events(&parse_trace(&buffer.contents()).unwrap()).unwrap();
        let shallow = summary.render(2);
        assert!(shallow.contains("middle") && !shallow.contains("leaf"));
        let deep = summary.render(10);
        assert!(deep.contains("leaf"));
    }
}
