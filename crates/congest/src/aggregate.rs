//! Global aggregation primitives.
//!
//! Several protocol steps need the whole network to agree on a small
//! predicate — "did any node's sample exceed the abort bound?" — before
//! proceeding. In the CONGEST-CLIQUE this costs a constant number of
//! rounds: gather one bit (or one `O(log n)`-bit value) per node at a
//! coordinator, combine locally, and broadcast the result. These helpers
//! execute that pattern with full round accounting so that abort paths are
//! charged honestly.

use crate::envelope::Envelope;
use crate::error::CongestError;
use crate::network::Clique;
use crate::node::NodeId;
use crate::payload::Payload;

impl Clique {
    /// Disseminates the OR of one flag per node: every node learns whether
    /// *any* node raised its flag. Costs 2 rounds (gather + broadcast).
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::UnknownNode`] if `flags.len() != n`.
    pub fn agree_any(&mut self, flags: &[bool]) -> Result<bool, CongestError> {
        if flags.len() != self.n() {
            return Err(CongestError::UnknownNode {
                node: NodeId::new(flags.len()),
                n: self.n(),
            });
        }
        let coordinator = NodeId::new(0);
        let sends: Vec<Envelope<bool>> = flags
            .iter()
            .enumerate()
            .map(|(i, &flag)| Envelope::new(NodeId::new(i), coordinator, flag))
            .collect();
        let inboxes = self.exchange(sends)?;
        let any = inboxes.of(coordinator).iter().any(|(_, flag)| *flag) || flags[0];
        self.broadcast(coordinator, any)?;
        Ok(any)
    }

    /// Gathers one value per node at the coordinator, folds them, and
    /// broadcasts the digest to everyone. Returns the digest.
    ///
    /// `fold` starts from node 0's value and combines in node order;
    /// `digest_bits` is the wire size of the broadcast result.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::UnknownNode`] if `values.len() != n`.
    pub fn agree_fold<T, F>(
        &mut self,
        values: Vec<T>,
        mut fold: F,
        digest_bits: u64,
    ) -> Result<T, CongestError>
    where
        T: Payload,
        F: FnMut(T, T) -> T,
    {
        if values.len() != self.n() {
            return Err(CongestError::UnknownNode {
                node: NodeId::new(values.len()),
                n: self.n(),
            });
        }
        let coordinator = NodeId::new(0);
        let mut iter = values.into_iter();
        let own = iter.next().expect("n > 0");
        let sends: Vec<Envelope<T>> = iter
            .enumerate()
            .map(|(i, v)| Envelope::new(NodeId::new(i + 1), coordinator, v))
            .collect();
        let inboxes = self.exchange(sends)?;
        let mut acc = own;
        for (_, v) in inboxes.of(coordinator) {
            acc = fold(acc, v.clone());
        }
        self.broadcast(coordinator, crate::payload::RawBits::new(0, digest_bits))?;
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agree_any_detects_a_single_raised_flag() {
        let mut net = Clique::new(8).unwrap();
        let mut flags = vec![false; 8];
        assert!(!net.agree_any(&flags).unwrap());
        flags[5] = true;
        assert!(net.agree_any(&flags).unwrap());
        flags[5] = false;
        flags[0] = true; // the coordinator's own flag counts too
        assert!(net.agree_any(&flags).unwrap());
    }

    #[test]
    fn agree_any_costs_constant_rounds() {
        let mut net = Clique::new(32).unwrap();
        net.agree_any(&[false; 32]).unwrap();
        let per_call = net.rounds();
        assert!(per_call >= 2, "gather + broadcast");
        net.agree_any(&[true; 32]).unwrap();
        assert_eq!(net.rounds(), 2 * per_call);
    }

    #[test]
    fn agree_any_rejects_wrong_arity() {
        let mut net = Clique::new(4).unwrap();
        assert!(net.agree_any(&[true, false]).is_err());
    }

    #[test]
    fn agree_fold_computes_min() {
        let mut net = Clique::new(6).unwrap();
        let values: Vec<u64> = vec![9, 4, 7, 2, 8, 5];
        let min = net.agree_fold(values, |a, b| a.min(b), 64).unwrap();
        assert_eq!(min, 2);
        assert!(net.rounds() >= 2);
    }

    #[test]
    fn agree_fold_rejects_wrong_arity() {
        let mut net = Clique::new(4).unwrap();
        assert!(net.agree_fold(vec![1u64], |a, _| a, 64).is_err());
    }
}
