//! Deterministic fault injection for the simulated network.
//!
//! The model's default links are perfectly reliable; a [`FaultPlan`] makes
//! them misbehave in a *seeded, reproducible* way so robustness machinery
//! (the ack/retransmit envelope, the Las-Vegas APSP driver) can be
//! exercised and measured. Four fault kinds are injected:
//!
//! * **drop** — the message is transmitted but never delivered;
//! * **corrupt** — the message arrives damaged; links are checksummed, so
//!   the receiver detects and discards it (equivalent to a drop on the
//!   receive side, but counted separately);
//! * **duplicate** — the message is delivered twice;
//! * **crash** — a node fail-stops at a scheduled round: from then on it
//!   transmits nothing and everything addressed to it vanishes.
//!
//! Fault *accounting* follows the wire: dropped and corrupted messages are
//! still charged (the bits were transmitted), duplication is a
//! delivery-layer artifact (no extra charge), and a crashed sender's
//! messages are not charged (nothing was transmitted). Every injected fault
//! is recorded in the metrics span tree and, when a trace sink is attached,
//! as an NDJSON `fault` event.
//!
//! Fault fates are a pure function of `(plan seed, communication-call
//! counter, message index)` via a SplitMix64 finalizer, so a run with a
//! given plan is bit-reproducible and independent of the algorithm's own
//! RNG stream. An **empty** plan (all rates zero, no crashes) is
//! structurally inert: [`crate::Clique`] stores no fault state for it and
//! executes the exact unfaulted code path, which `tests/determinism.rs`
//! pins byte-for-byte.

use crate::node::NodeId;
use std::fmt;

/// The kind of an injected fault, as recorded in metrics and traces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A message was dropped in transit.
    Drop,
    /// A message arrived corrupted and was discarded by the receiver.
    Corrupt,
    /// A message was delivered twice.
    Duplicate,
    /// A node fail-stopped (recorded once, at the crash).
    Crash,
}

impl FaultKind {
    /// The lowercase label used in NDJSON `fault` events.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Crash => "crash",
        }
    }
}

/// Counts of injected faults by kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Messages dropped in transit.
    pub drops: u64,
    /// Messages corrupted (detected and discarded by the receiver).
    pub corruptions: u64,
    /// Messages delivered twice.
    pub duplications: u64,
    /// Nodes that fail-stopped.
    pub crashes: u64,
}

impl FaultCounts {
    /// Folds one fault into the counts.
    pub fn record(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::Drop => self.drops += 1,
            FaultKind::Corrupt => self.corruptions += 1,
            FaultKind::Duplicate => self.duplications += 1,
            FaultKind::Crash => self.crashes += 1,
        }
    }

    /// Total faults of every kind.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.drops + self.corruptions + self.duplications + self.crashes
    }
}

/// A seeded, deterministic schedule of network faults.
///
/// Rates are per-message probabilities in `[0, 1]`; `link_drop` overrides
/// the global drop rate on specific ordered links; `crashes` fail-stops
/// nodes once the network's total round count reaches the given round.
///
/// # Examples
///
/// ```
/// use qcc_congest::FaultPlan;
///
/// let plan = FaultPlan::parse("drop=0.05,corrupt=0.01,seed=7").unwrap();
/// assert!(!plan.is_empty());
/// assert_eq!(plan.seed, 7);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Probability that a message is dropped in transit.
    pub drop_rate: f64,
    /// Probability that a surviving message arrives corrupted.
    pub corrupt_rate: f64,
    /// Probability that a surviving message is delivered twice.
    pub duplicate_rate: f64,
    /// Per-ordered-link drop-rate overrides (`(src, dst)` → rate).
    pub link_drop: Vec<((NodeId, NodeId), f64)>,
    /// Fail-stop schedule: `(node, round)` crashes `node` once the network
    /// has consumed at least `round` total rounds.
    pub crashes: Vec<(NodeId, u64)>,
    /// Seed of the deterministic fault stream.
    pub seed: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            drop_rate: 0.0,
            corrupt_rate: 0.0,
            duplicate_rate: 0.0,
            link_drop: Vec::new(),
            crashes: Vec::new(),
            seed: 0,
        }
    }
}

impl FaultPlan {
    /// `true` when the plan injects nothing: the network then keeps the
    /// exact unfaulted code path (byte-identical round accounting).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.drop_rate == 0.0
            && self.corrupt_rate == 0.0
            && self.duplicate_rate == 0.0
            && self.link_drop.is_empty()
            && self.crashes.is_empty()
    }

    /// Derives a plan with the same rates but a fresh seed, for retry
    /// attempts that must not deterministically re-hit the same faults.
    #[must_use]
    pub fn reseeded(&self, salt: u64) -> FaultPlan {
        let mut plan = self.clone();
        plan.seed = splitmix64(self.seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        plan
    }

    /// Parses the CLI fault spec: comma-separated `key=value` items with
    /// keys `drop`, `corrupt`, `dup` (rates in `[0, 1]`), `seed` (u64),
    /// `crash=NODE@ROUND` (repeatable), and `link=SRC>DST:RATE`
    /// (repeatable drop-rate override).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending item, its
    /// 1-based position in the comma-separated list, and its byte offset
    /// in the spec, e.g. `fault item 2 ("crash=3") at byte 10: crash spec
    /// "3" is not NODE@ROUND`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        let mut offset = 0usize;
        for (idx, raw) in spec.split(',').enumerate() {
            let item_offset = offset + (raw.len() - raw.trim_start().len());
            offset += raw.len() + 1;
            let item = raw.trim();
            if item.is_empty() {
                continue;
            }
            let at = |what: String| {
                format!(
                    "fault item {} ({item:?}) at byte {item_offset}: {what}",
                    idx + 1
                )
            };
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| at(format!("{item:?} is not key=value")))?;
            let (key, value) = (key.trim(), value.trim());
            let rate = |v: &str| -> Result<f64, String> {
                let r: f64 = v
                    .parse()
                    .map_err(|_| at(format!("fault rate {v:?} is not a number")))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(at(format!("fault rate {v} is outside [0, 1]")));
                }
                Ok(r)
            };
            match key {
                "drop" => plan.drop_rate = rate(value)?,
                "corrupt" => plan.corrupt_rate = rate(value)?,
                "dup" => plan.duplicate_rate = rate(value)?,
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| at(format!("fault seed {value:?} is not a u64")))?;
                }
                "crash" => {
                    let (node, round) = value
                        .split_once('@')
                        .ok_or_else(|| at(format!("crash spec {value:?} is not NODE@ROUND")))?;
                    let node: usize = node
                        .parse()
                        .map_err(|_| at(format!("crash node {node:?} is not an index")))?;
                    let round: u64 = round
                        .parse()
                        .map_err(|_| at(format!("crash round {round:?} is not a u64")))?;
                    plan.crashes.push((NodeId::new(node), round));
                }
                "link" => {
                    let (pair, r) = value
                        .split_once(':')
                        .ok_or_else(|| at(format!("link spec {value:?} is not SRC>DST:RATE")))?;
                    let (src, dst) = pair
                        .split_once('>')
                        .ok_or_else(|| at(format!("link spec {value:?} is not SRC>DST:RATE")))?;
                    let src: usize = src
                        .parse()
                        .map_err(|_| at(format!("link src {src:?} is not an index")))?;
                    let dst: usize = dst
                        .parse()
                        .map_err(|_| at(format!("link dst {dst:?} is not an index")))?;
                    plan.link_drop
                        .push(((NodeId::new(src), NodeId::new(dst)), rate(r)?));
                }
                other => return Err(at(format!("unknown fault key {other:?}"))),
            }
        }
        Ok(plan)
    }

    /// The canonical spec string of this plan, in [`FaultPlan::parse`]'s
    /// grammar. Default-valued fields are omitted, so an empty plan yields
    /// the empty string; `parse(plan.to_spec())` reconstructs the plan
    /// exactly (rates print in Rust's shortest round-trip `f64` form).
    /// Benches use this to log each grid cell's exact fault configuration.
    #[must_use]
    pub fn to_spec(&self) -> String {
        let mut items: Vec<String> = Vec::new();
        if self.drop_rate != 0.0 {
            items.push(format!("drop={}", self.drop_rate));
        }
        if self.corrupt_rate != 0.0 {
            items.push(format!("corrupt={}", self.corrupt_rate));
        }
        if self.duplicate_rate != 0.0 {
            items.push(format!("dup={}", self.duplicate_rate));
        }
        for ((src, dst), rate) in &self.link_drop {
            items.push(format!("link={}>{}:{}", src.index(), dst.index(), rate));
        }
        for (node, round) in &self.crashes {
            items.push(format!("crash={}@{}", node.index(), round));
        }
        if self.seed != 0 {
            items.push(format!("seed={}", self.seed));
        }
        items.join(",")
    }
}

impl fmt::Display for FaultPlan {
    /// Formats the plan as its canonical parseable spec (see
    /// [`FaultPlan::to_spec`]); an empty plan prints as `(no faults)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() && self.seed == 0 {
            write!(f, "(no faults)")
        } else {
            write!(f, "{}", self.to_spec())
        }
    }
}

/// The fate the fault stream assigns to one transmitted message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum MsgFate {
    Deliver,
    Drop,
    Corrupt,
    Duplicate,
}

/// Live fault state of a [`crate::Clique`]: the plan plus the per-call
/// counter driving the deterministic fault stream and the crash flags.
#[derive(Clone, Debug)]
pub(crate) struct FaultState {
    pub(crate) plan: FaultPlan,
    /// Communication calls seen so far (each call advances the stream).
    calls: u64,
    crashed: Vec<bool>,
    any_crashed: bool,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, n: usize) -> Self {
        FaultState {
            plan,
            calls: 0,
            crashed: vec![false; n],
            any_crashed: false,
        }
    }

    /// Advances the per-call stream counter. Called once at the start of
    /// every communication call (including the envelope's internal waves).
    pub(crate) fn begin_call(&mut self) {
        self.calls += 1;
    }

    /// Marks nodes whose crash round has been reached; returns how many
    /// crashed just now (each is recorded as one `crash` fault).
    pub(crate) fn update_crashes(&mut self, rounds_so_far: u64) -> u64 {
        let mut newly = 0;
        for &(node, round) in &self.plan.crashes {
            if rounds_so_far >= round {
                let slot = &mut self.crashed[node.index()];
                if !*slot {
                    *slot = true;
                    self.any_crashed = true;
                    newly += 1;
                }
            }
        }
        newly
    }

    pub(crate) fn is_crashed(&self, node: NodeId) -> bool {
        self.any_crashed && self.crashed[node.index()]
    }

    /// The deterministic fate of message `idx` of the current call on the
    /// ordered link `src → dst`.
    pub(crate) fn fate(&self, idx: u64, src: NodeId, dst: NodeId) -> MsgFate {
        let drop_rate = self
            .plan
            .link_drop
            .iter()
            .find(|((s, d), _)| *s == src && *d == dst)
            .map_or(self.plan.drop_rate, |(_, r)| *r);
        if drop_rate > 0.0 && self.unit(idx, 0) < drop_rate {
            return MsgFate::Drop;
        }
        if self.plan.corrupt_rate > 0.0 && self.unit(idx, 1) < self.plan.corrupt_rate {
            return MsgFate::Corrupt;
        }
        if self.plan.duplicate_rate > 0.0 && self.unit(idx, 2) < self.plan.duplicate_rate {
            return MsgFate::Duplicate;
        }
        MsgFate::Deliver
    }

    /// Uniform `[0, 1)` sample for `(call, message, salt)`, independent of
    /// the simulated algorithm's RNG.
    fn unit(&self, idx: u64, salt: u64) -> f64 {
        let mut h = self.plan.seed;
        h = splitmix64(h ^ self.calls.wrapping_mul(0xff51_afd7_ed55_8ccd));
        h = splitmix64(h ^ idx.wrapping_mul(0xc4ce_b9fe_1a85_ec53));
        h = splitmix64(h ^ salt);
        (h >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Network configuration bundle: fault plan plus reliable-delivery
/// envelope, applied together to a [`crate::Clique`].
///
/// Algorithms that build their networks internally (the APSP pipelines)
/// take a `NetConfig` and call [`NetConfig::apply`] right after
/// construction; the default config applies nothing and leaves the
/// network on its exact unfaulted code path.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NetConfig {
    /// Faults to inject, if any.
    pub faults: Option<FaultPlan>,
    /// Reliable-delivery envelope to arm, if any.
    pub reliable: Option<crate::reliable::ReliableConfig>,
}

impl NetConfig {
    /// A config that injects `faults` and arms the default envelope.
    #[must_use]
    pub fn faulty(plan: FaultPlan) -> Self {
        NetConfig {
            faults: Some(plan),
            reliable: Some(crate::reliable::ReliableConfig::default()),
        }
    }

    /// `true` when applying this config changes nothing.
    #[must_use]
    pub fn is_default(&self) -> bool {
        self.faults.as_ref().is_none_or(FaultPlan::is_empty) && self.reliable.is_none()
    }

    /// Applies the config to a freshly built network.
    pub fn apply(&self, net: &mut crate::Clique) {
        if let Some(plan) = &self.faults {
            net.set_fault_plan(plan.clone());
        }
        if let Some(cfg) = self.reliable {
            net.set_reliable_delivery(cfg);
        }
    }

    /// Derives the config for retry attempt `salt`: same rates and
    /// envelope, fresh fault seed (see [`FaultPlan::reseeded`]).
    #[must_use]
    pub fn reseeded(&self, salt: u64) -> NetConfig {
        NetConfig {
            faults: self.faults.as_ref().map(|p| p.reseeded(salt)),
            reliable: self.reliable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::default().is_empty());
        let plan = FaultPlan {
            drop_rate: 0.1,
            ..FaultPlan::default()
        };
        assert!(!plan.is_empty());
        // A seed alone injects nothing.
        let seeded = FaultPlan {
            seed: 42,
            ..FaultPlan::default()
        };
        assert!(seeded.is_empty());
    }

    #[test]
    fn parse_round_trips_every_key() {
        let plan =
            FaultPlan::parse("drop=0.05,corrupt=0.01,dup=0.02,seed=9,crash=3@100,link=0>1:0.5")
                .unwrap();
        assert_eq!(plan.drop_rate, 0.05);
        assert_eq!(plan.corrupt_rate, 0.01);
        assert_eq!(plan.duplicate_rate, 0.02);
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.crashes, vec![(NodeId::new(3), 100)]);
        assert_eq!(
            plan.link_drop,
            vec![((NodeId::new(0), NodeId::new(1)), 0.5)]
        );
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(FaultPlan::parse("drop").is_err());
        assert!(FaultPlan::parse("drop=1.5").is_err());
        assert!(FaultPlan::parse("drop=-0.1").is_err());
        assert!(FaultPlan::parse("warp=0.1").is_err());
        assert!(FaultPlan::parse("crash=3").is_err());
        assert!(FaultPlan::parse("link=0:0.5").is_err());
        assert!(FaultPlan::parse("seed=abc").is_err());
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn to_spec_round_trips_through_parse() {
        let spec = "drop=0.05,corrupt=0.01,dup=0.02,link=0>1:0.5,crash=3@100,seed=9";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.to_spec(), spec, "canonical order and formatting");
        assert_eq!(FaultPlan::parse(&plan.to_spec()).unwrap(), plan);
        // Empty plan: empty spec, parses back to the default.
        assert_eq!(FaultPlan::default().to_spec(), "");
        assert_eq!(
            FaultPlan::parse(&FaultPlan::default().to_spec()).unwrap(),
            FaultPlan::default()
        );
        // A bare seed still round-trips even though the plan is "empty".
        let seeded = FaultPlan {
            seed: 42,
            ..FaultPlan::default()
        };
        assert_eq!(seeded.to_spec(), "seed=42");
        assert_eq!(FaultPlan::parse(&seeded.to_spec()).unwrap(), seeded);
    }

    #[test]
    fn display_is_the_spec_or_a_placeholder() {
        let plan = FaultPlan::parse("drop=0.1,seed=3").unwrap();
        assert_eq!(plan.to_string(), "drop=0.1,seed=3");
        assert_eq!(FaultPlan::default().to_string(), "(no faults)");
    }

    #[test]
    fn parse_errors_name_token_and_position() {
        // "drop=0.05," is 10 bytes, so the bad item starts at byte 10 and
        // is the second comma-separated item.
        let err = FaultPlan::parse("drop=0.05,crash=3").unwrap_err();
        assert!(err.contains("item 2"), "{err}");
        assert!(err.contains("byte 10"), "{err}");
        assert!(err.contains("\"crash=3\""), "{err}");
        // Leading whitespace does not shift the reported token start.
        let err = FaultPlan::parse("drop=0.05, warp=1").unwrap_err();
        assert!(err.contains("byte 11"), "{err}");
        assert!(err.contains("\"warp=1\""), "{err}");
        let err = FaultPlan::parse("drop=nope").unwrap_err();
        assert!(err.contains("item 1") && err.contains("byte 0"), "{err}");
    }

    #[test]
    fn fates_are_deterministic_and_seed_sensitive() {
        let plan = FaultPlan {
            drop_rate: 0.3,
            corrupt_rate: 0.1,
            duplicate_rate: 0.1,
            seed: 1,
            ..FaultPlan::default()
        };
        let mut a = FaultState::new(plan.clone(), 4);
        let mut b = FaultState::new(plan.clone(), 4);
        a.begin_call();
        b.begin_call();
        let fates_a: Vec<_> = (0..64)
            .map(|i| a.fate(i, NodeId::new(0), NodeId::new(1)))
            .collect();
        let fates_b: Vec<_> = (0..64)
            .map(|i| b.fate(i, NodeId::new(0), NodeId::new(1)))
            .collect();
        assert_eq!(fates_a, fates_b);
        assert!(fates_a.contains(&MsgFate::Drop));
        assert!(fates_a.contains(&MsgFate::Deliver));

        let mut c = FaultState::new(plan.reseeded(7), 4);
        c.begin_call();
        let fates_c: Vec<_> = (0..64)
            .map(|i| c.fate(i, NodeId::new(0), NodeId::new(1)))
            .collect();
        assert_ne!(fates_a, fates_c, "reseeding must change the stream");
    }

    #[test]
    fn fate_stream_advances_per_call() {
        let plan = FaultPlan {
            drop_rate: 0.5,
            seed: 3,
            ..FaultPlan::default()
        };
        let mut s = FaultState::new(plan, 4);
        s.begin_call();
        let first: Vec<_> = (0..32)
            .map(|i| s.fate(i, NodeId::new(0), NodeId::new(1)))
            .collect();
        s.begin_call();
        let second: Vec<_> = (0..32)
            .map(|i| s.fate(i, NodeId::new(0), NodeId::new(1)))
            .collect();
        assert_ne!(first, second, "each call must see fresh fault randomness");
    }

    #[test]
    fn link_override_beats_global_rate() {
        let plan = FaultPlan {
            drop_rate: 0.0,
            link_drop: vec![((NodeId::new(0), NodeId::new(1)), 1.0)],
            seed: 5,
            ..FaultPlan::default()
        };
        let mut s = FaultState::new(plan, 4);
        s.begin_call();
        for i in 0..8 {
            assert_eq!(s.fate(i, NodeId::new(0), NodeId::new(1)), MsgFate::Drop);
            assert_eq!(s.fate(i, NodeId::new(1), NodeId::new(0)), MsgFate::Deliver);
        }
    }

    #[test]
    fn crashes_trigger_at_their_round() {
        let plan = FaultPlan {
            crashes: vec![(NodeId::new(2), 10)],
            ..FaultPlan::default()
        };
        let mut s = FaultState::new(plan, 4);
        assert_eq!(s.update_crashes(9), 0);
        assert!(!s.is_crashed(NodeId::new(2)));
        assert_eq!(s.update_crashes(10), 1);
        assert!(s.is_crashed(NodeId::new(2)));
        // Only counted once.
        assert_eq!(s.update_crashes(11), 0);
    }

    #[test]
    fn fault_counts_accumulate() {
        let mut c = FaultCounts::default();
        c.record(FaultKind::Drop);
        c.record(FaultKind::Drop);
        c.record(FaultKind::Corrupt);
        c.record(FaultKind::Duplicate);
        c.record(FaultKind::Crash);
        assert_eq!(c.drops, 2);
        assert_eq!(c.total(), 5);
    }
}
