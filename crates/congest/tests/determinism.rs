//! Round-accounting determinism pins.
//!
//! The zero-allocation rewrite of [`Clique`]'s internals (dense scratch
//! buffers instead of per-call `HashMap`s, reused coloring buffers,
//! pre-sized inboxes) is a host-side optimisation only: the charged rounds
//! and every other metric are part of the *model*, and must not move by a
//! single unit. Each scenario below asserts exact equality against counts
//! recorded from the pre-refactor simulator, so any accounting drift —
//! however it is introduced — fails loudly.

use qcc_congest::{
    parse_trace, Clique, Envelope, FaultPlan, NodeId, RawBits, ReliableConfig, TraceSink,
    TraceSummary,
};

/// The full metric signature of a finished simulation.
#[derive(Debug, PartialEq, Eq)]
struct Signature {
    rounds: u64,
    messages: u64,
    bits: u64,
    max_link_bits: u64,
    max_node_out_bits: u64,
    max_node_in_bits: u64,
}

fn signature(c: &Clique) -> Signature {
    let m = c.metrics();
    let p = &m.phases()[0];
    assert_eq!(m.phases().len(), 1, "scenarios run in a single phase");
    Signature {
        rounds: m.total_rounds(),
        messages: m.total_messages(),
        bits: m.total_bits(),
        max_link_bits: p.max_link_bits,
        max_node_out_bits: p.max_node_out_bits,
        max_node_in_bits: p.max_node_in_bits,
    }
}

#[test]
fn lemma1_balanced_counts_are_pinned() {
    let n = 8;
    let mut c = Clique::with_bandwidth(n, 16).unwrap();
    let mut sends = Vec::new();
    for u in 0..n {
        for v in 0..n {
            if u != v {
                sends.push(Envelope::new(
                    NodeId::new(u),
                    NodeId::new(v),
                    RawBits::new(0, 16),
                ));
            }
        }
    }
    c.route(sends).unwrap();
    assert_eq!(
        signature(&c),
        Signature {
            rounds: 2,
            messages: 112,
            bits: 1792,
            max_link_bits: 32,
            max_node_out_bits: 112,
            max_node_in_bits: 112,
        }
    );
}

#[test]
fn lemma1_hot_pair_counts_are_pinned() {
    let n = 8;
    let mut c = Clique::with_bandwidth(n, 16).unwrap();
    let sends: Vec<_> = (0..n)
        .map(|i| Envelope::new(NodeId::new(0), NodeId::new(1), RawBits::new(i as u64, 16)))
        .collect();
    c.route(sends).unwrap();
    assert_eq!(
        signature(&c),
        Signature {
            rounds: 2,
            messages: 16,
            bits: 256,
            max_link_bits: 32,
            max_node_out_bits: 128,
            max_node_in_bits: 128,
        }
    );
}

#[test]
fn lemma1_overloaded_counts_are_pinned() {
    let n = 4;
    let mut c = Clique::with_bandwidth(n, 16).unwrap();
    let mut sends = Vec::new();
    for rep in 0..3 {
        for v in 1..n {
            sends.push(Envelope::new(
                NodeId::new(0),
                NodeId::new(v),
                RawBits::new(rep, 16),
            ));
        }
        sends.push(Envelope::new(
            NodeId::new(0),
            NodeId::new(1),
            RawBits::new(rep, 16),
        ));
    }
    c.route(sends).unwrap();
    assert_eq!(
        signature(&c),
        Signature {
            rounds: 6,
            messages: 24,
            bits: 384,
            max_link_bits: 96,
            max_node_out_bits: 192,
            max_node_in_bits: 96,
        }
    );
}

#[test]
fn lemma1_mixed_sizes_counts_are_pinned() {
    // payloads up to 60 bits on 16-bit links fragment into 1..=4 units each
    let n = 6;
    let mut c = Clique::with_bandwidth(n, 16).unwrap();
    let mut sends = Vec::new();
    for u in 0..n {
        for v in 0..n {
            if u != v {
                let bits = 8 + 13 * ((u * n + v) % 5) as u64;
                sends.push(Envelope::new(
                    NodeId::new(u),
                    NodeId::new(v),
                    RawBits::new(u as u64, bits),
                ));
            }
        }
    }
    c.route(sends).unwrap();
    assert_eq!(
        signature(&c),
        Signature {
            rounds: 6,
            messages: 156,
            bits: 2040,
            max_link_bits: 96,
            max_node_out_bits: 224,
            max_node_in_bits: 224,
        }
    );
}

#[test]
fn gossip_small_counts_are_pinned() {
    let mut c = Clique::new(3).unwrap();
    let items = vec![vec![10u64], vec![20u64, 21u64], vec![]];
    c.gossip(items).unwrap();
    assert_eq!(
        signature(&c),
        Signature {
            rounds: 4,
            messages: 6,
            bits: 384,
            max_link_bits: 128,
            max_node_out_bits: 256,
            max_node_in_bits: 192,
        }
    );
}

#[test]
fn gossip_uneven_counts_are_pinned() {
    let mut c = Clique::new(5).unwrap();
    let items: Vec<Vec<u64>> = (0..5).map(|i| (0..i as u64 * 3).collect()).collect();
    c.gossip(items).unwrap();
    assert_eq!(
        signature(&c),
        Signature {
            rounds: 16,
            messages: 20,
            bits: 7680,
            max_link_bits: 768,
            max_node_out_bits: 3072,
            max_node_in_bits: 1920,
        }
    );
}

#[test]
fn exchange_fragmented_counts_are_pinned() {
    let mut c = Clique::with_bandwidth(2, 10).unwrap();
    c.exchange(vec![Envelope::new(
        NodeId::new(0),
        NodeId::new(1),
        RawBits::new(0, 35),
    )])
    .unwrap();
    assert_eq!(
        signature(&c),
        Signature {
            rounds: 4,
            messages: 1,
            bits: 35,
            max_link_bits: 35,
            max_node_out_bits: 35,
            max_node_in_bits: 35,
        }
    );
}

#[test]
fn broadcast_fragmented_counts_are_pinned() {
    let mut c = Clique::with_bandwidth(6, 8).unwrap();
    c.broadcast(NodeId::new(2), RawBits::new(1, 20)).unwrap();
    assert_eq!(
        signature(&c),
        Signature {
            rounds: 3,
            messages: 5,
            bits: 100,
            max_link_bits: 20,
            max_node_out_bits: 100,
            max_node_in_bits: 20,
        }
    );
}

/// Runs the pinned scenarios above once more, optionally traced and with an
/// arbitrary extra configuration step, and returns their signatures. Used to
/// prove that pure-observation features (tracing) and inert configuration
/// (an empty fault plan, an envelope with no faults to mask) never move a
/// single charged unit.
fn run_pinned_scenarios_with(
    trace: Option<&TraceSink>,
    configure: impl Fn(&mut Clique),
) -> Vec<Signature> {
    let mut signatures = Vec::new();
    let attach = |c: &mut Clique, label: &str| {
        if let Some(sink) = trace {
            c.set_trace_sink(sink.clone());
        }
        configure(c);
        c.push_span(label);
    };

    // Balanced all-to-all route (the Lemma 1 workhorse).
    let n = 8;
    let mut c = Clique::with_bandwidth(n, 16).unwrap();
    attach(&mut c, "route-balanced");
    let mut sends = Vec::new();
    for u in 0..n {
        for v in 0..n {
            if u != v {
                sends.push(Envelope::new(
                    NodeId::new(u),
                    NodeId::new(v),
                    RawBits::new(0, 16),
                ));
            }
        }
    }
    c.route(sends).unwrap();
    c.close_all_spans();
    signatures.push(signature(&c));

    // Uneven gossip.
    let mut c = Clique::new(5).unwrap();
    attach(&mut c, "gossip-uneven");
    let items: Vec<Vec<u64>> = (0..5).map(|i| (0..i as u64 * 3).collect()).collect();
    c.gossip(items).unwrap();
    c.close_all_spans();
    signatures.push(signature(&c));

    // Fragmented exchange.
    let mut c = Clique::with_bandwidth(2, 10).unwrap();
    attach(&mut c, "exchange-fragmented");
    c.exchange(vec![Envelope::new(
        NodeId::new(0),
        NodeId::new(1),
        RawBits::new(0, 35),
    )])
    .unwrap();
    c.close_all_spans();
    signatures.push(signature(&c));

    // Fragmented broadcast.
    let mut c = Clique::with_bandwidth(6, 8).unwrap();
    attach(&mut c, "broadcast-fragmented");
    c.broadcast(NodeId::new(2), RawBits::new(1, 20)).unwrap();
    c.close_all_spans();
    signatures.push(signature(&c));

    signatures
}

fn run_pinned_scenarios(trace: Option<&TraceSink>) -> Vec<Signature> {
    run_pinned_scenarios_with(trace, |_| {})
}

#[test]
fn tracing_leaves_every_charged_unit_untouched() {
    let plain = run_pinned_scenarios(None);
    let (sink, _buffer) = TraceSink::in_memory();
    let traced = run_pinned_scenarios(Some(&sink));
    assert_eq!(plain, traced, "tracing must be pure observation");
}

#[test]
fn empty_fault_plan_leaves_every_charged_unit_untouched() {
    // Arming an empty plan (and even a reliable-delivery envelope on top)
    // must keep the raw code path: every signature stays byte-identical.
    let plain = run_pinned_scenarios(None);
    let with_empty_plan = run_pinned_scenarios_with(None, |c| {
        c.set_fault_plan(FaultPlan::default());
    });
    assert_eq!(plain, with_empty_plan, "an empty fault plan must be inert");
    let with_idle_envelope = run_pinned_scenarios_with(None, |c| {
        c.set_fault_plan(FaultPlan::default());
        c.set_reliable_delivery(ReliableConfig::default());
    });
    assert_eq!(
        plain, with_idle_envelope,
        "the envelope must not engage without faults"
    );
}

#[test]
fn traces_of_pinned_scenarios_are_well_formed_and_sum_correctly() {
    let (sink, buffer) = TraceSink::in_memory();
    let signatures = run_pinned_scenarios(Some(&sink));
    let events = parse_trace(&buffer.contents()).unwrap();
    let summary = TraceSummary::from_events(&events).unwrap();
    summary.verify().unwrap();
    let expected: u64 = signatures.iter().map(|s| s.rounds).sum();
    assert_eq!(summary.total_rounds(), expected);
    // One root span per scenario, all factor 1.
    assert_eq!(summary.roots().len(), signatures.len());
}

#[test]
fn repeated_phases_reuse_scratch_without_drift() {
    // ten consecutive route phases on one Clique must each charge exactly
    // what a fresh Clique would: scratch reuse may not leak state between
    // calls.
    let n = 8;
    let mut warm = Clique::with_bandwidth(n, 16).unwrap();
    for trial in 0..10 {
        let sends: Vec<_> = (0..n)
            .map(|i| {
                Envelope::new(
                    NodeId::new(i),
                    NodeId::new((i + 1 + trial) % n),
                    RawBits::new(i as u64, 16),
                )
            })
            .collect();
        let mut fresh = Clique::with_bandwidth(n, 16).unwrap();
        fresh.route(sends.clone()).unwrap();
        let before = warm.rounds();
        warm.route(sends).unwrap();
        assert_eq!(warm.rounds() - before, fresh.rounds(), "trial {trial}");
    }
}
