//! Property-based tests for the transport abstraction: the clique
//! transport must be byte-identical to the direct network path, coded
//! gossip must deliver exactly or fail typed under any seeded fault
//! plan, and fault specs must round-trip through their canonical form.

use proptest::collection::vec;
use proptest::prelude::*;
use qcc_congest::{
    Clique, CliqueTransport, CongestError, Envelope, FaultPlan, GossipTransport, NodeId, RawBits,
    Topology, TopologySpec, Transport,
};

/// Builds one of the seeded topology families from two free parameters.
fn pick_topology(which: u8, n: usize, degree: usize, seed: u64) -> Topology {
    match which % 4 {
        0 => TopologySpec::Clique.build(n, seed),
        1 => TopologySpec::Ring.build(n, seed),
        2 => TopologySpec::Mesh {
            degree: degree.clamp(2, n.saturating_sub(1).max(2)),
        }
        .build(n, seed),
        _ => TopologySpec::Torus.build(n, seed),
    }
}

proptest! {
    /// The canonical spec of any fault plan parses back to the same plan:
    /// `parse(plan.to_spec()) == plan` (Rust float formatting is
    /// shortest-round-trip, so the rates survive exactly).
    #[test]
    fn fault_spec_round_trips(
        drop in 0.0f64..1.0,
        corrupt in 0.0f64..1.0,
        dup in 0.0f64..1.0,
        links in vec((0usize..8, 0usize..8, 0.0f64..1.0), 0..4),
        crashes in vec((0usize..8, 0u64..1000), 0..3),
        seed in 0u64..10_000,
    ) {
        let plan = FaultPlan {
            drop_rate: drop,
            corrupt_rate: corrupt,
            duplicate_rate: dup,
            link_drop: links
                .into_iter()
                .map(|(s, d, r)| ((NodeId::new(s), NodeId::new(d)), r))
                .collect(),
            crashes: crashes
                .into_iter()
                .map(|(node, round)| (NodeId::new(node), round))
                .collect(),
            seed,
        };
        let spec = plan.to_spec();
        let reparsed = FaultPlan::parse(&spec)
            .unwrap_or_else(|e| panic!("canonical spec {spec:?} failed to parse: {e}"));
        prop_assert_eq!(reparsed, plan);
    }

    /// The clique transport is the network: exchanging through the
    /// `Transport` trait object charges byte-identical rounds, messages,
    /// and bits to calling [`Clique::exchange`] directly, and delivers
    /// byte-identical inboxes. This is the determinism pin that lets the
    /// rest of the codebase be parameterized over transports for free.
    #[test]
    fn clique_through_trait_is_byte_identical(
        n in 2usize..8,
        raw in vec((0usize..8, 0usize..8, 0u64..1000, 1u64..64), 0..40),
    ) {
        let sends: Vec<Envelope<RawBits>> = raw
            .into_iter()
            .map(|(u, v, word, bits)| {
                Envelope::new(NodeId::new(u % n), NodeId::new(v % n), RawBits::new(word, bits))
            })
            .collect();

        let mut direct = Clique::new(n).unwrap();
        direct.begin_phase("leg");
        let baseline = direct.exchange(sends.clone()).unwrap();

        let mut boxed: Box<dyn Transport> = Box::new(CliqueTransport::new(n).unwrap());
        boxed.begin_phase("leg");
        let inboxes = boxed.exchange_bits(sends).unwrap();

        prop_assert_eq!(boxed.rounds(), direct.rounds());
        prop_assert_eq!(boxed.metrics().total_messages(), direct.metrics().total_messages());
        prop_assert_eq!(boxed.metrics().total_bits(), direct.metrics().total_bits());
        for node in NodeId::all(n) {
            prop_assert_eq!(inboxes.of(node), baseline.of(node));
        }
    }

    /// Coded gossip under ANY seeded fault plan on ANY connected seeded
    /// topology either hands every node the exact source block or fails
    /// with a typed transport error — never a silently wrong or partial
    /// delivery.
    #[test]
    fn gossip_broadcast_is_exact_or_typed(
        which in 0u8..4,
        n in 3usize..8,
        degree in 2usize..5,
        topo_seed in 0u64..100,
        block in vec(0u8..=255, 1..40),
        src in 0usize..8,
        chunks in 1usize..6,
        drop in 0.0f64..0.5,
        corrupt in 0.0f64..0.3,
        dup in 0.0f64..0.3,
        crash_arm in 0u8..2,
        crash_round in 0u64..30,
        fault_seed in 0u64..500,
    ) {
        let topo = pick_topology(which, n, degree, topo_seed);
        let src = src % n;
        let mut t = GossipTransport::new(topo, topo_seed ^ 0x9e37)
            .unwrap()
            .with_chunks(chunks);
        t.set_fault_plan(FaultPlan {
            drop_rate: drop,
            corrupt_rate: corrupt,
            duplicate_rate: dup,
            crashes: if crash_arm == 1 {
                vec![(NodeId::new((src + 1) % n), crash_round)]
            } else {
                Vec::new()
            },
            seed: fault_seed,
            ..FaultPlan::default()
        });
        match t.broadcast_block(NodeId::new(src), &block) {
            Ok(views) => {
                prop_assert_eq!(views.len(), n);
                for view in &views {
                    prop_assert_eq!(view, &block);
                }
            }
            Err(
                CongestError::DeliveryFailed { .. }
                | CongestError::DecodeFailed { .. }
                | CongestError::NodeCrashed { .. },
            ) => {}
            Err(other) => prop_assert!(false, "untyped gossip failure: {other}"),
        }
    }
}
