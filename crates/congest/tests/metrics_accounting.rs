//! Metrics accounting pins: hand-computed values for the flat phase view,
//! the hierarchical span tree, and the per-call round histograms.
//!
//! The determinism suite pins the *network* charges; this suite pins how
//! those charges are *attributed* — the implicit `"(unlabelled)"` phase,
//! the per-phase max statistics of `route`/`broadcast`, and the span-tree
//! invariant that a child's rounds never exceed its parent's.

use qcc_congest::{Clique, Envelope, Metrics, NodeId, RawBits, Span};

/// Hand-computed: 8 nodes, 16-bit links, every ordered pair sends one
/// 16-bit payload. Each link carries 2×16 = 32 bits over the 2 Lemma-1
/// rounds; each node sends/receives 7 messages of 16 bits = 112 bits.
fn balanced_route(net: &mut Clique) {
    let n = 8;
    let mut sends = Vec::new();
    for u in 0..n {
        for v in 0..n {
            if u != v {
                sends.push(Envelope::new(
                    NodeId::new(u),
                    NodeId::new(v),
                    RawBits::new(0, 16),
                ));
            }
        }
    }
    net.route(sends).unwrap();
}

#[test]
fn comm_before_any_phase_lands_in_the_implicit_phase() {
    let mut net = Clique::with_bandwidth(8, 16).unwrap();
    balanced_route(&mut net);
    let m = net.metrics();
    assert_eq!(m.phases().len(), 1);
    assert_eq!(m.phases()[0].label, "(unlabelled)");
    assert_eq!(m.phases()[0].rounds, 2);
    assert_eq!(m.phases()[0].rounds, m.total_rounds());
    // The implicit phase also exists as a root leaf span.
    assert_eq!(m.spans().len(), 1);
    assert_eq!(m.spans()[0].label, "(unlabelled)");
    assert_eq!(m.spans()[0].parent, None);
    assert_eq!(m.spans()[0].totals.rounds, 2);
    assert_eq!(m.spans()[0].totals.calls, 1);
}

#[test]
fn route_phase_max_stats_match_hand_computation() {
    let mut net = Clique::with_bandwidth(8, 16).unwrap();
    net.begin_phase("balanced");
    balanced_route(&mut net);
    let p = &net.metrics().phases()[0];
    assert_eq!(p.label, "balanced");
    assert_eq!(p.rounds, 2);
    // Lemma 1 relays through intermediaries, so each payload is counted on
    // both hops: 2 × 8 × 7 = 112 messages of 16 bits.
    assert_eq!(p.messages, 112);
    assert_eq!(p.bits, 112 * 16);
    assert_eq!(p.max_link_bits, 32); // direct + relayed half-share per link
    assert_eq!(p.max_node_out_bits, 7 * 16);
    assert_eq!(p.max_node_in_bits, 7 * 16);
}

#[test]
fn broadcast_phase_max_stats_match_hand_computation() {
    // 6 nodes, 8-bit links, one 20-bit payload from node 2 to the other 5:
    // ⌈20/8⌉ = 3 rounds, per-link 20 bits, sender pushes 5×20 = 100 bits.
    let mut net = Clique::with_bandwidth(6, 8).unwrap();
    net.begin_phase("bcast");
    net.broadcast(NodeId::new(2), RawBits::new(1, 20)).unwrap();
    let p = &net.metrics().phases()[0];
    assert_eq!(p.rounds, 3);
    assert_eq!(p.messages, 5);
    assert_eq!(p.bits, 100);
    assert_eq!(p.max_link_bits, 20);
    assert_eq!(p.max_node_out_bits, 100);
    assert_eq!(p.max_node_in_bits, 20);
}

#[test]
fn flat_phase_rounds_always_sum_to_the_total() {
    let mut net = Clique::with_bandwidth(8, 16).unwrap();
    net.push_span("outer");
    net.begin_phase("first");
    balanced_route(&mut net);
    net.push_span("inner");
    net.begin_phase("second");
    balanced_route(&mut net);
    balanced_route(&mut net);
    net.close_all_spans();
    let m = net.metrics();
    let phase_sum: u64 = m.phases().iter().map(|p| p.rounds).sum();
    assert_eq!(phase_sum, m.total_rounds());
    assert_eq!(m.total_rounds(), 6);
}

fn assert_children_bounded(spans: &[Span]) {
    for (idx, span) in spans.iter().enumerate() {
        let child_sum: u64 = span
            .children
            .iter()
            .map(|&c| {
                assert_eq!(spans[c].parent, Some(idx), "child/parent links agree");
                spans[c].totals.rounds
            })
            .sum();
        assert!(
            child_sum <= span.totals.rounds,
            "span {:?}: children sum to {child_sum} > own {}",
            span.label,
            span.totals.rounds
        );
    }
}

#[test]
fn span_tree_children_never_exceed_their_parent() {
    let mut net = Clique::with_bandwidth(8, 16).unwrap();
    net.push_span("apsp");
    for product in 0..2 {
        net.push_span(&format!("product-{product}"));
        net.begin_phase("gather");
        balanced_route(&mut net);
        net.begin_phase("search");
        balanced_route(&mut net);
        net.pop_span();
    }
    // Rounds charged to "apsp" directly, outside any product.
    net.charge_rounds(5);
    net.close_all_spans();
    let m = net.metrics();
    assert_children_bounded(m.spans());
    // Hand-computed: root holds 2 products × 2 phases × 2 rounds + 5.
    let root = &m.spans()[0];
    assert_eq!(root.label, "apsp");
    assert_eq!(root.totals.rounds, 13);
    let product_rounds: Vec<u64> = root
        .children
        .iter()
        .map(|&c| m.spans()[c].totals.rounds)
        .collect();
    assert_eq!(product_rounds, vec![4, 4]);
}

#[test]
fn histograms_count_every_call_once_per_open_span() {
    let mut net = Clique::with_bandwidth(8, 16).unwrap();
    net.push_span("run");
    net.begin_phase("work");
    balanced_route(&mut net); // 2 rounds → bucket for 2..=3
    net.charge_rounds(1); // 1 round → bucket for exactly 1
    net.charge_rounds(0); // free call → bucket 0
    net.close_all_spans();
    let m = net.metrics();
    assert_eq!(m.histogram().compact(), "0:1 1:1 2:1");
    assert_eq!(m.histogram().total_calls(), 3);
    // Both the group span and the leaf saw all three calls.
    assert_eq!(m.spans()[0].histogram.total_calls(), 3);
    assert_eq!(m.spans()[1].histogram.total_calls(), 3);
}

#[test]
fn metrics_reset_clears_spans_and_histograms() {
    let mut net = Clique::with_bandwidth(8, 16).unwrap();
    net.push_span("before");
    balanced_route(&mut net);
    net.reset_metrics();
    let m = net.metrics();
    assert_eq!(m.total_rounds(), 0);
    assert!(m.spans().is_empty());
    assert_eq!(m.histogram().total_calls(), 0);
    // A fresh accounting epoch works as usual afterwards.
    net.begin_phase("after");
    balanced_route(&mut net);
    assert_eq!(net.metrics().total_rounds(), 2);
}

#[test]
fn standalone_metrics_follow_the_same_rules() {
    let mut m = Metrics::new();
    m.push_span("g");
    m.record_exchange(2, 4, 64, 32, 48, 40);
    m.record_exchange(3, 1, 16, 40, 16, 16);
    m.close_all_spans();
    // The implicit phase takes componentwise maxima; the group span too.
    assert_eq!(m.phases()[0].max_link_bits, 40);
    assert_eq!(m.phases()[0].max_node_out_bits, 48);
    assert_eq!(m.spans()[0].totals.rounds, 5);
    assert_eq!(m.spans()[0].totals.max_link_bits, 40);
    assert_eq!(m.spans()[0].totals.calls, 2);
}
