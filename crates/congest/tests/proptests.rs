//! Property-based tests for the CONGEST-CLIQUE simulator.

use proptest::collection::vec;
use proptest::prelude::*;
use qcc_congest::coloring::{color_bipartite, is_proper, max_degree};
use qcc_congest::{Clique, Envelope, FaultPlan, NodeId, RawBits, ReliableConfig};

proptest! {
    /// König coloring is always proper and uses exactly Δ colors.
    #[test]
    fn coloring_is_proper_and_optimal(
        n in 1usize..12,
        raw_edges in vec((0usize..12, 0usize..12), 0..120),
    ) {
        let edges: Vec<(usize, usize)> = raw_edges
            .into_iter()
            .map(|(u, v)| (u % n, v % n))
            .collect();
        let delta = max_degree(&edges, n, n);
        let coloring = color_bipartite(&edges, n, n);
        prop_assert_eq!(coloring.num_colors, delta);
        prop_assert!(is_proper(&edges, &coloring, n, n));
    }

    /// Direct exchange delivers every message exactly once, in sender order.
    #[test]
    fn exchange_delivers_everything(
        n in 1usize..10,
        raw in vec((0usize..10, 0usize..10, 0u64..1000), 0..80),
    ) {
        let sends: Vec<Envelope<u64>> = raw
            .into_iter()
            .map(|(u, v, x)| Envelope::new(NodeId::new(u % n), NodeId::new(v % n), x))
            .collect();
        let count = sends.len();
        let mut net = Clique::new(n).unwrap();
        let inboxes = net.exchange(sends).unwrap();
        prop_assert_eq!(inboxes.message_count(), count);
    }

    /// Routed exchange delivers everything and never beats the theoretical
    /// lower bound of ⌈Δ_bits / (n · B)⌉ rounds, while never exceeding
    /// 2·⌈Δ_units / n⌉.
    #[test]
    fn route_round_bounds(
        n in 2usize..10,
        raw in vec((0usize..10, 0usize..10), 1..120),
    ) {
        let sends: Vec<Envelope<RawBits>> = raw
            .into_iter()
            .map(|(u, v)| Envelope::new(NodeId::new(u % n), NodeId::new(v % n), RawBits::new(0, 16)))
            .collect();
        let units: Vec<(usize, usize)> = sends
            .iter()
            .filter(|e| e.src != e.dst)
            .map(|e| (e.src.index(), e.dst.index()))
            .collect();
        let delta = max_degree(&units, n, n) as u64;
        let count = sends.len();
        let mut net = Clique::with_bandwidth(n, 16).unwrap();
        let inboxes = net.route(sends).unwrap();
        prop_assert_eq!(inboxes.message_count(), count);
        let expected = 2 * delta.div_ceil(n as u64);
        prop_assert_eq!(net.rounds(), expected);
    }

    /// Gossip gives every node the same global view.
    #[test]
    fn gossip_views_agree(
        n in 1usize..8,
        lists in vec(vec(0u64..100, 0..5), 1..8),
    ) {
        let mut items: Vec<Vec<u64>> = lists;
        items.resize(n, Vec::new());
        items.truncate(n);
        let mut net = Clique::new(n).unwrap();
        let views = net.gossip(items).unwrap();
        for w in views.windows(2) {
            prop_assert_eq!(&w[0], &w[1]);
        }
    }

    /// An empty fault plan (with or without an armed envelope) is
    /// byte-identical to no plan at all: same inboxes, same rounds.
    #[test]
    fn empty_fault_plan_is_inert(
        n in 1usize..8,
        raw in vec((0usize..8, 0usize..8, 0u32..1000), 0..60),
        arm_envelope in 0u8..2,
    ) {
        let sends: Vec<Envelope<u32>> = raw
            .into_iter()
            .map(|(u, v, x)| Envelope::new(NodeId::new(u % n), NodeId::new(v % n), x))
            .collect();

        let mut plain = Clique::new(n).unwrap();
        let baseline = plain.exchange(sends.clone()).unwrap();

        let mut armed = Clique::new(n).unwrap();
        armed.set_fault_plan(FaultPlan::default());
        if arm_envelope == 1 {
            armed.set_reliable_delivery(ReliableConfig::default());
        }
        let inboxes = armed.exchange(sends).unwrap();

        prop_assert_eq!(armed.rounds(), plain.rounds());
        for node in NodeId::all(n) {
            prop_assert_eq!(inboxes.of(node), baseline.of(node));
        }
    }

    /// Under pure drop faults the envelope either delivers everything
    /// exactly once or fails with a typed error — never a silent loss.
    #[test]
    fn envelope_is_all_or_error(
        n in 2usize..8,
        raw in vec((0usize..8, 0usize..8, 0u32..1000), 1..40),
        drop in 0.0f64..0.6,
        seed in 0u64..500,
    ) {
        let sends: Vec<Envelope<u32>> = raw
            .into_iter()
            .map(|(u, v, x)| Envelope::new(NodeId::new(u % n), NodeId::new(v % n), x))
            .collect();
        let count = sends.len();
        let mut net = Clique::new(n).unwrap();
        net.set_fault_plan(FaultPlan {
            drop_rate: drop,
            seed,
            ..FaultPlan::default()
        });
        net.set_reliable_delivery(ReliableConfig::default());
        match net.exchange(sends) {
            Ok(inboxes) => prop_assert_eq!(inboxes.message_count(), count),
            Err(e) => prop_assert!(e.to_string().contains("undelivered")),
        }
    }
}
