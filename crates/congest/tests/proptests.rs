//! Property-based tests for the CONGEST-CLIQUE simulator.

use proptest::collection::vec;
use proptest::prelude::*;
use qcc_congest::coloring::{color_bipartite, is_proper, max_degree};
use qcc_congest::{Clique, Envelope, FaultPlan, NodeId, RawBits, ReliableConfig};

proptest! {
    /// König coloring is always proper and uses exactly Δ colors.
    #[test]
    fn coloring_is_proper_and_optimal(
        n in 1usize..12,
        raw_edges in vec((0usize..12, 0usize..12), 0..120),
    ) {
        let edges: Vec<(usize, usize)> = raw_edges
            .into_iter()
            .map(|(u, v)| (u % n, v % n))
            .collect();
        let delta = max_degree(&edges, n, n);
        let coloring = color_bipartite(&edges, n, n);
        prop_assert_eq!(coloring.num_colors, delta);
        prop_assert!(is_proper(&edges, &coloring, n, n));
    }

    /// Direct exchange delivers every message exactly once, in sender order.
    #[test]
    fn exchange_delivers_everything(
        n in 1usize..10,
        raw in vec((0usize..10, 0usize..10, 0u64..1000), 0..80),
    ) {
        let sends: Vec<Envelope<u64>> = raw
            .into_iter()
            .map(|(u, v, x)| Envelope::new(NodeId::new(u % n), NodeId::new(v % n), x))
            .collect();
        let count = sends.len();
        let mut net = Clique::new(n).unwrap();
        let inboxes = net.exchange(sends).unwrap();
        prop_assert_eq!(inboxes.message_count(), count);
    }

    /// Routed exchange delivers everything and never beats the theoretical
    /// lower bound of ⌈Δ_bits / (n · B)⌉ rounds, while never exceeding
    /// 2·⌈Δ_units / n⌉.
    #[test]
    fn route_round_bounds(
        n in 2usize..10,
        raw in vec((0usize..10, 0usize..10), 1..120),
    ) {
        let sends: Vec<Envelope<RawBits>> = raw
            .into_iter()
            .map(|(u, v)| Envelope::new(NodeId::new(u % n), NodeId::new(v % n), RawBits::new(0, 16)))
            .collect();
        let units: Vec<(usize, usize)> = sends
            .iter()
            .filter(|e| e.src != e.dst)
            .map(|e| (e.src.index(), e.dst.index()))
            .collect();
        let delta = max_degree(&units, n, n) as u64;
        let count = sends.len();
        let mut net = Clique::with_bandwidth(n, 16).unwrap();
        let inboxes = net.route(sends).unwrap();
        prop_assert_eq!(inboxes.message_count(), count);
        let expected = 2 * delta.div_ceil(n as u64);
        prop_assert_eq!(net.rounds(), expected);
    }

    /// Gossip gives every node the same global view.
    #[test]
    fn gossip_views_agree(
        n in 1usize..8,
        lists in vec(vec(0u64..100, 0..5), 1..8),
    ) {
        let mut items: Vec<Vec<u64>> = lists;
        items.resize(n, Vec::new());
        items.truncate(n);
        let mut net = Clique::new(n).unwrap();
        let views = net.gossip(items).unwrap();
        for w in views.windows(2) {
            prop_assert_eq!(&w[0], &w[1]);
        }
    }

    /// An empty fault plan (with or without an armed envelope) is
    /// byte-identical to no plan at all: same inboxes, same rounds.
    #[test]
    fn empty_fault_plan_is_inert(
        n in 1usize..8,
        raw in vec((0usize..8, 0usize..8, 0u32..1000), 0..60),
        arm_envelope in 0u8..2,
    ) {
        let sends: Vec<Envelope<u32>> = raw
            .into_iter()
            .map(|(u, v, x)| Envelope::new(NodeId::new(u % n), NodeId::new(v % n), x))
            .collect();

        let mut plain = Clique::new(n).unwrap();
        let baseline = plain.exchange(sends.clone()).unwrap();

        let mut armed = Clique::new(n).unwrap();
        armed.set_fault_plan(FaultPlan::default());
        if arm_envelope == 1 {
            armed.set_reliable_delivery(ReliableConfig::default());
        }
        let inboxes = armed.exchange(sends).unwrap();

        prop_assert_eq!(armed.rounds(), plain.rounds());
        for node in NodeId::all(n) {
            prop_assert_eq!(inboxes.of(node), baseline.of(node));
        }
    }

    /// The arena counting-placement delivery engine is byte-identical to
    /// the legacy staged-and-sorted reference path: same per-node inboxes
    /// (payloads *and* order), same charged rounds, same message/bit
    /// totals, same fault tallies — across exchange and route, with and
    /// without a non-empty fault plan (drops, corruptions, duplications,
    /// and a crash).
    #[test]
    fn arena_and_legacy_delivery_are_byte_identical(
        n in 2usize..8,
        raw in vec((0usize..8, 0usize..8, 0u32..1000), 0..60),
        use_route in 0u8..2,
        faulty in 0u8..2,
        drop in 0.0f64..0.4,
        dup in 0.0f64..0.4,
        corrupt in 0.0f64..0.3,
        seed in 0u64..500,
    ) {
        let sends: Vec<Envelope<u32>> = raw
            .into_iter()
            .map(|(u, v, x)| Envelope::new(NodeId::new(u % n), NodeId::new(v % n), x))
            .collect();
        let plan = FaultPlan {
            drop_rate: drop,
            corrupt_rate: corrupt,
            duplicate_rate: dup,
            crashes: vec![(NodeId::new(n - 1), 2)],
            seed,
            ..FaultPlan::default()
        };
        let run = |legacy: bool| {
            let mut net = Clique::new(n).unwrap();
            net.set_legacy_delivery(legacy);
            if faulty == 1 {
                net.set_fault_plan(plan.clone());
            }
            // Two phases: the second reuses warm scratch and advances the
            // fate stream, so submission-order bookkeeping is exercised.
            let first = if use_route == 1 {
                net.route(sends.clone()).unwrap()
            } else {
                net.exchange(sends.clone()).unwrap()
            };
            let second = net.exchange(sends.clone()).unwrap();
            let totals = (
                net.rounds(),
                net.metrics().total_messages(),
                net.metrics().total_bits(),
                *net.fault_counts(),
            );
            (first, second, totals)
        };
        let (arena1, arena2, arena_totals) = run(false);
        let (legacy1, legacy2, legacy_totals) = run(true);
        prop_assert_eq!(arena_totals, legacy_totals);
        for node in NodeId::all(n) {
            prop_assert_eq!(arena1.of(node), legacy1.of(node));
            prop_assert_eq!(arena2.of(node), legacy2.of(node));
        }
    }

    /// Charging an exchange from a link tally ([`Clique::charge_exchange_tally`])
    /// records exactly what materializing the same fixed-width traffic
    /// through [`Clique::exchange`] records: rounds, message count, bit
    /// total, and phase maxima.
    #[test]
    fn charge_only_exchange_matches_materialized(
        n in 2usize..8,
        raw in vec((0usize..8, 0usize..8), 0..60),
        bits_per_msg in 1u64..200,
    ) {
        let sends: Vec<Envelope<RawBits>> = raw
            .iter()
            .map(|&(u, v)| {
                Envelope::new(NodeId::new(u % n), NodeId::new(v % n), RawBits::new(0, bits_per_msg))
            })
            .collect();
        let mut tally = vec![0u32; n * n];
        for e in &sends {
            tally[e.src.index() * n + e.dst.index()] += 1;
        }

        let mut materialized = Clique::new(n).unwrap();
        materialized.begin_phase("leg");
        materialized.exchange(sends).unwrap();

        let mut charged = Clique::new(n).unwrap();
        charged.begin_phase("leg");
        charged.charge_exchange_tally(&tally, bits_per_msg, "exchange");

        prop_assert_eq!(charged.rounds(), materialized.rounds());
        prop_assert_eq!(charged.metrics().total_messages(), materialized.metrics().total_messages());
        prop_assert_eq!(charged.metrics().total_bits(), materialized.metrics().total_bits());
        let (c, m) = (&charged.metrics().phases()[0], &materialized.metrics().phases()[0]);
        prop_assert_eq!(c.max_link_bits, m.max_link_bits);
        prop_assert_eq!(c.max_node_out_bits, m.max_node_out_bits);
        prop_assert_eq!(c.max_node_in_bits, m.max_node_in_bits);
    }

    /// Under pure drop faults the envelope either delivers everything
    /// exactly once or fails with a typed error — never a silent loss.
    #[test]
    fn envelope_is_all_or_error(
        n in 2usize..8,
        raw in vec((0usize..8, 0usize..8, 0u32..1000), 1..40),
        drop in 0.0f64..0.6,
        seed in 0u64..500,
    ) {
        let sends: Vec<Envelope<u32>> = raw
            .into_iter()
            .map(|(u, v, x)| Envelope::new(NodeId::new(u % n), NodeId::new(v % n), x))
            .collect();
        let count = sends.len();
        let mut net = Clique::new(n).unwrap();
        net.set_fault_plan(FaultPlan {
            drop_rate: drop,
            seed,
            ..FaultPlan::default()
        });
        net.set_reliable_delivery(ReliableConfig::default());
        match net.exchange(sends) {
            Ok(inboxes) => prop_assert_eq!(inboxes.message_count(), count),
            Err(e) => prop_assert!(e.to_string().contains("undelivered")),
        }
    }
}
