//! Stress tests for the routing layer: mixed payload sizes, adversarial
//! demand patterns, and cross-primitive consistency.

use qcc_congest::{Clique, Envelope, NodeId, RawBits};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn net(n: usize, bits: u64) -> Clique {
    Clique::with_bandwidth(n, bits).expect("n > 0")
}

#[test]
fn mixed_fragment_sizes_deliver_and_respect_the_degree_bound() {
    let n = 16;
    let b = 32;
    let mut rng = StdRng::seed_from_u64(4001);
    for trial in 0..10 {
        let count = rng.gen_range(1..200);
        let sends: Vec<Envelope<RawBits>> = (0..count)
            .map(|i| {
                Envelope::new(
                    NodeId::new(rng.gen_range(0..n)),
                    NodeId::new(rng.gen_range(0..n)),
                    RawBits::new(i as u64, rng.gen_range(1..200)),
                )
            })
            .collect();
        // compute the unit-degree bound by hand
        let mut out = vec![0u64; n];
        let mut inn = vec![0u64; n];
        for e in &sends {
            if e.src != e.dst {
                let units = e.payload.bits.div_ceil(b).max(1);
                out[e.src.index()] += units;
                inn[e.dst.index()] += units;
            }
        }
        let delta = out.iter().chain(inn.iter()).copied().max().unwrap_or(0);
        let mut network = net(n, b);
        let boxes = network.route(sends.clone()).unwrap();
        assert_eq!(boxes.message_count(), sends.len(), "trial {trial}");
        assert_eq!(
            network.rounds(),
            2 * delta.div_ceil(n as u64),
            "trial {trial}"
        );
    }
}

#[test]
fn many_to_one_and_one_to_many_are_symmetric_for_lemma1() {
    let n = 12;
    let b = 16;
    // gather: everyone -> node 0
    let gather: Vec<Envelope<RawBits>> = (1..n)
        .map(|u| Envelope::new(NodeId::new(u), NodeId::new(0), RawBits::new(0, 16)))
        .collect();
    // scatter: node 0 -> everyone
    let scatter: Vec<Envelope<RawBits>> = (1..n)
        .map(|v| Envelope::new(NodeId::new(0), NodeId::new(v), RawBits::new(0, 16)))
        .collect();
    let mut g = net(n, b);
    g.route(gather).unwrap();
    let mut s = net(n, b);
    s.route(scatter).unwrap();
    assert_eq!(
        g.rounds(),
        s.rounds(),
        "gather and scatter have equal degree"
    );
    assert_eq!(g.rounds(), 2);
}

#[test]
fn permutation_composition_round_counts_add() {
    let n = 10;
    let mut network = net(n, 16);
    for shift in 1..4 {
        let sends: Vec<Envelope<RawBits>> = (0..n)
            .map(|u| {
                Envelope::new(
                    NodeId::new(u),
                    NodeId::new((u + shift) % n),
                    RawBits::new(0, 16),
                )
            })
            .collect();
        network.route(sends).unwrap();
    }
    // three permutations, 2 rounds each
    assert_eq!(network.rounds(), 6);
}

#[test]
fn broadcast_equals_explicit_fanout() {
    let n = 9;
    let payload = RawBits::new(5, 40);
    let mut via_broadcast = net(n, 16);
    via_broadcast
        .broadcast(NodeId::new(2), payload.clone())
        .unwrap();
    let mut via_exchange = net(n, 16);
    let sends: Vec<Envelope<RawBits>> = (0..n)
        .filter(|&v| v != 2)
        .map(|v| Envelope::new(NodeId::new(2), NodeId::new(v), payload.clone()))
        .collect();
    via_exchange.exchange(sends).unwrap();
    assert_eq!(via_broadcast.rounds(), via_exchange.rounds());
    assert_eq!(via_broadcast.rounds(), 3); // ceil(40/16)
}

#[test]
fn gossip_cost_tracks_the_largest_list() {
    let n = 6;
    let b = 16;
    let mut network = net(n, b);
    let mut items: Vec<Vec<RawBits>> = vec![Vec::new(); n];
    items[3] = (0..5).map(|i| RawBits::new(i, 16)).collect(); // 80 bits
    items[1] = vec![RawBits::new(9, 16)];
    network.gossip(items).unwrap();
    assert_eq!(network.rounds(), 5); // ceil(80/16): the largest list dominates
}

#[test]
fn self_messages_are_free_under_routing_too() {
    let n = 5;
    let mut network = net(n, 16);
    let sends: Vec<Envelope<RawBits>> = (0..n)
        .map(|u| Envelope::new(NodeId::new(u), NodeId::new(u), RawBits::new(0, 16)))
        .collect();
    let boxes = network.route(sends).unwrap();
    assert_eq!(network.rounds(), 0);
    assert_eq!(boxes.message_count(), n);
}

#[test]
fn inbox_ordering_is_deterministic_under_routing() {
    let n = 8;
    let mut sends = Vec::new();
    for u in (0..n).rev() {
        if u != 3 {
            sends.push(Envelope::new(NodeId::new(u), NodeId::new(3), u as u64));
        }
    }
    let mut a = net(n, 64);
    let boxes_a = a.route(sends.clone()).unwrap();
    let mut b = net(n, 64);
    let boxes_b = b.route(sends).unwrap();
    assert_eq!(boxes_a.of(NodeId::new(3)), boxes_b.of(NodeId::new(3)));
    let senders: Vec<usize> = boxes_a
        .of(NodeId::new(3))
        .iter()
        .map(|(s, _)| s.index())
        .collect();
    let mut sorted = senders.clone();
    sorted.sort_unstable();
    assert_eq!(senders, sorted, "inboxes sort by sender");
}

#[test]
fn agree_any_composes_with_routing_phases() {
    let n = 10;
    let mut network = net(n, 16);
    network.begin_phase("work");
    let sends: Vec<Envelope<RawBits>> = (1..n)
        .map(|u| Envelope::new(NodeId::new(u), NodeId::new(0), RawBits::new(0, 16)))
        .collect();
    network.route(sends).unwrap();
    network.begin_phase("consensus");
    let mut flags = vec![false; n];
    flags[7] = true;
    assert!(network.agree_any(&flags).unwrap());
    assert!(network.metrics().rounds_with_prefix("consensus") >= 2);
    assert!(network.metrics().rounds_with_prefix("work") >= 2);
}
