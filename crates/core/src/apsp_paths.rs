//! Shortest-path *reconstruction* over the distributed pipeline
//! (footnote 1 of the paper).
//!
//! The distributed distance product is witness-free, so we apply the
//! standard weight-scaling trick ([`qcc_graph::scale_for_witness`]): run
//! the same Proposition-2 binary search on matrices whose entries are
//! `(n+1)`-scaled with the inner index folded into the remainder. Weight
//! magnitudes grow by a factor `n + 1`, which adds one `log n` to the
//! `O(log M)` call count — the "polylogarithmic factor" the footnote
//! pays — and every other part of the pipeline is reused unchanged.

use crate::distance_product::distributed_distance_product_traced;
use crate::params::Params;
use crate::step3::SearchBackend;
use crate::ApspError;
use qcc_congest::TraceSink;
use qcc_graph::{
    decode_witness, scale_for_witness, DiGraph, ExtWeight, PathOracle, WeightMatrix,
    WitnessedProduct,
};
use rand::Rng;

/// Result of a witnessed distributed distance product.
#[derive(Clone, Debug)]
pub struct WitnessedProductReport {
    /// Product and witnesses.
    pub witnessed: WitnessedProduct,
    /// Rounds on the physical network (simulation factor applied).
    pub rounds: u64,
    /// `FindEdges` invocations (≈ one `log n` more than the plain product).
    pub find_edges_calls: u32,
}

/// Computes `A ⋆ B` *with witnesses* through the distributed pipeline.
///
/// # Errors
///
/// Same as [`distributed_distance_product`].
pub fn distributed_witnessed_product<R: Rng>(
    a: &WeightMatrix,
    b: &WeightMatrix,
    params: Params,
    backend: SearchBackend,
    rng: &mut R,
) -> Result<WitnessedProductReport, ApspError> {
    distributed_witnessed_product_traced(a, b, params, backend, rng, None)
}

/// [`distributed_witnessed_product`] with an optional NDJSON trace sink
/// (see [`distributed_distance_product_traced`]).
///
/// # Errors
///
/// Same as [`distributed_witnessed_product`].
pub fn distributed_witnessed_product_traced<R: Rng>(
    a: &WeightMatrix,
    b: &WeightMatrix,
    params: Params,
    backend: SearchBackend,
    rng: &mut R,
    trace: Option<&TraceSink>,
) -> Result<WitnessedProductReport, ApspError> {
    let n = a.n();
    let (a2, b2) = scale_for_witness(a, b);
    let report = distributed_distance_product_traced(&a2, &b2, params, backend, rng, trace)?;
    let witnessed = decode_witness(n, &report.product);
    Ok(WitnessedProductReport {
        witnessed,
        rounds: report.physical_rounds(),
        find_edges_calls: report.find_edges_calls,
    })
}

/// Result of a full APSP-with-paths run.
#[derive(Clone, Debug)]
pub struct ApspPathsReport {
    /// Distances plus per-level witnesses; call
    /// [`PathOracle::path`] to extract explicit shortest paths.
    pub oracle: PathOracle,
    /// Rounds on the physical network.
    pub rounds: u64,
    /// Witnessed distance products performed.
    pub products: u32,
}

/// Solves APSP *and* retains enough witnesses to output every shortest
/// path, via repeated witnessed squaring.
///
/// # Errors
///
/// * [`ApspError::NegativeCycle`] if the graph has one.
/// * Propagated network/stage errors.
///
/// # Examples
///
/// ```
/// use qcc_apsp::{apsp_with_paths, Params, SearchBackend};
/// use qcc_graph::{path_weight, DiGraph};
/// use rand::SeedableRng;
///
/// let mut g = DiGraph::new(5);
/// g.add_arc(0, 1, 4);
/// g.add_arc(1, 2, -2);
/// g.add_arc(0, 2, 9);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let report = apsp_with_paths(&g, Params::paper(), SearchBackend::Classical, &mut rng)?;
/// let path = report.oracle.path(0, 2).unwrap();
/// assert_eq!(path, vec![0, 1, 2]); // the detour beats the direct arc
/// assert_eq!(path_weight(&g, &path), Some(2));
/// # Ok::<(), qcc_apsp::ApspError>(())
/// ```
pub fn apsp_with_paths<R: Rng>(
    g: &DiGraph,
    params: Params,
    backend: SearchBackend,
    rng: &mut R,
) -> Result<ApspPathsReport, ApspError> {
    apsp_with_paths_traced(g, params, backend, rng, None)
}

/// [`apsp_with_paths`] with an optional NDJSON trace sink: a root `apsp`
/// span with one `product-k` child per witnessed squaring, each scaled by
/// the virtual-network simulation factor so the trace's scaled root total
/// equals [`ApspPathsReport::rounds`]. Round charges are byte-identical
/// with and without a sink.
///
/// # Errors
///
/// Same as [`apsp_with_paths`].
pub fn apsp_with_paths_traced<R: Rng>(
    g: &DiGraph,
    params: Params,
    backend: SearchBackend,
    rng: &mut R,
    trace: Option<&TraceSink>,
) -> Result<ApspPathsReport, ApspError> {
    let n = g.n();
    let adjacency = g.adjacency_matrix();
    let mut current = adjacency.clone();
    let mut levels = Vec::new();
    let mut rounds = 0u64;
    let mut products = 0u32;
    if let Some(sink) = trace {
        sink.open_span("apsp");
    }
    let mut exponent: u64 = 1;
    while exponent < (n.max(2) as u64) - 1 {
        let report = if let Some(sink) = trace {
            sink.open_span_scaled(&format!("product-{products}"), 9);
            let report = distributed_witnessed_product_traced(
                &current, &current, params, backend, rng, trace,
            );
            sink.close_span();
            report?
        } else {
            distributed_witnessed_product_traced(&current, &current, params, backend, rng, None)?
        };
        rounds += report.rounds;
        products += 1;
        levels.push(report.witnessed.witness);
        current = report.witnessed.product;
        exponent *= 2;
    }
    if let Some(sink) = trace {
        sink.close_span(); // the "apsp" root
    }
    for i in 0..n {
        if current[(i, i)] < ExtWeight::ZERO {
            return Err(ApspError::NegativeCycle);
        }
    }
    Ok(ApspPathsReport {
        oracle: PathOracle::from_parts(adjacency, levels, current),
        rounds,
        products,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_graph::{distance_product, floyd_warshall, path_weight, random_reweighted_digraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn witnessed_product_matches_plain_product() {
        let mut rng = StdRng::seed_from_u64(601);
        let g = random_reweighted_digraph(5, 0.6, 5, &mut rng);
        let a = g.adjacency_matrix();
        let report = distributed_witnessed_product(
            &a,
            &a,
            Params::paper(),
            SearchBackend::Classical,
            &mut rng,
        )
        .unwrap();
        assert_eq!(report.witnessed.product, distance_product(&a, &a));
        for i in 0..5 {
            for j in 0..5 {
                if let Some(k) = report.witnessed.witness[(i, j)] {
                    assert_eq!(a[(i, k)] + a[(k, j)], report.witnessed.product[(i, j)]);
                }
            }
        }
    }

    #[test]
    fn witness_scaling_costs_about_one_extra_log() {
        let mut rng = StdRng::seed_from_u64(602);
        let g = random_reweighted_digraph(4, 0.7, 4, &mut rng);
        let a = g.adjacency_matrix();
        let plain = crate::distance_product::distributed_distance_product(
            &a,
            &a,
            Params::paper(),
            SearchBackend::Classical,
            &mut rng,
        )
        .unwrap();
        let witnessed = distributed_witnessed_product(
            &a,
            &a,
            Params::paper(),
            SearchBackend::Classical,
            &mut rng,
        )
        .unwrap();
        let extra = witnessed
            .find_edges_calls
            .saturating_sub(plain.find_edges_calls);
        // scaling multiplies M by n+1 = 5: log2(5) ≈ 2.3 extra calls
        assert!(extra <= 4, "extra calls: {extra}");
        assert!(witnessed.find_edges_calls > plain.find_edges_calls);
    }

    #[test]
    fn distributed_paths_are_shortest_paths() {
        let mut rng = StdRng::seed_from_u64(603);
        let g = random_reweighted_digraph(7, 0.45, 5, &mut rng);
        let fw = floyd_warshall(&g.adjacency_matrix()).unwrap();
        let report =
            apsp_with_paths(&g, Params::paper(), SearchBackend::Classical, &mut rng).unwrap();
        assert_eq!(report.oracle.distances(), &fw);
        for u in 0..7 {
            for v in 0..7 {
                if u == v {
                    continue;
                }
                match report.oracle.path(u, v) {
                    Some(path) => {
                        let w = path_weight(&g, &path).expect("valid hops");
                        assert_eq!(ExtWeight::from(w), fw[(u, v)], "({u},{v})");
                    }
                    None => assert_eq!(fw[(u, v)], ExtWeight::PosInf),
                }
            }
        }
    }

    #[test]
    fn quantum_backend_reconstructs_paths_too() {
        let mut rng = StdRng::seed_from_u64(604);
        let g = random_reweighted_digraph(5, 0.6, 3, &mut rng);
        let fw = floyd_warshall(&g.adjacency_matrix()).unwrap();
        let report =
            apsp_with_paths(&g, Params::paper(), SearchBackend::Quantum, &mut rng).unwrap();
        assert_eq!(report.oracle.distances(), &fw);
        for u in 0..5 {
            for v in 0..5 {
                if let Some(path) = report.oracle.path(u, v) {
                    if u != v {
                        let w = path_weight(&g, &path).unwrap();
                        assert_eq!(ExtWeight::from(w), fw[(u, v)]);
                    }
                }
            }
        }
    }

    #[test]
    fn negative_cycles_are_detected_in_path_mode() {
        let mut g = DiGraph::new(4);
        g.add_arc(0, 1, -3);
        g.add_arc(1, 0, 2);
        let mut rng = StdRng::seed_from_u64(605);
        let err =
            apsp_with_paths(&g, Params::paper(), SearchBackend::Classical, &mut rng).unwrap_err();
        assert_eq!(err, ApspError::NegativeCycle);
    }
}
