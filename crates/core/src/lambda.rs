//! The random covering `Λ_x(u, v)` of Section 5.1 (Step 2 of ComputePairs).
//!
//! Each search node `(u, v, x)` samples every pair of `P(u, v)` with
//! probability `≈ 10 log n / √n` into its set `Λ_x(u, v)`, aborting if any
//! set is not *well-balanced* (some vertex `u ∈ u` appears with more than
//! `≈ 100 n^{1/4} log n` partners). Lemma 2: with probability `≥ 1 − 2/n`
//! no abort happens and the sets cover all of `P(u, v)`.
//!
//! After sampling, each node loads the weight `f(u, v)` of its sampled
//! pairs from the pair owners and keeps only the pairs that are edges of
//! `G` *and* members of `S` — these become its search list for Step 3.

use crate::instance::Instance;
use crate::sampling::sample_indices;
use crate::wire::{pair_bits, weight_bits, Wire};
use qcc_congest::{Clique, CongestError, Envelope, NodeId};
use rand::Rng;
use std::collections::HashMap;

/// A pair kept by a search node: endpoints and loaded edge weight.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeptPair {
    /// Smaller endpoint.
    pub u: usize,
    /// Larger endpoint.
    pub v: usize,
    /// Edge weight `f(u, v)`.
    pub weight: i64,
}

/// The constructed covering with its per-label search lists.
#[derive(Clone, Debug)]
pub struct LambdaCover {
    /// Kept pairs (edges of `G` in `S`) per search label.
    pub kept: Vec<Vec<KeptPair>>,
    /// Raw sampled pairs per search label (before the `S`/edge filter),
    /// kept for the Lemma 2 statistics.
    pub sampled: Vec<Vec<(usize, usize)>>,
}

impl LambdaCover {
    /// Total number of kept pairs across all labels (`Σ_k m_k`).
    pub fn total_kept(&self) -> usize {
        self.kept.iter().map(Vec::len).sum()
    }

    /// Whether every pair of `P(u, v) ∩ S ∩ E` appears in at least one
    /// label's kept list (the consequence of Lemma 2 (ii) that Step 3
    /// actually needs).
    pub fn covers_all_s_edges(&self, inst: &Instance<'_>) -> bool {
        let mut covered: HashMap<(usize, usize), bool> = HashMap::new();
        for (u, v) in inst.s.iter() {
            if inst.graph.has_edge(u, v) {
                covered.insert((u, v), false);
            }
        }
        for list in &self.kept {
            for kp in list {
                if let Some(flag) = covered.get_mut(&(kp.u, kp.v)) {
                    *flag = true;
                }
            }
        }
        covered.values().all(|&b| b)
    }
}

/// Outcome of one sampling attempt: either a cover or an abort (some set
/// was not well-balanced).
#[derive(Clone, Debug)]
pub enum LambdaAttempt {
    /// All sets were well-balanced; weights were loaded.
    Balanced(LambdaCover),
    /// Some `Λ_x(u, v)` violated the balance cap; the protocol aborted
    /// after the (charged) abort consensus, before any weight loading.
    Aborted {
        /// The violating search label.
        label: usize,
        /// The observed per-vertex partner count.
        observed: usize,
        /// The cap that was exceeded.
        cap: f64,
    },
}

/// Runs Step 2 of ComputePairs once: sample the coverings, check balance,
/// and (if balanced) load pair weights from their owners over the network.
///
/// # Errors
///
/// Returns a [`CongestError`] only on simulator-level addressing bugs.
pub fn build_lambda_cover<R: Rng>(
    inst: &Instance<'_>,
    net: &mut Clique,
    rng: &mut R,
) -> Result<LambdaAttempt, CongestError> {
    let n = inst.n();
    let p = inst.params.lambda_probability(n);
    let cap = inst.params.balance_cap(n);
    let label_count = inst.searches.labeling().label_count();

    // Pair universes are shared across the √n labels of each (u, v).
    let q = inst.parts.coarse.num_blocks();
    let mut pair_universe: HashMap<(usize, usize), Vec<(usize, usize)>> = HashMap::new();
    for bu in 0..q {
        for bv in bu..q {
            pair_universe.insert((bu, bv), inst.parts.coarse.pair_set(bu, bv));
        }
    }
    let universe_of = |bu: usize, bv: usize| -> &Vec<(usize, usize)> {
        pair_universe
            .get(&(bu.min(bv), bu.max(bv)))
            .expect("universe precomputed for every block pair")
    };

    let mut sampled: Vec<Vec<(usize, usize)>> = Vec::with_capacity(label_count);
    let mut violation: Option<(usize, usize)> = None; // (label, observed)
    let mut flags = vec![false; n];
    // Well-balancedness counters, reused across labels (only the touched
    // entries are reset between labels).
    let mut per_vertex = vec![0usize; n];
    let mut touched: Vec<usize> = Vec::new();
    for (label, (bu, bv, _x)) in inst.searches.triples() {
        let universe = universe_of(bu, bv);
        let picked: Vec<(usize, usize)> = sample_indices(universe.len(), p, rng)
            .into_iter()
            .map(|i| universe[i])
            .collect();
        // Well-balancedness: every vertex of the coarse blocks appears with
        // at most `cap` partners inside this Λ_x(u, v).
        for &(a, b) in &picked {
            for endpoint in [a, b] {
                let count = &mut per_vertex[endpoint];
                if *count == 0 {
                    touched.push(endpoint);
                }
                *count += 1;
                if (*count as f64) > cap && violation.is_none() {
                    violation = Some((label, *count));
                }
            }
        }
        for &endpoint in &touched {
            per_vertex[endpoint] = 0;
        }
        touched.clear();
        if violation.map(|(l, _)| l) == Some(label) {
            flags[inst.searches.labeling().node_of(label)] = true;
        }
        sampled.push(picked);
    }
    // Abort consensus (the paper's "the protocol is aborted" needs every
    // node to learn the flag): one gather-and-broadcast, charged.
    net.begin_phase("compute-pairs/step2-abort-consensus");
    let any_violation = net.agree_any(&flags)?;
    if any_violation {
        let (label, observed) = violation.expect("flag implies a recorded violation");
        return Ok(LambdaAttempt::Aborted {
            label,
            observed,
            cap,
        });
    }

    // Weight loading: each search node asks the owner (smaller endpoint) of
    // every sampled pair for the weight, edge existence, and S-membership.
    let pb = pair_bits(n);
    let wb = weight_bits(inst.weight_magnitude());
    net.begin_phase("compute-pairs/step2-requests");

    // Transparent networks with large routes: both legs carry fixed-width
    // wires whose contents are pure functions of the instance, so the
    // routes can be charged from per-link tallies and the kept lists
    // assembled locally — byte-identical rounds, metrics, and traces.
    let mut charged = false;
    if net.is_transparent() {
        let mut query_links = vec![0u32; n * n];
        for (label, picked) in sampled.iter().enumerate() {
            let src = inst.searches.labeling().node_of(label);
            for &(u, _v) in picked {
                query_links[src * n + u] += 1;
            }
        }
        if net.charge_route_tally(&query_links, pb).is_some() {
            net.begin_phase("compute-pairs/step2-responses");
            let mut reply_links = vec![0u32; n * n];
            for (label, picked) in sampled.iter().enumerate() {
                let src = inst.searches.labeling().node_of(label);
                for &(u, _v) in picked {
                    reply_links[u * n + src] += 1;
                }
            }
            // Replies are wider than queries over the same links, so they
            // carry at least as many units and stay past the schedule limit.
            net.charge_route_tally(&reply_links, pb + wb + 2)
                .expect("reply leg has at least as many units as the charged query leg");
            charged = true;
        }
    }

    let mut kept: Vec<Vec<KeptPair>> = vec![Vec::new(); label_count];
    if charged {
        // Owner answers computed in place of the routed replies. A dense
        // S-membership mask replaces the per-pair ordered-set lookup.
        let mut in_s = vec![false; n * n];
        for (u, v) in inst.s.iter() {
            in_s[u * n + v] = true;
            in_s[v * n + u] = true;
        }
        for (label, picked) in sampled.iter().enumerate() {
            for &(u, v) in picked {
                if !in_s[u * n + v] {
                    continue;
                }
                if let Some(w) = inst.graph.weight(u, v).finite() {
                    kept[label].push(KeptPair { u, v, weight: w });
                }
            }
        }
    } else {
        let mut requests: Vec<Envelope<Wire<(usize, usize, usize)>>> = Vec::new();
        for (label, picked) in sampled.iter().enumerate() {
            let src = NodeId::new(inst.searches.labeling().node_of(label));
            for &(u, v) in picked {
                requests.push(Envelope::new(
                    src,
                    NodeId::new(u),
                    Wire::new((label, u, v), pb),
                ));
            }
        }
        let request_boxes = net.route(requests)?;

        net.begin_phase("compute-pairs/step2-responses");
        let mut responses: Vec<Envelope<Wire<(usize, usize, usize, Option<i64>, bool)>>> =
            Vec::new();
        for owner in NodeId::all(n) {
            for (asker, msg) in request_boxes.of(owner) {
                let (label, u, v) = msg.value;
                debug_assert_eq!(u, owner.index(), "pair owner mismatch");
                let weight = inst.graph.weight(u, v).finite();
                let in_s = inst.s.contains(u, v);
                responses.push(Envelope::new(
                    owner,
                    *asker,
                    Wire::new((label, u, v, weight, in_s), pb + wb + 2),
                ));
            }
        }
        let response_boxes = net.route(responses)?;

        for node in NodeId::all(n) {
            for (_owner, msg) in response_boxes.of(node) {
                let (label, u, v, weight, in_s) = msg.value;
                debug_assert_eq!(inst.searches.labeling().node_of(label), node.index());
                if let (Some(w), true) = (weight, in_s) {
                    kept[label].push(KeptPair { u, v, weight: w });
                }
            }
        }
    }
    // Per-label keys are distinct, so the sorted lists are identical no
    // matter which path filled them.
    for list in &mut kept {
        list.sort_by_key(|kp| (kp.u, kp.v));
    }

    Ok(LambdaAttempt::Balanced(LambdaCover { kept, sampled }))
}

/// Builds a *deterministic* covering instead of the randomized one: each
/// `Λ_x(u, v)` is the `x`-th contiguous chunk of `P(u, v)` (an exact
/// partition, trivially balanced and complete).
///
/// This is the ablation of Section 5.1's design choice: the paper uses a
/// *random* covering precisely because a deterministic partition lets an
/// adversary align all of `Δ(u, v; w)` with a single chunk, concentrating
/// the Step-3 query load on one link (no Lemma 3 analog holds). See the
/// `deterministic_cover_concentrates_adversarial_load` test and
/// experiment E12b.
///
/// # Errors
///
/// Returns a [`CongestError`] only on simulator-level addressing bugs.
pub fn build_deterministic_cover(
    inst: &Instance<'_>,
    net: &mut Clique,
) -> Result<LambdaCover, CongestError> {
    let n = inst.n();
    let s = inst.parts.fine.num_blocks();
    let label_count = inst.searches.labeling().label_count();
    let mut sampled: Vec<Vec<(usize, usize)>> = vec![Vec::new(); label_count];
    for (label, (bu, bv, x)) in inst.searches.triples() {
        let universe = inst.parts.coarse.pair_set(bu, bv);
        let chunk = universe.len().div_ceil(s);
        let start = (x * chunk).min(universe.len());
        let end = ((x + 1) * chunk).min(universe.len());
        sampled[label] = universe[start..end].to_vec();
    }

    // Weight loading, identical to the randomized path.
    let pb = pair_bits(n);
    let wb = weight_bits(inst.weight_magnitude());
    net.begin_phase("compute-pairs/step2-requests");
    let mut requests: Vec<Envelope<Wire<(usize, usize, usize)>>> = Vec::new();
    for (label, picked) in sampled.iter().enumerate() {
        let src = NodeId::new(inst.searches.labeling().node_of(label));
        for &(u, v) in picked {
            requests.push(Envelope::new(
                src,
                NodeId::new(u),
                Wire::new((label, u, v), pb),
            ));
        }
    }
    let request_boxes = net.route(requests)?;
    net.begin_phase("compute-pairs/step2-responses");
    let mut responses: Vec<Envelope<Wire<(usize, usize, usize, Option<i64>, bool)>>> = Vec::new();
    for owner in NodeId::all(n) {
        for (asker, msg) in request_boxes.of(owner) {
            let (label, u, v) = msg.value;
            let weight = inst.graph.weight(u, v).finite();
            let in_s = inst.s.contains(u, v);
            responses.push(Envelope::new(
                owner,
                *asker,
                Wire::new((label, u, v, weight, in_s), pb + wb + 2),
            ));
        }
    }
    let response_boxes = net.route(responses)?;
    let mut kept: Vec<Vec<KeptPair>> = vec![Vec::new(); label_count];
    for node in NodeId::all(n) {
        for (_owner, msg) in response_boxes.of(node) {
            let (label, u, v, weight, in_s) = msg.value;
            if let (Some(w), true) = (weight, in_s) {
                kept[label].push(KeptPair { u, v, weight: w });
            }
        }
    }
    for list in &mut kept {
        list.sort_by_key(|kp| (kp.u, kp.v));
    }
    Ok(LambdaCover { kept, sampled })
}

/// Retries [`build_lambda_cover`] until a balanced attempt succeeds, up to
/// `max_attempts` times.
///
/// # Errors
///
/// Returns [`crate::ApspError::StageAborted`] if every attempt aborted.
///
/// # Examples
///
/// ```
/// use qcc_apsp::lambda::build_lambda_cover_with_retry;
/// use qcc_apsp::{Instance, PairSet, Params};
/// use qcc_congest::Clique;
/// use qcc_graph::book_graph;
/// use rand::SeedableRng;
///
/// let g = book_graph(16, 2);
/// let s = PairSet::all_pairs(16);
/// let inst = Instance::new(&g, &s, Params::paper());
/// let mut net = Clique::new(16)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let cover = build_lambda_cover_with_retry(&inst, &mut net, 10, &mut rng)?;
/// assert!(cover.covers_all_s_edges(&inst)); // Lemma 2 (ii)
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn build_lambda_cover_with_retry<R: Rng>(
    inst: &Instance<'_>,
    net: &mut Clique,
    max_attempts: u32,
    rng: &mut R,
) -> Result<LambdaCover, crate::ApspError> {
    for _ in 0..max_attempts {
        match build_lambda_cover(inst, net, rng)? {
            LambdaAttempt::Balanced(cover) => return Ok(cover),
            LambdaAttempt::Aborted { .. } => continue,
        }
    }
    Err(crate::ApspError::StageAborted {
        stage: "lambda-cover",
        attempts: max_attempts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use crate::problem::PairSet;
    use qcc_graph::{book_graph, random_ugraph, UGraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make_net(n: usize) -> Clique {
        Clique::new(n).expect("nonzero")
    }

    #[test]
    fn cover_keeps_only_s_edges() {
        let g = book_graph(16, 3);
        let mut s = PairSet::new();
        s.insert(0, 1);
        s.insert(0, 2);
        s.insert(10, 11); // not an edge
        let inst = Instance::new(&g, &s, Params::scaled());
        let mut net = make_net(16);
        let mut rng = StdRng::seed_from_u64(31);
        let cover = build_lambda_cover_with_retry(&inst, &mut net, 20, &mut rng).expect("balanced");
        for list in &cover.kept {
            for kp in list {
                assert!(s.contains(kp.u, kp.v));
                assert!(g.has_edge(kp.u, kp.v));
                assert_eq!(g.weight(kp.u, kp.v).finite(), Some(kp.weight));
            }
        }
        // the non-edge pair is never kept
        assert!(cover
            .kept
            .iter()
            .flatten()
            .all(|kp| (kp.u, kp.v) != (10, 11)));
    }

    #[test]
    fn lemma2_cover_rate_with_paper_constants() {
        // With paper constants at small n the sampling probability clamps
        // to 1, so every set contains everything: always balanced? No —
        // with p = 1 balance would be violated; paper constants also give
        // a huge cap, so no abort. Coverage must then be total.
        let mut rng = StdRng::seed_from_u64(32);
        let g = random_ugraph(16, 0.6, 5, &mut rng);
        let s = PairSet::all_pairs(16);
        let inst = Instance::new(&g, &s, Params::paper());
        let mut net = make_net(16);
        let cover = build_lambda_cover_with_retry(&inst, &mut net, 5, &mut rng).expect("balanced");
        assert!(cover.covers_all_s_edges(&inst));
    }

    #[test]
    fn scaled_constants_usually_cover() {
        // Lemma 2 (ii): missing a pair entirely should be rare even with
        // the scaled constants.
        let mut rng = StdRng::seed_from_u64(33);
        let mut covered = 0;
        let trials = 10;
        for _ in 0..trials {
            let g = random_ugraph(16, 0.5, 4, &mut rng);
            let s = PairSet::all_pairs(16);
            let inst = Instance::new(&g, &s, Params::scaled());
            let mut net = make_net(16);
            if let Ok(cover) = build_lambda_cover_with_retry(&inst, &mut net, 20, &mut rng) {
                if cover.covers_all_s_edges(&inst) {
                    covered += 1;
                }
            }
        }
        assert!(covered >= trials - 2, "covered {covered}/{trials}");
    }

    #[test]
    fn tiny_balance_cap_forces_abort() {
        let g = book_graph(16, 3);
        let s = PairSet::all_pairs(16);
        let mut params = Params::paper(); // p clamps to 1: every pair sampled
        params.balance_factor = 0.01; // cap < 1: any sampled pair violates
        let inst = Instance::new(&g, &s, params);
        let mut net = make_net(16);
        let mut rng = StdRng::seed_from_u64(34);
        match build_lambda_cover(&inst, &mut net, &mut rng).unwrap() {
            LambdaAttempt::Aborted { cap, observed, .. } => {
                assert!(observed as f64 > cap);
            }
            LambdaAttempt::Balanced(_) => panic!("expected abort"),
        }
        // the abort consensus itself is charged (gather + broadcast), but
        // no weight loading happened
        assert!(net.rounds() > 0);
        assert_eq!(
            net.metrics()
                .rounds_with_prefix("compute-pairs/step2-requests"),
            0
        );
    }

    #[test]
    fn retry_gives_up_after_max_attempts() {
        let g = book_graph(16, 3);
        let s = PairSet::all_pairs(16);
        let mut params = Params::paper();
        params.balance_factor = 0.01;
        let inst = Instance::new(&g, &s, params);
        let mut net = make_net(16);
        let mut rng = StdRng::seed_from_u64(35);
        let err = build_lambda_cover_with_retry(&inst, &mut net, 3, &mut rng).unwrap_err();
        assert_eq!(
            err,
            crate::ApspError::StageAborted {
                stage: "lambda-cover",
                attempts: 3
            }
        );
    }

    #[test]
    fn step2_charges_rounds() {
        let g = book_graph(16, 3);
        let s = PairSet::all_pairs(16);
        let inst = Instance::new(&g, &s, Params::paper());
        let mut net = make_net(16);
        let mut rng = StdRng::seed_from_u64(36);
        let _ = build_lambda_cover_with_retry(&inst, &mut net, 5, &mut rng).unwrap();
        assert!(net.rounds() > 0, "weight loading must cost rounds");
        assert!(net.metrics().rounds_with_prefix("compute-pairs/step2") > 0);
    }

    #[test]
    fn empty_s_keeps_nothing() {
        let g = book_graph(16, 3);
        let s = PairSet::new();
        let inst = Instance::new(&g, &s, Params::scaled());
        let mut net = make_net(16);
        let mut rng = StdRng::seed_from_u64(37);
        let cover = build_lambda_cover_with_retry(&inst, &mut net, 20, &mut rng).unwrap();
        assert_eq!(cover.total_kept(), 0);
    }

    #[test]
    fn kept_lists_are_sorted() {
        let mut rng = StdRng::seed_from_u64(38);
        let g = random_ugraph(16, 0.7, 3, &mut rng);
        let s = PairSet::all_pairs(16);
        let inst = Instance::new(&g, &s, Params::paper());
        let mut net = make_net(16);
        let cover = build_lambda_cover_with_retry(&inst, &mut net, 5, &mut rng).unwrap();
        for list in &cover.kept {
            assert!(list
                .windows(2)
                .all(|w| (w[0].u, w[0].v) <= (w[1].u, w[1].v)));
        }
    }

    #[test]
    fn deterministic_cover_is_an_exact_partition() {
        let mut rng = StdRng::seed_from_u64(40);
        let g = random_ugraph(16, 0.6, 4, &mut rng);
        let s = PairSet::all_pairs(16);
        let inst = Instance::new(&g, &s, Params::scaled());
        let mut net = make_net(16);
        let cover = build_deterministic_cover(&inst, &mut net).unwrap();
        assert!(cover.covers_all_s_edges(&inst));
        // chunks of one ordered (u, v) label family are disjoint and cover
        // P(u, v) exactly once, so the total sampled volume equals the sum
        // of |P(u, v)| over *ordered* block pairs (cross pairs appear in
        // both orientations, same as the randomized covering's labels)
        let q = inst.parts.coarse.num_blocks();
        let total_pairs: usize = (0..q)
            .flat_map(|a| (0..q).map(move |b| (a, b)))
            .map(|(a, b)| inst.parts.coarse.pair_set(a, b).len())
            .sum();
        let sampled_total: usize = cover.sampled.iter().map(Vec::len).sum();
        assert_eq!(sampled_total, total_pairs);
    }

    #[test]
    fn deterministic_cover_concentrates_adversarial_load() {
        // Adversarial instance: all negative-triangle pairs of one block
        // pair are consecutive in P(u, v) order, so the deterministic
        // chunking puts them all in one Λ_x — the congestion the random
        // covering provably (Lemma 3) avoids.
        let n = 16;
        let mut g = qcc_graph::UGraph::new(n);
        // pairs (0,1), (0,2), (0,3) are consecutive in pair order; give
        // them all negative triangles through apex 8
        for v in 1..=3 {
            g.add_edge(0, v, -10);
            g.add_edge(v, 8, 4); // filler to vary
        }
        for v in 1..=3 {
            g.add_edge(0, 8, 4);
            g.add_edge(v, 8, 4);
        }
        let s = PairSet::all_pairs(n);
        let inst = Instance::new(&g, &s, Params::scaled());
        let mut net = make_net(n);
        let det = build_deterministic_cover(&inst, &mut net).unwrap();
        // count triangle pairs per label in the deterministic cover
        let delta: Vec<(usize, usize)> = vec![(0, 1), (0, 2), (0, 3)]
            .into_iter()
            .filter(|&(u, v)| g.gamma(u, v) > 0)
            .collect();
        assert!(!delta.is_empty());
        let max_det = det
            .kept
            .iter()
            .map(|list| {
                list.iter()
                    .filter(|kp| delta.contains(&(kp.u, kp.v)))
                    .count()
            })
            .max()
            .unwrap();
        // all adversarial pairs share one chunk (they are adjacent in
        // pair-set order and chunks are larger than |delta|)
        assert_eq!(
            max_det,
            delta.len(),
            "deterministic chunking concentrates the load"
        );
    }

    #[test]
    fn balanced_attempt_is_default_for_empty_graph() {
        let g = UGraph::new(16);
        let s = PairSet::all_pairs(16);
        let inst = Instance::new(&g, &s, Params::scaled());
        let mut net = make_net(16);
        let mut rng = StdRng::seed_from_u64(39);
        let cover = build_lambda_cover_with_retry(&inst, &mut net, 20, &mut rng).unwrap();
        assert_eq!(cover.total_kept(), 0);
    }
}
