//! Reservoir-free Bernoulli subset sampling via geometric skips.
//!
//! The algorithms sample every element of large universes independently
//! with a small probability `p` (pair sets of size `n^{3/2}`, edge sets of
//! size `n²`). Drawing one uniform per element would dominate the
//! simulation, so we draw geometric gaps instead: the index of the next
//! selected element is `i + 1 + ⌊ln U / ln(1 − p)⌋`, giving `O(expected
//! selected)` work — distributionally identical to per-element Bernoulli
//! draws.

use rand::Rng;

/// Returns the indices of a Bernoulli(`p`) sample of `0..universe`, in
/// increasing order, using geometric skip sampling.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]` or is NaN.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let picked = qcc_apsp::sample_indices(1000, 0.01, &mut rng);
/// assert!(picked.len() < 100);
/// assert!(picked.windows(2).all(|w| w[0] < w[1]));
/// ```
pub fn sample_indices<R: Rng>(universe: usize, p: f64, rng: &mut R) -> Vec<usize> {
    assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    if p <= 0.0 || universe == 0 {
        return Vec::new();
    }
    if p >= 1.0 {
        return (0..universe).collect();
    }
    let log_q = (1.0 - p).ln();
    let mut out = Vec::with_capacity(((universe as f64) * p * 1.2) as usize + 4);
    let mut i: usize = 0;
    loop {
        // gap ~ Geometric(p): number of failures before the next success
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let gap = (u.ln() / log_q).floor() as usize;
        i = match i.checked_add(gap) {
            Some(next) => next,
            None => break,
        };
        if i >= universe {
            break;
        }
        out.push(i);
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn p_zero_selects_nothing() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(sample_indices(100, 0.0, &mut rng).is_empty());
    }

    #[test]
    fn p_one_selects_everything() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_indices(5, 1.0, &mut rng), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_universe_selects_nothing() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(sample_indices(0, 0.5, &mut rng).is_empty());
    }

    #[test]
    fn sample_mean_matches_p() {
        let mut rng = StdRng::seed_from_u64(2);
        let universe = 200_000;
        let p = 0.03;
        let picked = sample_indices(universe, p, &mut rng);
        let freq = picked.len() as f64 / universe as f64;
        assert!((freq - p).abs() < 0.005, "freq {freq}");
    }

    #[test]
    fn indices_are_strictly_increasing_and_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let picked = sample_indices(500, 0.2, &mut rng);
            assert!(picked.windows(2).all(|w| w[0] < w[1]));
            assert!(picked.iter().all(|&i| i < 500));
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        sample_indices(10, 1.5, &mut rng);
    }
}
