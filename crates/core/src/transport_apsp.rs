//! APSP over a general topology via the coded-gossip transport.
//!
//! On the clique, APSP runs the full Izumi–Le Gall pipeline. On a
//! general topology the CONGEST-CLIQUE primitives (Lenzen routing,
//! all-to-all distance products) do not exist, so the natural baseline
//! is *replication*: every node RLNC-broadcasts its adjacency row over
//! the mesh, after which each node holds the whole graph and solves APSP
//! locally with Floyd–Warshall. That is exactly what the quantum CONGEST
//! diameter/eccentricity literature (Le Gall–Magniez, Wang–Wu–Yao) takes
//! as the classical information-dissemination step, and it is the
//! workload the transport matrix uses to compare coded redundancy
//! against the clique's ack/retransmit envelope at matched fault rates.
//!
//! The Las-Vegas shape of [`crate::apsp_driver`] is preserved: attempts
//! reseed the fault plan, and every surviving matrix passes the same
//! three-part certificate (zero diagonal, `D ≤ A₀`, `D ⊗ D = D`) before
//! it is accepted. The certificate is checked *locally* here — after a
//! successful gossip every node holds the entire graph, so the check
//! needs no further communication — but it still rejects every
//! overestimate, keeping "never a silently wrong matrix" independent of
//! the transport's own correctness argument.

use crate::ApspError;
use qcc_congest::{GossipStats, GossipTransport, NetConfig, TopologySpec, TraceSink, Transport};
use qcc_graph::{
    certificate_local_ok, distance_product_reference, floyd_warshall, DiGraph, ExtWeight,
    WeightMatrix,
};

/// Wire sentinel for "no arc" in a serialized adjacency row.
const ABSENT: i64 = i64::MAX;

/// Which transport runs an APSP request (CLI `--transport`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransportKind {
    /// The Lenzen-routed complete graph (the paper's model).
    #[default]
    Clique,
    /// RLNC-coded gossip over a general topology.
    Gossip,
}

impl TransportKind {
    /// Parses `clique` or `gossip`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown transport.
    pub fn parse(text: &str) -> Result<TransportKind, String> {
        match text {
            "clique" => Ok(TransportKind::Clique),
            "gossip" => Ok(TransportKind::Gossip),
            other => Err(format!(
                "unknown transport {other:?} (expected clique|gossip)"
            )),
        }
    }

    /// The canonical spelling accepted back by [`TransportKind::parse`].
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            TransportKind::Clique => "clique",
            TransportKind::Gossip => "gossip",
        }
    }
}

/// Configuration for [`gossip_apsp`].
#[derive(Clone, Debug)]
pub struct GossipApspConfig {
    /// The topology to gossip over.
    pub topology: TopologySpec,
    /// Chunks per RLNC block; `0` picks the transport default, `1` is
    /// uncoded flooding.
    pub chunks: usize,
    /// Extra attempts after the first (total = `max_retries + 1`).
    pub max_retries: u32,
    /// Check the local certificate on every surviving matrix. Unlike the
    /// clique driver there is no cheaper unverified mode worth having —
    /// the check is local and free of rounds — but the switch mirrors
    /// [`crate::DriverConfig::verify`] for the benches.
    pub verify: bool,
    /// Fault plan for the attempts (reseeded per attempt). The
    /// `reliable` half is deliberately ignored: coded redundancy *is*
    /// this transport's loss-recovery mechanism, and pairing it with the
    /// ack/retransmit envelope would measure neither cleanly.
    pub net: NetConfig,
    /// Seed for topology generation and coding coefficients.
    pub seed: u64,
}

impl Default for GossipApspConfig {
    fn default() -> Self {
        GossipApspConfig {
            topology: TopologySpec::Mesh { degree: 4 },
            chunks: 0,
            max_retries: 3,
            verify: true,
            net: NetConfig::default(),
            seed: 7,
        }
    }
}

/// One gossip-APSP attempt's outcome.
#[derive(Clone, Debug)]
pub struct GossipAttempt {
    /// Attempt index (0-based).
    pub attempt: u32,
    /// Rounds this attempt charged (failed attempts included).
    pub rounds: u64,
    /// Certificate verdict; `None` when the attempt died on a typed
    /// error before producing a matrix.
    pub verified: Option<bool>,
    /// The typed error that ended the attempt, if one did.
    pub error: Option<String>,
}

/// A verified gossip-APSP result.
#[derive(Clone, Debug)]
pub struct GossipApspReport {
    /// The exact distance matrix.
    pub distances: WeightMatrix,
    /// Rounds charged by the accepted attempt.
    pub rounds: u64,
    /// Rounds across all attempts — the honest Las-Vegas price.
    pub total_rounds: u64,
    /// Every attempt in order, the accepted one last.
    pub attempts: Vec<GossipAttempt>,
    /// Coded-gossip statistics of the accepted attempt.
    pub stats: GossipStats,
    /// `true` iff the accepted matrix passed the certificate.
    pub verified: bool,
    /// Label of the topology instance gossiped over.
    pub topology: String,
}

/// Serializes adjacency row `i` of `g`: `n` little-endian `i64`s, with
/// [`ABSENT`] for missing arcs.
fn serialize_row(g: &DiGraph, i: usize) -> Vec<u8> {
    let n = g.n();
    let mut row = Vec::with_capacity(8 * n);
    for j in 0..n {
        // Diagonal entries are 0 in the adjacency matrix (a node reaches
        // itself for free) even though the arc store holds no self-loops.
        let w = if i == j {
            0
        } else {
            g.weight(i, j).finite().unwrap_or(ABSENT)
        };
        row.extend_from_slice(&w.to_le_bytes());
    }
    row
}

/// Parses `n` serialized rows back into an adjacency matrix. `None` when
/// any row has the wrong length (a decode bug, not a fault — faults are
/// typed errors long before this point).
fn parse_rows(n: usize, rows: &[Vec<u8>]) -> Option<WeightMatrix> {
    if rows.len() != n || rows.iter().any(|r| r.len() != 8 * n) {
        return None;
    }
    Some(WeightMatrix::from_fn(n, |i, j| {
        let bytes: [u8; 8] = rows[i][8 * j..8 * (j + 1)].try_into().expect("8 bytes");
        match i64::from_le_bytes(bytes) {
            ABSENT => ExtWeight::PosInf,
            w => ExtWeight::from(w),
        }
    }))
}

/// APSP by RLNC gossip: replicate the graph over the topology, solve
/// locally, certify, retry with fresh fault randomness on typed errors.
///
/// # Errors
///
/// * [`ApspError::Congest`] with [`CongestError::Partitioned`] when the
///   topology is disconnected — immediately, retries cannot help.
/// * [`ApspError::NegativeCycle`] from the local solve.
/// * The last typed transport error when every attempt fails (crash
///   plans refire deterministically, so a crashed node fails every
///   attempt — honestly).
/// * [`ApspError::VerificationFailed`] when matrices emerged but none
///   passed the certificate.
///
/// # Examples
///
/// ```
/// use qcc_apsp::{gossip_apsp, GossipApspConfig};
/// use qcc_graph::{floyd_warshall, random_reweighted_digraph};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let g = random_reweighted_digraph(8, 0.5, 6, &mut rng);
/// let out = gossip_apsp(&g, &GossipApspConfig::default(), None)?;
/// assert!(out.verified);
/// assert_eq!(out.distances, floyd_warshall(&g.adjacency_matrix())?);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn gossip_apsp(
    g: &DiGraph,
    cfg: &GossipApspConfig,
    trace: Option<&TraceSink>,
) -> Result<GossipApspReport, ApspError> {
    let n = g.n();
    let rows: Vec<Vec<u8>> = (0..n).map(|i| serialize_row(g, i)).collect();
    let topo = cfg.topology.build(n, cfg.seed);
    let topo_label = topo.label().to_string();

    let mut attempts: Vec<GossipAttempt> = Vec::new();
    let mut total_rounds = 0u64;
    let mut last_error: Option<ApspError> = None;

    for attempt in 0..=cfg.max_retries {
        // The topology is the environment — stable across attempts; only
        // the fault randomness is fresh. Disconnection therefore fails
        // immediately rather than burning the retry budget.
        let mut transport =
            GossipTransport::new(topo.clone(), cfg.seed ^ (u64::from(attempt) << 32))
                .map_err(ApspError::Congest)?;
        if cfg.chunks > 0 {
            transport = transport.with_chunks(cfg.chunks);
        }
        let netcfg = cfg.net.reseeded(u64::from(attempt));
        if let Some(plan) = netcfg.faults {
            transport.set_fault_plan(plan);
        }
        if let Some(sink) = trace {
            transport.set_trace_sink(sink.clone());
        }
        transport.begin_phase(&format!("gossip-apsp-{attempt}"));
        let run = transport.gossip_blocks(&rows);
        transport.close_all_spans();
        let rounds = transport.rounds();
        total_rounds += rounds;
        match run {
            Ok(views) => {
                // Every node decoded every block exactly; any view
                // disagreement or geometry error is an internal bug.
                let adj = views
                    .iter()
                    .map(|view| parse_rows(n, view))
                    .collect::<Option<Vec<_>>>()
                    .filter(|all| all.windows(2).all(|w| w[0] == w[1]))
                    .and_then(|mut all| all.pop())
                    .ok_or_else(|| ApspError::Internal {
                        context: "gossip views disagree after successful decode".into(),
                    })?;
                let distances = floyd_warshall(&adj).map_err(|_| ApspError::NegativeCycle)?;
                let verified = if cfg.verify {
                    certificate_local_ok(&g.adjacency_matrix(), &distances)
                        && distance_product_reference(&distances, &distances) == distances
                } else {
                    true
                };
                attempts.push(GossipAttempt {
                    attempt,
                    rounds,
                    verified: Some(verified),
                    error: None,
                });
                if verified {
                    let stats = transport.gossip_stats().cloned().unwrap_or_default();
                    return Ok(GossipApspReport {
                        distances,
                        rounds,
                        total_rounds,
                        attempts,
                        stats,
                        verified: cfg.verify,
                        topology: topo_label,
                    });
                }
            }
            Err(e) => {
                let e = ApspError::Congest(e);
                attempts.push(GossipAttempt {
                    attempt,
                    rounds,
                    verified: None,
                    error: Some(e.to_string()),
                });
                if !e.is_retryable() {
                    return Err(e);
                }
                last_error = Some(e);
            }
        }
    }
    match last_error {
        Some(e) => Err(e),
        None => Err(ApspError::VerificationFailed {
            attempts: attempts.len() as u32,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_congest::{CongestError, FaultPlan};
    use qcc_graph::random_reweighted_digraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn graph(n: usize, seed: u64) -> DiGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        random_reweighted_digraph(n, 0.5, 6, &mut rng)
    }

    #[test]
    fn transport_kind_parses_and_labels() {
        for kind in [TransportKind::Clique, TransportKind::Gossip] {
            assert_eq!(TransportKind::parse(kind.label()).unwrap(), kind);
        }
        assert!(TransportKind::parse("carrier-pigeon").is_err());
    }

    #[test]
    fn rows_round_trip_through_serialization() {
        let g = graph(7, 11);
        let rows: Vec<Vec<u8>> = (0..7).map(|i| serialize_row(&g, i)).collect();
        let adj = parse_rows(7, &rows).unwrap();
        assert_eq!(adj, g.adjacency_matrix());
        assert!(parse_rows(7, &rows[..6]).is_none(), "short view");
        let mut bad = rows;
        bad[0].pop();
        assert!(parse_rows(7, &bad).is_none(), "truncated row");
    }

    #[test]
    fn fault_free_gossip_matches_floyd_warshall() {
        let g = graph(8, 21);
        let out = gossip_apsp(&g, &GossipApspConfig::default(), None).unwrap();
        assert!(out.verified);
        assert_eq!(out.attempts.len(), 1);
        assert_eq!(
            out.distances,
            floyd_warshall(&g.adjacency_matrix()).unwrap()
        );
        assert!(out.rounds > 0);
        assert_eq!(out.total_rounds, out.rounds);
        assert_eq!(out.stats.full_nodes, 8);
        assert!(out.topology.starts_with("mesh"));
    }

    #[test]
    fn mild_drops_still_deliver_the_exact_matrix() {
        let g = graph(8, 22);
        let cfg = GossipApspConfig {
            net: NetConfig::faulty(FaultPlan::parse("drop=0.05,seed=5").unwrap()),
            ..GossipApspConfig::default()
        };
        let out = gossip_apsp(&g, &cfg, None).unwrap();
        assert_eq!(
            out.distances,
            floyd_warshall(&g.adjacency_matrix()).unwrap()
        );
        assert!(out.verified);
    }

    #[test]
    fn crashes_fail_every_attempt_with_a_typed_error() {
        let g = graph(8, 23);
        let cfg = GossipApspConfig {
            net: NetConfig::faulty(FaultPlan::parse("crash=2@0,seed=5").unwrap()),
            max_retries: 1,
            ..GossipApspConfig::default()
        };
        let err = gossip_apsp(&g, &cfg, None).unwrap_err();
        assert!(
            matches!(err, ApspError::Congest(CongestError::NodeCrashed { .. })),
            "expected NodeCrashed, got {err}"
        );
    }

    #[test]
    fn ring_and_torus_topologies_work() {
        let g = graph(9, 24);
        let exact = floyd_warshall(&g.adjacency_matrix()).unwrap();
        for spec in ["ring", "torus", "clique"] {
            let cfg = GossipApspConfig {
                topology: TopologySpec::parse(spec).unwrap(),
                ..GossipApspConfig::default()
            };
            let out = gossip_apsp(&g, &cfg, None).unwrap();
            assert_eq!(out.distances, exact, "{spec}");
        }
    }

    #[test]
    fn flood_chunks_one_is_supported() {
        let g = graph(6, 25);
        let cfg = GossipApspConfig {
            chunks: 1,
            ..GossipApspConfig::default()
        };
        let out = gossip_apsp(&g, &cfg, None).unwrap();
        assert_eq!(
            out.distances,
            floyd_warshall(&g.adjacency_matrix()).unwrap()
        );
    }
}
