//! Single-source shortest paths via the APSP pipeline.
//!
//! The paper observes (Section 1) that its APSP bound is *also* the best
//! known exact bound for SSSP in the CONGEST-CLIQUE — no faster dedicated
//! single-source algorithm is known. This module exposes that corollary as
//! an API: run the selected APSP algorithm and project the source row,
//! with per-vertex path extraction when the witnessed pipeline is used.

use crate::apsp::{apsp, ApspAlgorithm};
use crate::apsp_paths::apsp_with_paths;
use crate::params::Params;
use crate::step3::SearchBackend;
use crate::ApspError;
use qcc_graph::{DiGraph, ExtWeight, PathOracle};
use rand::Rng;

/// Result of a single-source run.
#[derive(Clone, Debug)]
pub struct SsspReport {
    /// The source vertex.
    pub source: usize,
    /// Distances from the source (`dist[v]`).
    pub distances: Vec<ExtWeight>,
    /// Rounds on the physical network.
    pub rounds: u64,
}

/// Single-source distances through the chosen APSP algorithm.
///
/// # Errors
///
/// Propagates [`ApspError`] (including [`ApspError::NegativeCycle`]).
///
/// # Panics
///
/// Panics if `source` is out of range.
///
/// # Examples
///
/// ```
/// use qcc_apsp::{sssp, ApspAlgorithm, Params};
/// use qcc_graph::{DiGraph, ExtWeight};
/// use rand::SeedableRng;
///
/// let mut g = DiGraph::new(4);
/// g.add_arc(0, 1, 3);
/// g.add_arc(1, 2, -1);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let r = sssp(&g, 0, Params::paper(), ApspAlgorithm::NaiveBroadcast, &mut rng)?;
/// assert_eq!(r.distances[2], ExtWeight::from(2));
/// assert_eq!(r.distances[3], ExtWeight::PosInf);
/// # Ok::<(), qcc_apsp::ApspError>(())
/// ```
pub fn sssp<R: Rng>(
    g: &DiGraph,
    source: usize,
    params: Params,
    algorithm: ApspAlgorithm,
    rng: &mut R,
) -> Result<SsspReport, ApspError> {
    assert!(source < g.n(), "source out of range");
    let report = apsp(g, params, algorithm, rng)?;
    let distances = (0..g.n()).map(|v| report.distances[(source, v)]).collect();
    Ok(SsspReport {
        source,
        distances,
        rounds: report.rounds,
    })
}

/// Single-source shortest-path *tree*: distances plus an explicit path to
/// every reachable vertex, through the witnessed pipeline.
///
/// Returns the report and the path oracle (paths from any pair, but the
/// caller asked about `source`).
///
/// # Errors
///
/// Propagates [`ApspError`].
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn sssp_with_paths<R: Rng>(
    g: &DiGraph,
    source: usize,
    params: Params,
    backend: SearchBackend,
    rng: &mut R,
) -> Result<(SsspReport, PathOracle), ApspError> {
    assert!(source < g.n(), "source out of range");
    let report = apsp_with_paths(g, params, backend, rng)?;
    let distances: Vec<ExtWeight> = (0..g.n())
        .map(|v| report.oracle.distances()[(source, v)])
        .collect();
    Ok((
        SsspReport {
            source,
            distances,
            rounds: report.rounds,
        },
        report.oracle,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_graph::{bellman_ford, path_weight, random_reweighted_digraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sssp_matches_bellman_ford() {
        let mut rng = StdRng::seed_from_u64(801);
        let g = random_reweighted_digraph(10, 0.4, 6, &mut rng);
        let bf = bellman_ford(&g, 3).unwrap();
        let r = sssp(
            &g,
            3,
            Params::paper(),
            ApspAlgorithm::SemiringSquaring,
            &mut rng,
        )
        .unwrap();
        assert_eq!(r.distances, bf);
        assert_eq!(r.source, 3);
    }

    #[test]
    fn sssp_paths_are_consistent() {
        let mut rng = StdRng::seed_from_u64(802);
        let g = random_reweighted_digraph(7, 0.5, 4, &mut rng);
        let (r, oracle) =
            sssp_with_paths(&g, 0, Params::paper(), SearchBackend::Classical, &mut rng).unwrap();
        for v in 1..7 {
            match oracle.path(0, v) {
                Some(path) => {
                    let w = path_weight(&g, &path).expect("valid hops");
                    assert_eq!(ExtWeight::from(w), r.distances[v], "v = {v}");
                }
                None => assert_eq!(r.distances[v], ExtWeight::PosInf),
            }
        }
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn out_of_range_source_is_rejected() {
        let g = DiGraph::new(3);
        let mut rng = StdRng::seed_from_u64(803);
        let _ = sssp(
            &g,
            5,
            Params::paper(),
            ApspAlgorithm::NaiveBroadcast,
            &mut rng,
        );
    }
}
