//! Wire-format helpers: payloads with explicit bit sizes.

use qcc_congest::Payload;

/// A payload wrapper carrying an explicit wire size in bits.
///
/// The CONGEST-CLIQUE model charges by bits; field widths depend on the
/// instance (`⌈log₂ n⌉` per vertex id, `⌈log₂ W⌉` per weight), so the
/// senders compute sizes at call sites and attach them here.
///
/// # Examples
///
/// ```
/// use qcc_apsp::Wire;
/// use qcc_congest::Payload;
///
/// let msg = Wire::new((3usize, 5usize), 16);
/// assert_eq!(msg.bit_size(), 16);
/// assert_eq!(msg.value, (3, 5));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Wire<T> {
    /// The message content.
    pub value: T,
    /// Declared wire size in bits.
    pub bits: u64,
}

impl<T> Wire<T> {
    /// Wraps `value` with its wire size.
    pub fn new(value: T, bits: u64) -> Self {
        Wire { value, bits }
    }
}

impl<T: Clone> Payload for Wire<T> {
    fn bit_size(&self) -> u64 {
        self.bits
    }
}

/// Wire size of one unordered vertex pair over `n` vertices.
pub fn pair_bits(n: usize) -> u64 {
    2 * qcc_congest::bits_for_count(n)
}

/// Wire size of one signed weight with magnitude at most `w_mag`.
pub fn weight_bits(w_mag: u64) -> u64 {
    qcc_congest::bits_for_weight_range(w_mag.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_reports_declared_bits() {
        let w = Wire::new(vec![1u8, 2], 100);
        assert_eq!(w.bit_size(), 100);
    }

    #[test]
    fn pair_bits_scale_with_log_n() {
        assert_eq!(pair_bits(256), 16);
        assert_eq!(pair_bits(257), 18);
    }

    #[test]
    fn weight_bits_cover_sign_and_infinity() {
        assert!(weight_bits(8) >= 5);
        assert!(weight_bits(0) >= 1);
    }
}
