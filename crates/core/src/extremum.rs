//! Distance parameters: eccentricities, diameter, radius.
//!
//! Le Gall–Magniez (PODC 2018) introduced the distributed quantum search
//! framework this repo's APSP pipeline builds on *for the diameter*: once
//! every node `v` knows its row of the distance matrix, its eccentricity
//! `ecc(v) = max_u d(v, u)` is local knowledge, and the diameter
//! `max_v ecc(v)` (or radius `min_v ecc(v)`) is an extremum over `n`
//! node-held values — exactly the shape Dürr–Høyer minimum finding solves
//! with `O(√n)` oracle evaluations instead of a classical `n`-value scan
//! (see also Wang–Wu–Yao, arXiv:2206.02766, which treats these distance
//! parameters as first-class quantum CONGEST problems).
//!
//! This module runs that search *through the network*: the coordinator's
//! threshold walk is simulated exactly (the amplitude math is local and
//! free, as everywhere in [`qcc_quantum`]), but every oracle evaluation it
//! would make is executed as a real query/answer exchange on the
//! [`Clique`], so rounds are charged honestly and injected faults can hit
//! the wire. A classical scan baseline ([`classical_extremum_scan`])
//! gathers all `n` values in `O(1)` rounds — fewer rounds, `n` value
//! *evaluations*; the quantum search wins on evaluations, which is what
//! `exp_distance_params` measures.
//!
//! ## Disconnected graphs
//!
//! A vertex that cannot reach some other vertex has `ecc(v) = +∞`
//! ([`ExtWeight::PosInf`]), **not** 0 — so a disconnected digraph reports
//! diameter `+∞` rather than silently underestimating (the bug the old
//! `examples/diameter.rs` had). The radius can still be finite on such a
//! graph: a center vertex may reach everything even when some other vertex
//! reaches nothing. [`DistanceParamReport::connected`] makes the
//! distinction explicit.
//!
//! ## The Las-Vegas loop
//!
//! Like the APSP driver, the search stage is wrapped in attempt → certify
//! → retry → fallback: a claimed extremum `(v, x)` is checked by
//! broadcasting it and letting every node flag a violation (its own value
//! is strictly better, or it is the claimed witness and disagrees), then
//! [`Clique::agree_any`]. Faults only ever *discard* messages (corruption
//! is detected-and-dropped), so a search can stall or lose answers but
//! never deliver a mangled value — the certificate catches exactly the
//! failures that can occur. The verifier and the classical fallback always
//! run over a hardened reliable envelope.

use crate::apsp::{apsp_configured, ApspAlgorithm};
use crate::driver::{apsp_driver, hardened, DriverConfig, FallbackPolicy};
use crate::params::Params;
use crate::ApspError;
use qcc_congest::{Clique, Envelope, NetConfig, NodeId, TraceSink};
use qcc_graph::{DiGraph, ExtWeight, WeightMatrix};
use qcc_quantum::{GroverAmplitudes, DEFAULT_STAGE_ATTEMPTS};
use rand::Rng;

/// Salt decoupling the search attempts' fault randomness from the APSP
/// stage's (which reseeds with the bare attempt index).
const SEARCH_SALT: u64 = 0xecc5_0000;
/// Salt for the extremum verifier's fault randomness.
const SEARCH_VERIFY_SALT: u64 = 0xecc5_5eed;
/// Salt for the classical-scan fallback's fault randomness.
const SEARCH_FALLBACK_SALT: u64 = 0xecc5_fa11;

/// Which distance parameter to compute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DistanceParam {
    /// `max_v ecc(v)` — the largest shortest-path distance in the graph.
    Diameter,
    /// `min_v ecc(v)` — the best worst-case distance from any center.
    Radius,
    /// The full vector `ecc(0), …, ecc(n−1)`, gathered at the coordinator.
    Eccentricities,
}

impl DistanceParam {
    /// The lowercase CLI / report label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DistanceParam::Diameter => "diameter",
            DistanceParam::Radius => "radius",
            DistanceParam::Eccentricities => "eccentricities",
        }
    }
}

/// How the extremum over eccentricities is found.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExtremumBackend {
    /// Dürr–Høyer through the network: `O(√n)` expected oracle
    /// evaluations, each a query/answer exchange.
    #[default]
    Quantum,
    /// Gather all `n` values at the coordinator and scan locally: `O(1)`
    /// rounds, `n` evaluations.
    ClassicalScan,
}

impl ExtremumBackend {
    /// The lowercase CLI / report label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ExtremumBackend::Quantum => "quantum",
            ExtremumBackend::ClassicalScan => "scan",
        }
    }
}

/// Configuration of a [`distance_params`] run.
#[derive(Clone, Debug)]
pub struct ExtremumConfig {
    /// Which parameter to compute.
    pub param: DistanceParam,
    /// The APSP algorithm computing the distance matrix.
    pub algorithm: ApspAlgorithm,
    /// Paper constants for the APSP pipelines.
    pub params: Params,
    /// How the extremum search stage runs.
    pub backend: ExtremumBackend,
    /// Per-stage BBHT attempt budget of the quantum search; an exhausted
    /// stage aborts the attempt (typed, retryable) instead of guessing.
    pub stage_attempts: u32,
    /// Extra attempts after the first, for the APSP stage and the search
    /// stage independently.
    pub max_retries: u32,
    /// Verify the distance matrix (APSP driver certificate) and the
    /// claimed extremum (distributed witness check).
    pub verify: bool,
    /// What to do when the search attempt budget is spent:
    /// [`FallbackPolicy::Semiring`] degrades to the verified classical
    /// scan (and the APSP stage to the semiring baseline), `Fail` reports.
    pub fallback: FallbackPolicy,
    /// Fault plan and envelope for every network the run builds.
    pub net: NetConfig,
}

impl ExtremumConfig {
    /// Defaults for `param`: quantum APSP + quantum search, 3 retries,
    /// verification on, classical fallback, clean network.
    #[must_use]
    pub fn new(param: DistanceParam) -> Self {
        ExtremumConfig {
            param,
            algorithm: ApspAlgorithm::QuantumTriangle,
            params: Params::paper(),
            backend: ExtremumBackend::Quantum,
            stage_attempts: DEFAULT_STAGE_ATTEMPTS,
            max_retries: 3,
            verify: true,
            fallback: FallbackPolicy::Semiring,
            net: NetConfig::default(),
        }
    }
}

/// One search-stage attempt (or the fallback) of the Las-Vegas loop.
#[derive(Clone, Debug)]
pub struct SearchAttempt {
    /// Attempt index (`0`-based; the fallback reuses the next index).
    pub attempt: u32,
    /// Backend this attempt ran.
    pub backend: ExtremumBackend,
    /// Rounds charged, verification and wasted work included.
    pub rounds: u64,
    /// Distributed oracle evaluations performed.
    pub evaluations: u64,
    /// Certificate verdict; `None` when verification was skipped or the
    /// attempt died first.
    pub verified: Option<bool>,
    /// The typed error that ended the attempt, if one did.
    pub error: Option<String>,
    /// `true` for the fallback entry.
    pub fallback: bool,
}

/// Result of a [`distance_params`] run.
#[derive(Clone, Debug)]
pub struct DistanceParamReport {
    /// The parameter computed.
    pub param: DistanceParam,
    /// Number of vertices.
    pub n: usize,
    /// Every vertex's eccentricity (`PosInf` = cannot reach some vertex).
    pub eccentricities: Vec<ExtWeight>,
    /// The parameter's value: the diameter for
    /// [`DistanceParam::Eccentricities`] too (its maximum entry).
    pub value: ExtWeight,
    /// A vertex achieving the extremum; `None` for the full-vector
    /// parameter.
    pub witness: Option<usize>,
    /// `true` iff every vertex reaches every vertex (all `ecc` finite).
    pub connected: bool,
    /// Rounds of the distance stage (APSP, its verification and retries).
    pub distance_rounds: u64,
    /// Rounds of the search stage (all attempts, verification, fallback).
    pub search_rounds: u64,
    /// `distance_rounds + search_rounds`; equals the trace's scaled total.
    pub total_rounds: u64,
    /// Oracle evaluations of the *accepted* search attempt.
    pub evaluations: u64,
    /// Every search-stage attempt in order, the accepted one last.
    pub search_attempts: Vec<SearchAttempt>,
    /// `true` iff both stages' certificates passed (always `false` when
    /// `verify` is off).
    pub verified: bool,
    /// `true` iff either stage degraded to its classical fallback.
    pub used_fallback: bool,
}

/// Per-vertex eccentricities: row maxima of the distance matrix.
///
/// The diagonal (`d(v, v) = 0`) is included, so a single isolated vertex
/// has eccentricity `Finite(0)`; a vertex that cannot reach some other
/// vertex has eccentricity [`ExtWeight::PosInf`] — never 0.
///
/// # Examples
///
/// ```
/// use qcc_apsp::eccentricities;
/// use qcc_graph::{floyd_warshall, DiGraph, ExtWeight};
///
/// let mut g = DiGraph::new(3);
/// g.add_arc(0, 1, 4);
/// g.add_arc(1, 0, 1);
/// // vertex 2 is unreachable and reaches nobody
/// let d = floyd_warshall(&g.adjacency_matrix())?;
/// let ecc = eccentricities(&d);
/// assert_eq!(ecc, vec![ExtWeight::PosInf, ExtWeight::PosInf, ExtWeight::PosInf]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn eccentricities(d: &WeightMatrix) -> Vec<ExtWeight> {
    (0..d.n())
        .map(|v| {
            d.row(v)
                .iter()
                .copied()
                .max()
                .expect("matrix rows are nonempty")
        })
        .collect()
}

/// The diameter: the maximum eccentricity ([`ExtWeight::PosInf`] when the
/// graph is not strongly connected, `None` only for an empty vector).
#[must_use]
pub fn diameter_of(ecc: &[ExtWeight]) -> Option<ExtWeight> {
    ecc.iter().copied().max()
}

/// The radius: the minimum eccentricity. Can be finite on a graph whose
/// diameter is `+∞` — a center may reach everything even when some other
/// vertex reaches nothing.
#[must_use]
pub fn radius_of(ecc: &[ExtWeight]) -> Option<ExtWeight> {
    ecc.iter().copied().min()
}

/// `ExtWeight` on the wire: `(tag, finite value)`, 128 bits.
fn encode_weight(w: ExtWeight) -> (u64, i64) {
    match w {
        ExtWeight::NegInf => (0, 0),
        ExtWeight::Finite(x) => (1, x),
        ExtWeight::PosInf => (2, 0),
    }
}

fn decode_weight(tag: u64, value: i64) -> Result<ExtWeight, ApspError> {
    match tag {
        0 => Ok(ExtWeight::NegInf),
        1 => Ok(ExtWeight::Finite(value)),
        2 => Ok(ExtWeight::PosInf),
        other => Err(ApspError::Internal {
            context: format!("bad weight tag {other} on the wire"),
        }),
    }
}

/// Outcome of one network extremum search (quantum or classical scan).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetworkExtremumOutcome {
    /// Index of the found extremum (a true extremum — both searches are
    /// Las Vegas or typed-failing, never silently wrong).
    pub index: usize,
    /// Its value.
    pub value: ExtWeight,
    /// Distributed oracle evaluations (query/answer exchanges for the
    /// quantum search; `n` for the classical scan).
    pub evaluations: u64,
    /// Grover iterations across all stages (0 for the classical scan).
    pub iterations: u64,
    /// Threshold improvements (0 for the classical scan).
    pub stages: u32,
    /// BBHT measurement attempts (0 for the classical scan).
    pub attempts: u64,
    /// Rounds this search charged on `net`.
    pub rounds: u64,
}

/// One distributed oracle evaluation: the coordinator asks the holder of
/// `idx` for its value (query exchange), the holder answers (answer
/// exchange). On the coordinator's own index both messages are local and
/// free. Lost messages (faults without an envelope) surface as a retryable
/// [`ApspError::Internal`].
fn evaluate_remote(
    values: &[ExtWeight],
    idx: usize,
    net: &mut Clique,
) -> Result<ExtWeight, ApspError> {
    let coordinator = NodeId::new(0);
    let holder = NodeId::new(idx);
    let query = net.exchange(vec![Envelope::new(coordinator, holder, idx as u64)])?;
    let holder_got = query
        .of(holder)
        .iter()
        .any(|&(src, q)| src == coordinator && q as usize == idx);
    let answers = if holder_got {
        vec![Envelope::new(
            holder,
            coordinator,
            encode_weight(values[idx]),
        )]
    } else {
        Vec::new()
    };
    let inboxes = net.exchange(answers)?;
    let answer = inboxes
        .of(coordinator)
        .iter()
        .find(|&&(src, _)| src == holder)
        .map(|&(_, (tag, value))| decode_weight(tag, value));
    match answer {
        Some(w) => w,
        None => Err(ApspError::Internal {
            context: format!("oracle evaluation of node {idx} lost on the wire"),
        }),
    }
}

/// Dürr–Høyer extremum search executed through the network.
///
/// Node `i` holds `values[i]`; the coordinator (node 0) runs the threshold
/// walk. The walk itself is the exact simulation of
/// [`qcc_quantum::quantum_minimum_bounded`] — the strict-improvement
/// census and the per-stage Grover amplitudes are computed locally and
/// free — but every oracle evaluation the quantum algorithm performs is
/// executed as a real query/answer exchange: `k` superposition-sampled
/// queries per `k`-iteration BBHT attempt plus one evaluation of the
/// measured item, and one evaluation of the initial threshold. The final
/// answer is broadcast so every node learns it.
///
/// # Errors
///
/// * [`ApspError::StageAborted`] when a stage exhausts `stage_attempts`
///   BBHT attempts (retryable; the caller restarts with fresh randomness).
/// * [`ApspError::Internal`] when an injected fault swallows a query or
///   answer on an envelope-less network (retryable).
/// * Network errors ([`ApspError::Congest`]) from the exchanges.
///
/// # Panics
///
/// Panics if `values` is empty, its length differs from `net.n()`, or
/// `stage_attempts == 0`.
pub fn network_extremum<R: Rng>(
    values: &[ExtWeight],
    maximize: bool,
    stage_attempts: u32,
    net: &mut Clique,
    rng: &mut R,
) -> Result<NetworkExtremumOutcome, ApspError> {
    assert!(!values.is_empty(), "empty domain");
    assert_eq!(values.len(), net.n(), "one value per node");
    assert!(stage_attempts > 0, "zero attempt budget");
    let n = values.len();
    // `maximize` flips the order by comparing under the reversed key, the
    // same trick `quantum_maximum` uses (no negation, no overflow).
    let better = |a: ExtWeight, b: ExtWeight| if maximize { a > b } else { a < b };

    let mut evaluations = 0u64;
    let mut iterations = 0u64;
    let mut stages = 0u32;
    let mut attempts = 0u64;

    let mut threshold_idx = rng.gen_range(0..n);
    let mut threshold_val = evaluate_remote(values, threshold_idx, net)?;
    evaluations += 1;

    loop {
        let mut below = Vec::new();
        let mut rest = Vec::new();
        for (i, &v) in values.iter().enumerate() {
            if better(v, threshold_val) {
                below.push(i);
            } else {
                rest.push(i);
            }
        }
        if below.is_empty() {
            // Announce the extremum so every node knows it.
            net.broadcast(
                NodeId::new(0),
                (threshold_idx as u64, encode_weight(threshold_val)),
            )?;
            return Ok(NetworkExtremumOutcome {
                index: threshold_idx,
                value: threshold_val,
                evaluations,
                iterations,
                stages,
                attempts,
                rounds: net.rounds(),
            });
        }
        let amp = GroverAmplitudes::new(n, below.len());
        let k_max = GroverAmplitudes::max_useful_iterations(n);
        let probs: Vec<f64> = (0..=k_max)
            .map(|k| amp.query_solution_probability(k).clamp(0.0, 1.0))
            .collect();
        let mut stage_attempt = 0u32;
        loop {
            let k = rng.gen_range(0..=k_max);
            attempts += 1;
            iterations += k;
            stage_attempt += 1;
            // The k Grover iterations: one distributed evaluation each, on
            // a query sampled from the current superposition.
            for j in 1..=k {
                let side = if rest.is_empty() || rng.gen_bool(probs[j as usize]) {
                    &below
                } else {
                    &rest
                };
                let q = side[rng.gen_range(0..side.len())];
                let got = evaluate_remote(values, q, net)?;
                evaluations += 1;
                debug_assert_eq!(got, values[q]);
            }
            // Measure, then evaluate the measured item against the
            // threshold (one more distributed evaluation either way).
            let success =
                rest.is_empty() || rng.gen_bool(amp.success_probability(k).clamp(0.0, 1.0));
            let measured = if success {
                below[rng.gen_range(0..below.len())]
            } else {
                rest[rng.gen_range(0..rest.len())]
            };
            let measured_val = evaluate_remote(values, measured, net)?;
            evaluations += 1;
            if success {
                threshold_idx = measured;
                threshold_val = measured_val;
                stages += 1;
                break;
            }
            if stage_attempt >= stage_attempts {
                return Err(ApspError::StageAborted {
                    stage: "extremum-search",
                    attempts: stage_attempts,
                });
            }
        }
    }
}

/// The classical baseline: every node sends its value to the coordinator
/// (one exchange — links are parallel, so `O(1)` rounds), which scans the
/// `n` values locally and broadcasts the winner. Ties break toward the
/// lowest index.
///
/// # Errors
///
/// * [`ApspError::Internal`] when some value never arrives (faults without
///   an envelope; retryable).
/// * Network errors from the exchanges.
///
/// # Panics
///
/// Panics if `values` is empty or its length differs from `net.n()`.
pub fn classical_extremum_scan(
    values: &[ExtWeight],
    maximize: bool,
    net: &mut Clique,
) -> Result<NetworkExtremumOutcome, ApspError> {
    assert!(!values.is_empty(), "empty domain");
    assert_eq!(values.len(), net.n(), "one value per node");
    let n = values.len();
    let coordinator = NodeId::new(0);
    let sends: Vec<Envelope<(u64, i64)>> = (1..n)
        .map(|i| Envelope::new(NodeId::new(i), coordinator, encode_weight(values[i])))
        .collect();
    let inboxes = net.exchange(sends)?;
    let mut gathered: Vec<Option<ExtWeight>> = vec![None; n];
    gathered[0] = Some(values[0]);
    for &(src, (tag, value)) in inboxes.of(coordinator) {
        gathered[src.index()] = Some(decode_weight(tag, value)?);
    }
    let missing = gathered.iter().filter(|g| g.is_none()).count();
    if missing > 0 {
        return Err(ApspError::Internal {
            context: format!("classical scan lost {missing} of {n} values on the wire"),
        });
    }
    let better = |a: ExtWeight, b: ExtWeight| if maximize { a > b } else { a < b };
    let mut best = 0usize;
    for (i, g) in gathered.iter().enumerate().skip(1) {
        let v = g.expect("checked above");
        if better(v, gathered[best].expect("checked above")) {
            best = i;
        }
    }
    let value = gathered[best].expect("checked above");
    net.broadcast(coordinator, (best as u64, encode_weight(value)))?;
    Ok(NetworkExtremumOutcome {
        index: best,
        value,
        evaluations: n as u64,
        iterations: 0,
        stages: 0,
        attempts: 0,
        rounds: net.rounds(),
    })
}

/// The distributed extremum certificate: the coordinator broadcasts the
/// claim `(index, value)`; every node flags a violation if its own value
/// is strictly better than the claim, or if it *is* the claimed witness
/// and its value disagrees; [`Clique::agree_any`] combines the flags.
/// Returns `(verdict, rounds)`.
///
/// # Errors
///
/// [`ApspError::Faulted`] when the certificate's own messages die on the
/// (fault-injected) network — the attempt then proves nothing either way.
fn certify_extremum(
    values: &[ExtWeight],
    claim_idx: usize,
    claim_val: ExtWeight,
    maximize: bool,
    netcfg: &NetConfig,
    trace: Option<&TraceSink>,
    label: &str,
) -> Result<(bool, u64), ApspError> {
    let n = values.len();
    let mut net = Clique::new(n)?;
    if let Some(sink) = trace {
        net.set_trace_sink(sink.clone());
    }
    netcfg.apply(&mut net);
    net.push_span(label);
    let result = certify_extremum_on(values, claim_idx, claim_val, maximize, &mut net);
    match result {
        Ok(verdict) => {
            net.close_all_spans();
            Ok((verdict, net.rounds()))
        }
        Err(e) => {
            net.close_all_spans();
            Err(ApspError::faulted(net.rounds(), e))
        }
    }
}

fn certify_extremum_on(
    values: &[ExtWeight],
    claim_idx: usize,
    claim_val: ExtWeight,
    maximize: bool,
    net: &mut Clique,
) -> Result<bool, ApspError> {
    let n = values.len();
    if claim_idx >= n {
        return Ok(false);
    }
    let coordinator = NodeId::new(0);
    let inboxes = net.broadcast(coordinator, (claim_idx as u64, encode_weight(claim_val)))?;
    let better = |a: ExtWeight, b: ExtWeight| if maximize { a > b } else { a < b };
    let mut flags = vec![false; n];
    for (i, flag) in flags.iter_mut().enumerate() {
        let heard = if i == 0 {
            true // the coordinator knows its own claim
        } else {
            inboxes.of(NodeId::new(i)).iter().any(|&(src, (idx, w))| {
                src == coordinator && idx as usize == claim_idx && w == encode_weight(claim_val)
            })
        };
        if !heard {
            // A node that never heard the claim cannot endorse it.
            return Err(ApspError::Internal {
                context: format!("extremum claim broadcast lost before node {i}"),
            });
        }
        *flag = better(values[i], claim_val) || (i == claim_idx && values[i] != claim_val);
    }
    let violated = net.agree_any(&flags)?;
    Ok(!violated)
}

/// Gather of every node's eccentricity at the coordinator — the
/// full-vector parameter's "search". Charges one exchange; a lost value
/// (faults without an envelope) is a retryable [`ApspError::Internal`].
fn gather_eccentricities(
    ecc: &[ExtWeight],
    net: &mut Clique,
) -> Result<NetworkExtremumOutcome, ApspError> {
    let n = ecc.len();
    let coordinator = NodeId::new(0);
    let sends: Vec<Envelope<(u64, i64)>> = (1..n)
        .map(|i| Envelope::new(NodeId::new(i), coordinator, encode_weight(ecc[i])))
        .collect();
    let inboxes = net.exchange(sends)?;
    let mut seen = vec![false; n];
    seen[0] = true;
    for &(src, (tag, value)) in inboxes.of(coordinator) {
        decode_weight(tag, value)?;
        seen[src.index()] = true;
    }
    let missing = seen.iter().filter(|s| !**s).count();
    if missing > 0 {
        return Err(ApspError::Internal {
            context: format!("eccentricity gather lost {missing} of {n} values on the wire"),
        });
    }
    Ok(NetworkExtremumOutcome {
        index: 0,
        value: ecc[0],
        evaluations: n as u64,
        iterations: 0,
        stages: 0,
        attempts: 0,
        rounds: net.rounds(),
    })
}

/// Computes a distance parameter end to end: APSP distances (through the
/// Las-Vegas APSP driver when verification or faults are in play), local
/// eccentricities, then the extremum search stage with its own Las-Vegas
/// attempt → certify → retry → fallback loop.
///
/// With a trace sink attached, the whole run lives under one
/// `distance-param` root span whose scaled round total equals
/// [`DistanceParamReport::total_rounds`] exactly (`qcc trace-summary
/// --expect-rounds` checks this).
///
/// # Errors
///
/// * Propagated APSP errors from the distance stage.
/// * [`ApspError::VerificationFailed`] when no search attempt (fallback
///   included) produced a certified extremum.
/// * The last typed error when the budget runs out under
///   [`FallbackPolicy::Fail`].
///
/// # Examples
///
/// ```
/// use qcc_apsp::{distance_params, DistanceParam, ExtremumConfig};
/// use qcc_graph::{DiGraph, ExtWeight};
/// use rand::SeedableRng;
///
/// let mut g = DiGraph::new(4);
/// for v in 0..4 {
///     g.add_arc(v, (v + 1) % 4, 1);
/// }
/// let cfg = ExtremumConfig::new(DistanceParam::Diameter);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let report = distance_params(&g, &cfg, &mut rng, None)?;
/// assert_eq!(report.value, ExtWeight::from(3));
/// assert!(report.connected && report.verified);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn distance_params<R: Rng>(
    g: &DiGraph,
    cfg: &ExtremumConfig,
    rng: &mut R,
    trace: Option<&TraceSink>,
) -> Result<DistanceParamReport, ApspError> {
    if let Some(sink) = trace {
        sink.open_span("distance-param");
    }
    let result = run_distance_params(g, cfg, rng, trace);
    if let Some(sink) = trace {
        sink.close_span();
    }
    result
}

fn run_distance_params<R: Rng>(
    g: &DiGraph,
    cfg: &ExtremumConfig,
    rng: &mut R,
    trace: Option<&TraceSink>,
) -> Result<DistanceParamReport, ApspError> {
    // Stage 1: distances. The driver (with its certificate and retries)
    // engages whenever verification is requested or the network is not
    // clean; a plain run keeps the cheap single-shot path.
    let (distances, distance_rounds, apsp_verified, apsp_fallback) =
        if cfg.verify || !cfg.net.is_default() {
            let dcfg = DriverConfig {
                algorithm: cfg.algorithm,
                params: cfg.params,
                max_retries: cfg.max_retries,
                verify: cfg.verify,
                fallback: cfg.fallback,
                net: cfg.net.clone(),
            };
            let out = apsp_driver(g, &dcfg, rng, trace)?;
            (
                out.report.distances,
                out.total_rounds,
                out.verified,
                out.used_fallback,
            )
        } else {
            let report = apsp_configured(g, cfg.params, cfg.algorithm, rng, trace, &cfg.net)?;
            (report.distances, report.rounds, false, false)
        };

    // Stage 2: eccentricities, local to each node's row — free.
    let ecc = eccentricities(&distances);
    let connected = ecc.iter().all(|e| e.is_finite());

    // Stage 3: the extremum search (or the full-vector gather).
    let maximize = match cfg.param {
        DistanceParam::Radius => false,
        DistanceParam::Diameter | DistanceParam::Eccentricities => true,
    };
    let stage = search_stage(&ecc, maximize, cfg, rng, trace)?;

    let value = match cfg.param {
        DistanceParam::Eccentricities => diameter_of(&ecc).expect("n > 0"),
        _ => stage.value,
    };
    let total_rounds = distance_rounds + stage.rounds;
    Ok(DistanceParamReport {
        param: cfg.param,
        n: g.n(),
        eccentricities: ecc,
        value,
        witness: match cfg.param {
            DistanceParam::Eccentricities => None,
            _ => Some(stage.index),
        },
        connected,
        distance_rounds,
        search_rounds: stage.rounds,
        total_rounds,
        evaluations: stage.evaluations,
        search_attempts: stage.attempts,
        verified: cfg.verify && apsp_verified_or_plain(cfg, apsp_verified) && stage.verified,
        used_fallback: apsp_fallback || stage.used_fallback,
    })
}

/// On a clean unverified-distance path the APSP stage has no certificate;
/// `verified` then reflects the search stage only when the driver ran.
fn apsp_verified_or_plain(cfg: &ExtremumConfig, apsp_verified: bool) -> bool {
    if cfg.verify || !cfg.net.is_default() {
        apsp_verified
    } else {
        true
    }
}

/// What one search-stage attempt actually runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SearchKind {
    /// An extremum search with the given backend.
    Extremum(ExtremumBackend),
    /// The full-vector gather (no claim, nothing to certify).
    Gather,
}

/// Accumulated outcome of the search stage's Las-Vegas loop.
struct StageOutcome {
    index: usize,
    value: ExtWeight,
    evaluations: u64,
    rounds: u64,
    attempts: Vec<SearchAttempt>,
    verified: bool,
    used_fallback: bool,
}

fn search_stage<R: Rng>(
    ecc: &[ExtWeight],
    maximize: bool,
    cfg: &ExtremumConfig,
    rng: &mut R,
    trace: Option<&TraceSink>,
) -> Result<StageOutcome, ApspError> {
    let mut attempts: Vec<SearchAttempt> = Vec::new();
    let mut total_rounds = 0u64;
    let mut last_error: Option<ApspError> = None;
    let kind = if cfg.param == DistanceParam::Eccentricities {
        SearchKind::Gather
    } else {
        SearchKind::Extremum(cfg.backend)
    };

    for attempt in 0..=cfg.max_retries {
        let label = format!("ext-attempt-{attempt}");
        let netcfg = cfg.net.reseeded(SEARCH_SALT + u64::from(attempt));
        let run = run_search(
            ecc,
            maximize,
            kind,
            cfg.stage_attempts,
            &netcfg,
            rng,
            trace,
            &label,
        );
        match run {
            Ok(out) => {
                let mut rounds = out.rounds;
                let verdict = if cfg.verify && cfg.param != DistanceParam::Eccentricities {
                    match certify_extremum(
                        ecc,
                        out.index,
                        out.value,
                        maximize,
                        &hardened(&cfg.net, SEARCH_VERIFY_SALT + u64::from(attempt)),
                        trace,
                        &format!("ext-verify-{attempt}"),
                    ) {
                        Ok((ok, vrounds)) => {
                            rounds += vrounds;
                            Some(ok)
                        }
                        Err(e) => {
                            rounds += e.rounds_charged();
                            total_rounds += rounds;
                            attempts.push(SearchAttempt {
                                attempt,
                                backend: cfg.backend,
                                rounds,
                                evaluations: out.evaluations,
                                verified: None,
                                error: Some(e.to_string()),
                                fallback: false,
                            });
                            if !e.is_retryable() {
                                return Err(e);
                            }
                            last_error = Some(e);
                            continue;
                        }
                    }
                } else {
                    None
                };
                total_rounds += rounds;
                attempts.push(SearchAttempt {
                    attempt,
                    backend: cfg.backend,
                    rounds,
                    evaluations: out.evaluations,
                    verified: verdict,
                    error: None,
                    fallback: false,
                });
                if verdict.unwrap_or(true) {
                    return Ok(StageOutcome {
                        index: out.index,
                        value: out.value,
                        evaluations: out.evaluations,
                        rounds: total_rounds,
                        attempts,
                        verified: verdict.unwrap_or(cfg.verify),
                        used_fallback: false,
                    });
                }
            }
            Err(e) => {
                let rounds = e.rounds_charged();
                total_rounds += rounds;
                attempts.push(SearchAttempt {
                    attempt,
                    backend: cfg.backend,
                    rounds,
                    evaluations: 0,
                    verified: None,
                    error: Some(e.to_string()),
                    fallback: false,
                });
                if !e.is_retryable() {
                    return Err(e);
                }
                last_error = Some(e);
            }
        }
    }

    match cfg.fallback {
        FallbackPolicy::Fail => match last_error {
            Some(e) => Err(e),
            None => Err(ApspError::VerificationFailed {
                attempts: attempts.len() as u32,
            }),
        },
        FallbackPolicy::Semiring => {
            // The last resort: the classical scan (or gather) under a
            // forced reliable envelope, verified like any other attempt.
            let attempt = cfg.max_retries + 1;
            let netcfg = hardened(&cfg.net, SEARCH_FALLBACK_SALT);
            let fb_kind = match kind {
                SearchKind::Gather => SearchKind::Gather,
                SearchKind::Extremum(_) => SearchKind::Extremum(ExtremumBackend::ClassicalScan),
            };
            let out = run_search(
                ecc,
                maximize,
                fb_kind,
                cfg.stage_attempts,
                &netcfg,
                rng,
                trace,
                "ext-fallback",
            )
            .map_err(|e| {
                if e.is_retryable() {
                    ApspError::VerificationFailed {
                        attempts: attempt + 1,
                    }
                } else {
                    e
                }
            })?;
            let mut rounds = out.rounds;
            let verdict = if cfg.verify && cfg.param != DistanceParam::Eccentricities {
                let (ok, vrounds) = certify_extremum(
                    ecc,
                    out.index,
                    out.value,
                    maximize,
                    &hardened(&cfg.net, SEARCH_VERIFY_SALT + u64::from(attempt)),
                    trace,
                    "ext-verify-fallback",
                )?;
                rounds += vrounds;
                Some(ok)
            } else {
                None
            };
            total_rounds += rounds;
            attempts.push(SearchAttempt {
                attempt,
                backend: ExtremumBackend::ClassicalScan,
                rounds,
                evaluations: out.evaluations,
                verified: verdict,
                error: None,
                fallback: true,
            });
            if verdict == Some(false) {
                return Err(ApspError::VerificationFailed {
                    attempts: attempts.len() as u32,
                });
            }
            Ok(StageOutcome {
                index: out.index,
                value: out.value,
                evaluations: out.evaluations,
                rounds: total_rounds,
                attempts,
                verified: verdict.unwrap_or(cfg.verify),
                used_fallback: true,
            })
        }
    }
}

/// Builds a fresh traced network under `netcfg`, runs one search attempt
/// on it (the chosen backend's extremum walk, or the gather for the
/// full-vector parameter), closes its spans, and wraps errors with the
/// rounds already charged.
#[allow(clippy::too_many_arguments)] // internal plumbing, two call sites
fn run_search<R: Rng>(
    ecc: &[ExtWeight],
    maximize: bool,
    kind: SearchKind,
    stage_attempts: u32,
    netcfg: &NetConfig,
    rng: &mut R,
    trace: Option<&TraceSink>,
    label: &str,
) -> Result<NetworkExtremumOutcome, ApspError> {
    let mut net = Clique::new(ecc.len())?;
    if let Some(sink) = trace {
        net.set_trace_sink(sink.clone());
    }
    netcfg.apply(&mut net);
    net.push_span(label);
    let result = match kind {
        SearchKind::Extremum(ExtremumBackend::Quantum) => {
            network_extremum(ecc, maximize, stage_attempts, &mut net, rng)
        }
        SearchKind::Extremum(ExtremumBackend::ClassicalScan) => {
            classical_extremum_scan(ecc, maximize, &mut net)
        }
        SearchKind::Gather => gather_eccentricities(ecc, &mut net),
    };
    match result {
        Ok(out) => {
            net.close_all_spans();
            Ok(out)
        }
        Err(e) => {
            net.close_all_spans();
            Err(ApspError::faulted(net.rounds(), e))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_congest::FaultPlan;
    use qcc_graph::{floyd_warshall, random_reweighted_digraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring(n: usize) -> DiGraph {
        let mut g = DiGraph::new(n);
        for v in 0..n {
            g.add_arc(v, (v + 1) % n, 1);
        }
        g
    }

    fn true_ecc(g: &DiGraph) -> Vec<ExtWeight> {
        eccentricities(&floyd_warshall(&g.adjacency_matrix()).unwrap())
    }

    #[test]
    fn eccentricities_are_row_maxima_with_honest_infinities() {
        let mut g = DiGraph::new(4);
        g.add_arc(0, 1, 2);
        g.add_arc(1, 0, 3);
        // vertices 2, 3 isolated
        let ecc = true_ecc(&g);
        assert_eq!(ecc[0], ExtWeight::PosInf);
        assert_eq!(ecc[2], ExtWeight::PosInf, "an isolated vertex is not ecc 0");
        assert_eq!(diameter_of(&ecc), Some(ExtWeight::PosInf));
    }

    #[test]
    fn single_vertex_graph_has_zero_everything() {
        let g = DiGraph::new(1);
        let ecc = true_ecc(&g);
        assert_eq!(ecc, vec![ExtWeight::ZERO]);
        assert_eq!(diameter_of(&ecc), Some(ExtWeight::ZERO));
        assert_eq!(radius_of(&ecc), Some(ExtWeight::ZERO));
    }

    #[test]
    fn radius_can_be_finite_on_a_disconnected_digraph() {
        // 0 reaches everything; 2 reaches nothing.
        let mut g = DiGraph::new(3);
        g.add_arc(0, 1, 1);
        g.add_arc(0, 2, 5);
        g.add_arc(1, 2, 1);
        let ecc = true_ecc(&g);
        // ecc(0) = max(d(0,1)=1, d(0,2)=min(5, 1+1)=2) = 2
        assert_eq!(radius_of(&ecc), Some(ExtWeight::from(2)));
        assert_eq!(diameter_of(&ecc), Some(ExtWeight::PosInf));
    }

    #[test]
    fn network_extremum_finds_the_true_extremum_and_charges_rounds() {
        let mut rng = StdRng::seed_from_u64(301);
        let g = ring(16);
        let ecc = true_ecc(&g);
        for maximize in [false, true] {
            let mut net = Clique::new(16).unwrap();
            let out = network_extremum(&ecc, maximize, 64, &mut net, &mut rng).unwrap();
            let want = if maximize {
                *ecc.iter().max().unwrap()
            } else {
                *ecc.iter().min().unwrap()
            };
            assert_eq!(out.value, want);
            assert_eq!(out.value, ecc[out.index]);
            assert!(out.rounds > 0, "evaluations must charge the network");
            assert_eq!(out.rounds, net.rounds());
            assert!(out.evaluations >= 1);
        }
    }

    #[test]
    fn classical_scan_matches_and_uses_n_evaluations() {
        let mut rng = StdRng::seed_from_u64(302);
        let g = random_reweighted_digraph(12, 0.6, 7, &mut rng);
        let ecc = true_ecc(&g);
        let mut net = Clique::new(12).unwrap();
        let out = classical_extremum_scan(&ecc, true, &mut net).unwrap();
        assert_eq!(out.value, *ecc.iter().max().unwrap());
        assert_eq!(out.evaluations, 12);
        assert!(out.rounds >= 2, "gather + winner broadcast");
    }

    #[test]
    fn certificate_accepts_truth_and_rejects_lies() {
        let mut rng = StdRng::seed_from_u64(303);
        let g = random_reweighted_digraph(9, 0.7, 5, &mut rng);
        let ecc = true_ecc(&g);
        let best = (0..9).max_by_key(|&i| ecc[i]).unwrap();
        let clean = NetConfig::default();
        let (ok, rounds) =
            certify_extremum(&ecc, best, ecc[best], true, &clean, None, "v").unwrap();
        assert!(ok);
        assert!(rounds > 0);
        // A non-extremal witness flunks.
        let worst = (0..9).min_by_key(|&i| ecc[i]).unwrap();
        if ecc[worst] != ecc[best] {
            let (ok, _) =
                certify_extremum(&ecc, worst, ecc[worst], true, &clean, None, "v").unwrap();
            assert!(!ok);
        }
        // A wrong value for the right witness flunks.
        let (ok, _) = certify_extremum(
            &ecc,
            best,
            ecc[best] + ExtWeight::from(1),
            true,
            &clean,
            None,
            "v",
        )
        .unwrap();
        assert!(!ok);
    }

    #[test]
    fn quantum_beats_classical_on_evaluations_at_moderate_n() {
        let mut rng = StdRng::seed_from_u64(304);
        let n = 64;
        let g = ring(n);
        let ecc = true_ecc(&g);
        let trials = 20;
        let mut total = 0u64;
        for _ in 0..trials {
            let mut net = Clique::new(n).unwrap();
            let out = network_extremum(&ecc, true, 64, &mut net, &mut rng).unwrap();
            total += out.evaluations;
        }
        let mean = total as f64 / f64::from(trials);
        assert!(
            mean < n as f64,
            "quantum mean evaluations {mean} should beat the classical {n}-scan"
        );
    }

    #[test]
    fn distance_params_end_to_end_on_a_ring() {
        let mut rng = StdRng::seed_from_u64(305);
        let g = ring(8);
        for (param, want) in [
            (DistanceParam::Diameter, ExtWeight::from(7)),
            (DistanceParam::Radius, ExtWeight::from(7)),
        ] {
            let mut cfg = ExtremumConfig::new(param);
            cfg.algorithm = ApspAlgorithm::NaiveBroadcast;
            let report = distance_params(&g, &cfg, &mut rng, None).unwrap();
            assert_eq!(report.value, want);
            assert!(report.connected && report.verified && !report.used_fallback);
            assert_eq!(
                report.total_rounds,
                report.distance_rounds + report.search_rounds
            );
        }
    }

    #[test]
    fn distance_params_reports_disconnection() {
        let mut g = DiGraph::new(6);
        g.add_arc(0, 1, 1);
        g.add_arc(1, 0, 1);
        // vertices 2..6 isolated
        let mut rng = StdRng::seed_from_u64(306);
        let mut cfg = ExtremumConfig::new(DistanceParam::Diameter);
        cfg.algorithm = ApspAlgorithm::NaiveBroadcast;
        let report = distance_params(&g, &cfg, &mut rng, None).unwrap();
        assert!(!report.connected);
        assert_eq!(report.value, ExtWeight::PosInf);
    }

    #[test]
    fn eccentricities_param_gathers_the_full_vector() {
        let mut rng = StdRng::seed_from_u64(307);
        let g = ring(7);
        let mut cfg = ExtremumConfig::new(DistanceParam::Eccentricities);
        cfg.algorithm = ApspAlgorithm::NaiveBroadcast;
        let report = distance_params(&g, &cfg, &mut rng, None).unwrap();
        assert_eq!(report.eccentricities, true_ecc(&g));
        assert!(report.witness.is_none());
        assert_eq!(report.value, ExtWeight::from(6), "value is the max entry");
        assert!(report.search_rounds > 0, "the gather must be charged");
    }

    #[test]
    fn faulty_run_survives_with_envelope_and_verifies() {
        let mut rng = StdRng::seed_from_u64(308);
        let g = ring(9);
        let mut cfg = ExtremumConfig::new(DistanceParam::Diameter);
        cfg.algorithm = ApspAlgorithm::NaiveBroadcast;
        cfg.net = NetConfig::faulty(FaultPlan::parse("drop=0.15,seed=5").unwrap());
        let report = distance_params(&g, &cfg, &mut rng, None).unwrap();
        assert_eq!(report.value, ExtWeight::from(8));
        assert!(report.verified);
    }

    #[test]
    fn scan_backend_works_through_the_driver() {
        let mut rng = StdRng::seed_from_u64(309);
        let g = ring(10);
        let mut cfg = ExtremumConfig::new(DistanceParam::Radius);
        cfg.algorithm = ApspAlgorithm::NaiveBroadcast;
        cfg.backend = ExtremumBackend::ClassicalScan;
        let report = distance_params(&g, &cfg, &mut rng, None).unwrap();
        assert_eq!(report.value, ExtWeight::from(9));
        assert_eq!(report.evaluations, 10);
    }
}
