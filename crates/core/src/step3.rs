//! Step 3 of ComputePairs: the parallel searches (Figure 3).
//!
//! After `IdentifyClass` partitions the triples into classes `{T_α}`, each
//! search node `(u, v, x)` runs, for every kept pair `{u, v}`, one search
//! per class: "is there a fine block `w ∈ T_α[u, v]` containing an apex of
//! a negative triangle through `{u, v}`?". The quantum implementation runs
//! all these searches as lockstep Grover iterations sharing the joint
//! evaluation procedures of Figures 4–5 (`O~(n^{1/4})` rounds total); the
//! classical baseline simply scans every fine block (`O~(√n)` rounds).

use crate::eval_procedure::{
    evaluate_joint, evaluate_joint_unbounded, AlphaContext, ChargeOnlyEval, EvalJointError,
    EvalQuery,
};
use crate::gather::GatheredWeights;
use crate::identify_class::ClassAssignment;
use crate::instance::Instance;
use crate::lambda::{KeptPair, LambdaCover};
use crate::problem::PairSet;
use crate::ApspError;
use qcc_quantum::{repetitions_for_target, GroverAmplitudes};
use rand::Rng;
use std::collections::HashMap;
use std::rc::Rc;

/// Which Step-3 implementation to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SearchBackend {
    /// Lockstep parallel Grover searches (Theorem 2, `O~(n^{1/4})` rounds).
    Quantum,
    /// Exhaustive scan over the fine blocks (`O~(√n)` rounds).
    Classical,
}

/// A confirmed pair together with the fine block whose apex witnessed it.
///
/// Witnesses come straight from the verified measurement (quantum) or the
/// confirming scan step (classical); `block` always contains at least one
/// apex completing a negative triangle with `{u, v}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct FoundWitness {
    /// Smaller endpoint of the pair.
    pub u: usize,
    /// Larger endpoint of the pair.
    pub v: usize,
    /// Index of the witnessing fine block.
    pub block: usize,
}

/// Full result of a Step-3 run.
#[derive(Clone, Debug)]
pub struct Step3Output {
    /// The pairs confirmed to sit in a negative triangle.
    pub found: PairSet,
    /// One witnessing fine block per confirmation event (a pair may appear
    /// with several blocks; every listed block holds a real apex).
    pub witnesses: Vec<FoundWitness>,
    /// Run diagnostics.
    pub stats: Step3Stats,
}

/// Diagnostics of a Step-3 run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Step3Stats {
    /// Total parallel searches executed.
    pub searches: usize,
    /// Lockstep Grover iterations (0 for the classical backend).
    pub iterations: u64,
    /// Joint evaluation calls.
    pub eval_calls: u64,
    /// Queries the truncated evaluator rejected as atypical.
    pub typicality_violations: u64,
    /// Amplification repetitions (per class, summed).
    pub repetitions: u64,
}

/// A domain's census for one pair: the split into solution / non-solution
/// indices. Shared (`Rc`) between all parallel-search labels `x` querying
/// the same pair over the same `(bu, bv)` domain — the split depends only
/// on the pair and the blocks, not on `x`.
struct SearchPartition {
    solutions: Vec<usize>,
    non_solutions: Vec<usize>,
}

struct Search {
    search_label: usize,
    pair: KeptPair,
    domain: Rc<Vec<usize>>,
    part: Rc<SearchPartition>,
    amp: GroverAmplitudes,
    /// `query_solution_probability(k)` memoized for `k ∈ 0..=k_max`, so the
    /// per-query sampling avoids recomputing the trigonometry.
    probs: Vec<f64>,
    found: bool,
}

impl Search {
    fn sample_target<R: Rng>(&self, k: u64, rng: &mut R) -> usize {
        self.sample_target_with_answer(k, rng).0
    }

    /// Samples a target block after `k` Grover iterations, together with
    /// the evaluation's (predetermined) answer: a target drawn from the
    /// solution side is exactly one with an apex in its block — the same
    /// boolean the joint evaluation ships back.
    fn sample_target_with_answer<R: Rng>(&self, k: u64, rng: &mut R) -> (usize, bool) {
        let p = self.probs[k as usize];
        let take_solution = if self.part.solutions.is_empty() {
            false
        } else if self.part.non_solutions.is_empty() {
            true
        } else {
            rng.gen_bool(p.clamp(0.0, 1.0))
        };
        let side = if take_solution {
            &self.part.solutions
        } else {
            &self.part.non_solutions
        };
        (
            self.domain[side[rng.gen_range(0..side.len())]],
            take_solution,
        )
    }
}

/// Runs the quantum Step 3 over a prepared class assignment.
///
/// Returns the found pairs and run diagnostics.
///
/// # Errors
///
/// Propagates simulator-level errors; typicality refusals are *not* errors
/// (they are counted in the stats, as Theorem 3's analysis prescribes).
pub fn run_step3_quantum<R: Rng>(
    inst: &Instance<'_>,
    net: &mut qcc_congest::Clique,
    cover: &LambdaCover,
    gathered: &GatheredWeights,
    classes: &ClassAssignment,
    rng: &mut R,
) -> Result<Step3Output, ApspError> {
    let mut found = PairSet::new();
    let mut witnesses: Vec<FoundWitness> = Vec::new();
    let mut stats = Step3Stats::default();

    for alpha in 0..=classes.max_class() {
        let class_labels: Vec<usize> = (0..inst.triples.labeling().label_count())
            .filter(|&t| classes.class_of[t] == alpha)
            .collect();
        if class_labels.is_empty() {
            continue;
        }
        let actx = AlphaContext::build(inst, net, alpha, &class_labels).map_err(ApspError::from)?;

        // Assemble the searches: one per (search node, kept pair) whose
        // block pair has class-α targets.
        let mut domains: HashMap<(usize, usize), Rc<Vec<usize>>> = HashMap::new();
        // The same kept pair is censused once per parallel-search label x;
        // the split only depends on (pair, domain), so the whole partition
        // is shared across labels, with a flat (pair, block)-indexed memo
        // (0 unknown / 1 no / 2 yes) deduplicating the apex scans across
        // overlapping domains.
        let fine = inst.parts.fine.num_blocks();
        let mut apex_memo = vec![0u8; inst.n() * inst.n() * fine];
        let mut partitions: HashMap<(usize, usize, usize, usize), Rc<SearchPartition>> =
            HashMap::new();
        let mut searches: Vec<Search> = Vec::new();
        for (label, (bu, bv, _x)) in inst.searches.triples() {
            let domain = domains
                .entry((bu, bv))
                .or_insert_with(|| Rc::new(classes.t_alpha(inst, bu, bv, alpha)))
                .clone();
            if domain.is_empty() {
                continue;
            }
            for pair in &cover.kept[label] {
                let part = partitions
                    .entry((pair.u, pair.v, bu, bv))
                    .or_insert_with(|| {
                        let mut solutions = Vec::new();
                        let mut non_solutions = Vec::new();
                        for (i, &bw) in domain.iter().enumerate() {
                            let cell = (pair.u * inst.n() + pair.v) * fine + bw;
                            let has = match apex_memo[cell] {
                                0 => {
                                    let h = inst.has_apex_in_block(pair.u, pair.v, bw);
                                    apex_memo[cell] = 1 + u8::from(h);
                                    h
                                }
                                known => known == 2,
                            };
                            if has {
                                solutions.push(i);
                            } else {
                                non_solutions.push(i);
                            }
                        }
                        Rc::new(SearchPartition {
                            solutions,
                            non_solutions,
                        })
                    })
                    .clone();
                let amp = GroverAmplitudes::new(domain.len(), part.solutions.len());
                searches.push(Search {
                    search_label: label,
                    pair: *pair,
                    domain: domain.clone(),
                    part,
                    amp,
                    probs: Vec::new(),
                    found: false,
                });
            }
        }
        if searches.is_empty() {
            continue;
        }
        stats.searches += searches.len();

        let max_domain = searches.iter().map(|s| s.domain.len()).max().unwrap_or(1);
        let k_max = GroverAmplitudes::max_useful_iterations(max_domain);
        for s in &mut searches {
            s.probs = (0..=k_max)
                .map(|k| s.amp.query_solution_probability(k))
                .collect();
        }
        let reps = inst
            .params
            .search_repetitions
            .unwrap_or_else(|| repetitions_for_target(searches.len()));

        // The lockstep iterations consume only the evaluation *charges* (the
        // answers are fixed by the census, as the debug_assert below
        // documents), so on transparent networks a charge-only session
        // replaces the full query materialization. Each search contributes
        // one query per call, so its per-(search, target) lists are bounded
        // by its kept-pair multiplicity — when even the largest is under the
        // typicality cap, the session's skipped Υ_β gate is a no-op too.
        let cap = inst.params.list_cap(inst.n(), actx.alpha);
        let max_per_label = {
            let mut per_label = vec![0u32; inst.searches.labeling().label_count()];
            for s in &searches {
                per_label[s.search_label] += 1;
            }
            per_label.iter().copied().max().unwrap_or(0)
        };
        let mut charge_sess = ChargeOnlyEval::try_new(inst, net, &actx, cap, max_per_label);

        // One query buffer reused across every evaluation call: the per-call
        // query lists are all `searches.len()` long. `measured` stages the
        // session path's positive measurement outcomes, applied only if the
        // evaluation is accepted (a refused tuple confirms nothing).
        let mut queries: Vec<EvalQuery> = Vec::with_capacity(searches.len());
        let mut measured: Vec<(usize, usize)> = Vec::new();
        for _ in 0..reps {
            stats.repetitions += 1;
            let k = rng.gen_range(0..=k_max);
            for i in 0..k {
                stats.eval_calls += 1;
                stats.iterations += 1;
                let outcome = if let Some(sess) = charge_sess.as_mut() {
                    sess.reset();
                    for s in &searches {
                        sess.push(s.search_label, s.sample_target(i, rng));
                    }
                    sess.finish(net)
                } else {
                    queries.clear();
                    queries.extend(searches.iter().map(|s| EvalQuery {
                        search_label: s.search_label,
                        pair: s.pair,
                        target: s.sample_target(i, rng),
                    }));
                    evaluate_joint(inst, net, gathered, &actx, &queries).map(|answers| {
                        debug_assert!(queries.iter().zip(&answers).all(|(q, &a)| {
                            a == inst.has_apex_in_block(q.pair.u, q.pair.v, q.target)
                        }));
                    })
                };
                match outcome {
                    Ok(()) => {}
                    Err(EvalJointError::Atypical(_)) => stats.typicality_violations += 1,
                    Err(EvalJointError::Congest(e)) => return Err(e.into()),
                    Err(EvalJointError::Internal(context)) => {
                        return Err(ApspError::Internal { context })
                    }
                }
            }
            // Measure every search and verify the measured tuple jointly.
            // On the charge-only session the verification answers are the
            // census booleans the sampler already knows (a session error
            // fails the whole run, so the eager found/witness updates are
            // never observed on the error path).
            stats.eval_calls += 1;
            let outcome = if let Some(sess) = charge_sess.as_mut() {
                sess.reset();
                measured.clear();
                for (idx, s) in searches.iter().enumerate() {
                    let (target, answer) = s.sample_target_with_answer(k, rng);
                    sess.push(s.search_label, target);
                    debug_assert!(answer == inst.has_apex_in_block(s.pair.u, s.pair.v, target));
                    if answer {
                        measured.push((idx, target));
                    }
                }
                sess.finish(net).map(|()| {
                    for &(idx, target) in &measured {
                        let s = &mut searches[idx];
                        s.found = true;
                        found.insert(s.pair.u, s.pair.v);
                        witnesses.push(FoundWitness {
                            u: s.pair.u.min(s.pair.v),
                            v: s.pair.u.max(s.pair.v),
                            block: target,
                        });
                    }
                })
            } else {
                queries.clear();
                queries.extend(searches.iter().map(|s| EvalQuery {
                    search_label: s.search_label,
                    pair: s.pair,
                    target: s.sample_target(k, rng),
                }));
                evaluate_joint(inst, net, gathered, &actx, &queries).map(|answers| {
                    for (s, (q, &a)) in searches.iter_mut().zip(queries.iter().zip(&answers)) {
                        if a {
                            s.found = true;
                            found.insert(q.pair.u, q.pair.v);
                            witnesses.push(FoundWitness {
                                u: q.pair.u.min(q.pair.v),
                                v: q.pair.u.max(q.pair.v),
                                block: q.target,
                            });
                        }
                    }
                })
            };
            match outcome {
                Ok(()) => {}
                Err(EvalJointError::Atypical(_)) => stats.typicality_violations += 1,
                Err(EvalJointError::Congest(e)) => return Err(e.into()),
                Err(EvalJointError::Internal(context)) => {
                    return Err(ApspError::Internal { context })
                }
            }
            if searches
                .iter()
                .all(|s| s.found || s.part.solutions.is_empty())
            {
                break;
            }
        }
    }
    witnesses.sort_unstable();
    witnesses.dedup();
    Ok(Step3Output {
        found,
        witnesses,
        stats,
    })
}

/// Runs the classical Step 3: every search node checks every fine block of
/// `V'` in sequence, with no class machinery and no load balancing.
///
/// # Errors
///
/// Propagates simulator-level errors.
pub fn run_step3_classical(
    inst: &Instance<'_>,
    net: &mut qcc_congest::Clique,
    cover: &LambdaCover,
    gathered: &GatheredWeights,
) -> Result<Step3Output, ApspError> {
    let mut found = PairSet::new();
    let mut witnesses: Vec<FoundWitness> = Vec::new();
    let mut stats = Step3Stats {
        searches: cover.total_kept(),
        ..Step3Stats::default()
    };

    // A trivial context: every triple keeps its own data (no duplication).
    let all_labels: Vec<usize> = (0..inst.triples.labeling().label_count()).collect();
    let actx = AlphaContext::build(inst, net, 0, &all_labels).map_err(ApspError::from)?;

    for bw in 0..inst.parts.fine.num_blocks() {
        let queries: Vec<EvalQuery> = cover
            .kept
            .iter()
            .enumerate()
            .flat_map(|(label, pairs)| {
                pairs.iter().map(move |pair| EvalQuery {
                    search_label: label,
                    pair: *pair,
                    target: bw,
                })
            })
            .collect();
        if queries.is_empty() {
            continue;
        }
        stats.eval_calls += 1;
        match evaluate_joint_unbounded(inst, net, gathered, &actx, &queries) {
            Ok(answers) => {
                for (q, &a) in queries.iter().zip(&answers) {
                    if a {
                        found.insert(q.pair.u, q.pair.v);
                        witnesses.push(FoundWitness {
                            u: q.pair.u.min(q.pair.v),
                            v: q.pair.u.max(q.pair.v),
                            block: q.target,
                        });
                    }
                }
            }
            Err(EvalJointError::Atypical(e)) => {
                return Err(ApspError::Internal {
                    context: format!("unbounded evaluator rejected its input: {e}"),
                })
            }
            Err(EvalJointError::Congest(e)) => return Err(e.into()),
            Err(EvalJointError::Internal(context)) => return Err(ApspError::Internal { context }),
        }
    }
    stats.iterations = inst.parts.fine.num_blocks() as u64;
    witnesses.sort_unstable();
    witnesses.dedup();
    Ok(Step3Output {
        found,
        witnesses,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gather::gather_weights;
    use crate::identify_class::identify_class_with_retry;
    use crate::lambda::build_lambda_cover_with_retry;
    use crate::params::Params;
    use crate::problem::{reference_find_edges, PairSet};
    use qcc_congest::Clique;
    use qcc_graph::{book_graph, congestion_hotspot, random_ugraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_quantum(
        g: &qcc_graph::UGraph,
        s: &PairSet,
        params: Params,
        seed: u64,
    ) -> (PairSet, Step3Stats, u64) {
        let inst = Instance::new(g, s, params);
        let mut net = Clique::new(g.n()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let gathered = gather_weights(&inst, &mut net).unwrap();
        let cover = build_lambda_cover_with_retry(&inst, &mut net, 30, &mut rng).unwrap();
        let classes = identify_class_with_retry(&inst, &mut net, 30, &mut rng).unwrap();
        let out =
            run_step3_quantum(&inst, &mut net, &cover, &gathered, &classes, &mut rng).unwrap();
        for w in &out.witnesses {
            assert!(
                inst.has_apex_in_block(w.u, w.v, w.block),
                "witness block {} holds no apex for ({}, {})",
                w.block,
                w.u,
                w.v
            );
        }
        (out.found, out.stats, net.rounds())
    }

    fn run_classical(
        g: &qcc_graph::UGraph,
        s: &PairSet,
        params: Params,
        seed: u64,
    ) -> (PairSet, Step3Stats, u64) {
        let inst = Instance::new(g, s, params);
        let mut net = Clique::new(g.n()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let gathered = gather_weights(&inst, &mut net).unwrap();
        let cover = build_lambda_cover_with_retry(&inst, &mut net, 30, &mut rng).unwrap();
        let out = run_step3_classical(&inst, &mut net, &cover, &gathered).unwrap();
        for w in &out.witnesses {
            assert!(inst.has_apex_in_block(w.u, w.v, w.block));
        }
        (out.found, out.stats, net.rounds())
    }

    #[test]
    fn quantum_step3_finds_planted_pairs_with_paper_constants() {
        let g = book_graph(16, 4);
        let s = PairSet::all_pairs(16);
        let (found, stats, rounds) = run_quantum(&g, &s, Params::paper(), 71);
        let expected = reference_find_edges(&g, &s);
        assert_eq!(found, expected);
        assert!(stats.searches > 0);
        assert!(rounds > 0);
    }

    #[test]
    fn classical_step3_is_exact() {
        let mut rng = StdRng::seed_from_u64(72);
        for _ in 0..3 {
            let g = random_ugraph(16, 0.5, 4, &mut rng);
            let s = PairSet::all_pairs(16);
            let (found, _stats, _) = run_classical(&g, &s, Params::paper(), 73);
            assert_eq!(found, reference_find_edges(&g, &s));
        }
    }

    #[test]
    fn quantum_matches_classical_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(74);
        for trial in 0..3 {
            let g = random_ugraph(16, 0.45, 4, &mut rng);
            let s = PairSet::all_pairs(16);
            let (q, _, _) = run_quantum(&g, &s, Params::paper(), 75 + trial);
            let (c, _, _) = run_classical(&g, &s, Params::paper(), 75 + trial);
            assert_eq!(q, c, "trial {trial}");
        }
    }

    #[test]
    fn restricting_s_restricts_the_output() {
        let g = book_graph(16, 4);
        let mut s = PairSet::new();
        s.insert(0, 1);
        s.insert(9, 10); // not in any triangle
        let (found, _, _) = run_quantum(&g, &s, Params::paper(), 76);
        assert!(found.contains(0, 1));
        assert!(!found.contains(9, 10));
        // pairs outside S never appear even though they are in triangles
        assert!(!found.contains(0, 2));
    }

    #[test]
    fn hotspot_instance_exercises_higher_classes() {
        let (g, base_pairs) = congestion_hotspot(16, 4, 6);
        let s = PairSet::all_pairs(16);
        let mut params = Params::paper();
        params.class_threshold = 0.25;
        let (found, stats, _) = run_quantum(&g, &s, params, 77);
        for &(u, v) in &base_pairs {
            assert!(found.contains(u, v), "base pair ({u},{v})");
        }
        assert!(stats.eval_calls > 0);
    }

    #[test]
    fn quantum_uses_fewer_sequential_probes_than_classical_scan() {
        // The classical backend scans all √n fine blocks; the quantum
        // backend's iteration count is O(√(√n)) per repetition. At n = 256
        // (fine blocks: 16) the gap shows in the per-search probe depth.
        let mut rng = StdRng::seed_from_u64(78);
        let g = random_ugraph(81, 0.3, 4, &mut rng);
        let s = PairSet::all_pairs(81);
        let mut params = Params::paper();
        params.search_repetitions = Some(12);
        let (q, qs, _) = run_quantum(&g, &s, params, 79);
        let (c, cs, _) = run_classical(&g, &s, Params::paper(), 79);
        assert_eq!(q, c);
        // classical probes every one of the 9 fine blocks
        assert_eq!(cs.iterations, 9);
        assert!(qs.iterations > 0);
    }

    #[test]
    fn empty_graph_finds_nothing() {
        let g = qcc_graph::UGraph::new(16);
        let s = PairSet::all_pairs(16);
        let (found, stats, _) = run_quantum(&g, &s, Params::paper(), 80);
        assert!(found.is_empty());
        assert_eq!(stats.searches, 0);
    }
}
