//! Problem statements: `FindEdges` and `FindEdgesWithPromise` (Section 3).

use qcc_graph::UGraph;
use std::collections::BTreeSet;

/// A set of unordered vertex pairs, normalized as `(min, max)` and kept
/// sorted for deterministic iteration.
///
/// # Examples
///
/// ```
/// use qcc_apsp::PairSet;
///
/// let mut s = PairSet::new();
/// s.insert(3, 1);
/// assert!(s.contains(1, 3));
/// assert_eq!(s.len(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PairSet {
    pairs: BTreeSet<(usize, usize)>,
}

impl PairSet {
    /// Creates an empty pair set.
    pub fn new() -> Self {
        PairSet::default()
    }

    /// The set of *all* unordered pairs over `0..n` (`P(V)` of the paper).
    pub fn all_pairs(n: usize) -> Self {
        let mut pairs = BTreeSet::new();
        for u in 0..n {
            for v in (u + 1)..n {
                pairs.insert((u, v));
            }
        }
        PairSet { pairs }
    }

    /// Inserts the unordered pair `{u, v}`.
    ///
    /// # Panics
    ///
    /// Panics if `u == v`.
    pub fn insert(&mut self, u: usize, v: usize) {
        assert_ne!(u, v, "pairs are over distinct vertices");
        self.pairs.insert((u.min(v), u.max(v)));
    }

    /// Removes the unordered pair `{u, v}` if present.
    pub fn remove(&mut self, u: usize, v: usize) {
        self.pairs.remove(&(u.min(v), u.max(v)));
    }

    /// Whether the pair `{u, v}` is in the set.
    pub fn contains(&self, u: usize, v: usize) -> bool {
        u != v && self.pairs.contains(&(u.min(v), u.max(v)))
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterates over pairs in sorted `(min, max)` order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.pairs.iter().copied()
    }

    /// Removes every pair present in `other` (`S ← S \ S'` of Prop. 1).
    pub fn subtract(&mut self, other: &PairSet) {
        for p in &other.pairs {
            self.pairs.remove(p);
        }
    }

    /// Inserts every pair of `other` (`M ← M ∪ S'` of Prop. 1).
    pub fn union_with(&mut self, other: &PairSet) {
        self.pairs.extend(other.pairs.iter().copied());
    }
}

impl FromIterator<(usize, usize)> for PairSet {
    fn from_iter<I: IntoIterator<Item = (usize, usize)>>(iter: I) -> Self {
        let mut s = PairSet::new();
        for (u, v) in iter {
            s.insert(u, v);
        }
        s
    }
}

impl Extend<(usize, usize)> for PairSet {
    fn extend<I: IntoIterator<Item = (usize, usize)>>(&mut self, iter: I) {
        for (u, v) in iter {
            self.insert(u, v);
        }
    }
}

impl<'a> IntoIterator for &'a PairSet {
    type Item = (usize, usize);
    type IntoIter = std::iter::Copied<std::collections::btree_set::Iter<'a, (usize, usize)>>;

    fn into_iter(self) -> Self::IntoIter {
        self.pairs.iter().copied()
    }
}

/// Ground truth for `FindEdges`: all pairs of `s` involved in a negative
/// triangle of `g`, computed by the exhaustive census.
pub fn reference_find_edges(g: &UGraph, s: &PairSet) -> PairSet {
    s.iter().filter(|&(u, v)| g.gamma(u, v) > 0).collect()
}

/// Checks the `FindEdgesWithPromise` promise: `Γ(u, v) ≤ bound` for every
/// pair of `s`. Returns the first violating pair, if any.
pub fn promise_violation(g: &UGraph, s: &PairSet, bound: f64) -> Option<(usize, usize, usize)> {
    for (u, v) in s.iter() {
        let gamma = g.gamma(u, v);
        if gamma as f64 > bound {
            return Some((u, v, gamma));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_graph::book_graph;

    #[test]
    fn pairs_normalize_order() {
        let mut s = PairSet::new();
        s.insert(5, 2);
        assert!(s.contains(2, 5));
        assert!(s.contains(5, 2));
        assert_eq!(s.iter().next(), Some((2, 5)));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn self_pairs_are_rejected() {
        PairSet::new().insert(3, 3);
    }

    #[test]
    fn all_pairs_has_binomial_size() {
        assert_eq!(PairSet::all_pairs(6).len(), 15);
        assert_eq!(PairSet::all_pairs(1).len(), 0);
    }

    #[test]
    fn subtract_and_union_mirror_prop1_bookkeeping() {
        let mut s = PairSet::all_pairs(4);
        let found: PairSet = [(0, 1), (2, 3)].into_iter().collect();
        let mut m = PairSet::new();
        s.subtract(&found);
        m.union_with(&found);
        assert_eq!(s.len(), 4);
        assert_eq!(m.len(), 2);
        assert!(!s.contains(0, 1));
        assert!(m.contains(2, 3));
    }

    #[test]
    fn reference_find_edges_filters_by_s() {
        let g = book_graph(8, 3);
        let all = reference_find_edges(&g, &PairSet::all_pairs(8));
        assert!(all.contains(0, 1));
        assert!(all.contains(0, 2));
        let restricted: PairSet = [(0, 1), (5, 6)].into_iter().collect();
        let found = reference_find_edges(&g, &restricted);
        assert_eq!(found.len(), 1);
        assert!(found.contains(0, 1));
    }

    #[test]
    fn promise_violation_detects_heavy_pairs() {
        let g = book_graph(20, 10);
        let s = PairSet::all_pairs(20);
        // Γ(0, 1) = 10 > 5
        let v = promise_violation(&g, &s, 5.0);
        assert_eq!(v, Some((0, 1, 10)));
        assert_eq!(promise_violation(&g, &s, 10.0), None);
    }

    #[test]
    fn from_iterator_collects() {
        let s: PairSet = vec![(1, 0), (2, 3)].into_iter().collect();
        assert_eq!(s.len(), 2);
        assert!(s.contains(0, 1));
    }
}
