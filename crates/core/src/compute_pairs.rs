//! Algorithm `ComputePairs` (Figure 1): the full `FindEdgesWithPromise`
//! solver.
//!
//! 1. **Step 1** — gather: every triple node `(u, v, w)` loads the weights
//!    of `P(u, w)` and `P(w, v)` (`O(n^{1/4})` rounds, [`crate::gather`]).
//! 2. **Step 2** — cover: every search node `(u, v, x)` samples its
//!    `Λ_x(u, v)` and loads the sampled pairs' weights, aborting on
//!    unbalanced draws (`O(log n)` rounds, [`crate::lambda`]).
//! 3. **Step 3** — search: `IdentifyClass` partitions the triples by load,
//!    then parallel (quantum or classical) searches find, for every kept
//!    pair, an apex block completing a negative triangle
//!    ([`crate::identify_class`], [`crate::step3`]).
//!
//! With the quantum backend this realizes Theorem 2: `FindEdgesWithPromise`
//! in `O~(n^{1/4})` rounds with probability `1 − O(1/n)`.

use crate::gather::gather_weights;
use crate::identify_class::identify_class_with_retry;
use crate::instance::Instance;
use crate::lambda::build_lambda_cover_with_retry;
use crate::params::Params;
use crate::problem::PairSet;
use crate::step3::{
    run_step3_classical, run_step3_quantum, FoundWitness, SearchBackend, Step3Stats,
};
use crate::ApspError;
use qcc_congest::Clique;
use qcc_graph::UGraph;
use rand::Rng;

/// Maximum retries for the abortable randomized stages (each aborts with
/// probability `O(1/n)`, so a handful of retries is overwhelming).
pub const MAX_STAGE_ATTEMPTS: u32 = 30;

/// Result of one `ComputePairs` run.
#[derive(Clone, Debug)]
pub struct ComputePairsReport {
    /// The pairs of `S` found to be in a negative triangle.
    pub found: PairSet,
    /// Per confirmation: the fine block whose apex witnessed the pair.
    pub witnesses: Vec<FoundWitness>,
    /// Rounds consumed by this run (on the caller's network).
    pub rounds: u64,
    /// Step-3 search diagnostics.
    pub stats: Step3Stats,
}

/// Runs `ComputePairs` on `graph` restricted to the pair set `s`.
///
/// The network must have exactly `graph.n()` nodes (vertices are identified
/// with nodes, Section 2).
///
/// # Errors
///
/// * [`ApspError::DimensionMismatch`] if the network size differs from the
///   vertex count.
/// * [`ApspError::StageAborted`] if a randomized stage aborted
///   [`MAX_STAGE_ATTEMPTS`] times (probability `n^{-Ω(MAX_STAGE_ATTEMPTS)}`).
///
/// # Examples
///
/// ```
/// use qcc_apsp::{compute_pairs, PairSet, Params, SearchBackend};
/// use qcc_congest::Clique;
/// use qcc_graph::book_graph;
/// use rand::SeedableRng;
///
/// let g = book_graph(16, 3);
/// let s = PairSet::all_pairs(16);
/// let mut net = Clique::new(16)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let report = compute_pairs(&g, &s, Params::paper(), SearchBackend::Quantum, &mut net, &mut rng)?;
/// assert!(report.found.contains(0, 1)); // the book's spine is in 3 negative triangles
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn compute_pairs<R: Rng>(
    graph: &UGraph,
    s: &PairSet,
    params: Params,
    backend: SearchBackend,
    net: &mut Clique,
    rng: &mut R,
) -> Result<ComputePairsReport, ApspError> {
    if net.n() != graph.n() {
        return Err(ApspError::DimensionMismatch {
            expected: graph.n(),
            actual: net.n(),
        });
    }
    let rounds_before = net.rounds();
    let inst = Instance::new(graph, s, params);

    let gathered = gather_weights(&inst, net)?;
    let cover = build_lambda_cover_with_retry(&inst, net, MAX_STAGE_ATTEMPTS, rng)?;

    let out = match backend {
        SearchBackend::Quantum => {
            let classes = identify_class_with_retry(&inst, net, MAX_STAGE_ATTEMPTS, rng)?;
            run_step3_quantum(&inst, net, &cover, &gathered, &classes, rng)?
        }
        SearchBackend::Classical => run_step3_classical(&inst, net, &cover, &gathered)?,
    };

    Ok(ComputePairsReport {
        found: out.found,
        witnesses: out.witnesses,
        rounds: net.rounds() - rounds_before,
        stats: out.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::reference_find_edges;
    use qcc_graph::{book_graph, planted_disjoint_triangles, random_ugraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn wrong_network_size_is_rejected() {
        let g = book_graph(16, 1);
        let s = PairSet::all_pairs(16);
        let mut net = Clique::new(8).unwrap();
        let mut rng = StdRng::seed_from_u64(81);
        let err = compute_pairs(
            &g,
            &s,
            Params::paper(),
            SearchBackend::Quantum,
            &mut net,
            &mut rng,
        )
        .unwrap_err();
        assert_eq!(
            err,
            ApspError::DimensionMismatch {
                expected: 16,
                actual: 8
            }
        );
    }

    #[test]
    fn quantum_and_classical_backends_agree_with_reference() {
        let mut rng = StdRng::seed_from_u64(82);
        let (g, _) = planted_disjoint_triangles(16, 3, 0.4, &mut rng);
        let s = PairSet::all_pairs(16);
        let expected = reference_find_edges(&g, &s);

        for backend in [SearchBackend::Quantum, SearchBackend::Classical] {
            let mut net = Clique::new(16).unwrap();
            let mut rng = StdRng::seed_from_u64(83);
            let report =
                compute_pairs(&g, &s, Params::paper(), backend, &mut net, &mut rng).unwrap();
            assert_eq!(report.found, expected, "{backend:?}");
            assert!(report.rounds > 0);
        }
    }

    #[test]
    fn rounds_are_attributed_to_this_run() {
        let g = book_graph(16, 2);
        let s = PairSet::all_pairs(16);
        let mut net = Clique::new(16).unwrap();
        let mut rng = StdRng::seed_from_u64(84);
        let r1 = compute_pairs(
            &g,
            &s,
            Params::paper(),
            SearchBackend::Classical,
            &mut net,
            &mut rng,
        )
        .unwrap();
        let total_after_first = net.rounds();
        assert_eq!(r1.rounds, total_after_first);
        let r2 = compute_pairs(
            &g,
            &s,
            Params::paper(),
            SearchBackend::Classical,
            &mut net,
            &mut rng,
        )
        .unwrap();
        assert_eq!(net.rounds(), total_after_first + r2.rounds);
    }

    #[test]
    fn scaled_params_remain_correct_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(85);
        let g = random_ugraph(16, 0.4, 4, &mut rng);
        let s = PairSet::all_pairs(16);
        let expected = reference_find_edges(&g, &s);
        // Classical + scaled: coverage is the only stochastic part; retry on
        // the rare missed-pair draw by comparing against coverage-filtered
        // reference is overkill — the classical scan over a cover that
        // includes every S-edge is exact, and with scaled constants the
        // cover misses a pair only with small probability. Use a seed that
        // covers (deterministic).
        let mut net = Clique::new(16).unwrap();
        let report = compute_pairs(
            &g,
            &s,
            Params::scaled(),
            SearchBackend::Classical,
            &mut net,
            &mut rng,
        )
        .unwrap();
        // found ⊆ expected always; equality whenever the cover was complete
        for (u, v) in report.found.iter() {
            assert!(expected.contains(u, v));
        }
    }
}
