//! A `FindEdgesWithPromise` instance with its derived partitions and labelings.

use crate::params::Params;
use crate::problem::PairSet;
use qcc_graph::{PaperPartitions, SearchLabeling, TripleLabeling, UGraph};

/// An instance of `FindEdgesWithPromise`: the graph, the pair set `S`, the
/// constants, and the Section 5.1 partitions/labelings derived from `n`.
///
/// The network size equals the vertex count (the standard identification of
/// graph vertices with network nodes; callers running on *virtual* networks
/// — e.g. the `3n`-vertex tripartite reduction — create a `Clique(3n)` and
/// account the constant simulation factor at the top level, see
/// `DESIGN.md`).
#[derive(Clone, Debug)]
pub struct Instance<'a> {
    /// The undirected weighted graph.
    pub graph: &'a UGraph,
    /// The pair set `S` the output is restricted to.
    pub s: &'a PairSet,
    /// Algorithm constants.
    pub params: Params,
    /// The coarse (`V`) and fine (`V'`) partitions.
    pub parts: PaperPartitions,
    /// The `T = V × V × V'` labeling (gathering nodes).
    pub triples: TripleLabeling,
    /// The `V × V × [√n]` labeling (search nodes).
    pub searches: SearchLabeling,
}

impl<'a> Instance<'a> {
    /// Builds the instance and its labelings.
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty.
    pub fn new(graph: &'a UGraph, s: &'a PairSet, params: Params) -> Self {
        let n = graph.n();
        assert!(n > 0, "empty graph");
        let parts = PaperPartitions::new(n);
        let triples = TripleLabeling::new(&parts, n);
        let searches = SearchLabeling::new(&parts, n);
        Instance {
            graph,
            s,
            params,
            parts,
            triples,
            searches,
        }
    }

    /// Number of vertices (= network nodes).
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// Largest edge-weight magnitude, for wire-format sizing.
    pub fn weight_magnitude(&self) -> u64 {
        self.graph
            .edges()
            .map(|(_, _, w)| w.unsigned_abs())
            .max()
            .unwrap_or(1)
    }

    /// `Δ(u, v; w)` of Definition 3: the pairs of `P(u, v) ∩ S` that form a
    /// negative triangle with an apex in fine block `w`. Exhaustive
    /// reference, used by tests and by the honesty cross-checks.
    pub fn delta(&self, bu: usize, bv: usize, bw: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (u, v) in self.parts.coarse.pair_set(bu, bv) {
            if !self.s.contains(u, v) {
                continue;
            }
            let hit = self
                .parts
                .fine
                .block(bw)
                .any(|w| self.graph.is_negative_triangle(u, v, w));
            if hit {
                out.push((u, v));
            }
        }
        out
    }

    /// Whether some vertex of fine block `bw` completes a negative triangle
    /// with the pair `{u, v}` — the predicate of the Step-3 searches.
    pub fn has_apex_in_block(&self, u: usize, v: usize, bw: usize) -> bool {
        self.parts
            .fine
            .block(bw)
            .any(|w| self.graph.is_negative_triangle(u, v, w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_graph::book_graph;

    #[test]
    fn instance_builds_consistent_labelings() {
        let g = book_graph(16, 3);
        let s = PairSet::all_pairs(16);
        let inst = Instance::new(&g, &s, Params::scaled());
        assert_eq!(inst.n(), 16);
        assert_eq!(inst.triples.labeling().label_count(), 16);
        assert_eq!(inst.searches.labeling().label_count(), 16);
    }

    #[test]
    fn delta_matches_manual_count() {
        // book graph: pair {0,1} has apexes 2, 3, 4
        let g = book_graph(16, 3);
        let s = PairSet::all_pairs(16);
        let inst = Instance::new(&g, &s, Params::scaled());
        let bu = inst.parts.coarse.block_of(0);
        let bv = inst.parts.coarse.block_of(1);
        // apexes 2..5 live in fine blocks of size 4: block_of(2) == 0
        let bw = inst.parts.fine.block_of(2);
        let delta = inst.delta(bu, bv, bw);
        assert!(delta.contains(&(0, 1)));
        // a block with no apexes contributes nothing for pairs away from the book
        let far = inst.parts.fine.num_blocks() - 1;
        assert!(!inst.delta(bu, bv, far).contains(&(0, 1)) || far == bw);
    }

    #[test]
    fn has_apex_agrees_with_delta() {
        let g = book_graph(16, 2);
        let s = PairSet::all_pairs(16);
        let inst = Instance::new(&g, &s, Params::scaled());
        for bw in 0..inst.parts.fine.num_blocks() {
            let expected = inst.has_apex_in_block(0, 1, bw);
            let bu = inst.parts.coarse.block_of(0);
            let bv = inst.parts.coarse.block_of(1);
            let in_delta = inst.delta(bu, bv, bw).contains(&(0, 1));
            assert_eq!(expected, in_delta, "block {bw}");
        }
    }

    #[test]
    fn weight_magnitude_defaults_to_one() {
        let g = UGraph::new(4);
        let s = PairSet::new();
        let inst = Instance::new(&g, &s, Params::scaled());
        assert_eq!(inst.weight_magnitude(), 1);
    }
}
