//! The distributed evaluation procedures of Figures 4 and 5.
//!
//! One joint evaluation answers, for every search node `(u, v, x)` and each
//! of its queried pairs `{u, v}` with target fine block `w`, whether some
//! apex in `w` completes a negative triangle — by shipping the pair (and
//! its weight) to the node that gathered `w`'s weight tables in Step 1 and
//! shipping one bit back.
//!
//! * **Figure 4 (α = 0):** pairs go directly to the triple node
//!   `(u, v, w)`. The promise `|L^k_w| ≤ 800·√n·log n` bounds every link's
//!   load, so the exchange takes `O(log n)` rounds.
//! * **Figure 5 (α > 0):** class-`α` triples may attract `2^α` times more
//!   queries, but Lemma 4 shows there are `2^α` times *fewer* of them — so
//!   each triple's data is duplicated onto `≈ 2^α / (720 log n)` fresh
//!   nodes (Step 0, a one-time `O(n^{1/4})`-round broadcast) and every
//!   query list is split across the copies, restoring `O(log² n)`-round
//!   evaluations.
//!
//! Exceeding the list bound is precisely the "atypical input" event of
//! Section 4.2: the procedure refuses (returns
//! [`AtypicalInputError`]), as the truncated evaluator `C̃m` does.

use crate::gather::GatheredWeights;
use crate::instance::Instance;
use crate::lambda::KeptPair;
use crate::wire::{pair_bits, weight_bits, Wire};
use qcc_congest::{Clique, CongestError, Envelope, NodeId};
use qcc_quantum::AtypicalInputError;

/// One query of a joint evaluation: "does pair `{u, v}` form a negative
/// triangle with an apex in fine block `target`?", asked by `search_label`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvalQuery {
    /// The `(u, v, x)` search label asking the question.
    pub search_label: usize,
    /// The queried pair with its loaded weight.
    pub pair: KeptPair,
    /// The fine block `w` to probe for apexes.
    pub target: usize,
}

/// Per-α evaluation context: the duplication layout of Figure 5.
///
/// For `α = 0` (or whenever the duplication count is 1) queries go to the
/// original triple nodes and no Step-0 broadcast happens — Figure 4.
#[derive(Clone, Debug)]
pub struct AlphaContext {
    /// The class this context serves.
    pub alpha: u32,
    /// Copies per triple (`max(1, ⌊2^α/(720 log n)⌋)`).
    pub dup: usize,
    /// Host of copy `y` of triple `label`, dense at `label * dup + y`;
    /// `u32::MAX` marks triples outside this context's class. The eval
    /// hot path resolves one copy per query, so this is a flat table
    /// rather than a map.
    copy_node: Vec<u32>,
    /// Per search label: `(hosting node, coarse block u, coarse block v)`,
    /// precomputed once so the eval hot loop is pure table lookups.
    search_route: Vec<(u32, u32, u32)>,
    /// Reusable link-tally buffers of the bulk eval path, so the hot loop
    /// does not re-allocate scratch on each of the millions of calls.
    scratch: std::cell::RefCell<EvalScratch>,
}

/// Scratch buffers reused across [`evaluate_joint`] calls of one context.
#[derive(Clone, Debug, Default)]
struct EvalScratch {
    query_links: Vec<u32>,
    reply_links: Vec<u32>,
}

impl AlphaContext {
    /// The node hosting copy `y` of triple `label`.
    ///
    /// # Panics
    ///
    /// Panics if the triple is not of this context's class or `y ≥ dup`.
    pub fn copy_node(&self, label: usize, y: usize) -> NodeId {
        self.try_copy_node(label, y)
            .unwrap_or_else(|| panic!("triple {label} copy {y} not in this α-context"))
    }

    /// Non-panicking [`AlphaContext::copy_node`]: `None` if the triple is
    /// not of this context's class or `y ≥ dup`.
    pub fn try_copy_node(&self, label: usize, y: usize) -> Option<NodeId> {
        if y >= self.dup {
            return None;
        }
        match self.copy_node.get(label * self.dup + y) {
            Some(&node) if node != u32::MAX => Some(NodeId::new(node as usize)),
            _ => None,
        }
    }

    /// Builds the context for class `alpha` and, when `dup > 1`, performs
    /// the Step-0 duplication broadcast of the gathered weight tables
    /// (charged to the network).
    ///
    /// `class_labels` lists the triple labels of class `alpha`.
    ///
    /// # Errors
    ///
    /// Returns a [`CongestError`] only on simulator-level addressing bugs.
    pub fn build(
        inst: &Instance<'_>,
        net: &mut Clique,
        alpha: u32,
        class_labels: &[usize],
    ) -> Result<Self, CongestError> {
        let n = inst.n();
        let dup = inst.params.dup_count(n, alpha);
        let label_count = inst.triples.labeling().label_count();
        let mut copy_node = vec![u32::MAX; label_count * dup];
        // Deterministic relabeling: copies are spread round-robin over all
        // nodes (the paper assigns the fresh labels (u, v, w, y) to the n
        // network nodes; Lemma 4 guarantees they fit up to constants).
        let mut next = 0usize;
        for &label in class_labels {
            for y in 0..dup {
                let node = if dup == 1 {
                    // Figure 4: queries go to the original triple node.
                    inst.triples.labeling().node_of(label)
                } else {
                    let node = next % n;
                    next += 1;
                    node
                };
                copy_node[label * dup + y] = node as u32;
            }
        }
        let mut search_route = vec![(0u32, 0u32, 0u32); inst.searches.labeling().label_count()];
        for (label, (bu, bv, _x)) in inst.searches.triples() {
            search_route[label] = (
                inst.searches.labeling().node_of(label) as u32,
                bu as u32,
                bv as u32,
            );
        }
        let ctx = AlphaContext {
            alpha,
            dup,
            copy_node,
            search_route,
            scratch: std::cell::RefCell::new(EvalScratch::default()),
        };

        if dup > 1 {
            // Step 0: broadcast each triple's gathered tables to its copies.
            net.begin_phase(&format!("step3/alpha{alpha}/duplicate"));
            let wb = weight_bits(inst.weight_magnitude());
            let mut sends: Vec<Envelope<Wire<usize>>> = Vec::new();
            for &label in class_labels {
                let src = NodeId::new(inst.triples.labeling().node_of(label));
                let (bu, bv, bw) = inst.triples.decode(label);
                let table_bits = wb
                    * ((inst.parts.coarse.block(bu).len() + inst.parts.coarse.block(bv).len())
                        * inst.parts.fine.block(bw).len()) as u64;
                for y in 0..dup {
                    let dst = ctx.copy_node(label, y);
                    if dst != src {
                        sends.push(Envelope::new(src, dst, Wire::new(label, table_bits)));
                    }
                }
            }
            net.route(sends)?;
        }
        Ok(ctx)
    }
}

/// Executes one joint evaluation (Figure 4 when `actx.dup == 1`, Figure 5
/// otherwise) for all queries of all search nodes simultaneously.
///
/// Returns per-query booleans in input order.
///
/// # Errors
///
/// Returns [`AtypicalInputError`] — the truncated evaluator's refusal — if
/// any per-(node, target) list exceeds the `800·2^α·√n·log n` bound, and
/// propagates [`CongestError`] on simulator-level addressing bugs.
pub fn evaluate_joint(
    inst: &Instance<'_>,
    net: &mut Clique,
    gathered: &GatheredWeights,
    actx: &AlphaContext,
    queries: &[EvalQuery],
) -> Result<Vec<bool>, EvalJointError> {
    let cap = inst.params.list_cap(inst.n(), actx.alpha);
    evaluate_with_cap(inst, net, gathered, actx, queries, cap)
}

/// [`evaluate_joint`] without the typicality gate: the *classical*
/// evaluator, which accepts arbitrarily concentrated query loads and simply
/// pays the congestion in rounds. Used by the classical Step-3 baseline
/// (and by the congestion ablation, experiment E12).
///
/// # Errors
///
/// Propagates [`CongestError`] on simulator-level addressing bugs.
pub fn evaluate_joint_unbounded(
    inst: &Instance<'_>,
    net: &mut Clique,
    gathered: &GatheredWeights,
    actx: &AlphaContext,
    queries: &[EvalQuery],
) -> Result<Vec<bool>, EvalJointError> {
    evaluate_with_cap(inst, net, gathered, actx, queries, f64::INFINITY)
}

fn evaluate_with_cap(
    inst: &Instance<'_>,
    net: &mut Clique,
    gathered: &GatheredWeights,
    actx: &AlphaContext,
    queries: &[EvalQuery],
    cap: f64,
) -> Result<Vec<bool>, EvalJointError> {
    let n = inst.n();

    // Tally the lists L^k_w and enforce the promise (the Υ_β gate): a flat
    // (search node, target)-indexed counter array replaces materialized
    // per-list index vectors. The gate still fires at the *first* query
    // whose list crosses the cap, with the same incremental count.
    let fine = inst.parts.fine.num_blocks();
    let mut counts = vec![0u32; inst.searches.labeling().label_count() * fine];
    for q in queries {
        let key = q.search_label * fine + q.target;
        counts[key] += 1;
        if counts[key] as f64 > cap {
            return Err(EvalJointError::Atypical(AtypicalInputError {
                max_frequency: counts[key] as u64,
                beta: cap,
            }));
        }
    }

    let pb = pair_bits(n);
    let wb = weight_bits(inst.weight_magnitude());
    if net.is_transparent() {
        // Fault-free, un-enveloped network: every wire is fixed-width, so
        // the two exchange legs can be charged analytically from per-link
        // message tallies and answered locally — byte-identical rounds,
        // metrics, and trace events, with no envelopes materialized.
        return evaluate_bulk(
            inst,
            net,
            gathered,
            actx,
            queries,
            &mut counts,
            fine,
            pb,
            wb,
        );
    }
    net.begin_phase(&format!("step3/alpha{}/eval-queries", actx.alpha));
    // Wire content: (query id, triple label, pair endpoints, f(u, v)).
    // The pair + weight are the `pb + wb` information bits; the ids mirror
    // addressing information already implied by the link. Sends are
    // emitted in query order — a permutation of list order, which charges
    // identical rounds (per-link loads are order-free) and resolves to the
    // same copy per query (`pos` is the query's rank within its list).
    counts.iter_mut().for_each(|c| *c = 0);
    // Per-search-label routing info (host node and block pair), precomputed
    // once per α-context.
    let route_of = &actx.search_route;
    let mut sends: Vec<Envelope<Wire<(usize, usize, usize, usize, i64)>>> =
        Vec::with_capacity(queries.len());
    for (idx, q) in queries.iter().enumerate() {
        let key = q.search_label * fine + q.target;
        let pos = counts[key] as usize;
        counts[key] += 1;
        let (src_node, bu, bv) = route_of[q.search_label];
        let src = NodeId::new(src_node as usize);
        let triple_label = inst.triples.encode(bu as usize, bv as usize, q.target);
        // Figure 5: split each list round-robin across the dup copies.
        let y = pos % actx.dup;
        let dst = actx.try_copy_node(triple_label, y).ok_or_else(|| {
            EvalJointError::Internal(format!(
                "triple {triple_label} copy {y} not in the α = {} context",
                actx.alpha
            ))
        })?;
        sends.push(Envelope::new(
            src,
            dst,
            Wire::new(
                (idx, triple_label, q.pair.u, q.pair.v, q.pair.weight),
                pb + wb,
            ),
        ));
    }
    let boxes = net.exchange(sends)?;

    // Copy nodes answer from their gathered tables, through the oracle
    // census cache: repeats of a (triple, pair) probe are O(1).
    net.begin_phase(&format!("step3/alpha{}/eval-answers", actx.alpha));
    let mut replies: Vec<Envelope<Wire<(usize, bool)>>> = Vec::with_capacity(queries.len());
    for host in NodeId::all(n) {
        for (asker, msg) in boxes.of(host) {
            let (idx, triple_label, u, v, f_uv) = msg.value;
            let answer = gathered
                .check_negative_cached(inst, triple_label, u, v, f_uv)
                .map_err(|e| EvalJointError::Internal(e.to_string()))?;
            replies.push(Envelope::new(
                host,
                *asker,
                Wire::new((idx, answer), pb + 1),
            ));
        }
    }
    let answer_boxes = net.exchange(replies)?;

    let mut answers = vec![false; queries.len()];
    let mut answered = vec![false; queries.len()];
    for node in NodeId::all(n) {
        for (_src, msg) in answer_boxes.of(node) {
            let (idx, ans) = msg.value;
            answers[idx] = ans;
            answered[idx] = true;
        }
    }
    // On a reliable network every query is answered; on a fault-injected
    // one without the delivery envelope, lost messages surface here.
    if let Some(idx) = answered.iter().position(|&a| !a) {
        return Err(EvalJointError::Internal(format!(
            "query {idx} of {} went unanswered — messages lost in transit",
            queries.len()
        )));
    }
    Ok(answers)
}

/// The batched fast path of [`evaluate_with_cap`], taken on transparent
/// networks ([`Clique::is_transparent`]).
///
/// One pass over the (cap-checked) queries resolves each to its copy node,
/// tallies both exchange legs per ordered link — every query wire is
/// `pb + wb` bits, every reply `pb + 1` — and answers it locally through a
/// streaming census probe; the legs are then charged via
/// [`Clique::charge_exchange_tally`], which records rounds, totals, maxima,
/// and trace events byte-identical to the materialized exchanges over the
/// same traffic. Since the materialized path scatters replies back by query
/// id anyway, the per-query results are identical. The cap tallies in
/// `counts` are rewound first, so `pos` is the query's rank within its
/// (search, target) list — the same round-robin copy split as the
/// materialized path.
#[allow(clippy::too_many_arguments)]
fn evaluate_bulk(
    inst: &Instance<'_>,
    net: &mut Clique,
    gathered: &GatheredWeights,
    actx: &AlphaContext,
    queries: &[EvalQuery],
    counts: &mut [u32],
    fine: usize,
    pb: u64,
    wb: u64,
) -> Result<Vec<bool>, EvalJointError> {
    let n = inst.n();
    net.begin_phase(&format!("step3/alpha{}/eval-queries", actx.alpha));
    counts.iter_mut().for_each(|c| *c = 0);
    let route_of = &actx.search_route;
    let mut scratch = actx.scratch.borrow_mut();
    let EvalScratch {
        query_links,
        reply_links,
    } = &mut *scratch;
    query_links.clear();
    query_links.resize(n * n, 0);
    reply_links.clear();
    reply_links.resize(n * n, 0);
    let mut answers = Vec::with_capacity(queries.len());
    let mut probe = gathered.census_probe(inst);
    for q in queries {
        let key = q.search_label * fine + q.target;
        let pos = counts[key] as usize;
        counts[key] += 1;
        let (src_node, bu, bv) = route_of[q.search_label];
        let triple_label = inst.triples.encode(bu as usize, bv as usize, q.target);
        let y = pos % actx.dup;
        let dst = actx.try_copy_node(triple_label, y).ok_or_else(|| {
            EvalJointError::Internal(format!(
                "triple {triple_label} copy {y} not in the α = {} context",
                actx.alpha
            ))
        })?;
        let (src, dst) = (src_node as usize, dst.index());
        query_links[src * n + dst] += 1;
        reply_links[dst * n + src] += 1;
        answers.push(
            probe
                .check(triple_label, q.pair.u, q.pair.v, q.pair.weight)
                .map_err(|e| EvalJointError::Internal(e.to_string()))?,
        );
    }
    drop(probe);
    net.charge_exchange_tally(query_links, pb + wb, "exchange");
    net.begin_phase(&format!("step3/alpha{}/eval-answers", actx.alpha));
    net.charge_exchange_tally(reply_links, pb + 1, "exchange");
    Ok(answers)
}

/// A charge-only joint-evaluation session for the lockstep Grover loop.
///
/// In the quantum Step 3 the per-iteration evaluations exist to drive the
/// simulated oracle *cost*: their boolean answers equal, by construction of
/// the searches' solution censuses, `Instance::has_apex_in_block` on the
/// sampled target (the materialized path debug-asserts exactly this), and
/// the Grover evolution between iterations consumes only the charges. This
/// session therefore skips answer materialization entirely and reduces each
/// query to two link-tally increments through a per-`(search, target)`
/// destination memo, then charges both exchange legs analytically — rounds,
/// metrics, and trace events byte-identical to [`evaluate_joint`] over the
/// same query multiset.
///
/// [`ChargeOnlyEval::try_new`] requires a transparent network
/// ([`Clique::is_transparent`]), where analytic exchange charging is exact;
/// otherwise callers fall back to [`evaluate_joint`]. Within a session two
/// regimes exist:
///
/// * **counter-free** — when `dup == 1` (every query of a triple resolves
///   to copy 0 regardless of its rank within its list) *and*
///   `max_queries_per_label ≤ cap` (a `(search, target)` list can be at
///   most as long as the search label's whole query load, so the Υ_β
///   typicality gate of [`evaluate_joint`] can never fire), each push is
///   two tally increments through a per-`(search, target)` destination
///   memo;
/// * **counted** — otherwise the session tracks per-`(search, target)`
///   list ranks like the materialized path: the same first-crossing Υ_β
///   refusal and the same round-robin copy split.
pub struct ChargeOnlyEval<'a, 'd> {
    inst: &'a Instance<'d>,
    actx: &'a AlphaContext,
    n: usize,
    fine: usize,
    cap: f64,
    /// The counter-free regime (see the type docs).
    skip_counts: bool,
    query_bits: u64,
    reply_bits: u64,
    /// `dst_of[label * fine + target]` = copy-0 host of triple
    /// `(bu(label), bv(label), target)`; `u32::MAX` marks triples outside
    /// the α-context (never sampled by a well-formed search domain).
    dst_of: Vec<u32>,
    /// Host node of each search label (`search_route` without the blocks).
    src_of: Vec<u32>,
    /// Counted regime only: per-`(search, target)` list ranks, reset via
    /// `touched` between evaluations.
    counts: Vec<u32>,
    touched: Vec<u32>,
    query_links: Vec<u32>,
    reply_links: Vec<u32>,
    phase_queries: String,
    phase_answers: String,
    atypical: Option<AtypicalInputError>,
    internal: Option<String>,
}

impl<'a, 'd> ChargeOnlyEval<'a, 'd> {
    /// Builds the session, or `None` off the transparent regime where the
    /// charge-only reduction is not provably identical to
    /// [`evaluate_joint`] (see the type docs).
    ///
    /// `cap` must be the same `list_cap` bound [`evaluate_joint`] applies;
    /// `max_queries_per_label` bounds the number of queries any single
    /// search label contributes to one evaluation.
    pub fn try_new(
        inst: &'a Instance<'d>,
        net: &Clique,
        actx: &'a AlphaContext,
        cap: f64,
        max_queries_per_label: u32,
    ) -> Option<Self> {
        if !net.is_transparent() {
            return None;
        }
        let skip_counts = actx.dup == 1 && f64::from(max_queries_per_label) <= cap;
        let n = inst.n();
        let fine = inst.parts.fine.num_blocks();
        let labels = inst.searches.labeling().label_count();
        let mut dst_of = vec![u32::MAX; labels * fine];
        let mut src_of = vec![0u32; labels];
        for (label, &(src, bu, bv)) in actx.search_route.iter().enumerate() {
            src_of[label] = src;
            for target in 0..fine {
                let triple = inst.triples.encode(bu as usize, bv as usize, target);
                if let Some(dst) = actx.try_copy_node(triple, 0) {
                    dst_of[label * fine + target] = dst.index() as u32;
                }
            }
        }
        Some(ChargeOnlyEval {
            inst,
            actx,
            n,
            fine,
            cap,
            skip_counts,
            query_bits: pair_bits(n) + weight_bits(inst.weight_magnitude()),
            reply_bits: pair_bits(n) + 1,
            dst_of,
            src_of,
            counts: if skip_counts {
                Vec::new()
            } else {
                vec![0u32; labels * fine]
            },
            touched: Vec::new(),
            query_links: vec![0u32; n * n],
            reply_links: vec![0u32; n * n],
            phase_queries: format!("step3/alpha{}/eval-queries", actx.alpha),
            phase_answers: format!("step3/alpha{}/eval-answers", actx.alpha),
            atypical: None,
            internal: None,
        })
    }

    /// Clears the link tallies and list ranks for the next evaluation.
    pub fn reset(&mut self) {
        self.query_links.fill(0);
        self.reply_links.fill(0);
        for &key in &self.touched {
            self.counts[key as usize] = 0;
        }
        self.touched.clear();
        self.atypical = None;
        self.internal = None;
    }

    /// Records one query of `search_label` probing fine block `target`.
    #[inline]
    pub fn push(&mut self, search_label: usize, target: usize) {
        let key = search_label * self.fine + target;
        let dst = if self.skip_counts {
            self.dst_of[key]
        } else {
            let pos = self.counts[key];
            if pos == 0 {
                self.touched.push(key as u32);
            }
            self.counts[key] = pos + 1;
            if f64::from(pos + 1) > self.cap && self.atypical.is_none() {
                self.atypical = Some(AtypicalInputError {
                    max_frequency: u64::from(pos) + 1,
                    beta: self.cap,
                });
            }
            let y = pos as usize % self.actx.dup;
            if y == 0 {
                self.dst_of[key]
            } else {
                let (_, bu, bv) = self.actx.search_route[search_label];
                let triple = self.inst.triples.encode(bu as usize, bv as usize, target);
                match self.actx.try_copy_node(triple, y) {
                    Some(node) => node.index() as u32,
                    None => u32::MAX,
                }
            }
        };
        if dst == u32::MAX {
            // Same broken-invariant surface as the materialized path, kept
            // out of line: report at finish(), before anything is charged.
            if self.internal.is_none() {
                let (_, bu, bv) = self.actx.search_route[search_label];
                let triple = self.inst.triples.encode(bu as usize, bv as usize, target);
                let y = if self.skip_counts {
                    0
                } else {
                    (self.counts[key] as usize - 1) % self.actx.dup
                };
                self.internal = Some(format!(
                    "triple {triple} copy {y} not in the α = {} context",
                    self.actx.alpha
                ));
            }
            return;
        }
        let (src, dst) = (self.src_of[search_label] as usize, dst as usize);
        self.query_links[src * self.n + dst] += 1;
        self.reply_links[dst * self.n + src] += 1;
    }

    /// Charges the two exchange legs of the recorded queries.
    ///
    /// # Errors
    ///
    /// [`EvalJointError::Atypical`] on a Υ_β list-cap violation and
    /// [`EvalJointError::Internal`] if some query addressed a triple
    /// outside the α-context — in both cases nothing is charged, matching
    /// [`evaluate_joint`]'s abort-before-exchange (and its precedence:
    /// the cap pass runs before query resolution).
    pub fn finish(&mut self, net: &mut Clique) -> Result<(), EvalJointError> {
        if let Some(e) = self.atypical.take() {
            return Err(EvalJointError::Atypical(e));
        }
        net.begin_phase(&self.phase_queries);
        if let Some(context) = self.internal.take() {
            return Err(EvalJointError::Internal(context));
        }
        net.charge_exchange_tally(&self.query_links, self.query_bits, "exchange");
        net.begin_phase(&self.phase_answers);
        net.charge_exchange_tally(&self.reply_links, self.reply_bits, "exchange");
        Ok(())
    }
}

/// Errors of a joint evaluation.
#[derive(Clone, Debug)]
pub enum EvalJointError {
    /// The truncated evaluator refused an atypical query load.
    Atypical(AtypicalInputError),
    /// Simulator-level addressing bug.
    Congest(CongestError),
    /// Broken invariant: a foreign pair, an unknown triple copy, or an
    /// unanswered query (lost messages on an unprotected faulty network).
    Internal(String),
}

impl From<CongestError> for EvalJointError {
    fn from(e: CongestError) -> Self {
        EvalJointError::Congest(e)
    }
}

impl std::fmt::Display for EvalJointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalJointError::Atypical(e) => write!(f, "{e}"),
            EvalJointError::Congest(e) => write!(f, "{e}"),
            EvalJointError::Internal(context) => write!(f, "{context}"),
        }
    }
}

impl std::error::Error for EvalJointError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gather::gather_weights;
    use crate::params::Params;
    use crate::problem::PairSet;
    use qcc_graph::{book_graph, random_ugraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn all_class0(inst: &Instance<'_>) -> Vec<usize> {
        (0..inst.triples.labeling().label_count()).collect()
    }

    #[test]
    fn answers_match_the_census() {
        let mut rng = StdRng::seed_from_u64(61);
        let g = random_ugraph(16, 0.6, 5, &mut rng);
        let s = PairSet::all_pairs(16);
        let inst = Instance::new(&g, &s, Params::paper());
        let mut net = Clique::new(16).unwrap();
        let gathered = gather_weights(&inst, &mut net).unwrap();
        let actx = AlphaContext::build(&inst, &mut net, 0, &all_class0(&inst)).unwrap();

        // one query per (edge of S, fine block)
        let mut queries = Vec::new();
        let mut expected = Vec::new();
        for (u, v, w) in g.edges() {
            let bu = inst.parts.coarse.block_of(u);
            let bv = inst.parts.coarse.block_of(v);
            for target in 0..inst.parts.fine.num_blocks() {
                // x = 0 search label of this block pair
                let search_label = inst.searches.encode(bu, bv, 0);
                queries.push(EvalQuery {
                    search_label,
                    pair: KeptPair { u, v, weight: w },
                    target,
                });
                expected.push(inst.has_apex_in_block(u, v, target));
            }
        }
        let answers = evaluate_joint(&inst, &mut net, &gathered, &actx, &queries).unwrap();
        assert_eq!(answers, expected);
    }

    #[test]
    fn list_cap_violation_is_atypical() {
        let g = book_graph(16, 3);
        let s = PairSet::all_pairs(16);
        let mut params = Params::paper();
        params.list_bound = 0.01; // cap < 1: every nonempty list is atypical
        let inst = Instance::new(&g, &s, params);
        let mut net = Clique::new(16).unwrap();
        let gathered = gather_weights(&inst, &mut net).unwrap();
        let actx = AlphaContext::build(&inst, &mut net, 0, &all_class0(&inst)).unwrap();
        let queries = vec![EvalQuery {
            search_label: 0,
            pair: KeptPair {
                u: 0,
                v: 1,
                weight: -10,
            },
            target: 0,
        }];
        let rounds_before = net.rounds();
        match evaluate_joint(&inst, &mut net, &gathered, &actx, &queries) {
            Err(EvalJointError::Atypical(_)) => {}
            other => panic!("expected atypical refusal, got {other:?}"),
        }
        // refusal happens before any communication
        assert_eq!(net.rounds(), rounds_before);
    }

    #[test]
    fn duplication_spreads_queries_across_copies() {
        let g = book_graph(16, 3);
        let s = PairSet::all_pairs(16);
        let mut params = Params::scaled();
        params.dup_denominator = 0.1; // alpha = 2 => dup = floor(4 / (0.1·4)) = 10
        let inst = Instance::new(&g, &s, params);
        let mut net = Clique::new(16).unwrap();
        let gathered = gather_weights(&inst, &mut net).unwrap();
        let labels = all_class0(&inst);
        let actx = AlphaContext::build(&inst, &mut net, 2, &labels).unwrap();
        assert!(actx.dup > 1, "dup = {}", actx.dup);
        assert!(net.metrics().rounds_with_prefix("step3/alpha2/duplicate") > 0);

        // many queries from one search node to one target: they fan out
        let mut queries = Vec::new();
        for v in 1..10 {
            let u = 0;
            if let Some(w) = g.weight(u, v).finite() {
                let bu = inst.parts.coarse.block_of(u);
                let bv = inst.parts.coarse.block_of(v);
                queries.push(EvalQuery {
                    search_label: inst.searches.encode(bu.min(bv), bu.max(bv), 0),
                    pair: KeptPair {
                        u: u.min(v),
                        v: u.max(v),
                        weight: w,
                    },
                    target: 0,
                });
            }
        }
        let answers = evaluate_joint(&inst, &mut net, &gathered, &actx, &queries).unwrap();
        for (q, a) in queries.iter().zip(&answers) {
            assert_eq!(*a, inst.has_apex_in_block(q.pair.u, q.pair.v, q.target));
        }
    }

    #[test]
    fn empty_query_set_is_free() {
        let g = book_graph(16, 1);
        let s = PairSet::all_pairs(16);
        let inst = Instance::new(&g, &s, Params::scaled());
        let mut net = Clique::new(16).unwrap();
        let gathered = gather_weights(&inst, &mut net).unwrap();
        let actx = AlphaContext::build(&inst, &mut net, 0, &all_class0(&inst)).unwrap();
        let before = net.rounds();
        let answers = evaluate_joint(&inst, &mut net, &gathered, &actx, &[]).unwrap();
        assert!(answers.is_empty());
        assert_eq!(net.rounds(), before);
    }
}
